#include "decode_cache.hh"

namespace misp::cpu {

namespace {

/** VPNs of the 32-bit guest space: 2^32 / 2^12 pages, 64 per word. */
constexpr std::size_t kBitmapWords = (1ull << 20) / 64;

} // namespace

DecodeCache::DecodeCache(mem::PhysicalMemory &pmem) : pmem_(pmem) {}

DecodedPage *
DecodeCache::find(std::uint64_t vpn)
{
    auto it = pages_.find(vpn);
    if (it == pages_.end() || !it->second->decoded)
        return nullptr;
    return it->second.get();
}

DecodedPage *
DecodeCache::decodePage(std::uint64_t vpn, PAddr paBase)
{
    // The coherence bitmap spans the 32-bit guest space; a VPN outside
    // it could not be write-tracked, so it must never be cached. Guest
    // translations cannot produce one (AddressSpace caps regions at
    // kUserLimit).
    MISP_ASSERT(vpn < kBitmapWords * 64);
    std::unique_ptr<DecodedPage> &slot = pages_[vpn];
    if (!slot) {
        slot = std::make_unique<DecodedPage>();
        slot->vpn = vpn;
    }
    DecodedPage *page = slot.get();

    std::uint8_t bytes[mem::kPageSize];
    pmem_.readBytes(paBase, bytes, mem::kPageSize);
    for (std::size_t i = 0; i < DecodedPage::kSlots; ++i) {
        DecodedSlot &s = page->slots[i];
        s.valid = isa::decode(&bytes[i * isa::kInstBytes], &s.inst);
        s.lat = s.valid ? isa::baseLatency(s.inst.op) : 0;
    }
    page->paBase = paBase;
    ++page->version;
    if (!page->decoded) {
        page->decoded = true;
        ++resident_;
    }
    setBit(vpn);
    ++pagesDecoded_;
    return page;
}

void
DecodeCache::invalidateVpn(std::uint64_t vpn)
{
    auto it = pages_.find(vpn);
    if (it == pages_.end() || !it->second->decoded)
        return;
    it->second->decoded = false;
    ++it->second->version;
    --resident_;
    clearBit(vpn);
    ++invalidations_;
}

void
DecodeCache::setBit(std::uint64_t vpn)
{
    const std::uint64_t word = vpn >> 6;
    if (word >= kBitmapWords)
        return; // beyond the 32-bit guest space: never cached
    if (decodedBits_.empty())
        decodedBits_.resize(kBitmapWords, 0); // lazy: first decode pays
    decodedBits_[word] |= 1ull << (vpn & 63);
}

void
DecodeCache::clearBit(std::uint64_t vpn)
{
    const std::uint64_t word = vpn >> 6;
    if (word < decodedBits_.size())
        decodedBits_[word] &= ~(1ull << (vpn & 63));
}

} // namespace misp::cpu
