#include "decode_cache.hh"

#include "obs/trace.hh"

namespace misp::cpu {

namespace {

/** VPNs of the 32-bit guest space: 2^32 / 2^12 pages, 64 per word. */
constexpr std::size_t kBitmapWords = (1ull << 20) / 64;

} // namespace

OpClass
classifyOp(isa::Opcode op)
{
    using isa::Opcode;
    switch (op) {
      // Pure register/flags ops: no memory, fault, or environment
      // effects — the superblock executor runs these inline.
      case Opcode::Nop:
      case Opcode::MovI:
      case Opcode::Mov:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sar:
      case Opcode::AddI:
      case Opcode::SubI:
      case Opcode::MulI:
      case Opcode::AndI:
      case Opcode::OrI:
      case Opcode::XorI:
      case Opcode::ShlI:
      case Opcode::ShrI:
      case Opcode::Cmp:
      case Opcode::CmpI:
      case Opcode::Lea:
      case Opcode::Pause:
      case Opcode::Compute:
      case Opcode::SeqId:
      case Opcode::NumSeq:
      case Opcode::RdTick:
        return OpClass::Inline;
      // Memory or fault-capable ops: slow dispatch inside the block.
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::Push:
      case Opcode::Pop:
      case Opcode::Xchg:
      case Opcode::CmpXchg:
      case Opcode::FetchAdd:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::DivI:
        return OpClass::Mem;
      // Pure control transfers: block terminators carrying chain links.
      case Opcode::Jmp:
      case Opcode::JmpR:
      case Opcode::Jcc:
        return OpClass::Branch;
      // Environment / serialization points (and the memory-touching
      // control transfers): terminators with a full re-resolve after.
      case Opcode::Halt:
      case Opcode::Syscall:
      case Opcode::RtCall:
      case Opcode::Signal:
      case Opcode::Semonitor:
      case Opcode::Yret:
      case Opcode::Call:
      case Opcode::CallR:
      case Opcode::Ret:
        return OpClass::Slow;
      case Opcode::NumOpcodes:
        break;
    }
    return OpClass::Invalid;
}

std::uint32_t
buildSuperblockAt(DecodedPage &page, std::uint16_t slot)
{
    MISP_ASSERT(slot < DecodedPage::kSlots);
    if (!page.sbs)
        page.sbs = std::make_unique<PageSuperblocks>();
    PageSuperblocks &ps = *page.sbs;
    std::uint16_t cached = ps.startAt[slot];
    if (cached != PageSuperblocks::kNone)
        return cached;

    Superblock sb;
    sb.start = slot;
    std::uint16_t cur = slot;
    while (cur < DecodedPage::kSlots) {
        const DecodedSlot &s = page.slots[cur];
        OpClass cls = s.valid ? s.cls : OpClass::Invalid;
        if (cls == OpClass::Branch || cls == OpClass::Slow ||
            cls == OpClass::Invalid) {
            sb.termKind = cls;
            break;
        }
        ++cur;
    }
    sb.term = cur; // == kSlots when the block ran off the page edge

    std::uint32_t index = static_cast<std::uint32_t>(ps.blocks.size());
    ps.blocks.push_back(sb);
    // [engine] category: only the superblock engine builds blocks.
    obs::trace(obs::TraceKind::SuperblockBuild, 0, slot, page.vpn,
               sb.term - sb.start);
    ps.startAt[slot] = static_cast<std::uint16_t>(index);
    return index;
}

DecodeCache::DecodeCache(mem::PhysicalMemory &pmem) : pmem_(pmem) {}

DecodedPage *
DecodeCache::find(std::uint64_t vpn)
{
    auto it = pages_.find(vpn);
    if (it == pages_.end() || !it->second->decoded)
        return nullptr;
    return it->second.get();
}

DecodedPage *
DecodeCache::decodePage(std::uint64_t vpn, PAddr paBase)
{
    // The coherence bitmap spans the 32-bit guest space; a VPN outside
    // it could not be write-tracked, so it must never be cached. Guest
    // translations cannot produce one (AddressSpace caps regions at
    // kUserLimit).
    MISP_ASSERT(vpn < kBitmapWords * 64);
    std::unique_ptr<DecodedPage> &slot = pages_[vpn];
    if (!slot) {
        slot = std::make_unique<DecodedPage>();
        slot->vpn = vpn;
    }
    DecodedPage *page = slot.get();

    std::uint8_t bytes[mem::kPageSize];
    pmem_.readBytes(paBase, bytes, mem::kPageSize);
    for (std::size_t i = 0; i < DecodedPage::kSlots; ++i) {
        DecodedSlot &s = page->slots[i];
        s.valid = isa::decode(&bytes[i * isa::kInstBytes], &s.inst);
        s.lat = s.valid ? isa::baseLatency(s.inst.op) : 0;
        s.cls = s.valid ? classifyOp(s.inst.op) : OpClass::Invalid;
    }
    // Superblock metadata indexes the slots just overwritten; outbound
    // chain links die with it, inbound ones die on the version bump.
    page->sbs.reset();
    page->paBase = paBase;
    ++page->version;
    if (!page->decoded) {
        page->decoded = true;
        ++resident_;
    }
    setBit(vpn);
    ++pagesDecoded_;
    // [engine] category: decode timing depends on the engine choice.
    obs::trace(obs::TraceKind::DecodePage, 0, 0, vpn, page->version);
    return page;
}

void
DecodeCache::invalidateVpn(std::uint64_t vpn)
{
    auto it = pages_.find(vpn);
    if (it == pages_.end() || !it->second->decoded)
        return;
    it->second->decoded = false;
    ++it->second->version;
    --resident_;
    clearBit(vpn);
    ++invalidations_;
    obs::trace(obs::TraceKind::DecodeInvalidate, 0, 0, vpn,
               it->second->version);
}

void
DecodeCache::setBit(std::uint64_t vpn)
{
    const std::uint64_t word = vpn >> 6;
    if (word >= kBitmapWords)
        return; // beyond the 32-bit guest space: never cached
    if (decodedBits_.empty())
        decodedBits_.resize(kBitmapWords, 0); // lazy: first decode pays
    decodedBits_[word] |= 1ull << (vpn & 63);
}

void
DecodeCache::clearBit(std::uint64_t vpn)
{
    const std::uint64_t word = vpn >> 6;
    if (word < decodedBits_.size())
        decodedBits_[word] &= ~(1ull << (vpn & 63));
}

} // namespace misp::cpu
