#include "sequencer.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "snapshot/state_io.hh"

namespace misp::cpu {

namespace {

/** Shorthand for the sequencer lifecycle hooks: sid in the event, the
 *  pre-transition state in aux (deterministic; engine-independent). */
inline void
traceShred(obs::TraceKind kind, SequencerId sid, SeqState prior,
           std::uint64_t arg0 = 0, std::uint64_t arg1 = 0)
{
    obs::trace(kind, static_cast<std::uint16_t>(sid),
               static_cast<std::uint32_t>(prior), arg0, arg1);
}

} // namespace

using isa::Opcode;
using isa::Scenario;

const char *
seqStateName(SeqState s)
{
    switch (s) {
      case SeqState::Idle: return "idle";
      case SeqState::Running: return "running";
      case SeqState::InKernel: return "in-kernel";
      case SeqState::Suspended: return "suspended";
      case SeqState::WaitingProxy: return "waiting-proxy";
      case SeqState::Halted: return "halted";
    }
    return "?";
}

Sequencer::Sequencer(std::string name, SequencerId sid, bool ring0Capable,
                     EventQueue &eq, mem::PhysicalMemory &pmem,
                     stats::StatGroup *parent)
    : name_(std::move(name)),
      sid_(sid),
      ring0Capable_(ring0Capable),
      eq_(eq),
      runEvent_(*this),
      statGroup_(name_, parent),
      instsRetired_(&statGroup_, "instsRetired", "instructions retired"),
      busyCycles_(&statGroup_, "busyCycles", "cycles executing user code"),
      kernelCycles_(&statGroup_, "kernelCycles",
                    "cycles in modeled Ring-0 episodes"),
      suspendedCycles_(&statGroup_, "suspendedCycles",
                       "cycles suspended by MISP serialization"),
      proxyWaitCycles_(&statGroup_, "proxyWaitCycles",
                       "cycles waiting for proxy execution"),
      signalsReceived_(&statGroup_, "signalsReceived",
                       "ingress inter-sequencer signals"),
      signalsSent_(&statGroup_, "signalsSent",
                   "egress SIGNAL instructions executed"),
      asyncTransfers_(&statGroup_, "asyncTransfers",
                      "YIELD-CONDITIONAL asynchronous control transfers"),
      faultsRaised_(&statGroup_, "faultsRaised", "architectural faults"),
      decodeCacheHits_(&statGroup_, "decodeCacheHits",
                       "instructions dispatched from a live predecoded "
                       "block"),
      decodeCacheMisses_(&statGroup_, "decodeCacheMisses",
                         "decoded-block refills (page switch, "
                         "invalidation, or CR3 change)"),
      mmu_("mmu", pmem, &statGroup_)
{}

Sequencer::~Sequencer()
{
    if (runEvent_.scheduled())
        eq_.deschedule(&runEvent_);
}

void
Sequencer::setSliceLimit(unsigned insts)
{
    MISP_ASSERT(insts > 0);
    sliceLimit_ = insts;
}

void
Sequencer::scheduleRun(Tick when)
{
    if (!runEvent_.scheduled())
        eq_.schedule(&runEvent_, when);
}

void
Sequencer::stopRunEvent()
{
    if (runEvent_.scheduled())
        eq_.deschedule(&runEvent_);
}

void
Sequencer::startAt(VAddr eip, VAddr esp, Word arg)
{
    MISP_ASSERT(state_ == SeqState::Idle || state_ == SeqState::Halted);
    traceShred(obs::TraceKind::ShredStart, sid_, state_, eip, arg);
    ctx_.eip = eip;
    ctx_.sp() = esp;
    ctx_.regs[2] = arg;
    ctx_.inHandler = false;
    ctx_.savedEip = 0;
    state_ = SeqState::Running;
    scheduleRun(eq_.curTick());
}

void
Sequencer::suspend()
{
    switch (state_) {
      case SeqState::Running:
        // Applied at the next slice boundary.
        traceShred(obs::TraceKind::ShredSuspend, sid_, state_);
        suspendRequested_ = true;
        break;
      case SeqState::Idle:
        traceShred(obs::TraceKind::ShredSuspend, sid_, state_);
        preSuspendState_ = SeqState::Idle;
        state_ = SeqState::Suspended;
        waitSince_ = eq_.curTick();
        break;
      case SeqState::Suspended:
      case SeqState::WaitingProxy:
      case SeqState::Halted:
      case SeqState::InKernel:
        // Already stopped (or OMS-only state): nothing to do. A
        // proxy-waiting AMS stays in the proxy protocol.
        break;
    }
}

void
Sequencer::resume(bool retryFault)
{
    Tick now = eq_.curTick();
    switch (state_) {
      case SeqState::Running:
        // Suspension was requested but never took effect before the
        // resume arrived; just cancel the request.
        suspendRequested_ = false;
        break;
      case SeqState::Suspended:
        traceShred(obs::TraceKind::ShredResume, sid_, state_);
        suspendedCycles_ += now - waitSince_;
        suspendRequested_ = false;
        if (preSuspendState_ == SeqState::Idle) {
            state_ = SeqState::Idle;
            dispatchPendingAsync();
        } else {
            state_ = SeqState::Running;
            scheduleRun(now);
        }
        break;
      case SeqState::WaitingProxy:
        MISP_ASSERT(retryFault);
        traceShred(obs::TraceKind::ShredResume, sid_, state_);
        proxyWaitCycles_ += now - waitSince_;
        state_ = SeqState::Running;
        scheduleRun(now);
        break;
      case SeqState::InKernel:
        traceShred(obs::TraceKind::ShredResume, sid_, state_);
        state_ = SeqState::Running;
        scheduleRun(std::max(kernelResumeFloor_, now));
        break;
      case SeqState::Idle:
      case SeqState::Halted:
        panic("%s: resume from state %s", name_.c_str(),
              seqStateName(state_));
    }
}

void
Sequencer::resumeFromSerialization()
{
    if (state_ == SeqState::Suspended) {
        resume();
    } else if (state_ == SeqState::Running && suspendRequested_) {
        suspendRequested_ = false;
    }
}

void
Sequencer::park()
{
    MISP_ASSERT(state_ == SeqState::Running);
    traceShred(obs::TraceKind::ShredPark, sid_, state_);
    state_ = SeqState::Idle;
    // Queued work may immediately restart the sequencer.
    dispatchPendingAsync();
}

void
Sequencer::halt()
{
    traceShred(obs::TraceKind::ShredHalt, sid_, state_);
    stopRunEvent();
    state_ = SeqState::Halted;
}

void
Sequencer::beginProxyWait()
{
    MISP_ASSERT(!ring0Capable_); // only AMSs proxy
    MISP_ASSERT(state_ == SeqState::Running);
    traceShred(obs::TraceKind::ShredProxyWait, sid_, state_);
    state_ = SeqState::WaitingProxy;
    waitSince_ = eq_.curTick();
}

void
Sequencer::enterKernelEpisode()
{
    MISP_ASSERT(ring0Capable_);
    MISP_ASSERT(state_ == SeqState::Running);
    state_ = SeqState::InKernel;
    kernelResumeFloor_ = eq_.curTick();
}

bool
Sequencer::pauseForKernel()
{
    MISP_ASSERT(ring0Capable_);
    if (state_ != SeqState::Running)
        return false;
    // The displaced slice already committed work up to its scheduled
    // re-run tick; remember it so resume() does not double-book time.
    kernelResumeFloor_ =
        runEvent_.scheduled() ? runEvent_.when() : eq_.curTick();
    stopRunEvent();
    state_ = SeqState::InKernel;
    return true;
}

void
Sequencer::restartFromContext(const SequencerContext &ctx)
{
    MISP_ASSERT(state_ == SeqState::Idle);
    ctx_ = ctx;
    state_ = SeqState::Running;
    scheduleRun(eq_.curTick());
}

void
Sequencer::unloadForSwitch()
{
    if (state_ == SeqState::Halted)
        return;
    Tick now = eq_.curTick();
    switch (state_) {
      case SeqState::Suspended:
        suspendedCycles_ += now - waitSince_;
        break;
      case SeqState::WaitingProxy:
        proxyWaitCycles_ += now - waitSince_;
        break;
      default:
        break;
    }
    stopRunEvent();
    suspendRequested_ = false;
    if (!pendingSignals_.empty()) {
        // The dropped payloads belong to the outgoing thread's shreds.
        traceShred(obs::TraceKind::SignalDrop, sid_, state_,
                   pendingSignals_.size());
    }
    pendingSignals_.clear();
    state_ = SeqState::Idle;
}

void
Sequencer::deliverSignal(const SignalPayload &payload)
{
    if (state_ == SeqState::Halted) {
        warn("%s: dropping signal to halted sequencer", name_.c_str());
        traceShred(obs::TraceKind::SignalDrop, sid_, state_, 1);
        return;
    }
    ++signalsReceived_;
    traceShred(obs::TraceKind::SignalDeliver, sid_, state_, payload.eip,
               payload.arg);
    pendingSignals_.push_back(payload);
    if (state_ == SeqState::Idle)
        dispatchPendingAsync();
    // Running sequencers pick it up at the next instruction boundary;
    // suspended ones when resumed.
}

void
Sequencer::deliverProxyRequest(const SignalPayload &payload)
{
    MISP_ASSERT(ring0Capable_);
    if (state_ == SeqState::Halted) {
        warn("%s: dropping proxy request to halted sequencer",
             name_.c_str());
        traceShred(obs::TraceKind::SignalDrop, sid_, state_, 1);
        return;
    }
    ++signalsReceived_;
    traceShred(obs::TraceKind::ProxyDeliver, sid_, state_, payload.arg);
    pendingProxy_.push_back(payload);
    if (state_ == SeqState::Idle)
        dispatchPendingAsync();
}

Cycles
Sequencer::dispatchPendingAsync()
{
    if (ctx_.inHandler)
        return 0;

    if (state_ == SeqState::Idle) {
        if (!pendingProxy_.empty() &&
            ctx_.trigger(Scenario::ProxyRequest) != 0) {
            SignalPayload p = pendingProxy_.front();
            pendingProxy_.pop_front();
            // Transfer out of the idle loop: YRET will re-park.
            ctx_.eip = 0;
            state_ = SeqState::Running;
            asyncTransfer(Scenario::ProxyRequest,
                          ctx_.trigger(Scenario::ProxyRequest), p);
            scheduleRun(eq_.curTick());
            return kAsyncXferCycles;
        }
        if (!pendingSignals_.empty()) {
            SignalPayload p = pendingSignals_.front();
            pendingSignals_.pop_front();
            startAt(p.eip, p.esp, p.arg);
            return 0;
        }
        return 0;
    }

    if (state_ != SeqState::Running)
        return 0;

    if (!pendingProxy_.empty() &&
        ctx_.trigger(Scenario::ProxyRequest) != 0) {
        SignalPayload p = pendingProxy_.front();
        pendingProxy_.pop_front();
        asyncTransfer(Scenario::ProxyRequest,
                      ctx_.trigger(Scenario::ProxyRequest), p);
        return kAsyncXferCycles;
    }
    if (!pendingSignals_.empty() &&
        ctx_.trigger(Scenario::IngressSignal) != 0) {
        SignalPayload p = pendingSignals_.front();
        pendingSignals_.pop_front();
        asyncTransfer(Scenario::IngressSignal,
                      ctx_.trigger(Scenario::IngressSignal), p);
        return kAsyncXferCycles;
    }
    return 0;
}

void
Sequencer::asyncTransfer(Scenario scenario, VAddr handler,
                         const SignalPayload &payload)
{
    MISP_ASSERT(!ctx_.inHandler);
    ++asyncTransfers_;
    ctx_.savedEip = ctx_.eip;
    ctx_.inHandler = true;
    for (unsigned i = 0; i < 4; ++i)
        ctx_.bankedRegs[i] = ctx_.regs[kRegScenario + i];
    ctx_.regs[kRegScenario] = static_cast<Word>(scenario);
    ctx_.regs[kRegPayloadArg] = payload.arg;
    ctx_.regs[kRegPayloadEip] = payload.eip;
    ctx_.regs[kRegPayloadEsp] = payload.esp;
    ctx_.eip = handler;
}

void
Sequencer::runSlice()
{
    if (state_ != SeqState::Running)
        return; // stale event

    Tick start = eq_.curTick();
    Cycles consumed = 0;
    unsigned executed = 0;
    bool stop = false;

    if (suspendRequested_) {
        suspendRequested_ = false;
        preSuspendState_ = SeqState::Running;
        state_ = SeqState::Suspended;
        waitSince_ = start;
        return;
    }

    inSlice_ = true;
    if (engine_ == Engine::Superblock) {
        runSuperblocks(&executed, &consumed);
    } else {
        while (executed < sliceLimit_ && consumed < sliceCycleBudget_ &&
               !stop) {
            consumed += dispatchPendingAsync();
            consumed += executeOne(&stop);
            ++executed;
            if (suspendRequested_)
                break;
        }
    }
    inSlice_ = false;

    if (consumed == 0)
        consumed = 1;
    busyCycles_ += consumed;

    if (state_ == SeqState::Running) {
        if (suspendRequested_) {
            suspendRequested_ = false;
            preSuspendState_ = SeqState::Running;
            state_ = SeqState::Suspended;
            waitSince_ = start + consumed;
        } else {
            scheduleRun(start + consumed);
        }
    }
}

Cycles
Sequencer::handleFaultFromExec(const mem::Fault &fault, bool *stop,
                               bool *advance)
{
    ++faultsRaised_;
    MISP_ASSERT(env_ != nullptr);
    Cycles extra = 0;
    FaultAction action = env_->handleFault(*this, fault, &extra);
    switch (action) {
      case FaultAction::Retry:
        *advance = false;
        *stop = true; // re-sync at a clean slice boundary
        break;
      case FaultAction::Continue:
        *advance = true;
        break;
      case FaultAction::Deferred:
        *advance = false;
        *stop = true;
        MISP_ASSERT(state_ != SeqState::Running);
        break;
      case FaultAction::Kill:
        *advance = false;
        *stop = true;
        halt();
        break;
    }
    return extra;
}

void
Sequencer::setFlagsFromCompare(SWord a, SWord b)
{
    SWord diff;
    bool of = __builtin_sub_overflow(a, b, &diff);
    ctx_.flags.zf = a == b;
    ctx_.flags.sf = diff < 0;
    ctx_.flags.cf =
        static_cast<std::uint64_t>(a) < static_cast<std::uint64_t>(b);
    ctx_.flags.of = of;
}

bool
Sequencer::condHolds(isa::Cond cond) const
{
    const isa::Flags &f = ctx_.flags;
    switch (cond) {
      case isa::Cond::Eq: return f.zf;
      case isa::Cond::Ne: return !f.zf;
      case isa::Cond::Lt: return f.sf != f.of;
      case isa::Cond::Le: return f.zf || (f.sf != f.of);
      case isa::Cond::Gt: return !f.zf && (f.sf == f.of);
      case isa::Cond::Ge: return f.sf == f.of;
      case isa::Cond::Ult: return f.cf;
      case isa::Cond::Uge: return !f.cf;
    }
    return false;
}

void
Sequencer::refillBlock(std::uint64_t vpn, PAddr pa)
{
    ++decodeCacheMisses_;
    mem::AddressSpace *as = mmu_.addressSpace();
    MISP_ASSERT(as != nullptr); // fetch translation just succeeded
    DecodeCache &dc = as->decodeCache();
    const PAddr paBase = pa & ~static_cast<PAddr>(mem::kPageMask);
    DecodedPage *page = dc.find(vpn);
    if (!page || page->paBase != paBase)
        page = dc.decodePage(vpn, paBase);
    block_.page = page;
    block_.vpn = vpn;
    block_.version = page->version;
    block_.asGen = mmu_.addressSpaceGen();
}

Cycles
Sequencer::executeOne(bool *stop)
{
    if (engine_ != Engine::Reference) {
        // Predecoded-block engine: model the fetch translation exactly
        // (same TLB state, counters, and cycles as the reference path),
        // then dispatch straight from the decoded page.
        mem::FetchResult fr =
            mmu_.fetchTranslate(ctx_.eip, ring_, /*fastPath=*/true);
        Cycles cycles = fr.cycles;
        if (fr.fault) {
            bool advance = false;
            cycles += handleFaultFromExec(fr.fault, stop, &advance);
            return cycles;
        }

        const std::uint64_t vpn = mem::pageNumber(ctx_.eip);
        // Validate the cached block: generation first (an address-space
        // switch may have freed the page), then identity and content.
        if (block_.page != nullptr &&
            block_.asGen == mmu_.addressSpaceGen() && block_.vpn == vpn &&
            block_.page->version == block_.version &&
            block_.page->paBase == (fr.pa & ~static_cast<PAddr>(
                                                mem::kPageMask))) {
            ++decodeCacheHits_;
        } else {
            refillBlock(vpn, fr.pa);
        }

        const DecodedSlot &slot =
            block_.page->slots[mem::pageOffset(ctx_.eip) /
                               isa::kInstBytes];
        if (!slot.valid) {
            bool advance = false;
            cycles += handleFaultFromExec(
                mem::Fault::of(mem::FaultKind::InvalidOpcode, ctx_.eip),
                stop, &advance);
            if (advance)
                ctx_.eip += isa::kInstBytes;
            return cycles;
        }
        return executeDecoded(slot.inst, cycles + slot.lat, stop);
    }

    // Reference path: per-instruction fetch + byte-level decode.
    std::uint8_t buf[isa::kInstBytes];
    mem::AccessResult fr = mmu_.fetchInst(ctx_.eip, buf, ring_);
    Cycles cycles = fr.cycles;
    if (fr.fault) {
        bool advance = false;
        cycles += handleFaultFromExec(fr.fault, stop, &advance);
        return cycles;
    }

    isa::Instruction inst;
    if (!isa::decode(buf, &inst)) {
        bool advance = false;
        cycles += handleFaultFromExec(
            mem::Fault::of(mem::FaultKind::InvalidOpcode, ctx_.eip), stop,
            &advance);
        if (advance)
            ctx_.eip += isa::kInstBytes;
        return cycles;
    }

    return executeDecoded(inst, cycles + isa::baseLatency(inst.op), stop);
}

Cycles
Sequencer::executeDecoded(const isa::Instruction &inst, Cycles cycles,
                          bool *stop)
{
    auto &regs = ctx_.regs;
    bool advance = true;

    // Memory access helpers that route faults through the environment.
    bool faulted = false;
    auto memRead = [&](VAddr va, unsigned size, Word *out) {
        mem::AccessResult r = mmu_.read(va, size, ring_);
        cycles += r.cycles;
        if (r.fault) {
            cycles += handleFaultFromExec(r.fault, stop, &advance);
            faulted = true;
            return false;
        }
        *out = r.value;
        return true;
    };
    auto memWrite = [&](VAddr va, Word value, unsigned size) {
        mem::AccessResult r = mmu_.write(va, value, size, ring_);
        cycles += r.cycles;
        if (r.fault) {
            cycles += handleFaultFromExec(r.fault, stop, &advance);
            faulted = true;
            return false;
        }
        return true;
    };
    // Atomic read-modify-write: one translation with write intent.
    auto memRmw = [&](VAddr va, Word *oldOut,
                      auto &&newValue) { // newValue(Word old) -> Word
        PAddr pa = 0;
        mem::AccessResult r =
            mmu_.translate(va, 8, mem::Access::Write, ring_, &pa);
        cycles += r.cycles;
        if (r.fault) {
            cycles += handleFaultFromExec(r.fault, stop, &advance);
            faulted = true;
            return false;
        }
        Word old = mmu_.read(va, 8, ring_).value;
        *oldOut = old;
        mmu_.write(va, newValue(old), 8, ring_);
        return true;
    };

    switch (inst.op) {
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        advance = false;
        *stop = true;
        halt();
        if (env_)
            env_->sequencerHalted(*this);
        break;
      case Opcode::MovI:
        regs[inst.rd] = inst.imm;
        break;
      case Opcode::Mov:
        regs[inst.rd] = regs[inst.rs1];
        break;
      case Opcode::Add:
        regs[inst.rd] = regs[inst.rs1] + regs[inst.rs2];
        break;
      case Opcode::Sub:
        regs[inst.rd] = regs[inst.rs1] - regs[inst.rs2];
        break;
      case Opcode::Mul:
        regs[inst.rd] = regs[inst.rs1] * regs[inst.rs2];
        break;
      case Opcode::Div:
      case Opcode::Rem: {
        if (regs[inst.rs2] == 0) {
            cycles += handleFaultFromExec(
                mem::Fault::of(mem::FaultKind::DivideError, ctx_.eip),
                stop, &advance);
            break;
        }
        SWord a = static_cast<SWord>(regs[inst.rs1]);
        SWord b = static_cast<SWord>(regs[inst.rs2]);
        regs[inst.rd] = static_cast<Word>(
            inst.op == Opcode::Div ? a / b : a % b);
        break;
      }
      case Opcode::And:
        regs[inst.rd] = regs[inst.rs1] & regs[inst.rs2];
        break;
      case Opcode::Or:
        regs[inst.rd] = regs[inst.rs1] | regs[inst.rs2];
        break;
      case Opcode::Xor:
        regs[inst.rd] = regs[inst.rs1] ^ regs[inst.rs2];
        break;
      case Opcode::Shl:
        regs[inst.rd] = regs[inst.rs1] << (regs[inst.rs2] & 63);
        break;
      case Opcode::Shr:
        regs[inst.rd] = regs[inst.rs1] >> (regs[inst.rs2] & 63);
        break;
      case Opcode::Sar:
        regs[inst.rd] = static_cast<Word>(
            static_cast<SWord>(regs[inst.rs1]) >> (regs[inst.rs2] & 63));
        break;
      case Opcode::AddI:
        regs[inst.rd] = regs[inst.rs1] + inst.imm;
        break;
      case Opcode::SubI:
        regs[inst.rd] = regs[inst.rs1] - inst.imm;
        break;
      case Opcode::MulI:
        regs[inst.rd] = regs[inst.rs1] * inst.imm;
        break;
      case Opcode::DivI: {
        if (inst.imm == 0) {
            cycles += handleFaultFromExec(
                mem::Fault::of(mem::FaultKind::DivideError, ctx_.eip),
                stop, &advance);
            break;
        }
        regs[inst.rd] = static_cast<Word>(
            static_cast<SWord>(regs[inst.rs1]) /
            static_cast<SWord>(inst.imm));
        break;
      }
      case Opcode::AndI:
        regs[inst.rd] = regs[inst.rs1] & inst.imm;
        break;
      case Opcode::OrI:
        regs[inst.rd] = regs[inst.rs1] | inst.imm;
        break;
      case Opcode::XorI:
        regs[inst.rd] = regs[inst.rs1] ^ inst.imm;
        break;
      case Opcode::ShlI:
        regs[inst.rd] = regs[inst.rs1] << (inst.imm & 63);
        break;
      case Opcode::ShrI:
        regs[inst.rd] = regs[inst.rs1] >> (inst.imm & 63);
        break;
      case Opcode::Cmp:
        setFlagsFromCompare(static_cast<SWord>(regs[inst.rs1]),
                            static_cast<SWord>(regs[inst.rs2]));
        break;
      case Opcode::CmpI:
        setFlagsFromCompare(static_cast<SWord>(regs[inst.rs1]),
                            static_cast<SWord>(inst.imm));
        break;
      case Opcode::Ld: {
        Word v = 0;
        if (memRead(regs[inst.rs1] + inst.imm, inst.sub, &v))
            regs[inst.rd] = v;
        break;
      }
      case Opcode::St:
        memWrite(regs[inst.rs1] + inst.imm, regs[inst.rs2], inst.sub);
        break;
      case Opcode::Push: {
        Word newSp = ctx_.sp() - 8;
        if (memWrite(newSp, regs[inst.rs1], 8))
            ctx_.sp() = newSp;
        break;
      }
      case Opcode::Pop: {
        Word v = 0;
        if (memRead(ctx_.sp(), 8, &v)) {
            regs[inst.rd] = v;
            ctx_.sp() += 8;
        }
        break;
      }
      case Opcode::Lea:
        regs[inst.rd] = regs[inst.rs1] + inst.imm;
        break;
      case Opcode::Jmp:
        ctx_.eip = inst.imm;
        advance = false;
        break;
      case Opcode::JmpR:
        ctx_.eip = regs[inst.rs1];
        advance = false;
        break;
      case Opcode::Jcc:
        if (condHolds(static_cast<isa::Cond>(inst.sub))) {
            ctx_.eip = inst.imm;
            advance = false;
        }
        break;
      case Opcode::Call: {
        Word newSp = ctx_.sp() - 8;
        if (memWrite(newSp, ctx_.eip + isa::kInstBytes, 8)) {
            ctx_.sp() = newSp;
            ctx_.eip = inst.imm;
            advance = false;
        }
        break;
      }
      case Opcode::CallR: {
        VAddr target = regs[inst.rs1];
        Word newSp = ctx_.sp() - 8;
        if (memWrite(newSp, ctx_.eip + isa::kInstBytes, 8)) {
            ctx_.sp() = newSp;
            ctx_.eip = target;
            advance = false;
        }
        break;
      }
      case Opcode::Ret: {
        Word v = 0;
        if (memRead(ctx_.sp(), 8, &v)) {
            ctx_.sp() += 8;
            ctx_.eip = v;
            advance = false;
        }
        break;
      }
      case Opcode::Xchg: {
        Word old = 0;
        Word mine = regs[inst.rd];
        if (memRmw(regs[inst.rs1], &old, [&](Word) { return mine; }))
            regs[inst.rd] = old;
        break;
      }
      case Opcode::CmpXchg: {
        Word old = 0;
        Word expected = regs[inst.rd];
        Word desired = regs[inst.rs2];
        bool swapped = false;
        if (memRmw(regs[inst.rs1], &old, [&](Word cur) {
                if (cur == expected) {
                    swapped = true;
                    return desired;
                }
                return cur;
            })) {
            ctx_.flags.zf = swapped;
            if (!swapped)
                regs[inst.rd] = old;
        }
        break;
      }
      case Opcode::FetchAdd: {
        Word old = 0;
        Word addend = regs[inst.rs2];
        if (memRmw(regs[inst.rs1], &old,
                   [&](Word cur) { return cur + addend; }))
            regs[inst.rd] = old;
        break;
      }
      case Opcode::Pause:
        break;
      case Opcode::Compute: {
        Cycles burn = inst.imm;
        if (inst.rs1 != 0)
            burn += regs[inst.rs1];
        cycles += burn;
        break;
      }
      case Opcode::Syscall: {
        cycles += handleFaultFromExec(mem::Fault::syscall(inst.imm), stop,
                                      &advance);
        break;
      }
      case Opcode::RtCall: {
        MISP_ASSERT(env_ != nullptr);
        // Advance first so services that redirect EIP (shred switches)
        // see the post-call continuation.
        ctx_.eip += isa::kInstBytes;
        advance = false;
        cycles += env_->handleRtCall(*this, inst.imm);
        if (state_ != SeqState::Running)
            *stop = true;
        break;
      }
      case Opcode::SeqId:
        regs[inst.rd] = sid_;
        break;
      case Opcode::NumSeq:
        regs[inst.rd] = env_ ? env_->numSequencers() : 1;
        break;
      case Opcode::RdTick:
        regs[inst.rd] = eq_.curTick();
        break;
      case Opcode::Signal: {
        MISP_ASSERT(env_ != nullptr);
        ++signalsSent_;
        SignalPayload payload;
        payload.eip = regs[inst.rs2];
        payload.esp = regs[inst.rd];
        payload.arg = regs[2];
        env_->signalInstruction(
            *this, static_cast<SequencerId>(regs[inst.rs1]), payload);
        break;
      }
      case Opcode::Semonitor:
        ctx_.setTrigger(static_cast<Scenario>(inst.sub), inst.imm);
        break;
      case Opcode::Yret: {
        if (!ctx_.inHandler) {
            cycles += handleFaultFromExec(
                mem::Fault::of(mem::FaultKind::GeneralProtection,
                               ctx_.eip),
                stop, &advance);
            break;
        }
        ctx_.inHandler = false;
        advance = false;
        for (unsigned i = 0; i < 4; ++i)
            ctx_.regs[kRegScenario + i] = ctx_.bankedRegs[i];
        if (ctx_.savedEip == 0) {
            // The transfer interrupted an idle sequencer: go back to
            // idle (a queued payload may immediately restart us).
            *stop = true;
            park();
        } else {
            ctx_.eip = ctx_.savedEip;
            ctx_.savedEip = 0;
        }
        break;
      }
      case Opcode::NumOpcodes:
        panic("decoded NumOpcodes");
    }

    if (!faulted || advance) {
        // Retired (faulting instructions that will retry don't count).
        if (!faulted)
            ++instsRetired_;
    }
    if (advance)
        ctx_.eip += isa::kInstBytes;
    return cycles;
}

void
Sequencer::execInline(const isa::Instruction &inst, Cycles *consumed)
{
    auto &regs = ctx_.regs;
    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Pause:
        break;
      case Opcode::MovI:
        regs[inst.rd] = inst.imm;
        break;
      case Opcode::Mov:
        regs[inst.rd] = regs[inst.rs1];
        break;
      case Opcode::Add:
        regs[inst.rd] = regs[inst.rs1] + regs[inst.rs2];
        break;
      case Opcode::Sub:
        regs[inst.rd] = regs[inst.rs1] - regs[inst.rs2];
        break;
      case Opcode::Mul:
        regs[inst.rd] = regs[inst.rs1] * regs[inst.rs2];
        break;
      case Opcode::And:
        regs[inst.rd] = regs[inst.rs1] & regs[inst.rs2];
        break;
      case Opcode::Or:
        regs[inst.rd] = regs[inst.rs1] | regs[inst.rs2];
        break;
      case Opcode::Xor:
        regs[inst.rd] = regs[inst.rs1] ^ regs[inst.rs2];
        break;
      case Opcode::Shl:
        regs[inst.rd] = regs[inst.rs1] << (regs[inst.rs2] & 63);
        break;
      case Opcode::Shr:
        regs[inst.rd] = regs[inst.rs1] >> (regs[inst.rs2] & 63);
        break;
      case Opcode::Sar:
        regs[inst.rd] = static_cast<Word>(
            static_cast<SWord>(regs[inst.rs1]) >> (regs[inst.rs2] & 63));
        break;
      case Opcode::AddI:
        regs[inst.rd] = regs[inst.rs1] + inst.imm;
        break;
      case Opcode::SubI:
        regs[inst.rd] = regs[inst.rs1] - inst.imm;
        break;
      case Opcode::MulI:
        regs[inst.rd] = regs[inst.rs1] * inst.imm;
        break;
      case Opcode::AndI:
        regs[inst.rd] = regs[inst.rs1] & inst.imm;
        break;
      case Opcode::OrI:
        regs[inst.rd] = regs[inst.rs1] | inst.imm;
        break;
      case Opcode::XorI:
        regs[inst.rd] = regs[inst.rs1] ^ inst.imm;
        break;
      case Opcode::ShlI:
        regs[inst.rd] = regs[inst.rs1] << (inst.imm & 63);
        break;
      case Opcode::ShrI:
        regs[inst.rd] = regs[inst.rs1] >> (inst.imm & 63);
        break;
      case Opcode::Cmp:
        setFlagsFromCompare(static_cast<SWord>(regs[inst.rs1]),
                            static_cast<SWord>(regs[inst.rs2]));
        break;
      case Opcode::CmpI:
        setFlagsFromCompare(static_cast<SWord>(regs[inst.rs1]),
                            static_cast<SWord>(inst.imm));
        break;
      case Opcode::Lea:
        regs[inst.rd] = regs[inst.rs1] + inst.imm;
        break;
      case Opcode::Compute: {
        Cycles burn = inst.imm;
        if (inst.rs1 != 0)
            burn += regs[inst.rs1];
        *consumed += burn;
        break;
      }
      case Opcode::SeqId:
        regs[inst.rd] = sid_;
        break;
      case Opcode::NumSeq:
        regs[inst.rd] = env_ ? env_->numSequencers() : 1;
        break;
      case Opcode::RdTick:
        regs[inst.rd] = eq_.curTick();
        break;
      default:
        panic("%s: non-inline opcode in inline dispatch", name_.c_str());
    }
}

void
Sequencer::runSuperblocks(unsigned *executedIo, Cycles *consumedIo)
{
    unsigned executed = *executedIo;
    Cycles consumed = *consumedIo;
    bool stop = false;
    // Hoisted member loads: nothing in a slice changes these, and the
    // fast loop checks them per instruction.
    const unsigned sliceLimit = sliceLimit_;
    const Cycles sliceBudget = sliceCycleBudget_;

    // Block-local accumulators: per-instruction stat updates are folded
    // locally and committed in one shot at every slow-path boundary, so
    // externally observable state — the TLB's reference bits included —
    // is exact whenever the environment or an eviction scan could look.
    std::uint64_t retired = 0;
    std::uint64_t hits = 0;
    std::uint64_t replays = 0;
    std::uint64_t dataReplays = 0;
    auto commit = [&] {
        if (replays != 0) {
            mmu_.commitFetchReplays(replays);
            replays = 0;
        }
        if (dataReplays != 0) {
            mmu_.commitDataReplays(dataReplays);
            dataReplays = 0;
        }
        if (retired != 0) {
            instsRetired_ += retired;
            retired = 0;
        }
        if (hits != 0) {
            decodeCacheHits_ += hits;
            hits = 0;
        }
    };
    auto slotOf = [](VAddr va) {
        return static_cast<std::uint16_t>(mem::pageOffset(va) /
                                          isa::kInstBytes);
    };

    // Chained-dispatch state. The current superblock is held by index,
    // never by pointer: building a successor may grow the block vector.
    DecodedPage *page = nullptr; // nullptr = resolve before dispatching
    std::uint32_t sbi = 0;
    std::uint16_t cur = 0;
    std::uint16_t term = 0;
    // Whether the modeled fetch of the instruction at ctx_.eip has
    // already been charged (true right after a resolve).
    bool fetchPaid = false;

    // Cross-page chain handoff: a block exit stashes its link here; the
    // next resolve consumes it (and writes the resolved successor back
    // into the exiting block). Never outlives one loop iteration, so the
    // raw page pointers cannot dangle.
    SbLink hint{};
    DecodedPage *linkFrom = nullptr;
    std::uint32_t linkFromSb = 0;
    std::uint64_t linkFromVer = 0;
    bool linkTaken = false;

    while (executed < sliceLimit && consumed < sliceBudget && !stop) {
        // Exactly one guest instruction is dispatched per iteration, so
        // the slice conditions and the async-delivery point run at the
        // same per-instruction boundaries as the generic loop.
        if (!pendingSignals_.empty() || !pendingProxy_.empty()) {
            commit();
            Cycles dc = dispatchPendingAsync();
            if (dc != 0) {
                // An asynchronous transfer redirected EIP.
                consumed += dc;
                page = nullptr;
                fetchPaid = false;
                hint = SbLink{};
                linkFrom = nullptr;
            }
        }

        if (page == nullptr) {
            // ---- resolve: page + superblock for ctx_.eip ------------
            commit(); // a fetch miss may insert into the TLB
            mem::FetchResult fr =
                mmu_.fetchTranslate(ctx_.eip, ring_, /*fastPath=*/true);
            consumed += fr.cycles;
            if (fr.fault) {
                hint = SbLink{};
                linkFrom = nullptr; // the handler may free decoded pages
                bool advance = false;
                consumed +=
                    handleFaultFromExec(fr.fault, &stop, &advance);
                ++executed;
                if (suspendRequested_)
                    break;
                continue;
            }
            const std::uint64_t vpn = mem::pageNumber(ctx_.eip);
            const PAddr paBase =
                fr.pa & ~static_cast<PAddr>(mem::kPageMask);
            if (block_.page != nullptr &&
                block_.asGen == mmu_.addressSpaceGen() &&
                block_.vpn == vpn &&
                block_.page->version == block_.version &&
                block_.page->paBase == paBase) {
                ++hits;
            } else if (hint.page != nullptr &&
                       hint.asGen == mmu_.addressSpaceGen() &&
                       hint.page->vpn == vpn &&
                       hint.page->version == hint.version &&
                       hint.page->paBase == paBase) {
                // Threaded dispatch: the exiting block's link is live —
                // re-point block_ without the page-map probe. The
                // generation check runs first: a link can only ever
                // name pages of this address space's own decode cache,
                // and a stale-generation link is never dereferenced.
                block_.page = hint.page;
                block_.vpn = vpn;
                block_.version = hint.version;
                block_.asGen = hint.asGen;
                ++hits;
            } else {
                refillBlock(vpn, fr.pa);
            }
            page = block_.page;
            cur = slotOf(ctx_.eip);
            sbi = superblockAt(*page, cur);
            term = page->sbs->blocks[sbi].term;
            fetchPaid = true;
            // Resolve the exiting block's link for its next traversal.
            if (linkFrom != nullptr &&
                linkFrom->version == linkFromVer) {
                SbLink l;
                l.page = page;
                l.sb = sbi;
                l.version = page->version;
                l.asGen = block_.asGen;
                l.paBase = page->paBase;
                Superblock &from = linkFrom->sbs->blocks[linkFromSb];
                (linkTaken ? from.taken : from.fall) = l;
            }
            hint = SbLink{};
            linkFrom = nullptr;
        }

        // ---- charge the modeled fetch for this instruction ----------
        if (!fetchPaid) {
            // Chained invariant: the one-entry last-translation cache
            // still covers this page (re-established after every slow
            // dispatch below), so the hit is replayed and batched.
            MISP_ASSERT(mmu_.fetchReplayable(ctx_.eip, ring_));
            ++replays;
            consumed += mem::Mmu::kAccessCycles;
            ++hits;
        }
        fetchPaid = false;

        // ---- dispatch instructions ----------------------------------
        // Fast loop: while this sequencer's async queues are empty they
        // stay empty for the rest of the slice (enqueues only arrive
        // through Slow-class dispatch, fault handlers, or other
        // sequencers between slices), so the queue probe, the resolve
        // check, and the fetch-paid bookkeeping are hoisted out of the
        // per-instruction path — only the slice conditions remain live.
        // Inline ops, replay-covered aligned loads/stores, and branch
        // terminators all dispatch here; the first instruction that
        // needs more breaks out to the generic paths below with its
        // fetch already charged.
        if (pendingSignals_.empty() && pendingProxy_.empty()) {
            bool first = true;
            // EIP shadows in a local for the whole loop (nothing
            // dispatched here reads ctx_.eip) and is stored back once
            // on exit.
            VAddr eip = ctx_.eip;
            for (;;) {
                if (!first && (executed >= sliceLimit ||
                               consumed >= sliceBudget))
                    break;
                if (cur < term) {
                    const DecodedSlot &s = page->slots[cur];
                    if (s.cls == OpClass::Inline) {
                        if (!first) {
                            // Batched fetch replay (the chained
                            // invariant: nothing in this loop disturbs
                            // the last-translation caches).
                            ++replays;
                            consumed += mem::Mmu::kAccessCycles;
                            ++hits;
                        }
                        first = false;
                        consumed += s.lat;
                        execInline(s.inst, &consumed);
                        eip += isa::kInstBytes;
                        ++cur;
                        ++executed;
                        ++retired;
                        if (cur == DecodedPage::kSlots) {
                            // Ran off the page edge: chain onward.
                            Superblock &blk = page->sbs->blocks[sbi];
                            hint = blk.taken;
                            linkFrom = page;
                            linkFromSb = sbi;
                            linkFromVer = page->version;
                            linkTaken = true;
                            page = nullptr;
                            break;
                        }
                        continue;
                    }
                    if (s.cls == OpClass::Mem &&
                        (s.inst.op == Opcode::Ld ||
                         s.inst.op == Opcode::St)) {
                        // Aligned load/store covered by the data-side
                        // last-translation cache: replayed in place —
                        // same modeled cycles and TLB effects as the
                        // full translate (the hit is batched like the
                        // fetch replays), and no fault is possible:
                        // alignment is checked here and the cached
                        // entry already passed the ring/write
                        // permission checks under an unchanged TLB
                        // stamp.
                        const isa::Instruction &in = s.inst;
                        const bool isSt = in.op == Opcode::St;
                        const VAddr va = ctx_.regs[in.rs1] + in.imm;
                        const unsigned size = in.sub;
                        if ((va & (size - 1)) == 0 &&
                            mmu_.dataReplayable(va, isSt, ring_)) {
                            if (!first) {
                                ++replays;
                                consumed += mem::Mmu::kAccessCycles;
                                ++hits;
                            }
                            first = false;
                            consumed += s.lat + mem::Mmu::kAccessCycles;
                            ++dataReplays;
                            if (isSt)
                                mmu_.dataReplayWrite(
                                    va, ctx_.regs[in.rs2], size);
                            else
                                ctx_.regs[in.rd] =
                                    mmu_.dataReplayRead(va, size);
                            eip += isa::kInstBytes;
                            ++cur;
                            ++executed;
                            ++retired;
                            // The store may have hit this very code
                            // page (SMC): the invalidation bumped its
                            // version, so the chain breaks before the
                            // next dispatch.
                            if (isSt &&
                                page->version != block_.version) {
                                page = nullptr;
                                break;
                            }
                            if (cur == DecodedPage::kSlots) {
                                Superblock &blk =
                                    page->sbs->blocks[sbi];
                                hint = blk.taken;
                                linkFrom = page;
                                linkFromSb = sbi;
                                linkFromVer = page->version;
                                linkTaken = true;
                                page = nullptr;
                                break;
                            }
                            continue;
                        }
                    }
                    break; // generic dispatch below
                }
                if (cur != term || term == DecodedPage::kSlots)
                    break; // off-block EIP or page-edge: generic paths
                const DecodedSlot &t = page->slots[term];
                if (t.cls != OpClass::Branch)
                    break; // Slow / Invalid terminator: generic paths
                if (!first) {
                    ++replays;
                    consumed += mem::Mmu::kAccessCycles;
                    ++hits;
                }
                first = false;
                // Pure control transfer, executed inline; its exits
                // carry the chain links.
                consumed += t.lat;
                bool taken = true;
                VAddr target = t.inst.imm;
                if (t.inst.op == Opcode::JmpR)
                    target = ctx_.regs[t.inst.rs1];
                else if (t.inst.op == Opcode::Jcc)
                    taken = condHolds(static_cast<isa::Cond>(t.inst.sub));
                const VAddr neip =
                    taken ? target : eip + isa::kInstBytes;
                eip = neip;
                ++executed;
                ++retired;
                if (mem::pageNumber(neip) == page->vpn &&
                    (neip & (isa::kInstBytes - 1)) == 0) {
                    // Same-page chain: the per-page block table is the
                    // link; the fetch stays on the batched replay
                    // path.
                    cur = slotOf(neip);
                    sbi = superblockAt(*page, cur);
                    term = page->sbs->blocks[sbi].term;
                    continue;
                }
                if (t.inst.op != Opcode::JmpR) {
                    // Static exit: hand the link to the resolve. An
                    // indirect branch's target may differ every
                    // traversal, so it is never linked.
                    Superblock &blk = page->sbs->blocks[sbi];
                    hint = taken ? blk.taken : blk.fall;
                    linkFrom = page;
                    linkFromSb = sbi;
                    linkFromVer = page->version;
                    linkTaken = taken;
                }
                page = nullptr;
                break;
            }
            ctx_.eip = eip;
            if (!first)
                continue; // the outer head re-runs the boundary work
            // Nothing dispatched: the current instruction needs a
            // generic path (its fetch is already charged above).
        }

        // ---- generic one-instruction paths --------------------------
        if (cur < term) {
            const DecodedSlot &s = page->slots[cur];
            if (s.cls == OpClass::Inline) {
                // Single step: async work is pending, so the queue
                // probe must run between instructions.
                consumed += s.lat;
                execInline(s.inst, &consumed);
                ctx_.eip += isa::kInstBytes;
                ++cur;
                ++executed;
                ++retired;
                if (cur == DecodedPage::kSlots) {
                    Superblock &blk = page->sbs->blocks[sbi];
                    hint = blk.taken;
                    linkFrom = page;
                    linkFromSb = sbi;
                    linkFromVer = page->version;
                    linkTaken = true;
                    page = nullptr;
                }
                continue;
            }
            // OpClass::Mem through the generic path.
            commit();
            consumed += executeDecoded(s.inst, s.lat, &stop);
            ++executed;
            if (suspendRequested_)
                break;
            // Continue the chain only if nothing was disturbed: same
            // live block (an SMC store to this page bumps its version,
            // a CR3 switch bumps the generation, a serialization purge
            // drops block_), EIP still on this page, and the fetch
            // fast path still replayable (the access may have walked
            // and inserted a TLB entry).
            if (!stop && block_.page == page &&
                block_.asGen == mmu_.addressSpaceGen() &&
                page->version == block_.version &&
                mem::pageNumber(ctx_.eip) == page->vpn &&
                mmu_.fetchReplayable(ctx_.eip, ring_)) {
                cur = slotOf(ctx_.eip);
            } else {
                page = nullptr;
            }
            continue;
        }

        if (term == DecodedPage::kSlots) {
            // Unreachable by construction (the page-edge exit is taken
            // when the last body instruction retires); fall back to a
            // full resolve rather than trusting the chain.
            page = nullptr;
            continue;
        }

        const DecodedSlot &s = page->slots[cur];
        if (s.cls == OpClass::Branch) {
            // Pure control transfer, executed inline; its exits carry
            // the chain links.
            consumed += s.lat;
            bool taken = true;
            VAddr target = s.inst.imm;
            if (s.inst.op == Opcode::JmpR)
                target = ctx_.regs[s.inst.rs1];
            else if (s.inst.op == Opcode::Jcc)
                taken = condHolds(static_cast<isa::Cond>(s.inst.sub));
            const VAddr neip =
                taken ? target : ctx_.eip + isa::kInstBytes;
            ctx_.eip = neip;
            ++executed;
            ++retired;
            if (mem::pageNumber(neip) == page->vpn &&
                (neip & (isa::kInstBytes - 1)) == 0) {
                // Same-page chain: the per-page block table is the
                // link; the fetch stays on the batched replay path.
                cur = slotOf(neip);
                sbi = superblockAt(*page, cur);
                term = page->sbs->blocks[sbi].term;
            } else {
                if (s.inst.op != Opcode::JmpR) {
                    // Static exit: hand the link to the resolve. An
                    // indirect branch's target may differ every
                    // traversal, so it is never linked.
                    Superblock &blk = page->sbs->blocks[sbi];
                    hint = taken ? blk.taken : blk.fall;
                    linkFrom = page;
                    linkFromSb = sbi;
                    linkFromVer = page->version;
                    linkTaken = taken;
                }
                page = nullptr;
            }
            continue;
        }

        if (s.cls == OpClass::Slow) {
            // Environment / serialization point: generic dispatch, then
            // a full re-resolve (EIP, the address space, and the block
            // may all have changed under us).
            commit();
            consumed += executeDecoded(s.inst, s.lat, &stop);
            ++executed;
            page = nullptr;
            if (suspendRequested_)
                break;
            continue;
        }

        // OpClass::Invalid: decode failed at this slot.
        commit();
        {
            bool advance = false;
            consumed += handleFaultFromExec(
                mem::Fault::of(mem::FaultKind::InvalidOpcode, ctx_.eip),
                &stop, &advance);
            if (advance)
                ctx_.eip += isa::kInstBytes;
        }
        ++executed;
        page = nullptr;
        if (suspendRequested_)
            break;
    }

    commit();
    *executedIo = executed;
    *consumedIo = consumed;
}

void
Sequencer::snapSave(snap::Serializer &s) const
{
    snap::putContext(s, ctx_);
    s.u8(static_cast<std::uint8_t>(state_));
    s.u8(static_cast<std::uint8_t>(preSuspendState_));
    s.b(suspendRequested_);
    s.u64(pendingSignals_.size());
    for (const SignalPayload &p : pendingSignals_)
        snap::putPayload(s, p);
    s.u64(pendingProxy_.size());
    for (const SignalPayload &p : pendingProxy_)
        snap::putPayload(s, p);
    s.u64(waitSince_);
    s.u64(kernelResumeFloor_);
    mmu_.snapSave(s);
    snap::putEventSchedule(s, &runEvent_);
}

void
Sequencer::snapRestore(snap::Deserializer &d)
{
    ctx_ = snap::getContext(d);
    state_ = static_cast<SeqState>(d.u8());
    preSuspendState_ = static_cast<SeqState>(d.u8());
    suspendRequested_ = d.b();
    pendingSignals_.resize(d.u64());
    for (SignalPayload &p : pendingSignals_)
        p = snap::getPayload(d);
    pendingProxy_.resize(d.u64());
    for (SignalPayload &p : pendingProxy_)
        p = snap::getPayload(d);
    waitSince_ = d.u64();
    kernelResumeFloor_ = d.u64();
    mmu_.snapRestore(d);
    block_ = BlockRef{};
    snap::getEventSchedule(d, eq_, &runEvent_);
}

double
Sequencer::utilization(Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return (busyCycles_.value() + kernelCycles_.value()) /
           static_cast<double>(elapsed);
}

} // namespace misp::cpu
