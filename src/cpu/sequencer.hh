/**
 * @file
 * The sequencer: MISP's new category of architectural resource (§2.1).
 *
 * "A sequencer corresponds to a hardware thread context that is capable
 * of fetching and executing one stream of instructions." This class is
 * the execution engine for both sequencer flavours:
 *
 *  - the OMS (full ISA, Ring 0 and Ring 3), and
 *  - an AMS (Ring-3-only subset; any Ring-0 need becomes a proxy
 *    execution trigger).
 *
 * A Sequencer executes guest MISA instructions in slices on the event
 * queue. Everything that requires coordination beyond one instruction
 * stream — faults, syscalls, runtime calls, SIGNAL delivery, suspension —
 * is delegated to a SequencerEnv implemented by the owning processor
 * model (MispProcessor or SmpSystem).
 */

#ifndef MISP_CPU_SEQUENCER_HH
#define MISP_CPU_SEQUENCER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <string>

#include "cpu/decode_cache.hh"
#include "cpu/engine.hh"
#include "isa/isa.hh"
#include "mem/mmu.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace misp::cpu {

/** Architectural register state of one sequencer, the unit that proxy
 *  execution saves, impersonates, and restores (§2.5), and that the OS
 *  aggregates on a thread context switch (§2.2). */
struct SequencerContext {
    std::array<Word, isa::kNumRegs> regs{};
    VAddr eip = 0;
    isa::Flags flags;
    /** YIELD-CONDITIONAL trigger-response table: scenario -> handler EIP
     *  (0 = unregistered). Part of the architectural state. */
    std::array<VAddr, static_cast<std::size_t>(
                          isa::Scenario::NumScenarios)> triggers{};
    /** EIP saved by an asynchronous control transfer; YRET resumes it. */
    VAddr savedEip = 0;
    /** Whether the sequencer is inside an asynchronous handler. */
    bool inHandler = false;
    /** Payload registers (r10..r13) of the interrupted stream, banked by
     *  the asynchronous transfer and restored by YRET so fly-weight
     *  handlers are transparent to the interrupted shred. */
    std::array<Word, 4> bankedRegs{};

    Word &sp() { return regs[isa::kRegSp]; }
    Word sp() const { return regs[isa::kRegSp]; }

    VAddr
    trigger(isa::Scenario sc) const
    {
        return triggers[static_cast<std::size_t>(sc)];
    }

    void
    setTrigger(isa::Scenario sc, VAddr handler)
    {
        triggers[static_cast<std::size_t>(sc)] = handler;
    }

    /** Modeled size of the context save area in guest memory; determines
     *  the cost of proxy/context-switch state transfers. */
    static constexpr std::uint64_t kSaveBytes =
        isa::kNumRegs * 8 + 8 /*eip*/ + 8 /*flags*/ + 8 * 4 /*triggers+*/;
};

/** Execution state of a sequencer. */
enum class SeqState : std::uint8_t {
    Idle,         ///< no instruction stream (AMS awaiting a SIGNAL)
    Running,      ///< executing user instructions
    InKernel,     ///< (OMS/SMP only) occupied by a modeled Ring-0 episode
    Suspended,    ///< paused by MISP serialization (OMS in Ring 0)
    WaitingProxy, ///< (AMS) faulted; waiting for OMS proxy completion
    Halted,       ///< terminal
};

const char *seqStateName(SeqState s);

/** A pending inter-sequencer signal payload: the shred continuation. */
struct SignalPayload {
    VAddr eip = 0;
    VAddr esp = 0;
    Word arg = 0; ///< optional data word (delivered in r11 / start r2)
};

class Sequencer;

/** What the environment tells the sequencer to do after a fault. */
enum class FaultAction : std::uint8_t {
    Retry,    ///< fault fixed synchronously; re-execute the instruction
    Continue, ///< fault consumed (e.g. syscall done); advance past it
    Deferred, ///< env took ownership; sequencer stops until resumed
    Kill,     ///< unrecoverable; halt the sequencer
};

/** Environment interface implemented by the owning processor model. */
class SequencerEnv
{
  public:
    virtual ~SequencerEnv() = default;

    /** A fault (page fault, syscall, GP, ...) was raised mid-execution.
     *  May charge cycles via @p extraCycles (applied before a retry or
     *  continue). */
    virtual FaultAction handleFault(Sequencer &seq, const mem::Fault &fault,
                                    Cycles *extraCycles) = 0;

    /** RTCALL: user-level runtime service request. The handler may edit
     *  the context (return values in r0), park or redirect the
     *  sequencer. @return cycles charged. */
    virtual Cycles handleRtCall(Sequencer &seq, Word service) = 0;

    /** SIGNAL instruction executed: route the continuation to @p sid. */
    virtual void signalInstruction(Sequencer &seq, SequencerId sid,
                                   const SignalPayload &payload) = 0;

    /** HALT executed. */
    virtual void sequencerHalted(Sequencer &seq) = 0;

    /** NUMSEQ value for this sequencer's processor. */
    virtual unsigned numSequencers() const = 0;
};

/**
 * One hardware thread context, event-driven.
 *
 * Asynchronous-transfer register convention (the modeled analog of the
 * paper's "fly-weight control transfer", §2.4): on entry to a handler,
 *   r10 = scenario id, r11 = payload arg, r12 = payload EIP,
 *   r13 = payload ESP.
 * On a startAt() continuation the payload arg arrives in r2.
 */
class Sequencer : public snap::Saveable
{
  public:
    /** Registers used to pass async-transfer payloads to handlers. */
    static constexpr unsigned kRegScenario = 10;
    static constexpr unsigned kRegPayloadArg = 11;
    static constexpr unsigned kRegPayloadEip = 12;
    static constexpr unsigned kRegPayloadEsp = 13;

    /** Modeled cost of the fly-weight asynchronous control transfer. */
    static constexpr Cycles kAsyncXferCycles = 10;

    /** Modeled cost of one context save or restore to/from memory. */
    static constexpr Cycles kContextXferCycles = 150;

    Sequencer(std::string name, SequencerId sid, bool ring0Capable,
              EventQueue &eq, mem::PhysicalMemory &pmem,
              stats::StatGroup *parent);

    ~Sequencer();

    Sequencer(const Sequencer &) = delete;
    Sequencer &operator=(const Sequencer &) = delete;

    // ---- identity ----------------------------------------------------
    const std::string &name() const { return name_; }
    SequencerId sid() const { return sid_; }
    /** True for the OMS (full ISA, all rings); false for an AMS. */
    bool ring0Capable() const { return ring0Capable_; }

    void setEnv(SequencerEnv *env) { env_ = env; }
    SequencerEnv *env() const { return env_; }

    mem::Mmu &mmu() { return mmu_; }
    SequencerContext &context() { return ctx_; }
    const SequencerContext &context() const { return ctx_; }
    EventQueue &eventQueue() { return eq_; }

    // ---- state machine ------------------------------------------------
    SeqState state() const { return state_; }
    bool idle() const { return state_ == SeqState::Idle; }
    bool running() const { return state_ == SeqState::Running; }
    bool halted() const { return state_ == SeqState::Halted; }

    /** True if the sequencer has no instruction stream: Idle now, or
     *  Suspended-while-idle (it will return to Idle when the
     *  serialization window ends). Such a sequencer starts executing a
     *  delivered SIGNAL continuation as soon as it is able — the check
     *  runtimes use when looking for a sequencer to wake. */
    bool
    idleOrSuspendedIdle() const
    {
        return state_ == SeqState::Idle ||
               (state_ == SeqState::Suspended &&
                preSuspendState_ == SeqState::Idle);
    }

    /** Begin executing at a continuation (initial start, or signal to an
     *  idle sequencer). */
    void startAt(VAddr eip, VAddr esp, Word arg = 0);

    /** Request suspension (MISP serialization). Takes effect at the next
     *  slice boundary; time suspended is accounted separately. */
    void suspend();

    /** Resume a Suspended / WaitingProxy / InKernel sequencer.
     *  @param retryFault re-execute the instruction that faulted
     *  (deferred-fault completion). */
    void resume(bool retryFault = false);

    /** End-of-serialization resume: wakes a Suspended sequencer OR
     *  cancels a suspension that has not yet taken effect at a slice
     *  boundary (a real race when the signal latency is small compared
     *  to a slice). No-op for all other states. */
    void resumeFromSerialization();

    /** Park the sequencer: stop fetching and go Idle (runtime blocked
     *  the current shred / AMS awaits work). Queued signals will start
     *  it again. */
    void park();

    /** Enter the terminal state. */
    void halt();

    /** Move to WaitingProxy (AMS side of proxy execution). */
    void beginProxyWait();

    /** Mark the sequencer as occupied by a Ring-0 episode until resumed
     *  (OMS only); used while the host-modeled kernel runs. */
    void enterKernelEpisode();

    /** Asynchronous variant of enterKernelEpisode(): valid from event
     *  context (timer/device interrupt), cancels the pending execution
     *  slice. @return true if the sequencer was running user code. */
    bool pauseForKernel();

    /** Replace the context and (re)start execution from it. Used by the
     *  runtime to wake parked sequencers and by thread reloads. */
    void restartFromContext(const SequencerContext &ctx);

    /** Tear the sequencer off its current thread (OS context switch):
     *  any state becomes Idle, wait-time accounting is closed, and
     *  pending user signals (which belong to the outgoing thread's
     *  shreds) are dropped. Proxy-request queue entries are preserved. */
    void unloadForSwitch();

    /** Deliver an ingress inter-sequencer signal (called by the signal
     *  fabric at the delivery tick). §2.4 semantics:
     *   - Idle: the continuation starts directly.
     *   - Running with an IngressSignal trigger: asynchronous transfer
     *     at the next instruction boundary.
     *   - Otherwise queues until one of the above holds. */
    void deliverSignal(const SignalPayload &payload);

    /** Deliver a proxy-request notification (OMS only); dispatched to
     *  the ProxyRequest trigger handler ahead of ordinary signals. */
    void deliverProxyRequest(const SignalPayload &payload);

    /** Number of queued, undelivered async payloads. */
    std::size_t
    pendingSignals() const
    {
        return pendingSignals_.size() + pendingProxy_.size();
    }

    /** Drop queued proxy-request notifications (OS thread switch: the
     *  outgoing thread's faulted shreds will re-fault on reload). */
    void clearPendingProxies() { pendingProxy_.clear(); }

    /** True if this sequencer holds a live instruction stream whose
     *  context must be preserved across an OS thread switch: Running,
     *  WaitingProxy, or Suspended-while-running. A parked (idle or
     *  suspended-while-idle) sequencer holds only stale state. */
    bool
    hasLiveStream() const
    {
        switch (state_) {
          case SeqState::Running:
          case SeqState::WaitingProxy:
          case SeqState::InKernel:
            return true;
          case SeqState::Suspended:
            return preSuspendState_ == SeqState::Running;
          case SeqState::Idle:
          case SeqState::Halted:
            return false;
        }
        return false;
    }

    // ---- context transfer (proxy execution, thread switches) ----------
    SequencerContext saveContext() const { return ctx_; }
    void restoreContext(const SequencerContext &ctx) { ctx_ = ctx; }

    // ---- execution ----------------------------------------------------
    /** Instructions per scheduling slice; smaller values increase
     *  inter-sequencer timing fidelity at simulation-speed cost. */
    void setSliceLimit(unsigned insts);

    /** Cycle bound per slice: a slice also ends once it has consumed
     *  this many cycles, so long COMPUTE bursts cannot defer pending
     *  suspensions and signal deliveries unboundedly. */
    void setSliceCycleBudget(Cycles budget) { sliceCycleBudget_ = budget; }

    /** Select the execution engine. All three engines produce
     *  bit-identical simulated cycles and stats: Reference is the
     *  per-instruction fetch+decode path (the `--no-decode-cache`
     *  escape hatch), Cache executes from predecoded pages, and
     *  Superblock chains predecoded slots into basic-block runs with
     *  linked dispatch. Engine choice is host-side only — never
     *  architectural state. */
    void
    setEngine(Engine engine)
    {
        engine_ = engine;
        invalidateDecodedBlock();
    }
    Engine engine() const { return engine_; }
    bool decodeCacheEnabled() const { return engine_ != Engine::Reference; }

    /** Drop the cached decoded-block reference. Called by the MISP
     *  serialization engine alongside TLB purges, and by anything else
     *  that wants a hard resynchronization with guest memory. The block
     *  is also revalidated per instruction (address-space generation +
     *  page version), so this is a belt-and-braces purge point, not the
     *  only line of defense. */
    void
    invalidateDecodedBlock()
    {
        block_ = BlockRef{};
    }

    std::uint64_t decodeCacheHits() const
    {
        return static_cast<std::uint64_t>(decodeCacheHits_.value());
    }
    std::uint64_t decodeCacheMisses() const
    {
        return static_cast<std::uint64_t>(decodeCacheMisses_.value());
    }

    /** The current privilege ring (AMSs are always Ring 3 / User). */
    mem::Ring ring() const { return ring_; }

    // ---- accounting ----------------------------------------------------
    std::uint64_t instsRetired() const
    {
        return static_cast<std::uint64_t>(instsRetired_.value());
    }
    Tick busyCycles() const
    {
        return static_cast<Tick>(busyCycles_.value());
    }
    Tick kernelCycles() const
    {
        return static_cast<Tick>(kernelCycles_.value());
    }
    Tick suspendedCycles() const
    {
        return static_cast<Tick>(suspendedCycles_.value());
    }
    Tick proxyWaitCycles() const
    {
        return static_cast<Tick>(proxyWaitCycles_.value());
    }

    /** Record cycles spent in a modeled Ring-0 episode. */
    void chargeKernelCycles(Cycles c) { kernelCycles_ += c; }

    /** (busy + kernel) / elapsed. */
    double utilization(Tick elapsed) const;

    stats::StatGroup &statGroup() { return statGroup_; }

    // ---- snapshot -------------------------------------------------------
    /** Snapshot the architectural and scheduling state, including the
     *  pending run-slice event (with its queue insertion sequence, so
     *  same-tick event ordering survives restore). The decoded-block
     *  reference is derived state and resets cold. */
    void snapSave(snap::Serializer &s) const override;
    void snapRestore(snap::Deserializer &d) override;

    /** Identity of the run-slice event, for the snapshot layer's
     *  every-pending-event-is-claimed audit. */
    const Event *snapRunEvent() const { return &runEvent_; }

  private:
    class RunEvent : public Event
    {
      public:
        explicit RunEvent(Sequencer &seq)
            : Event(seq.name() + ".run", kPrioCpu), seq_(seq)
        {}

        void process() override { seq_.runSlice(); }

      private:
        Sequencer &seq_;
    };

    void runSlice();
    void scheduleRun(Tick when);
    void stopRunEvent();
    /** Start a queued payload if the sequencer is idle, or dispatch an
     *  async transfer if a trigger is registered. @return cycles charged. */
    Cycles dispatchPendingAsync();
    void asyncTransfer(isa::Scenario scenario, VAddr handler,
                       const SignalPayload &payload);

    /** Execute one instruction; returns consumed cycles, sets *stop when
     *  the slice must end (fault deferred, halted, parked, ...). */
    Cycles executeOne(bool *stop);
    /** Superblock engine: run the whole slice by chained basic-block
     *  dispatch; replaces the generic per-instruction loop of
     *  runSlice(). In/out: instructions executed and cycles consumed
     *  this slice. */
    void runSuperblocks(unsigned *executed, Cycles *consumed);
    /** Execute one OpClass::Inline instruction on the register file
     *  (COMPUTE burns extra cycles into @p consumed). */
    void execInline(const isa::Instruction &inst, Cycles *consumed);
    /** Execute the already-fetched @p inst; shared by the predecoded and
     *  reference fetch paths. @p cycles has the fetch+base latency. */
    Cycles executeDecoded(const isa::Instruction &inst, Cycles cycles,
                          bool *stop);
    /** Re-point block_ at the decoded page for @p vpn (decoding it if
     *  needed); the fetch translation for the page resolved to @p pa. */
    void refillBlock(std::uint64_t vpn, PAddr pa);
    Cycles handleFaultFromExec(const mem::Fault &fault, bool *stop,
                               bool *advance);

    void setFlagsFromCompare(SWord a, SWord b);
    bool condHolds(isa::Cond cond) const;

    std::string name_;   ///< snap: config
    SequencerId sid_;    ///< snap: config
    bool ring0Capable_;  ///< snap: config
    EventQueue &eq_;
    SequencerEnv *env_ = nullptr; ///< snap: config — wired at build

    SequencerContext ctx_;
    SeqState state_ = SeqState::Idle;
    SeqState preSuspendState_ = SeqState::Idle;
    /** snap: quiesced — Kernel only inside a Ring-0 episode, and
     *  the quiescence protocol drains episodes before any save. */
    mem::Ring ring_ = mem::Ring::User;
    unsigned sliceLimit_ = 32;       ///< snap: config
    Cycles sliceCycleBudget_ = 2500; ///< snap: config

    /** Cached reference into the current address space's decode cache.
     *  Valid only while the MMU's address-space generation and the
     *  page's version are unchanged — both are checked per instruction,
     *  and the generation check runs first so a page freed with its
     *  address space is never dereferenced. */
    struct BlockRef {
        DecodedPage *page = nullptr;
        std::uint64_t vpn = 0;
        std::uint64_t version = 0;
        std::uint64_t asGen = 0;
    };

    Engine engine_ = Engine::Superblock; ///< snap: config
    BlockRef block_; ///< snap: derived — revalidated per instruction

    RunEvent runEvent_;
    bool suspendRequested_ = false;
    /** snap: quiesced — true only within one runSlice() frame;
     *  snapshots are taken between events, never inside one. */
    bool inSlice_ = false;
    std::deque<SignalPayload> pendingSignals_;
    std::deque<SignalPayload> pendingProxy_;

    Tick waitSince_ = 0; ///< start of the current suspend/proxy wait
    Tick kernelResumeFloor_ = 0; ///< earliest user re-run after a kernel episode

    stats::StatGroup statGroup_;
    stats::Scalar instsRetired_;
    stats::Scalar busyCycles_;
    stats::Scalar kernelCycles_;
    stats::Scalar suspendedCycles_;
    stats::Scalar proxyWaitCycles_;
    stats::Scalar signalsReceived_;
    stats::Scalar signalsSent_;
    stats::Scalar asyncTransfers_;
    stats::Scalar faultsRaised_;
    // HostScalar: engine-dependent host counters stay out of snapshot
    // images (they would make otherwise-identical machine states warmed
    // under different engines serialize differently).
    stats::HostScalar decodeCacheHits_;
    stats::HostScalar decodeCacheMisses_;
    mem::Mmu mmu_;
};

} // namespace misp::cpu

#endif // MISP_CPU_SEQUENCER_HH
