/**
 * @file
 * Execution-engine selection for the sequencer inner loop.
 *
 * Three host-side engines produce bit-identical simulated behavior
 * (cycles, ticks, TLB statistics, retired instructions, events):
 *
 *  - Reference: per-instruction fetch + byte-level decode. The ground
 *    truth every other engine is differentially tested against.
 *  - Cache: the predecoded-block engine (PR 1) — per-address-space
 *    decode cache + one-entry last-translation fetch fast path, still
 *    dispatching one decoded instruction at a time.
 *  - Superblock: chains decoded slots into basic-block superblocks
 *    (terminating at branches, page edges, RTCALLs, and serialization
 *    points), folds per-instruction stat updates into block-local
 *    accumulators, and links hot block exits directly to successor
 *    blocks (threaded dispatch).
 *
 * Only host speed differs; the engine is therefore not architectural
 * state (snapshots neither record it nor key compatibility on it).
 */

#ifndef MISP_CPU_ENGINE_HH
#define MISP_CPU_ENGINE_HH

#include <cstdint>
#include <string>

namespace misp::cpu {

enum class Engine : std::uint8_t {
    Reference, ///< per-instruction fetch + decode (`--engine=ref`)
    Cache,     ///< predecoded-block dispatch (`--engine=cache`)
    Superblock, ///< chained superblock dispatch (`--engine=superblock`)
};

inline const char *
engineName(Engine e)
{
    switch (e) {
      case Engine::Reference: return "ref";
      case Engine::Cache: return "cache";
      case Engine::Superblock: return "superblock";
    }
    return "?";
}

/** Parse an `--engine=` / `engine =` value. Accepts the canonical
 *  names plus the long-form "reference" spelling. */
inline bool
parseEngineName(const std::string &s, Engine *out)
{
    if (s == "ref" || s == "reference") {
        *out = Engine::Reference;
        return true;
    }
    if (s == "cache") {
        *out = Engine::Cache;
        return true;
    }
    if (s == "superblock" || s == "sb") {
        *out = Engine::Superblock;
        return true;
    }
    return false;
}

} // namespace misp::cpu

#endif // MISP_CPU_ENGINE_HH
