/**
 * @file
 * Per-address-space predecoded instruction cache.
 *
 * The sequencer's reference fetch path pays a byte-level isa::decode for
 * every retired guest instruction. Real full-system simulators (gem5,
 * SimpleScalar) avoid that with predecoded instruction pages: each guest
 * code page is decoded once into an array of executable entries, and the
 * interpreter inner loop runs straight over decoded slots until it
 * leaves the page, faults, or exhausts its slice.
 *
 * One DecodeCache is owned by each mem::AddressSpace: every sequencer
 * of a MISP processor shares the thread's virtual address space (§2.3),
 * so they also share its predecoded pages, and a CR3 switch can never
 * observe another space's blocks by construction.
 *
 * Coherence. A DecodedPage is a pure derivative of guest memory, so any
 * writer of a code page must invalidate it:
 *
 *  - guest stores (Mmu::write -> noteWrite; a bitmap makes the common
 *    store-to-data-page case one load+mask),
 *  - host-side pokes (AddressSpace::poke and pokeWord),
 *  - mapping changes (AddressSpace::handleFault installing a PTE),
 *  - MISP serialization purges and CR3 writes (the sequencer drops its
 *    cached block; see Sequencer::invalidateDecodedBlock).
 *
 * Invalidation bumps the page's version counter in place — the page
 * allocation itself is stable, so a sequencer can hold a raw pointer and
 * re-validate with one compare per instruction.
 */

#ifndef MISP_CPU_DECODE_CACHE_HH
#define MISP_CPU_DECODE_CACHE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/isa.hh"
#include "mem/paging.hh"
#include "mem/physical_memory.hh"
#include "sim/types.hh"

namespace misp::cpu {

/** Host-dispatch class of a decoded instruction, precomputed at
 *  page-decode time for the superblock engine. */
enum class OpClass : std::uint8_t {
    /** Pure register/flags op: the block executor runs it inline with a
     *  batched fetch replay (no TLB, memory, or environment effects). */
    Inline,
    /** Memory or fault-capable op: dispatched through the generic
     *  executeDecoded path; superblock *body* member (non-terminating),
     *  but execution revalidates the chain after it (SMC, TLB churn). */
    Mem,
    /** Pure control transfer (JMP / JMPR / Jcc): superblock terminator;
     *  its exits carry the chain links. */
    Branch,
    /** Environment/serialization point (HALT, SYSCALL, RTCALL, SIGNAL,
     *  CALL/RET, YRET, SEMONITOR): superblock terminator; always slow
     *  dispatch followed by a full re-resolve. */
    Slow,
    /** Decode failed: terminator raising InvalidOpcode on dispatch. */
    Invalid,
};

/** Classification used to place @p op in a superblock. */
OpClass classifyOp(isa::Opcode op);

/** One predecoded instruction slot. */
struct DecodedSlot {
    isa::Instruction inst;
    Cycles lat = 0;     ///< precomputed isa::baseLatency(inst.op)
    bool valid = false; ///< decode succeeded (else: InvalidOpcode fault)
    OpClass cls = OpClass::Invalid; ///< precomputed classifyOp(inst.op)
};

struct PageSuperblocks;

/** One guest code page, decoded to directly executable form. */
struct DecodedPage {
    static constexpr std::size_t kSlots =
        mem::kPageSize / isa::kInstBytes;

    std::uint64_t vpn = 0;
    PAddr paBase = 0;     ///< frame the bytes were decoded from
    std::uint64_t version = 0; ///< bumped by every invalidation/redecode
    bool decoded = false;      ///< false between invalidation and redecode
    std::array<DecodedSlot, kSlots> slots{};
    /** Superblock metadata, built lazily by the superblock engine and
     *  dropped whenever the page is redecoded (the slots it indexes
     *  changed). Pages executed only by the other engines never pay
     *  for it. */
    std::unique_ptr<PageSuperblocks> sbs;
};

/** A chain link: one superblock exit resolved to its successor block.
 *  Pure host-side dispatch acceleration — following a link never skips
 *  the modeled per-instruction fetch, only the page-map and block-map
 *  lookups. A link is dead the moment its target page is redecoded
 *  (version), its address space is switched away (asGen — links can
 *  only ever name pages of the *same* per-address-space DecodeCache,
 *  so a successor in another space is unreachable by construction),
 *  or the page was remapped to a different frame (paBase). */
struct SbLink {
    DecodedPage *page = nullptr; ///< nullptr = unresolved
    std::uint32_t sb = 0;        ///< index into page->sbs->blocks
    std::uint64_t version = 0;   ///< page->version at resolve time
    std::uint64_t asGen = 0;     ///< Mmu::addressSpaceGen() at resolve
    PAddr paBase = 0;            ///< frame the target decoded from
};

/** A basic-block superblock: a run of decoded slots
 *  [start, term) of Inline/Mem class, ended by a terminator at `term`
 *  (Branch, Slow, or Invalid class — or the page edge when
 *  term == DecodedPage::kSlots). */
struct Superblock {
    std::uint16_t start = 0;
    std::uint16_t term = 0; ///< terminator slot; kSlots = page edge
    OpClass termKind = OpClass::Invalid; ///< class at `term` (unless edge)
    SbLink taken; ///< successor of the taken static branch / page edge
    SbLink fall;  ///< successor of the fall-through edge (Jcc untaken)
};

/** Per-page superblock store: blocks keyed by their start slot. Blocks
 *  may overlap (a jump into the middle of an existing block starts its
 *  own), so there is at most one block per distinct start — bounded by
 *  kSlots. */
struct PageSuperblocks {
    static constexpr std::uint16_t kNone = 0xFFFF;

    std::vector<Superblock> blocks;
    std::array<std::uint16_t, DecodedPage::kSlots> startAt;

    PageSuperblocks() { startAt.fill(kNone); }
};

/** Out-of-line slow path of superblockAt: allocate the page's
 *  superblock store if needed, scan out the block, record it. */
std::uint32_t buildSuperblockAt(DecodedPage &page, std::uint16_t slot);

/** Index of the superblock starting at @p slot, building it on first
 *  use. May grow page.sbs->blocks (invalidating raw Superblock
 *  pointers — hold indices across calls). */
inline std::uint32_t
superblockAt(DecodedPage &page, std::uint16_t slot)
{
    if (page.sbs) {
        std::uint16_t cached = page.sbs->startAt[slot];
        if (cached != PageSuperblocks::kNone)
            return cached;
    }
    return buildSuperblockAt(page, slot);
}

/** The per-address-space store of predecoded pages. */
class DecodeCache
{
  public:
    explicit DecodeCache(mem::PhysicalMemory &pmem);

    DecodeCache(const DecodeCache &) = delete;
    DecodeCache &operator=(const DecodeCache &) = delete;

    /** Resident decoded page for @p vpn, or nullptr when absent or
     *  invalidated since its last decode. */
    DecodedPage *find(std::uint64_t vpn);

    /** (Re)decode the page at @p vpn from physical frame @p paBase.
     *  Reuses the existing allocation when one exists (its version is
     *  bumped so stale references die). */
    DecodedPage *decodePage(std::uint64_t vpn, PAddr paBase);

    /** Store hook: called for every guest store. O(1) bitmap test; only
     *  stores that land on a currently-decoded page pay the
     *  invalidation. */
    void
    noteWrite(VAddr va)
    {
        const std::uint64_t vpn = mem::pageNumber(va);
        const std::uint64_t word = vpn >> 6;
        if (word < decodedBits_.size() &&
            (decodedBits_[word] >> (vpn & 63)) & 1)
            invalidateVpn(vpn);
    }

    /** Drop one page's decoded contents (unmap, remap, SMC store). */
    void invalidateVpn(std::uint64_t vpn);

    std::uint64_t pagesDecoded() const { return pagesDecoded_; }
    std::uint64_t invalidations() const { return invalidations_; }
    std::size_t residentPages() const { return resident_; }

  private:
    void setBit(std::uint64_t vpn);
    void clearBit(std::uint64_t vpn);

    mem::PhysicalMemory &pmem_;
    std::unordered_map<std::uint64_t, std::unique_ptr<DecodedPage>>
        pages_;
    /** One bit per VPN of the 32-bit guest space: page currently holds
     *  decoded contents. Keeps the per-store coherence probe O(1).
     *  Allocated lazily on the first decode, so address spaces that
     *  never execute through the engine (or run with it disabled) pay
     *  nothing. */
    std::vector<std::uint64_t> decodedBits_;

    std::uint64_t pagesDecoded_ = 0;
    std::uint64_t invalidations_ = 0;
    std::size_t resident_ = 0;
};

} // namespace misp::cpu

#endif // MISP_CPU_DECODE_CACHE_HH
