/**
 * @file
 * Per-address-space predecoded instruction cache.
 *
 * The sequencer's reference fetch path pays a byte-level isa::decode for
 * every retired guest instruction. Real full-system simulators (gem5,
 * SimpleScalar) avoid that with predecoded instruction pages: each guest
 * code page is decoded once into an array of executable entries, and the
 * interpreter inner loop runs straight over decoded slots until it
 * leaves the page, faults, or exhausts its slice.
 *
 * One DecodeCache is owned by each mem::AddressSpace: every sequencer
 * of a MISP processor shares the thread's virtual address space (§2.3),
 * so they also share its predecoded pages, and a CR3 switch can never
 * observe another space's blocks by construction.
 *
 * Coherence. A DecodedPage is a pure derivative of guest memory, so any
 * writer of a code page must invalidate it:
 *
 *  - guest stores (Mmu::write -> noteWrite; a bitmap makes the common
 *    store-to-data-page case one load+mask),
 *  - host-side pokes (AddressSpace::poke and pokeWord),
 *  - mapping changes (AddressSpace::handleFault installing a PTE),
 *  - MISP serialization purges and CR3 writes (the sequencer drops its
 *    cached block; see Sequencer::invalidateDecodedBlock).
 *
 * Invalidation bumps the page's version counter in place — the page
 * allocation itself is stable, so a sequencer can hold a raw pointer and
 * re-validate with one compare per instruction.
 */

#ifndef MISP_CPU_DECODE_CACHE_HH
#define MISP_CPU_DECODE_CACHE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/isa.hh"
#include "mem/paging.hh"
#include "mem/physical_memory.hh"
#include "sim/types.hh"

namespace misp::cpu {

/** One predecoded instruction slot. */
struct DecodedSlot {
    isa::Instruction inst;
    Cycles lat = 0;     ///< precomputed isa::baseLatency(inst.op)
    bool valid = false; ///< decode succeeded (else: InvalidOpcode fault)
};

/** One guest code page, decoded to directly executable form. */
struct DecodedPage {
    static constexpr std::size_t kSlots =
        mem::kPageSize / isa::kInstBytes;

    std::uint64_t vpn = 0;
    PAddr paBase = 0;     ///< frame the bytes were decoded from
    std::uint64_t version = 0; ///< bumped by every invalidation/redecode
    bool decoded = false;      ///< false between invalidation and redecode
    std::array<DecodedSlot, kSlots> slots{};
};

/** The per-address-space store of predecoded pages. */
class DecodeCache
{
  public:
    explicit DecodeCache(mem::PhysicalMemory &pmem);

    DecodeCache(const DecodeCache &) = delete;
    DecodeCache &operator=(const DecodeCache &) = delete;

    /** Resident decoded page for @p vpn, or nullptr when absent or
     *  invalidated since its last decode. */
    DecodedPage *find(std::uint64_t vpn);

    /** (Re)decode the page at @p vpn from physical frame @p paBase.
     *  Reuses the existing allocation when one exists (its version is
     *  bumped so stale references die). */
    DecodedPage *decodePage(std::uint64_t vpn, PAddr paBase);

    /** Store hook: called for every guest store. O(1) bitmap test; only
     *  stores that land on a currently-decoded page pay the
     *  invalidation. */
    void
    noteWrite(VAddr va)
    {
        const std::uint64_t vpn = mem::pageNumber(va);
        const std::uint64_t word = vpn >> 6;
        if (word < decodedBits_.size() &&
            (decodedBits_[word] >> (vpn & 63)) & 1)
            invalidateVpn(vpn);
    }

    /** Drop one page's decoded contents (unmap, remap, SMC store). */
    void invalidateVpn(std::uint64_t vpn);

    std::uint64_t pagesDecoded() const { return pagesDecoded_; }
    std::uint64_t invalidations() const { return invalidations_; }
    std::size_t residentPages() const { return resident_; }

  private:
    void setBit(std::uint64_t vpn);
    void clearBit(std::uint64_t vpn);

    mem::PhysicalMemory &pmem_;
    std::unordered_map<std::uint64_t, std::unique_ptr<DecodedPage>>
        pages_;
    /** One bit per VPN of the 32-bit guest space: page currently holds
     *  decoded contents. Keeps the per-store coherence probe O(1).
     *  Allocated lazily on the first decode, so address spaces that
     *  never execute through the engine (or run with it disabled) pay
     *  nothing. */
    std::vector<std::uint64_t> decodedBits_;

    std::uint64_t pagesDecoded_ = 0;
    std::uint64_t invalidations_ = 0;
    std::size_t resident_ = 0;
};

} // namespace misp::cpu

#endif // MISP_CPU_DECODE_CACHE_HH
