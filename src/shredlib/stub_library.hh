/**
 * @file
 * Guest-code stub libraries for the two threading backends.
 *
 * The stub library is the guest-visible face of the runtime: a small
 * code region at kStubBase exporting one symbol per API entry point.
 * Workloads `call` these symbols; the MISP flavour forwards to the
 * ShredLib host runtime through RTCALL (and registers the proxy handler
 * through the architectural SEMONITOR instruction), while the OS flavour
 * issues real SYSCALLs for thread operations so the SMP baseline pays
 * the kernel-threading costs the paper compares against.
 *
 * Exported symbols (identical across backends):
 *   rt_init, shred_create, join_all, yield, shred_self,
 *   mutex_lock, mutex_unlock, barrier_wait, sem_wait, sem_post,
 *   cond_wait, cond_signal, cond_broadcast, event_wait, event_set,
 *   malloc, prefault, exit_process
 * plus internal: proxy_stub, ams_entry, shred_done.
 */

#ifndef MISP_SHREDLIB_STUB_LIBRARY_HH
#define MISP_SHREDLIB_STUB_LIBRARY_HH

#include "isa/program.hh"
#include "shredlib/rt_abi.hh"

namespace misp::rt {

/** Which runtime backend the stubs forward to. */
enum class Backend {
    Shred, ///< MISP: user-level shreds (ShredRuntime)
    OsThread, ///< SMP baseline: kernel threads (OsApiRuntime)
};

const char *backendName(Backend backend);

/** Build the stub library program for @p backend at kStubBase. */
isa::Program buildStubLibrary(Backend backend);

} // namespace misp::rt

#endif // MISP_SHREDLIB_STUB_LIBRARY_HH
