#include "shred_runtime.hh"

#include <algorithm>

#include "snapshot/state_io.hh"

namespace misp::rt {

using cpu::SeqState;
using cpu::Sequencer;
using cpu::SequencerContext;
using arch::MispProcessor;

ShredRuntime::ShredRuntime(stats::StatGroup *parent, RtCosts costs,
                           SchedPolicy policy)
    : costs_(costs),
      policy_(policy),
      statGroup_("shredlib", parent),
      shredsCreated_(&statGroup_, "shredsCreated", "shreds created"),
      shredSwitches_(&statGroup_, "shredSwitches",
                     "light-weight shred context switches"),
      wakeSignals_(&statGroup_, "wakeSignals",
                   "SIGNALs sent to wake parked sequencers"),
      syncFastPath_(&statGroup_, "syncFastPath",
                    "uncontended synchronization operations"),
      syncBlocked_(&statGroup_, "syncBlocked",
                   "synchronization operations that blocked"),
      parks_(&statGroup_, "parks", "sequencer parks (no ready work)")
{
    isa::Program stubs = buildStubLibrary(Backend::Shred);
    symAmsEntry_ = stubs.symbol("ams_entry");
    symShredDone_ = stubs.symbol("shred_done");
}

ShredRuntime::~ShredRuntime() = default;

mem::AddressSpace &
ShredRuntime::as(Gang &g)
{
    return g.thread->process()->addressSpace();
}

ShredRuntime::Gang &
ShredRuntime::gangOf(MispProcessor &proc, Sequencer &seq)
{
    (void)seq;
    os::OsThread *t = proc.currentThread();
    MISP_ASSERT(t != nullptr);
    auto *g = static_cast<Gang *>(t->runtimeData());
    if (!g)
        panic("shredlib: RTCALL before rt_init (thread %u)", t->tid());
    return *g;
}

ShredId
ShredRuntime::shredIdOn(Gang &g, Sequencer &seq) const
{
    auto it = g.runningOn.find(seq.sid());
    if (it == g.runningOn.end())
        return kInvalidShredId;
    return it->second;
}

ShredRuntime::Shred &
ShredRuntime::shredOn(Gang &g, Sequencer &seq)
{
    ShredId id = shredIdOn(g, seq);
    MISP_ASSERT(id != kInvalidShredId);
    return g.shreds.at(id);
}

ShredId
ShredRuntime::popReady(Gang &g, Sequencer &seq)
{
    if (g.ready.empty())
        return kInvalidShredId;
    bool isOms = seq.sid() == 0;
    if (policy_ == SchedPolicy::Fifo) {
        for (auto it = g.ready.begin(); it != g.ready.end(); ++it) {
            if (*it == 0 && !isOms)
                continue; // main resumes only on the OMS
            ShredId id = *it;
            g.ready.erase(it);
            return id;
        }
    } else {
        for (auto it = g.ready.rbegin(); it != g.ready.rend(); ++it) {
            if (*it == 0 && !isOms)
                continue;
            ShredId id = *it;
            g.ready.erase(std::next(it).base());
            return id;
        }
    }
    return kInvalidShredId;
}

void
ShredRuntime::dispatch(Gang &g, Sequencer &seq, ShredId id)
{
    Shred &sh = g.shreds.at(id);
    ++shredSwitches_;
    g.runningOn[seq.sid()] = id;

    SequencerContext &ctx = seq.context();
    // Trigger-response registrations are per-sequencer architectural
    // state and survive shred switches.
    auto triggers = ctx.triggers;
    if (sh.state == ShredState::Fresh) {
        ctx = SequencerContext{};
        ctx.eip = sh.fn;
        ctx.sp() = sh.stackTop - 8; // [sp] holds the shred_done return
        ctx.regs[0] = sh.arg;
        ctx.regs[2] = sh.arg;
    } else {
        MISP_ASSERT(sh.state == ShredState::Ready);
        ctx = sh.ctx;
        ctx.inHandler = false;
        ctx.savedEip = 0;
    }
    ctx.triggers = triggers;
    sh.state = ShredState::Running;
}

void
ShredRuntime::blockCurrent(Gang &g, Sequencer &seq, ShredState newState)
{
    ShredId id = shredIdOn(g, seq);
    MISP_ASSERT(id != kInvalidShredId);
    Shred &sh = g.shreds.at(id);
    sh.ctx = seq.saveContext();
    sh.state = newState;
    g.runningOn.erase(seq.sid());
    if (newState == ShredState::Ready)
        g.ready.push_back(id);
}

void
ShredRuntime::scheduleNextOn(Gang &g, Sequencer &seq)
{
    MISP_ASSERT(shredIdOn(g, seq) == kInvalidShredId);
    g.wakesInFlight.erase(seq.sid());
    ShredId id = popReady(g, seq);
    if (id != kInvalidShredId) {
        dispatch(g, seq, id);
        return;
    }
    ++parks_;
    seq.park();
}

void
ShredRuntime::makeReady(Gang &g, ShredId id)
{
    Shred &sh = g.shreds.at(id);
    MISP_ASSERT(sh.state == ShredState::Blocked ||
                sh.state == ShredState::Fresh);
    if (sh.state == ShredState::Blocked)
        sh.state = ShredState::Ready;
    g.ready.push_back(id);
    wakeIdleSequencer(g, /*needOms=*/id == 0);
}

void
ShredRuntime::wakeIdleSequencer(Gang &g, bool needOms)
{
    if (!g.proc)
        return; // thread not loaded; onThreadLoaded will re-dispatch
    MispProcessor &proc = *g.proc;

    auto tryWake = [&](Sequencer &seq) {
        if (!seq.idleOrSuspendedIdle() || seq.pendingSignals() > 0 ||
            g.wakesInFlight.count(seq.sid()))
            return false;
        cpu::SignalPayload payload;
        payload.eip = symAmsEntry_;
        payload.esp = 0; // the entry stub is stackless
        proc.fabric().sendSignal(seq, payload);
        g.wakesInFlight.insert(seq.sid());
        ++wakeSignals_;
        return true;
    };

    if (needOms) {
        tryWake(proc.oms());
        return;
    }
    for (unsigned i = 0; i < proc.numAms(); ++i) {
        if (tryWake(proc.amsAt(i)))
            return;
    }
    // No idle AMS: the OMS may gang-schedule too if it is parked.
    tryWake(proc.oms());
}

// ---------------------------------------------------------------------
// Services
// ---------------------------------------------------------------------

Cycles
ShredRuntime::doInit(MispProcessor &proc, Sequencer &seq)
{
    os::OsThread *t = proc.currentThread();
    MISP_ASSERT(t != nullptr);
    if (t->runtimeData())
        return costs_.queueOp; // idempotent re-init

    auto gang = std::make_unique<Gang>();
    gang->thread = t;
    gang->proc = &proc;
    Shred main;
    main.id = 0;
    main.state = ShredState::Running;
    gang->shreds.emplace(0, main);
    gang->runningOn[seq.sid()] = 0;
    t->setRuntimeData(gang.get());
    gangs_.emplace(t, std::move(gang));
    return costs_.shredCreate;
}

Cycles
ShredRuntime::doShredCreate(Gang &g, Sequencer &seq)
{
    VAddr fn = seq.context().regs[0];
    Word arg = seq.context().regs[1];

    Shred sh;
    sh.id = g.nextId++;
    sh.fn = fn;
    sh.arg = arg;
    VAddr stackBase = as(g).allocRegion(
        kStackBytes, /*writable=*/true,
        "shredstack:" + std::to_string(sh.id));
    sh.stackTop = stackBase + kStackBytes;
    // Seed the return address so a returning shred lands in shred_done.
    as(g).pokeWord(sh.stackTop - 8, symShredDone_, 8);
    sh.state = ShredState::Fresh;

    ++g.outstanding;
    ++shredsCreated_;
    ShredId id = sh.id;
    g.shreds.emplace(id, sh);
    g.ready.push_back(id);
    wakeIdleSequencer(g, /*needOms=*/false);

    seq.context().regs[0] = id;
    return costs_.shredCreate + costs_.queueOp;
}

Cycles
ShredRuntime::doJoinAll(Gang &g, Sequencer &seq)
{
    MISP_ASSERT(seq.sid() == 0); // join_all runs on the main shred/OMS
    MISP_ASSERT(shredIdOn(g, seq) == 0);
    if (g.outstanding == 0)
        return costs_.queueOp; // nothing to wait for

    blockCurrent(g, seq, ShredState::Blocked);
    g.mainWaiting = true;
    // Main becomes a gang scheduler (Figure 3): pull work immediately.
    scheduleNextOn(g, seq);
    return costs_.blockSwitch;
}

Cycles
ShredRuntime::doShredExit(Gang &g, Sequencer &seq)
{
    ShredId id = shredIdOn(g, seq);
    MISP_ASSERT(id != kInvalidShredId && id != 0);
    g.shreds.at(id).state = ShredState::Done;
    g.runningOn.erase(seq.sid());
    MISP_ASSERT(g.outstanding > 0);
    --g.outstanding;

    if (g.outstanding == 0 && g.mainWaiting) {
        g.mainWaiting = false;
        makeReady(g, 0);
    }
    scheduleNextOn(g, seq);
    return costs_.blockSwitch;
}

Cycles
ShredRuntime::doShredYield(Gang &g, Sequencer &seq)
{
    ShredId id = shredIdOn(g, seq);
    MISP_ASSERT(id != kInvalidShredId);
    blockCurrent(g, seq, ShredState::Ready);
    scheduleNextOn(g, seq);
    return costs_.blockSwitch;
}

bool
ShredRuntime::acquireOrWait(Gang & /*g*/, MutexObj &m, ShredId id)
{
    if (!m.locked) {
        m.locked = true;
        m.owner = id;
        return true;
    }
    m.waiters.push_back(id);
    return false;
}

Cycles
ShredRuntime::doMutexLock(Gang &g, Sequencer &seq)
{
    VAddr addr = seq.context().regs[0];
    MutexObj &m = g.mutexes[addr];
    ShredId id = shredIdOn(g, seq);
    if (!m.locked) {
        m.locked = true;
        m.owner = id;
        as(g).pokeWord(addr, 1, 8);
        ++syncFastPath_;
        return costs_.fastSync;
    }
    ++syncBlocked_;
    blockCurrent(g, seq, ShredState::Blocked);
    m.waiters.push_back(id);
    scheduleNextOn(g, seq);
    return costs_.blockSwitch;
}

Cycles
ShredRuntime::doMutexUnlock(Gang &g, Sequencer &seq)
{
    VAddr addr = seq.context().regs[0];
    MutexObj &m = g.mutexes[addr];
    if (!m.waiters.empty()) {
        // Direct handoff: ownership moves to the oldest waiter.
        ShredId w = m.waiters.front();
        m.waiters.pop_front();
        m.owner = w;
        makeReady(g, w);
    } else {
        m.locked = false;
        m.owner = kInvalidShredId;
        as(g).pokeWord(addr, 0, 8);
    }
    ++syncFastPath_;
    return costs_.fastSync;
}

Cycles
ShredRuntime::doBarrierWait(Gang &g, Sequencer &seq)
{
    VAddr addr = seq.context().regs[0];
    unsigned count = static_cast<unsigned>(seq.context().regs[1]);
    MISP_ASSERT(count > 0);
    BarrierObj &bar = g.barriers[addr];
    ++bar.arrived;
    if (bar.arrived >= count) {
        bar.arrived = 0;
        for (ShredId w : bar.waiting)
            makeReady(g, w);
        bar.waiting.clear();
        ++syncFastPath_;
        return costs_.fastSync * 2;
    }
    ++syncBlocked_;
    ShredId id = shredIdOn(g, seq);
    blockCurrent(g, seq, ShredState::Blocked);
    bar.waiting.push_back(id);
    scheduleNextOn(g, seq);
    return costs_.blockSwitch;
}

Cycles
ShredRuntime::doSemWait(Gang &g, Sequencer &seq)
{
    VAddr addr = seq.context().regs[0];
    SemObj &sem = g.sems[addr];
    if (!sem.initialized) {
        sem.value = static_cast<SWord>(as(g).peekWord(addr, 8));
        sem.initialized = true;
    }
    if (sem.value > 0) {
        --sem.value;
        as(g).pokeWord(addr, static_cast<Word>(sem.value), 8);
        ++syncFastPath_;
        return costs_.fastSync;
    }
    ++syncBlocked_;
    ShredId id = shredIdOn(g, seq);
    blockCurrent(g, seq, ShredState::Blocked);
    sem.waiters.push_back(id);
    scheduleNextOn(g, seq);
    return costs_.blockSwitch;
}

Cycles
ShredRuntime::doSemPost(Gang &g, Sequencer &seq)
{
    VAddr addr = seq.context().regs[0];
    SemObj &sem = g.sems[addr];
    if (!sem.initialized) {
        sem.value = static_cast<SWord>(as(g).peekWord(addr, 8));
        sem.initialized = true;
    }
    if (!sem.waiters.empty()) {
        ShredId w = sem.waiters.front();
        sem.waiters.pop_front();
        makeReady(g, w);
    } else {
        ++sem.value;
        as(g).pokeWord(addr, static_cast<Word>(sem.value), 8);
    }
    ++syncFastPath_;
    return costs_.fastSync;
}

Cycles
ShredRuntime::doCondWait(Gang &g, Sequencer &seq)
{
    VAddr condAddr = seq.context().regs[0];
    VAddr mutexAddr = seq.context().regs[1];
    CondObj &cond = g.conds[condAddr];
    MutexObj &m = g.mutexes[mutexAddr];
    ShredId id = shredIdOn(g, seq);

    // Atomically release the mutex and wait.
    if (!m.waiters.empty()) {
        ShredId w = m.waiters.front();
        m.waiters.pop_front();
        m.owner = w;
        makeReady(g, w);
    } else {
        m.locked = false;
        m.owner = kInvalidShredId;
        as(g).pokeWord(mutexAddr, 0, 8);
    }

    ++syncBlocked_;
    blockCurrent(g, seq, ShredState::Blocked);
    cond.waiters.push_back(id);
    scheduleNextOn(g, seq);
    return costs_.blockSwitch;
}

Cycles
ShredRuntime::doCondSignal(Gang &g, Sequencer &seq, bool broadcast)
{
    VAddr condAddr = seq.context().regs[0];
    VAddr mutexAddr = seq.context().regs[1];
    CondObj &cond = g.conds[condAddr];
    MutexObj &m = g.mutexes[mutexAddr];

    while (!cond.waiters.empty()) {
        ShredId w = cond.waiters.front();
        cond.waiters.pop_front();
        // The woken shred must re-acquire the mutex before resuming.
        if (acquireOrWait(g, m, w)) {
            as(g).pokeWord(mutexAddr, 1, 8);
            makeReady(g, w);
        }
        if (!broadcast)
            break;
    }
    ++syncFastPath_;
    return costs_.fastSync;
}

Cycles
ShredRuntime::doEventWait(Gang &g, Sequencer &seq)
{
    VAddr addr = seq.context().regs[0];
    EventObj &ev = g.events[addr];
    if (!ev.initialized) {
        ev.set = as(g).peekWord(addr, 8) != 0;
        ev.initialized = true;
    }
    if (ev.set) {
        ++syncFastPath_;
        return costs_.fastSync;
    }
    ++syncBlocked_;
    ShredId id = shredIdOn(g, seq);
    blockCurrent(g, seq, ShredState::Blocked);
    ev.waiters.push_back(id);
    scheduleNextOn(g, seq);
    return costs_.blockSwitch;
}

Cycles
ShredRuntime::doEventSet(Gang &g, Sequencer &seq)
{
    VAddr addr = seq.context().regs[0];
    EventObj &ev = g.events[addr];
    ev.set = true;
    ev.initialized = true;
    as(g).pokeWord(addr, 1, 8);
    for (ShredId w : ev.waiters)
        makeReady(g, w);
    ev.waiters.clear();
    ++syncFastPath_;
    return costs_.fastSync;
}

Cycles
ShredRuntime::doMalloc(Gang &g, Sequencer &seq)
{
    std::uint64_t size = seq.context().regs[0];
    if (size == 0)
        size = 8;
    VAddr addr = as(g).allocRegion(size, /*writable=*/true, "malloc");
    seq.context().regs[0] = addr;
    return costs_.malloc;
}

Cycles
ShredRuntime::doExitProcess(MispProcessor &proc, Sequencer &seq)
{
    Word code = seq.context().regs[0];
    os::OsThread *t = proc.currentThread();
    MISP_ASSERT(t != nullptr);
    seq.enterKernelEpisode();
    os::Kernel *kernel = &proc.kernel();
    int cpu = proc.cpuId();
    proc.raiseSyscallEpisode([kernel, cpu, t, code] {
        return kernel->syscall(cpu, *t,
                               static_cast<Word>(os::Sys::ExitProcess),
                               {code, 0, 0, 0});
    });
    return 10;
}

Cycles
ShredRuntime::rtcall(MispProcessor &proc, Sequencer &seq, Word service)
{
    switch (static_cast<Rt>(service)) {
      case Rt::Init:
        return doInit(proc, seq);
      case Rt::Proxy:
        return proc.serviceProxy(seq);
      case Rt::ExitProcess:
        return doExitProcess(proc, seq);
      default:
        break;
    }

    // A wake SIGNAL issued for one gang can be delivered after the OS
    // switched a different (non-shredded) thread onto this processor;
    // the orphaned gang-scheduler pull simply parks the sequencer.
    os::OsThread *cur = proc.currentThread();
    if (static_cast<Rt>(service) == Rt::SchedNext &&
        (!cur || !cur->runtimeData())) {
        seq.park();
        return 0;
    }

    Gang &g = gangOf(proc, seq);
    switch (static_cast<Rt>(service)) {
      case Rt::ShredCreate: return doShredCreate(g, seq);
      case Rt::JoinAll: return doJoinAll(g, seq);
      case Rt::ShredExit: return doShredExit(g, seq);
      case Rt::ShredYield: return doShredYield(g, seq);
      case Rt::ShredSelf:
        seq.context().regs[0] = shredIdOn(g, seq);
        return costs_.queueOp;
      case Rt::SchedNext:
        scheduleNextOn(g, seq);
        return costs_.queueOp;
      case Rt::MutexLock: return doMutexLock(g, seq);
      case Rt::MutexUnlock: return doMutexUnlock(g, seq);
      case Rt::BarrierWait: return doBarrierWait(g, seq);
      case Rt::SemWait: return doSemWait(g, seq);
      case Rt::SemPost: return doSemPost(g, seq);
      case Rt::CondWait: return doCondWait(g, seq);
      case Rt::CondSignal: return doCondSignal(g, seq, false);
      case Rt::CondBroadcast: return doCondSignal(g, seq, true);
      case Rt::EventWait: return doEventWait(g, seq);
      case Rt::EventSet: return doEventSet(g, seq);
      case Rt::Malloc: return doMalloc(g, seq);
      case Rt::Prefault:
        warn("shredlib: Rt::Prefault is unused (stub loops inline)");
        return 0;
      default:
        warn("shredlib: unknown RTCALL %llu",
             (unsigned long long)service);
        return 0;
    }
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

namespace {

template <typename Seq>
void
putIds(snap::Serializer &s, const Seq &ids)
{
    s.u64(ids.size());
    for (ShredId id : ids)
        s.u64(id);
}

template <typename Seq>
void
getIds(snap::Deserializer &d, Seq *ids)
{
    ids->resize(d.u64());
    for (ShredId &id : *ids)
        id = static_cast<ShredId>(d.u64());
}

} // namespace

void
ShredRuntime::snapSave(snap::Serializer &s) const
{
    std::vector<const Gang *> ordered;
    ordered.reserve(gangs_.size());
    // misplint: allow(det-unordered-iter) — sorted by tid below
    for (const auto &[thread, gang] : gangs_) {
        (void)thread;
        ordered.push_back(gang.get());
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Gang *a, const Gang *b) {
                  return a->thread->tid() < b->thread->tid();
              });

    s.u64(ordered.size());
    for (const Gang *g : ordered) {
        s.u64(g->thread->tid());
        s.i64(g->proc ? g->proc->cpuId() : -1);

        std::vector<ShredId> shredIds;
        shredIds.reserve(g->shreds.size());
        for (const auto &[id, sh] : g->shreds) {
            (void)sh;
            shredIds.push_back(id);
        }
        std::sort(shredIds.begin(), shredIds.end());
        s.u64(shredIds.size());
        for (ShredId id : shredIds) {
            const Shred &sh = g->shreds.at(id);
            s.u64(sh.id);
            s.u64(sh.fn);
            s.u64(sh.arg);
            s.u64(sh.stackTop);
            s.u8(static_cast<std::uint8_t>(sh.state));
            snap::putContext(s, sh.ctx);
        }

        putIds(s, g->ready);
        s.u64(g->nextId);
        s.u32(g->outstanding);
        s.b(g->mainWaiting);

        std::vector<std::pair<SequencerId, ShredId>> running(
            // misplint: allow(det-unordered-iter) — sorted below
            g->runningOn.begin(), g->runningOn.end());
        std::sort(running.begin(), running.end());
        s.u64(running.size());
        for (const auto &[sid, id] : running) {
            s.u64(sid);
            s.u64(id);
        }

        s.u64(g->wakesInFlight.size());
        for (SequencerId sid : g->wakesInFlight) // std::set: sorted
            s.u64(sid);

        s.u64(g->mutexes.size());
        for (const auto &[addr, m] : g->mutexes) {
            s.u64(addr);
            s.b(m.locked);
            s.u64(m.owner);
            putIds(s, m.waiters);
        }
        s.u64(g->barriers.size());
        for (const auto &[addr, bar] : g->barriers) {
            s.u64(addr);
            s.u32(bar.arrived);
            putIds(s, bar.waiting);
        }
        s.u64(g->sems.size());
        for (const auto &[addr, sem] : g->sems) {
            s.u64(addr);
            s.i64(sem.value);
            s.b(sem.initialized);
            putIds(s, sem.waiters);
        }
        s.u64(g->conds.size());
        for (const auto &[addr, cond] : g->conds) {
            s.u64(addr);
            putIds(s, cond.waiters);
        }
        s.u64(g->events.size());
        for (const auto &[addr, ev] : g->events) {
            s.u64(addr);
            s.b(ev.set);
            s.b(ev.initialized);
            putIds(s, ev.waiters);
        }
    }
}

void
ShredRuntime::snapRestore(snap::Deserializer &d, arch::MispSystem &sys)
{
    MISP_ASSERT(gangs_.empty());
    std::uint64_t nGangs = d.u64();
    for (std::uint64_t i = 0; i < nGangs; ++i) {
        auto gang = std::make_unique<Gang>();
        Tid tid = static_cast<Tid>(d.u64());
        gang->thread = sys.kernel().threadByTid(tid);
        if (!gang->thread)
            throw snap::SnapError("shredlib: gang names an unknown tid");
        int cpu = static_cast<int>(d.i64());
        gang->proc = cpu >= 0 ? sys.processorForCpu(cpu) : nullptr;

        std::uint64_t nShreds = d.u64();
        for (std::uint64_t k = 0; k < nShreds; ++k) {
            Shred sh;
            sh.id = static_cast<ShredId>(d.u64());
            sh.fn = d.u64();
            sh.arg = d.u64();
            sh.stackTop = d.u64();
            sh.state = static_cast<ShredState>(d.u8());
            sh.ctx = snap::getContext(d);
            ShredId id = sh.id;
            gang->shreds.emplace(id, sh);
        }

        getIds(d, &gang->ready);
        gang->nextId = static_cast<ShredId>(d.u64());
        gang->outstanding = d.u32();
        gang->mainWaiting = d.b();

        std::uint64_t nRunning = d.u64();
        for (std::uint64_t k = 0; k < nRunning; ++k) {
            SequencerId sid = static_cast<SequencerId>(d.u64());
            gang->runningOn[sid] = static_cast<ShredId>(d.u64());
        }

        std::uint64_t nWakes = d.u64();
        for (std::uint64_t k = 0; k < nWakes; ++k)
            gang->wakesInFlight.insert(static_cast<SequencerId>(d.u64()));

        std::uint64_t nMutex = d.u64();
        for (std::uint64_t k = 0; k < nMutex; ++k) {
            VAddr addr = d.u64();
            MutexObj &m = gang->mutexes[addr];
            m.locked = d.b();
            m.owner = static_cast<ShredId>(d.u64());
            getIds(d, &m.waiters);
        }
        std::uint64_t nBar = d.u64();
        for (std::uint64_t k = 0; k < nBar; ++k) {
            VAddr addr = d.u64();
            BarrierObj &bar = gang->barriers[addr];
            bar.arrived = d.u32();
            getIds(d, &bar.waiting);
        }
        std::uint64_t nSem = d.u64();
        for (std::uint64_t k = 0; k < nSem; ++k) {
            VAddr addr = d.u64();
            SemObj &sem = gang->sems[addr];
            sem.value = static_cast<SWord>(d.i64());
            sem.initialized = d.b();
            getIds(d, &sem.waiters);
        }
        std::uint64_t nCond = d.u64();
        for (std::uint64_t k = 0; k < nCond; ++k) {
            VAddr addr = d.u64();
            getIds(d, &gang->conds[addr].waiters);
        }
        std::uint64_t nEv = d.u64();
        for (std::uint64_t k = 0; k < nEv; ++k) {
            VAddr addr = d.u64();
            EventObj &ev = gang->events[addr];
            ev.set = d.b();
            ev.initialized = d.b();
            getIds(d, &ev.waiters);
        }

        os::OsThread *t = gang->thread;
        t->setRuntimeData(gang.get());
        gangs_.emplace(t, std::move(gang));
    }
}

void
ShredRuntime::onThreadLoaded(MispProcessor &proc, os::OsThread &t)
{
    auto *g = static_cast<Gang *>(t.runtimeData());
    if (!g)
        return; // not a shredded thread
    g->proc = &proc;
    // Re-arm parked sequencers for any work that arrived or survived
    // the context switch.
    std::size_t wakes = std::min<std::size_t>(g->ready.size(),
                                              proc.numAms() + 1);
    for (std::size_t i = 0; i < wakes; ++i)
        wakeIdleSequencer(*g, /*needOms=*/false);
    // Main (shred 0) resumes only on the OMS; make sure the OMS itself
    // is re-armed when main is queued.
    for (ShredId id : g->ready) {
        if (id == 0) {
            wakeIdleSequencer(*g, /*needOms=*/true);
            break;
        }
    }
}

void
ShredRuntime::onThreadUnloading(MispProcessor &proc, os::OsThread &t)
{
    (void)proc;
    auto *g = static_cast<Gang *>(t.runtimeData());
    if (!g)
        return;
    g->proc = nullptr;
    // Any in-flight wakes target sequencers that are being torn off this
    // thread; their queued signals are dropped by unloadForSwitch().
    g->wakesInFlight.clear();
}

} // namespace misp::rt
