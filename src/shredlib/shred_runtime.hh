/**
 * @file
 * ShredLib: the user-level multi-shredding runtime (§3, §4.2).
 *
 * Implements the paper's M:N gang scheduler over a shared work queue
 * (Figure 3): shred continuations wait in a ready queue; the OMS and
 * every AMS run gang-scheduler pulls (the `ams_entry` stub) that grab
 * the next shred and light-weight-context-switch into it. Shreds that
 * block on a synchronization object have their sequencer handed to the
 * next ready shred; sequencers with no work park and are re-activated
 * with the architectural SIGNAL instruction when work appears.
 *
 * The runtime is host-modeled at the RTCALL boundary (the gem5
 * syscall-emulation technique): services manipulate guest-visible state
 * and charge calibrated cycle costs, while control transfers (shred
 * dispatch, parking, SIGNAL wakeups, proxy handling) use the
 * architectural mechanisms of the MISP processor model.
 *
 * Provided primitives (POSIX-compliant suite per §4.2): shred create /
 * join / yield, mutexes, condition variables, semaphores, barriers and
 * events — plus the page-probe pre-faulting optimization of §5.3.
 */

#ifndef MISP_SHREDLIB_SHRED_RUNTIME_HH
#define MISP_SHREDLIB_SHRED_RUNTIME_HH

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "misp/misp_processor.hh"
#include "misp/misp_system.hh"
#include "shredlib/rt_abi.hh"
#include "shredlib/stub_library.hh"
#include "sim/stats.hh"
#include "snapshot/serialize.hh"

namespace misp::rt {

/** Work-queue scheduling discipline. */
enum class SchedPolicy {
    Fifo, ///< the paper's Figure-3 FIFO gang scheduler
    Lifo, ///< depth-first; better locality for fork-heavy shred trees
};

/** Lifecycle of one shred. */
enum class ShredState : std::uint8_t {
    Fresh,   ///< created, never dispatched
    Ready,   ///< runnable, context saved
    Running, ///< on a sequencer
    Blocked, ///< waiting on a synchronization object
    Done,
};

/** The ShredLib runtime for MISP systems. One instance serves a whole
 *  system; per-OS-thread gang state hangs off OsThread::runtimeData. */
class ShredRuntime : public arch::RtHandler
{
  public:
    explicit ShredRuntime(stats::StatGroup *parent,
                          RtCosts costs = RtCosts{},
                          SchedPolicy policy = SchedPolicy::Fifo);
    ~ShredRuntime() override;

    // ---- RtHandler -----------------------------------------------------
    Cycles rtcall(arch::MispProcessor &proc, cpu::Sequencer &seq,
                  Word service) override;
    void onThreadLoaded(arch::MispProcessor &proc,
                        os::OsThread &t) override;
    void onThreadUnloading(arch::MispProcessor &proc,
                           os::OsThread &t) override;

    // ---- snapshot ------------------------------------------------------
    /** Snapshot every gang: shred descriptors and contexts, the shared
     *  work queue, sequencer->shred bindings, in-flight wakes, and the
     *  synchronization-object tables. Gangs are keyed by OS-thread tid
     *  in the image (and emitted in tid order, so identical states
     *  produce identical bytes). */
    void snapSave(snap::Serializer &s) const;
    /** Rebuild the gangs onto the restored kernel threads of @p sys
     *  (re-establishing OsThread::runtimeData). */
    void snapRestore(snap::Deserializer &d, arch::MispSystem &sys);

    // ---- observability ----------------------------------------------------
    std::uint64_t shredsCreated() const
    {
        return static_cast<std::uint64_t>(shredsCreated_.value());
    }
    std::uint64_t shredSwitches() const
    {
        return static_cast<std::uint64_t>(shredSwitches_.value());
    }
    std::uint64_t wakeSignals() const
    {
        return static_cast<std::uint64_t>(wakeSignals_.value());
    }

  private:
    struct Shred {
        ShredId id = 0;
        VAddr fn = 0;
        Word arg = 0;
        VAddr stackTop = 0;
        ShredState state = ShredState::Fresh;
        cpu::SequencerContext ctx; ///< valid when Ready (after first run)
    };

    struct MutexObj {
        bool locked = false;
        ShredId owner = kInvalidShredId;
        std::deque<ShredId> waiters;
    };

    struct BarrierObj {
        unsigned arrived = 0;
        std::vector<ShredId> waiting;
    };

    struct SemObj {
        SWord value = 0;
        bool initialized = false;
        std::deque<ShredId> waiters;
    };

    struct CondObj {
        std::deque<ShredId> waiters;
    };

    struct EventObj {
        bool set = false;
        bool initialized = false;
        std::vector<ShredId> waiters;
    };

    /** Per-OS-thread gang: the shreds, the shared work queue, and the
     *  synchronization-object tables. */
    struct Gang {
        os::OsThread *thread = nullptr;
        arch::MispProcessor *proc = nullptr; ///< processor when loaded
        std::unordered_map<ShredId, Shred> shreds;
        std::deque<ShredId> ready;
        ShredId nextId = 1;
        unsigned outstanding = 0;   ///< created, not yet Done
        bool mainWaiting = false;   ///< main parked inside join_all
        std::unordered_map<SequencerId, ShredId> runningOn;
        /** Sequencers with an undelivered wake SIGNAL in flight (the
         *  fabric latency makes them look idle until delivery). */
        std::set<SequencerId> wakesInFlight;

        std::map<VAddr, MutexObj> mutexes;
        std::map<VAddr, BarrierObj> barriers;
        std::map<VAddr, SemObj> sems;
        std::map<VAddr, CondObj> conds;
        std::map<VAddr, EventObj> events;
    };

    Gang &gangOf(arch::MispProcessor &proc, cpu::Sequencer &seq);
    Shred &shredOn(Gang &g, cpu::Sequencer &seq);
    ShredId shredIdOn(Gang &g, cpu::Sequencer &seq) const;

    /** Pop the next shred this sequencer may run (main/shred 0 only on
     *  the OMS). kInvalidShredId when none. */
    ShredId popReady(Gang &g, cpu::Sequencer &seq);

    /** Switch @p seq to @p id (restore or fresh-start). */
    void dispatch(Gang &g, cpu::Sequencer &seq, ShredId id);

    /** Give this sequencer its next work, or park it. */
    void scheduleNextOn(Gang &g, cpu::Sequencer &seq);

    /** Save the current shred's context and mark it @p newState. */
    void blockCurrent(Gang &g, cpu::Sequencer &seq, ShredState newState);

    /** Move @p id to the ready queue and SIGNAL a parked sequencer. */
    void makeReady(Gang &g, ShredId id);

    /** SIGNAL the gang-scheduler continuation to an idle sequencer
     *  (prefers AMSs; targets the OMS only for main wake-up). */
    void wakeIdleSequencer(Gang &g, bool needOms);

    // Service bodies.
    Cycles doInit(arch::MispProcessor &proc, cpu::Sequencer &seq);
    Cycles doShredCreate(Gang &g, cpu::Sequencer &seq);
    Cycles doJoinAll(Gang &g, cpu::Sequencer &seq);
    Cycles doShredExit(Gang &g, cpu::Sequencer &seq);
    Cycles doShredYield(Gang &g, cpu::Sequencer &seq);
    Cycles doMutexLock(Gang &g, cpu::Sequencer &seq);
    Cycles doMutexUnlock(Gang &g, cpu::Sequencer &seq);
    Cycles doBarrierWait(Gang &g, cpu::Sequencer &seq);
    Cycles doSemWait(Gang &g, cpu::Sequencer &seq);
    Cycles doSemPost(Gang &g, cpu::Sequencer &seq);
    Cycles doCondWait(Gang &g, cpu::Sequencer &seq);
    Cycles doCondSignal(Gang &g, cpu::Sequencer &seq, bool broadcast);
    Cycles doEventWait(Gang &g, cpu::Sequencer &seq);
    Cycles doEventSet(Gang &g, cpu::Sequencer &seq);
    Cycles doMalloc(Gang &g, cpu::Sequencer &seq);
    Cycles doExitProcess(arch::MispProcessor &proc, cpu::Sequencer &seq);

    /** Grant @p m to @p id or enqueue it as a waiter.
     *  @return true if granted immediately. */
    bool acquireOrWait(Gang &g, MutexObj &m, ShredId id);

    mem::AddressSpace &as(Gang &g);

    RtCosts costs_;      ///< snap: config
    SchedPolicy policy_; ///< snap: config
    /** snap: config — resolved from the stub library at build. */
    VAddr symAmsEntry_;
    VAddr symShredDone_; ///< snap: config — ditto

    std::unordered_map<os::OsThread *, std::unique_ptr<Gang>> gangs_;

    stats::StatGroup statGroup_;
    stats::Scalar shredsCreated_;
    stats::Scalar shredSwitches_;
    stats::Scalar wakeSignals_;
    stats::Scalar syncFastPath_;
    stats::Scalar syncBlocked_;
    stats::Scalar parks_;
};

} // namespace misp::rt

#endif // MISP_SHREDLIB_SHRED_RUNTIME_HH
