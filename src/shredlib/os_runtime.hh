/**
 * @file
 * The OS-thread runtime backend: the SMP baseline's threading library.
 *
 * Implements the same stub-library ABI as ShredLib, but with classic
 * kernel threads: shred_create becomes a thread-create system call,
 * join_all a sequence of blocking joins, and contended synchronization
 * blocks in the kernel through futex waits (an adaptive
 * spin-then-block mutex, generation-counter barriers, kernel-object
 * semaphores/events — the mix a 2006 Windows/pthreads runtime used).
 *
 * Because this backend runs the *identical* workload code, comparing a
 * MISP system against an SMP system isolates exactly the architectural
 * difference the paper evaluates.
 *
 * Multi-step blocking protocols (mutex retry, condition-variable
 * unlock/wait/relock) are implemented by rewinding the guest EIP to the
 * RTCALL instruction so the service re-executes after each kernel
 * block, with a small per-thread phase machine carrying the state.
 */

#ifndef MISP_SHREDLIB_OS_RUNTIME_HH
#define MISP_SHREDLIB_OS_RUNTIME_HH

#include <map>
#include <memory>
#include <unordered_map>

#include "misp/misp_processor.hh"
#include "misp/misp_system.hh"
#include "shredlib/rt_abi.hh"
#include "shredlib/stub_library.hh"
#include "sim/stats.hh"
#include "snapshot/serialize.hh"

namespace misp::rt {

/** RtHandler for systems whose processors are plain CPUs (0 AMS). */
class OsApiRuntime : public arch::RtHandler
{
  public:
    explicit OsApiRuntime(stats::StatGroup *parent,
                          RtCosts costs = RtCosts{});
    ~OsApiRuntime() override;

    Cycles rtcall(arch::MispProcessor &proc, cpu::Sequencer &seq,
                  Word service) override;
    void onThreadLoaded(arch::MispProcessor &proc,
                        os::OsThread &t) override;
    void onThreadUnloading(arch::MispProcessor &proc,
                           os::OsThread &t) override;

    std::uint64_t threadsSpawned() const
    {
        return static_cast<std::uint64_t>(threadsSpawned_.value());
    }

    // ---- snapshot ------------------------------------------------------
    /** Snapshot the per-process groups: futex-waiter mirrors, barrier
     *  arrival counts, and the mutex/cond blocking phase machines
     *  (keyed by pid in the image, emitted in pid order). */
    void snapSave(snap::Serializer &s) const;
    void snapRestore(snap::Deserializer &d, arch::MispSystem &sys);

  private:
    /** Condition-wait phase machine state (per thread). */
    enum class CondPhase : std::uint8_t { Wait, Relock };

    struct CondState {
        CondPhase phase = CondPhase::Wait;
        Word genAtWait = 0;
    };

    struct Group {
        os::Process *process = nullptr;
        os::OsThread *main = nullptr;
        /** Host mirror of waiter existence per futex word. */
        std::map<VAddr, int> waiters;
        /** Barrier arrival counts (guest word holds the generation). */
        std::map<VAddr, unsigned> barrierArrived;
        /** In-flight mutex waits: tid -> mutex word. */
        std::map<Tid, VAddr> mutexWaiting;
        /** In-flight condition waits: tid -> state. */
        std::map<Tid, CondState> condWaiting;
    };

    Group &groupOf(arch::MispProcessor &proc);
    mem::AddressSpace &as(arch::MispProcessor &proc);

    /** Issue a kernel syscall as a Ring-0 episode on this CPU.
     *  @p patchRet writes the syscall return into r0. */
    Cycles kernelCall(arch::MispProcessor &proc, cpu::Sequencer &seq,
                      os::Sys number, std::array<Word, 4> args,
                      bool patchRet);

    /** Rewind the guest EIP to re-execute the current RTCALL after the
     *  thread unblocks. */
    static void rewind(cpu::Sequencer &seq);

    Cycles doShredCreate(arch::MispProcessor &proc, cpu::Sequencer &seq);
    Cycles doJoinAll(arch::MispProcessor &proc, cpu::Sequencer &seq);
    Cycles doMutexLock(arch::MispProcessor &proc, cpu::Sequencer &seq);
    Cycles doMutexUnlock(arch::MispProcessor &proc, cpu::Sequencer &seq);
    Cycles doBarrierWait(arch::MispProcessor &proc, cpu::Sequencer &seq);
    Cycles doSemWait(arch::MispProcessor &proc, cpu::Sequencer &seq);
    Cycles doSemPost(arch::MispProcessor &proc, cpu::Sequencer &seq);
    Cycles doCondWait(arch::MispProcessor &proc, cpu::Sequencer &seq);
    Cycles doCondSignal(arch::MispProcessor &proc, cpu::Sequencer &seq,
                        bool broadcast);
    Cycles doEventWait(arch::MispProcessor &proc, cpu::Sequencer &seq);
    Cycles doEventSet(arch::MispProcessor &proc, cpu::Sequencer &seq);
    Cycles doMalloc(arch::MispProcessor &proc, cpu::Sequencer &seq);

    RtCosts costs_;       ///< snap: config
    /** snap: config — resolved from the stub library at build. */
    VAddr symShredDone_;

    std::unordered_map<os::Process *, std::unique_ptr<Group>> groups_;

    stats::StatGroup statGroup_;
    stats::Scalar threadsSpawned_;
    stats::Scalar futexBlocks_;
    stats::Scalar spinAcquires_;
};

} // namespace misp::rt

#endif // MISP_SHREDLIB_OS_RUNTIME_HH
