/**
 * @file
 * The runtime-call ABI shared by every threading backend.
 *
 * Workloads are compiled once against a stub library (stub_library.hh)
 * that exports a fixed symbol set — shred_create, join_all, mutex_lock,
 * ... — at a fixed base address. Two interchangeable stub/runtime pairs
 * implement those symbols:
 *
 *  - the ShredLib backend (shred_runtime.hh): user-level shreds on MISP
 *    sequencers, gang-scheduled from a work queue (§3, §4.2), and
 *  - the OS-thread backend (os_runtime.hh): classic kernel threads and
 *    futex-based blocking, used by the SMP baseline.
 *
 * Because the workload body is identical under both backends, "porting"
 * an application between SMP and MISP is exactly the include-one-header
 * translation the paper reports in Table 2.
 */

#ifndef MISP_SHREDLIB_RT_ABI_HH
#define MISP_SHREDLIB_RT_ABI_HH

#include "sim/types.hh"

namespace misp::rt {

/** RTCALL service numbers. */
enum class Rt : Word {
    Init = 1,
    ShredCreate = 2,  ///< r0=fn, r1=arg -> r0=id
    JoinAll = 3,
    ShredExit = 4,
    ShredYield = 5,
    ShredSelf = 6,    ///< -> r0 = id (0 = main)
    MutexLock = 7,    ///< r0 = guest mutex word
    MutexUnlock = 8,
    BarrierWait = 9,  ///< r0 = guest barrier word, r1 = participants
    SemWait = 10,     ///< r0 = guest sem word
    SemPost = 11,
    CondWait = 12,    ///< r0 = cond word, r1 = mutex word
    CondSignal = 13,
    CondBroadcast = 14,
    EventWait = 15,   ///< r0 = event word
    EventSet = 16,
    Malloc = 17,      ///< r0 = bytes -> r0 = addr
    Prefault = 18,    ///< r0 = addr, r1 = len (unused: stub loops inline)
    ExitProcess = 19, ///< r0 = code
    Proxy = 20,       ///< internal: OMS proxy-handler body
    SchedNext = 21,   ///< internal: gang-scheduler pull
};

/** Guest-visible base address of the stub library ("shredlib.dll"). */
constexpr VAddr kStubBase = 0x0060'0000;

/** Default shred/thread stack size. */
constexpr std::uint64_t kStackBytes = 64 * 1024;

/** User-level runtime cycle costs (host-modeled services). */
struct RtCosts {
    Cycles fastSync = 45;      ///< uncontended lock/unlock/sem op
    Cycles blockSwitch = 150;  ///< save shred ctx + dispatch next
    Cycles queueOp = 40;       ///< work-queue push/pop
    Cycles shredCreate = 90;   ///< descriptor + stack carve + enqueue
    Cycles malloc = 220;
    Cycles spinTry = 60;       ///< one spin iteration (OS backend)
    unsigned spinTries = 3;    ///< spins before blocking (OS backend)
};

} // namespace misp::rt

#endif // MISP_SHREDLIB_RT_ABI_HH
