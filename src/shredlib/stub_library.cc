#include "stub_library.hh"

#include <functional>
#include <vector>

#include "os/kernel.hh"
#include "sim/logging.hh"

namespace misp::rt {

using isa::Opcode;
using isa::ProgramBuilder;
using isa::Scenario;

const char *
backendName(Backend backend)
{
    switch (backend) {
      case Backend::Shred: return "shred";
      case Backend::OsThread: return "os-thread";
    }
    return "?";
}

namespace {

/** Each stub occupies a fixed 8-instruction slot so both backends export
 *  every symbol at the same address — the workload binary is therefore
 *  bit-identical across backends, which is the Table-2 porting story
 *  made mechanical. */
constexpr std::size_t kSlotInsts = 8;

void
emitRt(ProgramBuilder &b, Rt svc)
{
    b.rtcall(static_cast<Word>(svc));
    b.ret();
}

void
emitTouchRt(ProgramBuilder &b, Rt svc)
{
    b.ld(9, 0, 0, 8); // touch the sync word: demand-fault its page
    b.rtcall(static_cast<Word>(svc));
    b.ret();
}

void
emitSys(ProgramBuilder &b, os::Sys n)
{
    b.syscall(static_cast<Word>(n));
    b.ret();
}

} // namespace

isa::Program
buildStubLibrary(Backend backend)
{
    ProgramBuilder b;
    bool shred = backend == Backend::Shred;

    struct Slot {
        const char *name;
        std::function<void()> emit;
    };

    // The proxy_stub label must be known before rt_init emits SEMONITOR;
    // compute it from the fixed slot layout (slot 1).
    const VAddr proxyStubAddr =
        kStubBase + 1 * kSlotInsts * isa::kInstBytes;

    std::vector<Slot> slots = {
        {"rt_init",
         [&] {
             if (shred) {
                 // Register the generic proxy handler (§2.5): a single
                 // handler on the OMS covers every proxy condition.
                 b.semonitorAbs(Scenario::ProxyRequest, proxyStubAddr);
                 b.rtcall(static_cast<Word>(Rt::Init));
                 b.ret();
             } else {
                 b.rtcall(static_cast<Word>(Rt::Init));
                 b.ret();
             }
         }},
        {"proxy_stub",
         [&] {
             if (shred) {
                 b.rtcall(static_cast<Word>(Rt::Proxy));
                 b.yret();
             } else {
                 b.halt();
             }
         }},
        {"ams_entry",
         [&] {
             if (shred) {
                 // Gang-scheduler pull loop (Figure 3): SIGNALed to idle
                 // sequencers as the shred continuation.
                 auto loop = b.newLabel();
                 b.bind(loop);
                 b.rtcall(static_cast<Word>(Rt::SchedNext));
                 b.jmp(loop);
             } else {
                 b.halt();
             }
         }},
        {"shred_done",
         [&] {
             if (shred) {
                 auto loop = b.newLabel();
                 b.bind(loop);
                 b.rtcall(static_cast<Word>(Rt::ShredExit));
                 b.jmp(loop);
             } else {
                 b.syscall(static_cast<Word>(os::Sys::ExitThread));
                 b.halt();
             }
         }},
        {"shred_create", [&] { emitRt(b, Rt::ShredCreate); }},
        {"join_all", [&] { emitRt(b, Rt::JoinAll); }},
        {"shred_self", [&] { emitRt(b, Rt::ShredSelf); }},
        {"yield",
         [&] {
             if (shred)
                 emitRt(b, Rt::ShredYield);
             else
                 emitSys(b, os::Sys::Yield);
         }},
        {"mutex_lock", [&] { emitTouchRt(b, Rt::MutexLock); }},
        {"mutex_unlock", [&] { emitRt(b, Rt::MutexUnlock); }},
        {"barrier_wait", [&] { emitTouchRt(b, Rt::BarrierWait); }},
        {"sem_wait", [&] { emitTouchRt(b, Rt::SemWait); }},
        {"sem_post", [&] { emitRt(b, Rt::SemPost); }},
        {"cond_wait", [&] { emitTouchRt(b, Rt::CondWait); }},
        {"cond_signal", [&] { emitRt(b, Rt::CondSignal); }},
        {"cond_broadcast", [&] { emitRt(b, Rt::CondBroadcast); }},
        {"event_wait", [&] { emitTouchRt(b, Rt::EventWait); }},
        {"event_set", [&] { emitRt(b, Rt::EventSet); }},
        {"malloc", [&] { emitRt(b, Rt::Malloc); }},
        {"prefault",
         [&] {
             // §5.3 page probe: touch one byte per page of [r0, r0+r1)
             // with real guest loads so every probe faults
             // architecturally on the probing (OMS) sequencer.
             auto loop = b.newLabel();
             auto done = b.newLabel();
             b.bind(loop);
             b.cmpi(1, 0);
             b.jcc(isa::Cond::Le, done);
             b.ld(9, 0, 0, 1);
             b.addi(0, 0, 4096);
             b.subi(1, 1, 4096);
             b.jmp(loop);
             b.bind(done);
             b.ret();
         }},
        {"exit_process",
         [&] {
             if (shred)
                 b.rtcall(static_cast<Word>(Rt::ExitProcess));
             else
                 b.syscall(static_cast<Word>(os::Sys::ExitProcess));
             b.halt(); // unreachable
         }},
        {"log_write",
         [&] {
             // write(fd=r0, buf=r1, len=r2): a real OS service both
             // backends route through the kernel.
             emitSys(b, os::Sys::Write);
         }},
    };

    for (std::size_t i = 0; i < slots.size(); ++i) {
        std::size_t slotStart = i * kSlotInsts;
        while (b.here() < slotStart)
            b.nop();
        if (b.here() != slotStart)
            panic("stub '%s' overflowed its predecessor's slot",
                  slots[i].name);
        b.exportHere(slots[i].name);
        slots[i].emit();
        if (b.here() > slotStart + kSlotInsts)
            panic("stub '%s' exceeds %zu instructions", slots[i].name,
                  kSlotInsts);
    }

    return b.finish(kStubBase);
}

} // namespace misp::rt
