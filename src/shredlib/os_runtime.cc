#include "os_runtime.hh"

#include <algorithm>

namespace misp::rt {

using cpu::Sequencer;
using arch::MispProcessor;
using os::Sys;

OsApiRuntime::OsApiRuntime(stats::StatGroup *parent, RtCosts costs)
    : costs_(costs),
      statGroup_("osrt", parent),
      threadsSpawned_(&statGroup_, "threadsSpawned",
                      "kernel threads created for shred_create"),
      futexBlocks_(&statGroup_, "futexBlocks",
                   "synchronization ops that blocked in the kernel"),
      spinAcquires_(&statGroup_, "spinAcquires",
                    "locks acquired on the user-level fast path")
{
    isa::Program stubs = buildStubLibrary(Backend::OsThread);
    symShredDone_ = stubs.symbol("shred_done");
}

OsApiRuntime::~OsApiRuntime() = default;

OsApiRuntime::Group &
OsApiRuntime::groupOf(MispProcessor &proc)
{
    os::OsThread *t = proc.currentThread();
    MISP_ASSERT(t != nullptr);
    os::Process *p = t->process();
    auto it = groups_.find(p);
    if (it == groups_.end()) {
        auto group = std::make_unique<Group>();
        group->process = p;
        group->main = t;
        it = groups_.emplace(p, std::move(group)).first;
    }
    return *it->second;
}

mem::AddressSpace &
OsApiRuntime::as(MispProcessor &proc)
{
    return proc.currentThread()->process()->addressSpace();
}

void
OsApiRuntime::rewind(Sequencer &seq)
{
    // The RTCALL advanced EIP before dispatching to us; stepping back one
    // instruction makes the service re-execute when the thread resumes.
    seq.context().eip -= isa::kInstBytes;
}

Cycles
OsApiRuntime::kernelCall(MispProcessor &proc, Sequencer &seq, Sys number,
                         std::array<Word, 4> args, bool patchRet)
{
    os::OsThread *t = proc.currentThread();
    MISP_ASSERT(t != nullptr);
    seq.enterKernelEpisode();
    os::Kernel *kernel = &proc.kernel();
    int cpu = proc.cpuId();
    Sequencer *seqPtr = &seq;
    proc.raiseSyscallEpisode([kernel, cpu, t, number, args, patchRet,
                              seqPtr] {
        os::KernelResult res =
            kernel->syscall(cpu, *t, static_cast<Word>(number), args);
        if (patchRet)
            seqPtr->context().regs[0] = res.retval;
        return res;
    });
    return 10; // trap issue; the Ring-0 time is charged by the episode
}

// ---------------------------------------------------------------------
// Services
// ---------------------------------------------------------------------

Cycles
OsApiRuntime::doShredCreate(MispProcessor &proc, Sequencer &seq)
{
    Group &g = groupOf(proc);
    (void)g;
    VAddr fn = seq.context().regs[0];
    Word arg = seq.context().regs[1];

    VAddr stackBase = as(proc).allocRegion(kStackBytes, /*writable=*/true,
                                           "threadstack");
    VAddr sp = stackBase + kStackBytes - 8;
    as(proc).pokeWord(sp, symShredDone_, 8);

    ++threadsSpawned_;
    return costs_.shredCreate +
           kernelCall(proc, seq, Sys::ThreadCreate, {fn, sp, arg, 0},
                      /*patchRet=*/true);
}

Cycles
OsApiRuntime::doJoinAll(MispProcessor &proc, Sequencer &seq)
{
    Group &g = groupOf(proc);
    os::OsThread *self = proc.currentThread();
    for (os::OsThread *t : g.process->threads()) {
        if (t == g.main || t == self)
            continue;
        if (t->state() != os::ThreadState::Done) {
            // Block on this one, then re-execute to find the next.
            rewind(seq);
            return kernelCall(proc, seq, Sys::ThreadJoin,
                              {t->tid(), 0, 0, 0}, /*patchRet=*/false);
        }
    }
    return costs_.queueOp; // all joined
}

Cycles
OsApiRuntime::doMutexLock(MispProcessor &proc, Sequencer &seq)
{
    Group &g = groupOf(proc);
    VAddr addr = seq.context().regs[0];
    Tid self = proc.currentThread()->tid();

    // Returning from a kernel block? Account the waiter slot.
    auto waitIt = g.mutexWaiting.find(self);
    bool wasWaiting = waitIt != g.mutexWaiting.end() &&
                      waitIt->second == addr;
    if (wasWaiting)
        g.mutexWaiting.erase(waitIt);

    Word word = as(proc).peekWord(addr, 8);
    if (word == 0) {
        if (wasWaiting)
            --g.waiters[addr];
        // Acquire; mark contended (2) if someone is still queued so the
        // eventual unlock issues a wake.
        bool contended = g.waiters[addr] > 0;
        as(proc).pokeWord(addr, contended ? 2 : 1, 8);
        ++spinAcquires_;
        return costs_.fastSync;
    }

    // Contended: brief user-level spin, then block in the kernel.
    Cycles spin = costs_.spinTry * costs_.spinTries;
    as(proc).pokeWord(addr, 2, 8);
    if (!wasWaiting)
        ++g.waiters[addr];
    g.mutexWaiting[self] = addr;
    ++futexBlocks_;
    rewind(seq);
    return spin + kernelCall(proc, seq, Sys::FutexWait, {addr, 2, 0, 0},
                             /*patchRet=*/false);
}

Cycles
OsApiRuntime::doMutexUnlock(MispProcessor &proc, Sequencer &seq)
{
    Group &g = groupOf(proc);
    VAddr addr = seq.context().regs[0];
    Word word = as(proc).peekWord(addr, 8);
    as(proc).pokeWord(addr, 0, 8);
    if (word == 2 || g.waiters[addr] > 0) {
        return costs_.fastSync +
               kernelCall(proc, seq, Sys::FutexWake, {addr, 1, 0, 0},
                          /*patchRet=*/false);
    }
    return costs_.fastSync;
}

Cycles
OsApiRuntime::doBarrierWait(MispProcessor &proc, Sequencer &seq)
{
    Group &g = groupOf(proc);
    VAddr addr = seq.context().regs[0];
    unsigned count = static_cast<unsigned>(seq.context().regs[1]);
    MISP_ASSERT(count > 0);

    Word gen = as(proc).peekWord(addr, 8);
    unsigned &arrived = g.barrierArrived[addr];
    ++arrived;
    if (arrived >= count) {
        arrived = 0;
        as(proc).pokeWord(addr, gen + 1, 8);
        return costs_.fastSync +
               kernelCall(proc, seq, Sys::FutexWake,
                          {addr, ~Word{0}, 0, 0}, /*patchRet=*/false);
    }
    ++futexBlocks_;
    // Wait for the generation to advance; a no-wait return (generation
    // already bumped) simply falls through.
    return costs_.fastSync +
           kernelCall(proc, seq, Sys::FutexWait, {addr, gen, 0, 0},
                      /*patchRet=*/false);
}

Cycles
OsApiRuntime::doSemWait(MispProcessor &proc, Sequencer &seq)
{
    VAddr addr = seq.context().regs[0];
    Word value = as(proc).peekWord(addr, 8);
    if (value > 0) {
        as(proc).pokeWord(addr, value - 1, 8);
        ++spinAcquires_;
        return costs_.fastSync;
    }
    ++futexBlocks_;
    rewind(seq);
    return kernelCall(proc, seq, Sys::FutexWait, {addr, 0, 0, 0},
                      /*patchRet=*/false);
}

Cycles
OsApiRuntime::doSemPost(MispProcessor &proc, Sequencer &seq)
{
    VAddr addr = seq.context().regs[0];
    Word value = as(proc).peekWord(addr, 8);
    as(proc).pokeWord(addr, value + 1, 8);
    // Kernel-object semantics (Win32 semaphores live in the kernel):
    // every post may release a waiter.
    return costs_.fastSync +
           kernelCall(proc, seq, Sys::FutexWake, {addr, 1, 0, 0},
                      /*patchRet=*/false);
}

Cycles
OsApiRuntime::doCondWait(MispProcessor &proc, Sequencer &seq)
{
    Group &g = groupOf(proc);
    VAddr condAddr = seq.context().regs[0];
    VAddr mutexAddr = seq.context().regs[1];
    Tid self = proc.currentThread()->tid();

    auto it = g.condWaiting.find(self);
    if (it == g.condWaiting.end()) {
        // Phase 1: release the mutex, record the generation, and wait.
        CondState st;
        st.phase = CondPhase::Wait;
        st.genAtWait = as(proc).peekWord(condAddr, 8);
        g.condWaiting.emplace(self, st);

        Word word = as(proc).peekWord(mutexAddr, 8);
        as(proc).pokeWord(mutexAddr, 0, 8);
        ++futexBlocks_;
        rewind(seq);
        if (word == 2 || g.waiters[mutexAddr] > 0) {
            // The unlock must wake a mutex waiter first; the condition
            // wait happens on re-execution (phase stays Wait but the
            // generation was already captured).
            return costs_.fastSync +
                   kernelCall(proc, seq, Sys::FutexWake,
                              {mutexAddr, 1, 0, 0}, /*patchRet=*/false);
        }
        return costs_.fastSync +
               kernelCall(proc, seq, Sys::FutexWait,
                          {condAddr, st.genAtWait, 0, 0},
                          /*patchRet=*/false);
    }

    CondState &st = it->second;
    if (st.phase == CondPhase::Wait) {
        Word gen = as(proc).peekWord(condAddr, 8);
        if (gen == st.genAtWait) {
            // Still unsignaled (we got here via the unlock-wake path):
            // block on the condition word now.
            rewind(seq);
            return kernelCall(proc, seq, Sys::FutexWait,
                              {condAddr, st.genAtWait, 0, 0},
                              /*patchRet=*/false);
        }
        st.phase = CondPhase::Relock;
    }

    // Phase 2: re-acquire the mutex.
    Word word = as(proc).peekWord(mutexAddr, 8);
    if (word == 0) {
        bool contended = g.waiters[mutexAddr] > 0;
        as(proc).pokeWord(mutexAddr, contended ? 2 : 1, 8);
        g.condWaiting.erase(it);
        return costs_.fastSync;
    }
    as(proc).pokeWord(mutexAddr, 2, 8);
    rewind(seq);
    return costs_.spinTry * costs_.spinTries +
           kernelCall(proc, seq, Sys::FutexWait, {mutexAddr, 2, 0, 0},
                      /*patchRet=*/false);
}

Cycles
OsApiRuntime::doCondSignal(MispProcessor &proc, Sequencer &seq,
                           bool broadcast)
{
    VAddr condAddr = seq.context().regs[0];
    Word gen = as(proc).peekWord(condAddr, 8);
    as(proc).pokeWord(condAddr, gen + 1, 8);
    Word n = broadcast ? ~Word{0} : 1;
    return costs_.fastSync +
           kernelCall(proc, seq, Sys::FutexWake, {condAddr, n, 0, 0},
                      /*patchRet=*/false);
}

Cycles
OsApiRuntime::doEventWait(MispProcessor &proc, Sequencer &seq)
{
    VAddr addr = seq.context().regs[0];
    if (as(proc).peekWord(addr, 8) != 0)
        return costs_.fastSync;
    ++futexBlocks_;
    rewind(seq);
    return kernelCall(proc, seq, Sys::FutexWait, {addr, 0, 0, 0},
                      /*patchRet=*/false);
}

Cycles
OsApiRuntime::doEventSet(MispProcessor &proc, Sequencer &seq)
{
    VAddr addr = seq.context().regs[0];
    as(proc).pokeWord(addr, 1, 8);
    return costs_.fastSync +
           kernelCall(proc, seq, Sys::FutexWake, {addr, ~Word{0}, 0, 0},
                      /*patchRet=*/false);
}

Cycles
OsApiRuntime::doMalloc(MispProcessor &proc, Sequencer &seq)
{
    std::uint64_t size = seq.context().regs[0];
    if (size == 0)
        size = 8;
    VAddr addr = as(proc).allocRegion(size, /*writable=*/true, "malloc");
    seq.context().regs[0] = addr;
    return costs_.malloc;
}

Cycles
OsApiRuntime::rtcall(MispProcessor &proc, Sequencer &seq, Word service)
{
    switch (static_cast<Rt>(service)) {
      case Rt::Init:
        groupOf(proc);
        return costs_.queueOp;
      case Rt::ShredCreate:
        return doShredCreate(proc, seq);
      case Rt::JoinAll:
        return doJoinAll(proc, seq);
      case Rt::ShredSelf:
        // Models a TLS read; no kernel transition.
        seq.context().regs[0] = proc.currentThread()->tid();
        return costs_.queueOp;
      case Rt::MutexLock:
        return doMutexLock(proc, seq);
      case Rt::MutexUnlock:
        return doMutexUnlock(proc, seq);
      case Rt::BarrierWait:
        return doBarrierWait(proc, seq);
      case Rt::SemWait:
        return doSemWait(proc, seq);
      case Rt::SemPost:
        return doSemPost(proc, seq);
      case Rt::CondWait:
        return doCondWait(proc, seq);
      case Rt::CondSignal:
        return doCondSignal(proc, seq, false);
      case Rt::CondBroadcast:
        return doCondSignal(proc, seq, true);
      case Rt::EventWait:
        return doEventWait(proc, seq);
      case Rt::EventSet:
        return doEventSet(proc, seq);
      case Rt::Malloc:
        return doMalloc(proc, seq);
      default:
        warn("osrt: unexpected RTCALL %llu",
             (unsigned long long)service);
        return 0;
    }
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

void
OsApiRuntime::snapSave(snap::Serializer &s) const
{
    std::vector<const Group *> ordered;
    ordered.reserve(groups_.size());
    // misplint: allow(det-unordered-iter) — sorted by pid below
    for (const auto &[process, group] : groups_) {
        (void)process;
        ordered.push_back(group.get());
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Group *a, const Group *b) {
                  return a->process->pid() < b->process->pid();
              });

    s.u64(ordered.size());
    for (const Group *g : ordered) {
        s.u64(g->process->pid());
        s.u64(g->main->tid());
        s.u64(g->waiters.size());
        for (const auto &[addr, count] : g->waiters) {
            s.u64(addr);
            s.i64(count);
        }
        s.u64(g->barrierArrived.size());
        for (const auto &[addr, arrived] : g->barrierArrived) {
            s.u64(addr);
            s.u32(arrived);
        }
        s.u64(g->mutexWaiting.size());
        for (const auto &[tid, addr] : g->mutexWaiting) {
            s.u64(tid);
            s.u64(addr);
        }
        s.u64(g->condWaiting.size());
        for (const auto &[tid, st] : g->condWaiting) {
            s.u64(tid);
            s.u8(static_cast<std::uint8_t>(st.phase));
            s.u64(st.genAtWait);
        }
    }
}

void
OsApiRuntime::snapRestore(snap::Deserializer &d, arch::MispSystem &sys)
{
    MISP_ASSERT(groups_.empty());
    std::uint64_t nGroups = d.u64();
    for (std::uint64_t i = 0; i < nGroups; ++i) {
        auto group = std::make_unique<Group>();
        group->process = sys.kernel().processByPid(static_cast<Pid>(d.u64()));
        if (!group->process)
            throw snap::SnapError("osrt: group names an unknown pid");
        group->main = sys.kernel().threadByTid(static_cast<Tid>(d.u64()));
        if (!group->main)
            throw snap::SnapError("osrt: group names an unknown tid");

        std::uint64_t nWaiters = d.u64();
        for (std::uint64_t k = 0; k < nWaiters; ++k) {
            VAddr addr = d.u64();
            group->waiters[addr] = static_cast<int>(d.i64());
        }
        std::uint64_t nBar = d.u64();
        for (std::uint64_t k = 0; k < nBar; ++k) {
            VAddr addr = d.u64();
            group->barrierArrived[addr] = d.u32();
        }
        std::uint64_t nMutex = d.u64();
        for (std::uint64_t k = 0; k < nMutex; ++k) {
            Tid tid = static_cast<Tid>(d.u64());
            group->mutexWaiting[tid] = d.u64();
        }
        std::uint64_t nCond = d.u64();
        for (std::uint64_t k = 0; k < nCond; ++k) {
            Tid tid = static_cast<Tid>(d.u64());
            CondState st;
            st.phase = static_cast<CondPhase>(d.u8());
            st.genAtWait = d.u64();
            group->condWaiting.emplace(tid, st);
        }

        os::Process *p = group->process;
        groups_.emplace(p, std::move(group));
    }
}

void
OsApiRuntime::onThreadLoaded(MispProcessor &proc, os::OsThread &t)
{
    (void)proc;
    (void)t;
}

void
OsApiRuntime::onThreadUnloading(MispProcessor &proc, os::OsThread &t)
{
    (void)proc;
    (void)t;
}

} // namespace misp::rt
