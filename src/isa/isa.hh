/**
 * @file
 * MISA: the micro instruction set architecture of the simulated machine.
 *
 * MISA is a compact 64-bit-register, 32-bit-address load/store ISA that
 * retains the IA-32 *system* semantics the MISP paper depends on (rings,
 * CR3 paging, faults) and adds the paper's MIMD extension:
 *
 *  - SIGNAL sid, eip, esp  — user-level inter-sequencer signal carrying a
 *    shred continuation <EIP, ESP> to the sequencer named by SID (§2.4).
 *  - SEMONITOR scenario, handler — YIELD-CONDITIONAL registration: map an
 *    ingress asynchronous scenario to a fly-weight handler (§2.4).
 *  - YRET — return from an asynchronous handler, resuming the interrupted
 *    shred at its saved EIP.
 *
 * Instructions are a fixed 16 bytes in guest memory: opcode, three
 * register fields, a condition/size subfield, and a 64-bit immediate.
 */

#ifndef MISP_ISA_ISA_HH
#define MISP_ISA_ISA_HH

#include <array>
#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace misp::isa {

/** Number of general-purpose registers. r15 doubles as the stack
 *  pointer (the paper's ESP). */
constexpr unsigned kNumRegs = 16;
constexpr unsigned kRegSp = 15;
/** Conventional argument/return registers of the MISA ABI. */
constexpr unsigned kRegRet = 0;
constexpr unsigned kRegArg0 = 0;
constexpr unsigned kRegArg1 = 1;
constexpr unsigned kRegArg2 = 2;
constexpr unsigned kRegArg3 = 3;

/** Fixed instruction width in guest memory. */
constexpr unsigned kInstBytes = 16;

/** Opcode space. Keep stable: encoded byte values follow enum order. */
enum class Opcode : std::uint8_t {
    Nop = 0,
    Halt,      ///< OMS: stop the thread; AMS: sequencer goes idle
    // Data movement
    MovI,      ///< rd = imm
    Mov,       ///< rd = rs1
    // ALU, register forms
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr, Sar,
    // ALU, immediate forms
    AddI, SubI, MulI, DivI,
    AndI, OrI, XorI, ShlI, ShrI,
    // Flags
    Cmp,       ///< flags = compare(rs1, rs2) signed
    CmpI,      ///< flags = compare(rs1, imm)
    // Memory: size encoded in the `sub` field (1,2,4,8)
    Ld,        ///< rd = mem[rs1 + imm]
    St,        ///< mem[rs1 + imm] = rs2
    Push,      ///< sp -= 8; mem[sp] = rs1
    Pop,       ///< rd = mem[sp]; sp += 8
    Lea,       ///< rd = rs1 + imm
    // Control: targets are absolute guest addresses in imm (or rs1)
    Jmp, JmpR,
    Jcc,       ///< conditional branch; condition in `sub`
    Call, CallR,
    Ret,
    // Atomic read-modify-write (LOCK semantics)
    Xchg,      ///< rd <-> mem[rs1]
    CmpXchg,   ///< if mem[rs1]==rd: mem[rs1]=rs2, ZF=1; else rd=mem[rs1]
    FetchAdd,  ///< rd = mem[rs1]; mem[rs1] += rs2
    Pause,     ///< spin-loop hint
    // Behavioural macro-op: models a block of FP/compute work
    Compute,   ///< retire after (imm + rs1_value_if_rs1!=0) cycles
    // Traps
    Syscall,   ///< OS service request, number = imm (Ring-0 trap)
    RtCall,    ///< user-level runtime (ShredLib) service, number = imm
    // Introspection
    SeqId,     ///< rd = own sequencer id (SID)
    NumSeq,    ///< rd = number of sequencers in this MISP processor
    RdTick,    ///< rd = current cycle count (TSC analog)
    // ---- MISP MIMD extension (§2.4) ----
    Signal,    ///< SIGNAL(sid=rs1, eip=rs2, esp=rd-as-source)
    Semonitor, ///< register trigger-response: scenario=sub, handler=imm
    Yret,      ///< return from asynchronous handler
    NumOpcodes
};

/** Branch conditions for Jcc, encoded in the `sub` field. */
enum class Cond : std::uint8_t {
    Eq = 0, Ne, Lt, Le, Gt, Ge, ///< signed, from FLAGS
    Ult, Uge,                   ///< unsigned
};

/** YIELD-CONDITIONAL scenario identifiers for SEMONITOR (§2.4, §2.5). */
enum class Scenario : std::uint8_t {
    IngressSignal = 0, ///< a SIGNAL arrived while a shred is running
    ProxyRequest = 1,  ///< (OMS only) an AMS raised a proxy-execution fault
    NumScenarios
};

/** FLAGS register layout. */
struct Flags {
    bool zf = false; ///< zero
    bool sf = false; ///< sign
    bool cf = false; ///< carry (unsigned borrow on compare)
    bool of = false; ///< overflow

    bool operator==(const Flags &) const = default;
};

/** A decoded MISA instruction. */
struct Instruction {
    Opcode op = Opcode::Nop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::uint8_t sub = 0; ///< size for Ld/St, condition for Jcc, scenario
    std::uint64_t imm = 0;

    bool operator==(const Instruction &) const = default;
};

/** Encode @p inst into the 16-byte guest representation. */
std::array<std::uint8_t, kInstBytes> encode(const Instruction &inst);

/** Decode 16 bytes fetched from guest memory.
 *  @return false if the opcode byte is out of range. */
bool decode(const std::uint8_t bytes[kInstBytes], Instruction *out);

/** Base execution latency of @p op in cycles (memory translation and
 *  Compute bursts add more). Values model a simple in-order core with a
 *  CPI near 1 for ALU work, matching the paper's "throughput is governed
 *  by event counts, not core microarchitecture" analysis. */
Cycles baseLatency(Opcode op);

/** Human-readable mnemonic. */
const char *opcodeName(Opcode op);
const char *condName(Cond cond);

/** One-line disassembly. */
std::string disassemble(const Instruction &inst);

/** True for opcodes that only the kernel may execute. MISA has none at
 *  present (the kernel is host-modeled), but the hook keeps the privilege
 *  check explicit in the sequencer. */
bool privileged(Opcode op);

} // namespace misp::isa

#endif // MISP_ISA_ISA_HH
