#include "isa.hh"

#include <cstring>
#include <sstream>

#include "sim/logging.hh"

namespace misp::isa {

std::array<std::uint8_t, kInstBytes>
encode(const Instruction &inst)
{
    std::array<std::uint8_t, kInstBytes> bytes{};
    bytes[0] = static_cast<std::uint8_t>(inst.op);
    bytes[1] = inst.rd;
    bytes[2] = inst.rs1;
    bytes[3] = inst.rs2;
    bytes[4] = inst.sub;
    // bytes[5..7] reserved
    std::memcpy(&bytes[8], &inst.imm, 8);
    return bytes;
}

bool
decode(const std::uint8_t bytes[kInstBytes], Instruction *out)
{
    if (bytes[0] >= static_cast<std::uint8_t>(Opcode::NumOpcodes))
        return false;
    out->op = static_cast<Opcode>(bytes[0]);
    out->rd = bytes[1];
    out->rs1 = bytes[2];
    out->rs2 = bytes[3];
    out->sub = bytes[4];
    std::memcpy(&out->imm, &bytes[8], 8);
    if (out->rd >= kNumRegs || out->rs1 >= kNumRegs || out->rs2 >= kNumRegs)
        return false;
    return true;
}

Cycles
baseLatency(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::MovI:
      case Opcode::Mov:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sar:
      case Opcode::AddI:
      case Opcode::SubI:
      case Opcode::AndI:
      case Opcode::OrI:
      case Opcode::XorI:
      case Opcode::ShlI:
      case Opcode::ShrI:
      case Opcode::Cmp:
      case Opcode::CmpI:
      case Opcode::Lea:
      case Opcode::SeqId:
      case Opcode::NumSeq:
      case Opcode::RdTick:
        return 1;
      case Opcode::Mul:
      case Opcode::MulI:
        return 3;
      case Opcode::Div:
      case Opcode::DivI:
      case Opcode::Rem:
        return 20;
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::Push:
      case Opcode::Pop:
        return 1; // memory cycles added by the MMU
      case Opcode::Jmp:
      case Opcode::JmpR:
      case Opcode::Jcc:
        return 2; // taken-branch redirect
      case Opcode::Call:
      case Opcode::CallR:
      case Opcode::Ret:
        return 3;
      case Opcode::Xchg:
      case Opcode::CmpXchg:
      case Opcode::FetchAdd:
        return 20; // LOCK-prefixed RMW on the coherence fabric
      case Opcode::Pause:
        return 10;
      case Opcode::Compute:
        return 1; // burst cycles come from the immediate
      case Opcode::Syscall:
        return 10; // plus the modeled ring-transition costs
      case Opcode::RtCall:
        return 5;
      case Opcode::Signal:
        return 2; // egress issue; delivery latency is the fabric's cost
      case Opcode::Semonitor:
        return 2;
      case Opcode::Yret:
        return 3;
      case Opcode::NumOpcodes:
        break;
    }
    panic("baseLatency: bad opcode %d", static_cast<int>(op));
}

bool
privileged(Opcode op)
{
    (void)op;
    return false;
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
      case Opcode::MovI: return "movi";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Sar: return "sar";
      case Opcode::AddI: return "addi";
      case Opcode::SubI: return "subi";
      case Opcode::MulI: return "muli";
      case Opcode::DivI: return "divi";
      case Opcode::AndI: return "andi";
      case Opcode::OrI: return "ori";
      case Opcode::XorI: return "xori";
      case Opcode::ShlI: return "shli";
      case Opcode::ShrI: return "shri";
      case Opcode::Cmp: return "cmp";
      case Opcode::CmpI: return "cmpi";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Push: return "push";
      case Opcode::Pop: return "pop";
      case Opcode::Lea: return "lea";
      case Opcode::Jmp: return "jmp";
      case Opcode::JmpR: return "jmpr";
      case Opcode::Jcc: return "jcc";
      case Opcode::Call: return "call";
      case Opcode::CallR: return "callr";
      case Opcode::Ret: return "ret";
      case Opcode::Xchg: return "xchg";
      case Opcode::CmpXchg: return "cmpxchg";
      case Opcode::FetchAdd: return "fetchadd";
      case Opcode::Pause: return "pause";
      case Opcode::Compute: return "compute";
      case Opcode::Syscall: return "syscall";
      case Opcode::RtCall: return "rtcall";
      case Opcode::SeqId: return "seqid";
      case Opcode::NumSeq: return "numseq";
      case Opcode::RdTick: return "rdtick";
      case Opcode::Signal: return "signal";
      case Opcode::Semonitor: return "semonitor";
      case Opcode::Yret: return "yret";
      case Opcode::NumOpcodes: break;
    }
    return "???";
}

const char *
condName(Cond cond)
{
    switch (cond) {
      case Cond::Eq: return "eq";
      case Cond::Ne: return "ne";
      case Cond::Lt: return "lt";
      case Cond::Le: return "le";
      case Cond::Gt: return "gt";
      case Cond::Ge: return "ge";
      case Cond::Ult: return "ult";
      case Cond::Uge: return "uge";
    }
    return "??";
}

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    auto reg = [](unsigned r) { return "r" + std::to_string(r); };
    os << opcodeName(inst.op);
    switch (inst.op) {
      case Opcode::MovI:
      case Opcode::AddI:
      case Opcode::SubI:
      case Opcode::MulI:
      case Opcode::DivI:
      case Opcode::AndI:
      case Opcode::OrI:
      case Opcode::XorI:
      case Opcode::ShlI:
      case Opcode::ShrI:
        os << " " << reg(inst.rd);
        if (inst.op != Opcode::MovI)
            os << ", " << reg(inst.rs1);
        os << ", " << static_cast<std::int64_t>(inst.imm);
        break;
      case Opcode::Mov:
      case Opcode::SeqId:
      case Opcode::NumSeq:
      case Opcode::RdTick:
      case Opcode::Pop:
        os << " " << reg(inst.rd);
        if (inst.op == Opcode::Mov)
            os << ", " << reg(inst.rs1);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sar:
        os << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
           << reg(inst.rs2);
        break;
      case Opcode::Cmp:
        os << " " << reg(inst.rs1) << ", " << reg(inst.rs2);
        break;
      case Opcode::CmpI:
        os << " " << reg(inst.rs1) << ", "
           << static_cast<std::int64_t>(inst.imm);
        break;
      case Opcode::Ld:
        os << int(inst.sub) << " " << reg(inst.rd) << ", [" << reg(inst.rs1)
           << "+" << static_cast<std::int64_t>(inst.imm) << "]";
        break;
      case Opcode::St:
        os << int(inst.sub) << " [" << reg(inst.rs1) << "+"
           << static_cast<std::int64_t>(inst.imm) << "], " << reg(inst.rs2);
        break;
      case Opcode::Push:
        os << " " << reg(inst.rs1);
        break;
      case Opcode::Lea:
        os << " " << reg(inst.rd) << ", [" << reg(inst.rs1) << "+"
           << static_cast<std::int64_t>(inst.imm) << "]";
        break;
      case Opcode::Jmp:
      case Opcode::Call:
        os << " 0x" << std::hex << inst.imm;
        break;
      case Opcode::Jcc:
        os << "." << condName(static_cast<Cond>(inst.sub)) << " 0x"
           << std::hex << inst.imm;
        break;
      case Opcode::JmpR:
      case Opcode::CallR:
        os << " " << reg(inst.rs1);
        break;
      case Opcode::Xchg:
      case Opcode::FetchAdd:
        os << " " << reg(inst.rd) << ", [" << reg(inst.rs1) << "]";
        if (inst.op == Opcode::FetchAdd)
            os << ", " << reg(inst.rs2);
        break;
      case Opcode::CmpXchg:
        os << " " << reg(inst.rd) << ", [" << reg(inst.rs1) << "], "
           << reg(inst.rs2);
        break;
      case Opcode::Compute:
        os << " " << inst.imm;
        if (inst.rs1 != 0)
            os << " + " << reg(inst.rs1);
        break;
      case Opcode::Syscall:
      case Opcode::RtCall:
        os << " " << inst.imm;
        break;
      case Opcode::Signal:
        os << " sid=" << reg(inst.rs1) << ", eip=" << reg(inst.rs2)
           << ", esp=" << reg(inst.rd);
        break;
      case Opcode::Semonitor:
        os << " scenario=" << int(inst.sub) << ", handler=0x" << std::hex
           << inst.imm;
        break;
      default:
        break;
    }
    return os.str();
}

} // namespace misp::isa
