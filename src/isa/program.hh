/**
 * @file
 * Programmatic MISA code generation with label fixups.
 *
 * ProgramBuilder is the authoring tool used by workloads, ShredLib stubs
 * and tests: it emits Instructions, supports forward label references,
 * and resolves them to absolute guest addresses when the program is
 * placed at its base address. Program bundles the finished image plus
 * its symbol table for loading into an AddressSpace.
 */

#ifndef MISP_ISA_PROGRAM_HH
#define MISP_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace misp::isa {

/** A finished, relocated code image. */
struct Program {
    VAddr base = 0;
    std::vector<Instruction> insts;
    std::map<std::string, VAddr> symbols;

    std::uint64_t byteSize() const { return insts.size() * kInstBytes; }

    /** Raw bytes for loading into guest memory. */
    std::vector<std::uint8_t> bytes() const;

    /** Address of a named symbol; fatal() if missing. */
    VAddr symbol(const std::string &name) const;
};

/** Emits MISA code with label support. */
class ProgramBuilder
{
  public:
    using Label = std::uint32_t;

    ProgramBuilder() = default;

    /** Create an unbound label. */
    Label newLabel();

    /** Bind @p label to the current emission point. */
    void bind(Label label);

    /** Create-and-bind a named symbol at the current point (exported in
     *  the finished Program's symbol table). */
    Label exportHere(const std::string &name);

    /** Export an existing label under @p name in the symbol table. */
    void exportLabel(const std::string &name, Label label);

    /** Current instruction index (useful for size accounting). */
    std::size_t here() const { return insts_.size(); }

    // ---- emitters ----------------------------------------------------
    void nop() { emit({Opcode::Nop}); }
    void halt() { emit({Opcode::Halt}); }

    void movi(unsigned rd, std::uint64_t imm);
    void mov(unsigned rd, unsigned rs1);

    void alu(Opcode op, unsigned rd, unsigned rs1, unsigned rs2);
    void aluImm(Opcode op, unsigned rd, unsigned rs1, std::uint64_t imm);

    void add(unsigned rd, unsigned a, unsigned b) { alu(Opcode::Add, rd, a, b); }
    void sub(unsigned rd, unsigned a, unsigned b) { alu(Opcode::Sub, rd, a, b); }
    void mul(unsigned rd, unsigned a, unsigned b) { alu(Opcode::Mul, rd, a, b); }
    void div(unsigned rd, unsigned a, unsigned b) { alu(Opcode::Div, rd, a, b); }
    void addi(unsigned rd, unsigned rs, std::int64_t v)
    { aluImm(Opcode::AddI, rd, rs, static_cast<std::uint64_t>(v)); }
    void subi(unsigned rd, unsigned rs, std::int64_t v)
    { aluImm(Opcode::SubI, rd, rs, static_cast<std::uint64_t>(v)); }
    void muli(unsigned rd, unsigned rs, std::int64_t v)
    { aluImm(Opcode::MulI, rd, rs, static_cast<std::uint64_t>(v)); }
    void shli(unsigned rd, unsigned rs, unsigned v)
    { aluImm(Opcode::ShlI, rd, rs, v); }
    void shri(unsigned rd, unsigned rs, unsigned v)
    { aluImm(Opcode::ShrI, rd, rs, v); }
    void andi(unsigned rd, unsigned rs, std::uint64_t v)
    { aluImm(Opcode::AndI, rd, rs, v); }

    void cmp(unsigned a, unsigned b);
    void cmpi(unsigned a, std::int64_t imm);

    void ld(unsigned rd, unsigned base, std::int64_t off, unsigned size = 8);
    void st(unsigned base, std::int64_t off, unsigned rs, unsigned size = 8);
    void push(unsigned rs);
    void pop(unsigned rd);
    void lea(unsigned rd, unsigned base, std::int64_t off);

    void jmp(Label target);
    void jmpAbs(VAddr target);
    void jmpr(unsigned rs);
    void jcc(Cond cond, Label target);
    void call(Label target);
    void callAbs(VAddr target);
    void callr(unsigned rs);
    void ret() { emit({Opcode::Ret}); }

    void xchg(unsigned rd, unsigned addrReg);
    void cmpxchg(unsigned expected, unsigned addrReg, unsigned desired);
    void fetchadd(unsigned rd, unsigned addrReg, unsigned addendReg);
    void pause() { emit({Opcode::Pause}); }

    void compute(std::uint64_t cycles, unsigned plusReg = 0);
    void syscall(std::uint64_t number);
    void rtcall(std::uint64_t service);

    void seqid(unsigned rd);
    void numseq(unsigned rd);
    void rdtick(unsigned rd);

    /** SIGNAL(sid=reg, eip=reg, esp=reg) — the MISP egress instruction. */
    void signal(unsigned sidReg, unsigned eipReg, unsigned espReg);
    /** SEMONITOR: register @p handler for @p scenario. */
    void semonitor(Scenario scenario, Label handler);
    void semonitorAbs(Scenario scenario, VAddr handler);
    void yret() { emit({Opcode::Yret}); }

    /** Load the (eventual) absolute address of @p label into @p rd. */
    void leaLabel(unsigned rd, Label label);

    /** Append a raw instruction (escape hatch for tests). */
    void raw(const Instruction &inst) { emit(inst); }

    /** Resolve labels against @p base and produce the image. */
    Program finish(VAddr base);

  private:
    struct Fixup {
        std::size_t instIndex;
        Label label;
    };

    void emit(Instruction inst) { insts_.push_back(inst); }
    void emitWithFixup(Instruction inst, Label label);

    std::vector<Instruction> insts_;
    std::vector<std::int64_t> labelTargets_; ///< inst index or -1
    std::vector<Fixup> fixups_;
    std::map<std::string, Label> exports_;
};

} // namespace misp::isa

#endif // MISP_ISA_PROGRAM_HH
