/**
 * @file
 * Two-pass text assembler for MISA.
 *
 * Used by examples and tests to author small guest programs readably.
 * Syntax, one instruction per line:
 *
 * @code
 *   ; comment
 *   main:
 *       movi  r1, 42
 *       addi  r2, r1, 8
 *       ld8   r3, [r2+0]        ; sizes: ld1/ld2/ld4/ld8, st1/st2/st4/st8
 *       st8   [r2+8], r3
 *       cmp   r1, r2
 *       jcc.ne main             ; conditions: eq ne lt le gt ge ult uge
 *       call  func
 *       signal r1, r2, r3       ; sid, eip, esp
 *       semonitor ingress, handler
 *       yret
 *       compute 100
 *       rtcall 5
 *       syscall 1
 *       halt
 * @endcode
 *
 * Numeric immediates accept decimal, hex (0x..) and negative values.
 * Label operands may be used wherever an immediate address is expected.
 */

#ifndef MISP_ISA_ASSEMBLER_HH
#define MISP_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace misp::isa {

/** Raised on malformed assembly input. */
class AsmError : public std::runtime_error
{
  public:
    AsmError(unsigned line, const std::string &msg)
        : std::runtime_error("line " + std::to_string(line) + ": " + msg),
          line_(line)
    {}

    unsigned line() const { return line_; }

  private:
    unsigned line_;
};

/** Assemble @p source into a Program placed at @p base.
 *  All labels are exported as symbols. @throws AsmError. */
Program assemble(const std::string &source, VAddr base);

} // namespace misp::isa

#endif // MISP_ISA_ASSEMBLER_HH
