#include "program.hh"

#include <cstring>

namespace misp::isa {

std::vector<std::uint8_t>
Program::bytes() const
{
    std::vector<std::uint8_t> out;
    out.reserve(insts.size() * kInstBytes);
    for (const Instruction &inst : insts) {
        auto enc = encode(inst);
        out.insert(out.end(), enc.begin(), enc.end());
    }
    return out;
}

VAddr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("program symbol '%s' not found", name.c_str());
    return it->second;
}

ProgramBuilder::Label
ProgramBuilder::newLabel()
{
    labelTargets_.push_back(-1);
    return static_cast<Label>(labelTargets_.size() - 1);
}

void
ProgramBuilder::bind(Label label)
{
    MISP_ASSERT(label < labelTargets_.size());
    if (labelTargets_[label] >= 0)
        panic("label %u bound twice", label);
    labelTargets_[label] = static_cast<std::int64_t>(insts_.size());
}

ProgramBuilder::Label
ProgramBuilder::exportHere(const std::string &name)
{
    Label l = newLabel();
    bind(l);
    exportLabel(name, l);
    return l;
}

void
ProgramBuilder::exportLabel(const std::string &name, Label label)
{
    MISP_ASSERT(label < labelTargets_.size());
    if (!exports_.emplace(name, label).second)
        panic("symbol '%s' exported twice", name.c_str());
}

void
ProgramBuilder::emitWithFixup(Instruction inst, Label label)
{
    MISP_ASSERT(label < labelTargets_.size());
    fixups_.push_back(Fixup{insts_.size(), label});
    emit(inst);
}

void
ProgramBuilder::movi(unsigned rd, std::uint64_t imm)
{
    emit({Opcode::MovI, std::uint8_t(rd), 0, 0, 0, imm});
}

void
ProgramBuilder::mov(unsigned rd, unsigned rs1)
{
    emit({Opcode::Mov, std::uint8_t(rd), std::uint8_t(rs1)});
}

void
ProgramBuilder::alu(Opcode op, unsigned rd, unsigned rs1, unsigned rs2)
{
    emit({op, std::uint8_t(rd), std::uint8_t(rs1), std::uint8_t(rs2)});
}

void
ProgramBuilder::aluImm(Opcode op, unsigned rd, unsigned rs1,
                       std::uint64_t imm)
{
    emit({op, std::uint8_t(rd), std::uint8_t(rs1), 0, 0, imm});
}

void
ProgramBuilder::cmp(unsigned a, unsigned b)
{
    emit({Opcode::Cmp, 0, std::uint8_t(a), std::uint8_t(b)});
}

void
ProgramBuilder::cmpi(unsigned a, std::int64_t imm)
{
    emit({Opcode::CmpI, 0, std::uint8_t(a), 0, 0,
          static_cast<std::uint64_t>(imm)});
}

void
ProgramBuilder::ld(unsigned rd, unsigned base, std::int64_t off,
                   unsigned size)
{
    emit({Opcode::Ld, std::uint8_t(rd), std::uint8_t(base), 0,
          std::uint8_t(size), static_cast<std::uint64_t>(off)});
}

void
ProgramBuilder::st(unsigned base, std::int64_t off, unsigned rs,
                   unsigned size)
{
    emit({Opcode::St, 0, std::uint8_t(base), std::uint8_t(rs),
          std::uint8_t(size), static_cast<std::uint64_t>(off)});
}

void
ProgramBuilder::push(unsigned rs)
{
    emit({Opcode::Push, 0, std::uint8_t(rs)});
}

void
ProgramBuilder::pop(unsigned rd)
{
    emit({Opcode::Pop, std::uint8_t(rd)});
}

void
ProgramBuilder::lea(unsigned rd, unsigned base, std::int64_t off)
{
    emit({Opcode::Lea, std::uint8_t(rd), std::uint8_t(base), 0, 0,
          static_cast<std::uint64_t>(off)});
}

void
ProgramBuilder::jmp(Label target)
{
    emitWithFixup({Opcode::Jmp}, target);
}

void
ProgramBuilder::jmpAbs(VAddr target)
{
    emit({Opcode::Jmp, 0, 0, 0, 0, target});
}

void
ProgramBuilder::jmpr(unsigned rs)
{
    emit({Opcode::JmpR, 0, std::uint8_t(rs)});
}

void
ProgramBuilder::jcc(Cond cond, Label target)
{
    emitWithFixup(
        {Opcode::Jcc, 0, 0, 0, static_cast<std::uint8_t>(cond)}, target);
}

void
ProgramBuilder::call(Label target)
{
    emitWithFixup({Opcode::Call}, target);
}

void
ProgramBuilder::callAbs(VAddr target)
{
    emit({Opcode::Call, 0, 0, 0, 0, target});
}

void
ProgramBuilder::callr(unsigned rs)
{
    emit({Opcode::CallR, 0, std::uint8_t(rs)});
}

void
ProgramBuilder::xchg(unsigned rd, unsigned addrReg)
{
    emit({Opcode::Xchg, std::uint8_t(rd), std::uint8_t(addrReg)});
}

void
ProgramBuilder::cmpxchg(unsigned expected, unsigned addrReg,
                        unsigned desired)
{
    emit({Opcode::CmpXchg, std::uint8_t(expected), std::uint8_t(addrReg),
          std::uint8_t(desired)});
}

void
ProgramBuilder::fetchadd(unsigned rd, unsigned addrReg, unsigned addendReg)
{
    emit({Opcode::FetchAdd, std::uint8_t(rd), std::uint8_t(addrReg),
          std::uint8_t(addendReg)});
}

void
ProgramBuilder::compute(std::uint64_t cycles, unsigned plusReg)
{
    emit({Opcode::Compute, 0, std::uint8_t(plusReg), 0, 0, cycles});
}

void
ProgramBuilder::syscall(std::uint64_t number)
{
    emit({Opcode::Syscall, 0, 0, 0, 0, number});
}

void
ProgramBuilder::rtcall(std::uint64_t service)
{
    emit({Opcode::RtCall, 0, 0, 0, 0, service});
}

void
ProgramBuilder::seqid(unsigned rd)
{
    emit({Opcode::SeqId, std::uint8_t(rd)});
}

void
ProgramBuilder::numseq(unsigned rd)
{
    emit({Opcode::NumSeq, std::uint8_t(rd)});
}

void
ProgramBuilder::rdtick(unsigned rd)
{
    emit({Opcode::RdTick, std::uint8_t(rd)});
}

void
ProgramBuilder::signal(unsigned sidReg, unsigned eipReg, unsigned espReg)
{
    emit({Opcode::Signal, std::uint8_t(espReg), std::uint8_t(sidReg),
          std::uint8_t(eipReg)});
}

void
ProgramBuilder::semonitor(Scenario scenario, Label handler)
{
    emitWithFixup({Opcode::Semonitor, 0, 0, 0,
                   static_cast<std::uint8_t>(scenario)},
                  handler);
}

void
ProgramBuilder::semonitorAbs(Scenario scenario, VAddr handler)
{
    emit({Opcode::Semonitor, 0, 0, 0, static_cast<std::uint8_t>(scenario),
          handler});
}

void
ProgramBuilder::leaLabel(unsigned rd, Label label)
{
    emitWithFixup({Opcode::MovI, std::uint8_t(rd)}, label);
}

Program
ProgramBuilder::finish(VAddr base)
{
    MISP_ASSERT(base % kInstBytes == 0);
    for (const Fixup &fix : fixups_) {
        std::int64_t target = labelTargets_[fix.label];
        if (target < 0)
            panic("unbound label %u referenced by instruction %zu",
                  fix.label, fix.instIndex);
        insts_[fix.instIndex].imm =
            base + static_cast<std::uint64_t>(target) * kInstBytes;
    }
    Program prog;
    prog.base = base;
    prog.insts = insts_;
    for (const auto &[name, label] : exports_) {
        std::int64_t target = labelTargets_[label];
        MISP_ASSERT(target >= 0);
        prog.symbols[name] =
            base + static_cast<std::uint64_t>(target) * kInstBytes;
    }
    return prog;
}

} // namespace misp::isa
