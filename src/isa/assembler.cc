#include "assembler.hh"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace misp::isa {

namespace {

/** Tokenized operand: register, immediate, memory ref, or label name. */
struct Operand {
    enum class Kind { Reg, Imm, Mem, Name } kind;
    unsigned reg = 0;       // Reg / Mem base
    std::int64_t imm = 0;   // Imm / Mem displacement
    std::string name;       // Name
};

struct Line {
    unsigned number;
    std::string mnemonic; // lowercase, includes suffixes like "ld8"
    std::vector<Operand> operands;
};

bool
parseReg(const std::string &tok, unsigned *out)
{
    if (tok == "sp") {
        *out = kRegSp;
        return true;
    }
    if (tok.size() < 2 || tok[0] != 'r')
        return false;
    for (std::size_t i = 1; i < tok.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return false;
    }
    unsigned r = std::stoul(tok.substr(1));
    if (r >= kNumRegs)
        return false;
    *out = r;
    return true;
}

bool
parseImm(const std::string &tok, std::int64_t *out)
{
    if (tok.empty())
        return false;
    std::size_t pos = 0;
    try {
        *out = std::stoll(tok, &pos, 0);
    } catch (...) {
        return false;
    }
    return pos == tok.size();
}

Operand
parseOperand(unsigned lineNo, std::string tok)
{
    // Trim.
    while (!tok.empty() && std::isspace(static_cast<unsigned char>(tok.front())))
        tok.erase(tok.begin());
    while (!tok.empty() && std::isspace(static_cast<unsigned char>(tok.back())))
        tok.pop_back();
    if (tok.empty())
        throw AsmError(lineNo, "empty operand");

    Operand op;
    if (tok.front() == '[') {
        if (tok.back() != ']')
            throw AsmError(lineNo, "unterminated memory operand: " + tok);
        std::string inner = tok.substr(1, tok.size() - 2);
        // forms: [rN], [rN+disp], [rN-disp]
        std::size_t sep = inner.find_first_of("+-");
        std::string regTok = sep == std::string::npos
                                 ? inner
                                 : inner.substr(0, sep);
        op.kind = Operand::Kind::Mem;
        if (!parseReg(regTok, &op.reg))
            throw AsmError(lineNo, "bad base register: " + regTok);
        if (sep != std::string::npos) {
            std::string dispTok = inner.substr(sep); // keeps the sign
            if (!parseImm(dispTok, &op.imm))
                throw AsmError(lineNo, "bad displacement: " + dispTok);
        }
        return op;
    }
    if (parseReg(tok, &op.reg)) {
        op.kind = Operand::Kind::Reg;
        return op;
    }
    if (parseImm(tok, &op.imm)) {
        op.kind = Operand::Kind::Imm;
        return op;
    }
    op.kind = Operand::Kind::Name;
    op.name = tok;
    return op;
}

std::optional<Cond>
condFromName(const std::string &name)
{
    static const std::map<std::string, Cond> kMap = {
        {"eq", Cond::Eq}, {"ne", Cond::Ne}, {"lt", Cond::Lt},
        {"le", Cond::Le}, {"gt", Cond::Gt}, {"ge", Cond::Ge},
        {"ult", Cond::Ult}, {"uge", Cond::Uge},
    };
    auto it = kMap.find(name);
    if (it == kMap.end())
        return std::nullopt;
    return it->second;
}

std::optional<Scenario>
scenarioFromName(const std::string &name)
{
    if (name == "ingress" || name == "ingress_signal")
        return Scenario::IngressSignal;
    if (name == "proxy" || name == "proxy_request")
        return Scenario::ProxyRequest;
    return std::nullopt;
}

} // namespace

Program
assemble(const std::string &source, VAddr base)
{
    ProgramBuilder builder;
    std::map<std::string, ProgramBuilder::Label> labels;

    auto labelFor = [&](const std::string &name) {
        auto it = labels.find(name);
        if (it != labels.end())
            return it->second;
        ProgramBuilder::Label l = builder.newLabel();
        labels.emplace(name, l);
        return l;
    };

    // Single streaming pass: ProgramBuilder's fixup machinery provides the
    // second "pass" by patching forward references at finish().
    std::istringstream in(source);
    std::string rawLine;
    unsigned lineNo = 0;
    std::vector<std::string> exportedNames;

    while (std::getline(in, rawLine)) {
        ++lineNo;
        // Strip comments.
        auto cut = rawLine.find(';');
        if (cut != std::string::npos)
            rawLine.resize(cut);
        cut = rawLine.find('#');
        if (cut != std::string::npos)
            rawLine.resize(cut);

        // Handle leading labels (possibly several per line).
        std::string text = rawLine;
        for (;;) {
            std::size_t firstNs = text.find_first_not_of(" \t");
            if (firstNs == std::string::npos) {
                text.clear();
                break;
            }
            std::size_t colon = text.find(':');
            std::size_t firstSpace = text.find_first_of(" \t", firstNs);
            if (colon != std::string::npos &&
                (firstSpace == std::string::npos || colon < firstSpace)) {
                std::string name = text.substr(firstNs, colon - firstNs);
                if (name.empty())
                    throw AsmError(lineNo, "empty label");
                ProgramBuilder::Label l = labelFor(name);
                builder.bind(l);
                builder.exportLabel(name, l);
                exportedNames.push_back(name);
                text = text.substr(colon + 1);
                continue;
            }
            break;
        }

        // Tokenize mnemonic + comma-separated operands.
        std::istringstream ls(text);
        std::string mnemonic;
        if (!(ls >> mnemonic))
            continue;
        for (auto &c : mnemonic)
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));

        std::string rest;
        std::getline(ls, rest);
        std::vector<Operand> ops;
        if (rest.find_first_not_of(" \t") != std::string::npos) {
            std::size_t start = 0;
            int depth = 0;
            for (std::size_t i = 0; i <= rest.size(); ++i) {
                if (i < rest.size() && rest[i] == '[')
                    ++depth;
                if (i < rest.size() && rest[i] == ']')
                    --depth;
                if (i == rest.size() || (rest[i] == ',' && depth == 0)) {
                    ops.push_back(
                        parseOperand(lineNo, rest.substr(start, i - start)));
                    start = i + 1;
                }
            }
        }

        auto expect = [&](std::size_t n) {
            if (ops.size() != n)
                throw AsmError(lineNo, mnemonic + ": expected " +
                                           std::to_string(n) + " operands, got " +
                                           std::to_string(ops.size()));
        };
        auto reg = [&](std::size_t i) {
            if (ops[i].kind != Operand::Kind::Reg)
                throw AsmError(lineNo, mnemonic + ": operand " +
                                           std::to_string(i + 1) +
                                           " must be a register");
            return ops[i].reg;
        };
        auto imm = [&](std::size_t i) {
            if (ops[i].kind != Operand::Kind::Imm)
                throw AsmError(lineNo, mnemonic + ": operand " +
                                           std::to_string(i + 1) +
                                           " must be an immediate");
            return ops[i].imm;
        };
        auto mem = [&](std::size_t i) -> const Operand & {
            if (ops[i].kind != Operand::Kind::Mem)
                throw AsmError(lineNo, mnemonic + ": operand " +
                                           std::to_string(i + 1) +
                                           " must be a memory reference");
            return ops[i];
        };
        auto target = [&](std::size_t i) {
            if (ops[i].kind != Operand::Kind::Name)
                throw AsmError(lineNo, mnemonic + ": operand " +
                                           std::to_string(i + 1) +
                                           " must be a label");
            return labelFor(ops[i].name);
        };

        // Memory ops with size suffix.
        if (mnemonic.size() == 3 &&
            (mnemonic.compare(0, 2, "ld") == 0 ||
             mnemonic.compare(0, 2, "st") == 0)) {
            unsigned size = mnemonic[2] - '0';
            if (size != 1 && size != 2 && size != 4 && size != 8)
                throw AsmError(lineNo, "bad memory size: " + mnemonic);
            if (mnemonic[0] == 'l') {
                expect(2);
                const Operand &m = mem(1);
                builder.ld(reg(0), m.reg, m.imm, size);
            } else {
                expect(2);
                const Operand &m = mem(0);
                builder.st(m.reg, m.imm, reg(1), size);
            }
            continue;
        }

        // jcc.<cond>
        if (mnemonic.compare(0, 4, "jcc.") == 0 ||
            mnemonic.compare(0, 2, "j.") == 0) {
            std::string condName = mnemonic.substr(mnemonic.find('.') + 1);
            auto cond = condFromName(condName);
            if (!cond)
                throw AsmError(lineNo, "bad condition: " + condName);
            expect(1);
            builder.jcc(*cond, target(0));
            continue;
        }

        if (mnemonic == "nop") { expect(0); builder.nop(); }
        else if (mnemonic == "halt") { expect(0); builder.halt(); }
        else if (mnemonic == "movi") {
            expect(2);
            if (ops[1].kind == Operand::Kind::Name)
                builder.leaLabel(reg(0), target(1));
            else
                builder.movi(reg(0), static_cast<std::uint64_t>(imm(1)));
        }
        else if (mnemonic == "mov") { expect(2); builder.mov(reg(0), reg(1)); }
        else if (mnemonic == "add") { expect(3); builder.add(reg(0), reg(1), reg(2)); }
        else if (mnemonic == "sub") { expect(3); builder.sub(reg(0), reg(1), reg(2)); }
        else if (mnemonic == "mul") { expect(3); builder.mul(reg(0), reg(1), reg(2)); }
        else if (mnemonic == "div") { expect(3); builder.div(reg(0), reg(1), reg(2)); }
        else if (mnemonic == "rem") { expect(3); builder.alu(Opcode::Rem, reg(0), reg(1), reg(2)); }
        else if (mnemonic == "and") { expect(3); builder.alu(Opcode::And, reg(0), reg(1), reg(2)); }
        else if (mnemonic == "or")  { expect(3); builder.alu(Opcode::Or, reg(0), reg(1), reg(2)); }
        else if (mnemonic == "xor") { expect(3); builder.alu(Opcode::Xor, reg(0), reg(1), reg(2)); }
        else if (mnemonic == "shl") { expect(3); builder.alu(Opcode::Shl, reg(0), reg(1), reg(2)); }
        else if (mnemonic == "shr") { expect(3); builder.alu(Opcode::Shr, reg(0), reg(1), reg(2)); }
        else if (mnemonic == "sar") { expect(3); builder.alu(Opcode::Sar, reg(0), reg(1), reg(2)); }
        else if (mnemonic == "addi") { expect(3); builder.addi(reg(0), reg(1), imm(2)); }
        else if (mnemonic == "subi") { expect(3); builder.subi(reg(0), reg(1), imm(2)); }
        else if (mnemonic == "muli") { expect(3); builder.muli(reg(0), reg(1), imm(2)); }
        else if (mnemonic == "divi") { expect(3); builder.aluImm(Opcode::DivI, reg(0), reg(1), static_cast<std::uint64_t>(imm(2))); }
        else if (mnemonic == "andi") { expect(3); builder.andi(reg(0), reg(1), static_cast<std::uint64_t>(imm(2))); }
        else if (mnemonic == "ori")  { expect(3); builder.aluImm(Opcode::OrI, reg(0), reg(1), static_cast<std::uint64_t>(imm(2))); }
        else if (mnemonic == "xori") { expect(3); builder.aluImm(Opcode::XorI, reg(0), reg(1), static_cast<std::uint64_t>(imm(2))); }
        else if (mnemonic == "shli") { expect(3); builder.shli(reg(0), reg(1), static_cast<unsigned>(imm(2))); }
        else if (mnemonic == "shri") { expect(3); builder.shri(reg(0), reg(1), static_cast<unsigned>(imm(2))); }
        else if (mnemonic == "cmp") { expect(2); builder.cmp(reg(0), reg(1)); }
        else if (mnemonic == "cmpi") { expect(2); builder.cmpi(reg(0), imm(1)); }
        else if (mnemonic == "push") { expect(1); builder.push(reg(0)); }
        else if (mnemonic == "pop") { expect(1); builder.pop(reg(0)); }
        else if (mnemonic == "lea") {
            expect(2);
            const Operand &m = mem(1);
            builder.lea(reg(0), m.reg, m.imm);
        }
        else if (mnemonic == "jmp") {
            expect(1);
            if (ops[0].kind == Operand::Kind::Name)
                builder.jmp(target(0));
            else if (ops[0].kind == Operand::Kind::Reg)
                builder.jmpr(reg(0));
            else
                builder.jmpAbs(static_cast<VAddr>(imm(0)));
        }
        else if (mnemonic == "call") {
            expect(1);
            if (ops[0].kind == Operand::Kind::Name)
                builder.call(target(0));
            else if (ops[0].kind == Operand::Kind::Reg)
                builder.callr(reg(0));
            else
                builder.callAbs(static_cast<VAddr>(imm(0)));
        }
        else if (mnemonic == "ret") { expect(0); builder.ret(); }
        else if (mnemonic == "xchg") {
            expect(2);
            const Operand &m = mem(1);
            if (m.imm != 0)
                throw AsmError(lineNo, "xchg does not take a displacement");
            builder.xchg(reg(0), m.reg);
        }
        else if (mnemonic == "cmpxchg") {
            expect(3);
            const Operand &m = mem(1);
            if (m.imm != 0)
                throw AsmError(lineNo, "cmpxchg does not take a displacement");
            builder.cmpxchg(reg(0), m.reg, reg(2));
        }
        else if (mnemonic == "fetchadd") {
            expect(3);
            const Operand &m = mem(1);
            if (m.imm != 0)
                throw AsmError(lineNo, "fetchadd does not take a displacement");
            builder.fetchadd(reg(0), m.reg, reg(2));
        }
        else if (mnemonic == "pause") { expect(0); builder.pause(); }
        else if (mnemonic == "compute") {
            if (ops.size() == 1)
                builder.compute(static_cast<std::uint64_t>(imm(0)));
            else if (ops.size() == 2)
                builder.compute(static_cast<std::uint64_t>(imm(0)), reg(1));
            else
                throw AsmError(lineNo, "compute: 1 or 2 operands");
        }
        else if (mnemonic == "syscall") { expect(1); builder.syscall(static_cast<std::uint64_t>(imm(0))); }
        else if (mnemonic == "rtcall") { expect(1); builder.rtcall(static_cast<std::uint64_t>(imm(0))); }
        else if (mnemonic == "seqid") { expect(1); builder.seqid(reg(0)); }
        else if (mnemonic == "numseq") { expect(1); builder.numseq(reg(0)); }
        else if (mnemonic == "rdtick") { expect(1); builder.rdtick(reg(0)); }
        else if (mnemonic == "signal") {
            expect(3);
            builder.signal(reg(0), reg(1), reg(2));
        }
        else if (mnemonic == "semonitor") {
            expect(2);
            if (ops[0].kind != Operand::Kind::Name)
                throw AsmError(lineNo, "semonitor: first operand is a scenario name");
            auto sc = scenarioFromName(ops[0].name);
            if (!sc)
                throw AsmError(lineNo, "bad scenario: " + ops[0].name);
            builder.semonitor(*sc, target(1));
        }
        else if (mnemonic == "yret") { expect(0); builder.yret(); }
        else {
            throw AsmError(lineNo, "unknown mnemonic: " + mnemonic);
        }
    }

    // finish() resolves fixups; an unbound label means a typo in the
    // source, so convert the panic into an AsmError for usability.
    try {
        Program prog = builder.finish(base);
        return prog;
    } catch (const SimError &e) {
        throw AsmError(0, e.what());
    }
}

} // namespace misp::isa
