#include "physical_memory.hh"

#include <algorithm>

namespace misp::mem {

PhysicalMemory::PhysicalMemory(std::uint64_t frames,
                               stats::StatGroup *parent)
    : frames_(frames),
      statGroup_("physmem", parent),
      framesAllocated_(&statGroup_, "framesAllocated",
                       "physical frames handed out"),
      framesFreed_(&statGroup_, "framesFreed", "physical frames returned"),
      bytesRead_(&statGroup_, "bytesRead", "bytes read from memory"),
      bytesWritten_(&statGroup_, "bytesWritten", "bytes written to memory")
{
    MISP_ASSERT(frames_ > 0);
}

std::uint64_t
PhysicalMemory::allocFrame()
{
    std::uint64_t frame;
    if (!freeList_.empty()) {
        frame = freeList_.back();
        freeList_.pop_back();
        // Recycled frames must come back zeroed: the kernel model relies
        // on zero-fill-on-demand semantics.
        auto it = store_.find(frame);
        if (it != store_.end())
            std::memset(it->second.data(), 0, kPageSize);
    } else {
        if (nextFresh_ >= frames_)
            fatal("physical memory exhausted (%llu frames)",
                  (unsigned long long)frames_);
        frame = nextFresh_++;
    }
    ++used_;
    ++framesAllocated_;
    return frame;
}

void
PhysicalMemory::freeFrame(std::uint64_t frame)
{
    MISP_ASSERT(frame < frames_);
    MISP_ASSERT(used_ > 0);
    --used_;
    ++framesFreed_;
    freeList_.push_back(frame);
}

const std::uint8_t *
PhysicalMemory::framePtr(std::uint64_t frame) const
{
    auto it = store_.find(frame);
    if (it == store_.end()) {
        // Lazily materialize zeroed backing store.
        it = store_.emplace(frame, std::vector<std::uint8_t>(kPageSize, 0))
                 .first;
    }
    return it->second.data();
}

std::uint8_t *
PhysicalMemory::framePtrMut(std::uint64_t frame)
{
    return const_cast<std::uint8_t *>(framePtr(frame));
}

Word
PhysicalMemory::read(PAddr addr, unsigned size) const
{
    MISP_ASSERT(size == 1 || size == 2 || size == 4 || size == 8);
    MISP_ASSERT(pageOffset(addr) + size <= kPageSize);
    const std::uint8_t *p = framePtr(addr >> kPageShift) + pageOffset(addr);
    Word v = 0;
    std::memcpy(&v, p, size); // little-endian host assumed (x86/arm64)
    const_cast<stats::Scalar &>(bytesRead_) += size;
    return v;
}

void
PhysicalMemory::write(PAddr addr, Word value, unsigned size)
{
    MISP_ASSERT(size == 1 || size == 2 || size == 4 || size == 8);
    MISP_ASSERT(pageOffset(addr) + size <= kPageSize);
    std::uint8_t *p = framePtrMut(addr >> kPageShift) + pageOffset(addr);
    std::memcpy(p, &value, size);
    bytesWritten_ += size;
}

void
PhysicalMemory::readBytes(PAddr addr, void *dst, std::uint64_t len) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        std::uint64_t chunk = std::min<std::uint64_t>(
            len, kPageSize - pageOffset(addr));
        const std::uint8_t *p =
            framePtr(addr >> kPageShift) + pageOffset(addr);
        std::memcpy(out, p, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
PhysicalMemory::writeBytes(PAddr addr, const void *src, std::uint64_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        std::uint64_t chunk = std::min<std::uint64_t>(
            len, kPageSize - pageOffset(addr));
        std::uint8_t *p = framePtrMut(addr >> kPageShift) + pageOffset(addr);
        std::memcpy(p, in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

void
PhysicalMemory::snapSave(snap::Serializer &s) const
{
    s.u64(frames_);
    s.u64(used_);
    s.u64(nextFresh_);
    s.u64(freeList_.size());
    for (std::uint64_t f : freeList_)
        s.u64(f);
    std::vector<std::uint64_t> frames;
    frames.reserve(store_.size());
    // misplint: allow(det-unordered-iter) — frame ids sorted below
    for (const auto &[frame, bytes] : store_) {
        (void)bytes;
        frames.push_back(frame);
    }
    std::sort(frames.begin(), frames.end());
    s.u64(frames.size());
    for (std::uint64_t f : frames) {
        s.u64(f);
        s.bytes(store_.at(f).data(), kPageSize);
    }
}

void
PhysicalMemory::snapRestore(snap::Deserializer &d)
{
    if (d.u64() != frames_)
        throw snap::SnapError("physmem: capacity mismatch");
    used_ = d.u64();
    nextFresh_ = d.u64();
    freeList_.resize(d.u64());
    for (std::uint64_t &f : freeList_)
        f = d.u64();
    store_.clear();
    std::uint64_t count = d.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t frame = d.u64();
        std::vector<std::uint8_t> bytes(kPageSize);
        d.bytes(bytes.data(), kPageSize);
        store_.emplace(frame, std::move(bytes));
    }
}

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::PageFault: return "page-fault";
      case FaultKind::GeneralProtection: return "general-protection";
      case FaultKind::InvalidOpcode: return "invalid-opcode";
      case FaultKind::DivideError: return "divide-error";
      case FaultKind::Syscall: return "syscall";
      case FaultKind::Breakpoint: return "breakpoint";
    }
    return "unknown";
}

} // namespace misp::mem
