/**
 * @file
 * Per-sequencer memory management unit.
 *
 * Every sequencer owns one Mmu: a CR3-style root register, a private TLB,
 * and a hardware page walker. Translation enforces the Ring-3 user bit —
 * this is how an AMS (which only ever runs Ring 3) can never touch kernel
 * mappings — and raises page faults that, on an AMS, become proxy
 * execution triggers.
 */

#ifndef MISP_MEM_MMU_HH
#define MISP_MEM_MMU_HH

#include <cstdint>
#include <string>

#include "mem/address_space.hh"
#include "mem/page_table.hh"
#include "mem/paging.hh"
#include "mem/physical_memory.hh"
#include "mem/tlb.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace misp::mem {

/** Execution privilege level (IA-32 ring). MISA models only the two the
 *  paper uses: Ring 0 (kernel) and Ring 3 (user). */
enum class Ring : std::uint8_t { Kernel = 0, User = 3 };

/** Outcome of a translated, executed memory access. */
struct AccessResult {
    Fault fault = Fault::none();
    Cycles cycles = 0; ///< extra cycles beyond the base op latency
    Word value = 0;    ///< loaded value (reads)
};

/** Per-sequencer MMU. */
class Mmu
{
  public:
    Mmu(std::string name, PhysicalMemory &pmem, stats::StatGroup *parent);

    /** Point at an address space; models a CR3 write, so the TLB purges
     *  (unless @p preserveTlb, used when re-synchronizing to the *same*
     *  root after an OMS Ring-0 episode that did not change CR3). */
    void setAddressSpace(AddressSpace *as, bool preserveTlb = false);

    AddressSpace *addressSpace() const { return as_; }
    PageTableRoot root() const { return as_ ? as_->root() : kNullRoot; }

    /** Translate-and-load. Alignment must be natural for @p size. */
    AccessResult read(VAddr va, unsigned size, Ring ring);

    /** Translate-and-store. */
    AccessResult write(VAddr va, Word value, unsigned size, Ring ring);

    /** Instruction fetch (execute access). */
    AccessResult fetch(VAddr va, unsigned size, Ring ring);

    /** Fetch one 16-byte instruction bundle into @p buf. Instructions
     *  must be 16-byte aligned, so a bundle never crosses a page. */
    AccessResult fetchInst(VAddr va, std::uint8_t buf[16], Ring ring);

    /** Atomic read-modify-write support: translate once with write
     *  intent, return the physical address for the caller to operate on.
     */
    AccessResult translate(VAddr va, unsigned size, Access access,
                           Ring ring, PAddr *paOut);

    Tlb &tlb() { return tlb_; }

    /** Invalidate one page's TLB entry (shootdown). */
    void invalidatePage(VAddr va) { tlb_.invalidatePage(va); }

    std::uint64_t pageWalks() const
    {
        return static_cast<std::uint64_t>(walks_.value());
    }

  private:
    AddressSpace *as_ = nullptr;
    PhysicalMemory &pmem_;

    stats::StatGroup statGroup_;
    Tlb tlb_;
    stats::Scalar walks_;
    stats::Scalar pageFaults_;

  public:
    /** Modeled cache/DRAM latency for a user access that hits the
     *  (unmodeled) cache hierarchy; folded into every access. */
    static constexpr Cycles kAccessCycles = 2;
};

} // namespace misp::mem

#endif // MISP_MEM_MMU_HH
