/**
 * @file
 * Per-sequencer memory management unit.
 *
 * Every sequencer owns one Mmu: a CR3-style root register, a private TLB,
 * and a hardware page walker. Translation enforces the Ring-3 user bit —
 * this is how an AMS (which only ever runs Ring 3) can never touch kernel
 * mappings — and raises page faults that, on an AMS, become proxy
 * execution triggers.
 *
 * Instruction fetch has two host-side paths with identical modeled
 * behavior:
 *
 *  - fetchTranslate(va, ring, /\*fastPath=*\/false): the reference path —
 *    a full TLB probe per fetch (walking on a miss).
 *  - fetchTranslate(va, ring, /\*fastPath=*\/true): the predecoded-block
 *    engine's path. A one-entry last-translation cache short-circuits
 *    sequential fetches to the same page: while the TLB's content stamp
 *    is unchanged, the hit is *replayed* (reference-bit touch + hit
 *    count + access cycles) without re-scanning the set, so simulated
 *    cycle counts and TLB statistics stay bit-identical to the
 *    reference path.
 */

#ifndef MISP_MEM_MMU_HH
#define MISP_MEM_MMU_HH

#include <cstdint>
#include <cstring>
#include <string>

#include "mem/address_space.hh"
#include "mem/page_table.hh"
#include "mem/paging.hh"
#include "mem/physical_memory.hh"
#include "mem/tlb.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace misp::mem {

/** Execution privilege level (IA-32 ring). MISA models only the two the
 *  paper uses: Ring 0 (kernel) and Ring 3 (user). */
enum class Ring : std::uint8_t { Kernel = 0, User = 3 };

/** Outcome of a translated, executed memory access. */
struct AccessResult {
    Fault fault = Fault::none();
    Cycles cycles = 0; ///< extra cycles beyond the base op latency
    Word value = 0;    ///< loaded value (reads)
};

/** Outcome of an instruction-fetch translation. */
struct FetchResult {
    Fault fault = Fault::none();
    Cycles cycles = 0;
    PAddr pa = 0; ///< physical address of the fetched bundle
};

/** Per-sequencer MMU. */
class Mmu : public snap::Saveable
{
  public:
    Mmu(std::string name, PhysicalMemory &pmem, stats::StatGroup *parent);

    /** Point at an address space; models a CR3 write, so the TLB purges
     *  (unless @p preserveTlb, used when re-synchronizing to the *same*
     *  root after an OMS Ring-0 episode that did not change CR3). */
    void setAddressSpace(AddressSpace *as, bool preserveTlb = false);

    AddressSpace *addressSpace() const { return as_; }
    PageTableRoot root() const { return as_ ? as_->root() : kNullRoot; }

    /** Advances whenever the MMU is pointed at a different address
     *  space (by never-reused space identity, not pointer); cached
     *  decoded-block references are only valid while this is
     *  unchanged. */
    std::uint64_t addressSpaceGen() const { return asGen_; }

    /** Translate-and-load. Alignment must be natural for @p size. */
    AccessResult read(VAddr va, unsigned size, Ring ring);

    /** Translate-and-store. Notifies the address space's decode cache so
     *  stores to predecoded code pages invalidate them (SMC). */
    AccessResult write(VAddr va, Word value, unsigned size, Ring ring);

    /** Instruction fetch (execute access). */
    AccessResult fetch(VAddr va, unsigned size, Ring ring);

    /** Fetch one 16-byte instruction bundle into @p buf. Instructions
     *  must be 16-byte aligned, so a bundle never crosses a page. */
    AccessResult fetchInst(VAddr va, std::uint8_t buf[16], Ring ring);

    /** Translate an instruction fetch without reading the bytes (the
     *  predecoded-block engine executes from decoded pages instead).
     *  @p fastPath enables the one-entry last-translation cache; both
     *  settings produce identical modeled cycles and TLB statistics. */
    FetchResult fetchTranslate(VAddr va, Ring ring, bool fastPath);

    /** True while a fetch of @p va can be *replayed* from the one-entry
     *  last-translation cache: the TLB's content stamp is unchanged
     *  since the cache was filled and @p va stays on the same page in
     *  the same ring. The superblock engine batches such replays —
     *  counting kAccessCycles per instruction locally — and commits the
     *  deferred reference-bit touches and hit counts in one
     *  commitFetchReplays() call, which is bit-identical to touching
     *  per fetch because nothing can have inspected the reference bits
     *  in between (any TLB insert advances stamp() and fails this
     *  check first). */
    bool
    fetchReplayable(VAddr va, Ring ring) const
    {
        return lastFetch_.tlbStamp == tlb_.stamp() &&
               lastFetch_.vpn == pageNumber(va) &&
               lastFetch_.ring == ring;
    }

    /** Commit @p n batched fetch replays (see fetchReplayable()). */
    void
    commitFetchReplays(std::uint64_t n)
    {
        tlb_.touchHitN(lastFetch_.way, n);
    }

    /** Physical base of the page the last fetch translated (valid only
     *  while fetchReplayable() holds for that page). */
    PAddr lastFetchPageBase() const { return lastFetch_.paBase; }

    /** Data-side twin of fetchReplayable(): true while an aligned,
     *  permission-compatible data access to @p va can be replayed from
     *  the one-entry last-data-translation cache (primed by every
     *  translated read/write). Same stamp discipline: any TLB insert,
     *  invalidation, or flush advances stamp() and fails this check, so
     *  batched replay commits stay bit-identical to per-access TLB
     *  probes. The `writable` gate sends writes that might fault down
     *  the full translate path. */
    bool
    dataReplayable(VAddr va, bool isWrite, Ring ring) const
    {
        return lastData_.tlbStamp == tlb_.stamp() &&
               lastData_.vpn == pageNumber(va) &&
               lastData_.ring == ring &&
               (!isWrite || lastData_.writable);
    }

    /** Replayed load (caller checked dataReplayable + alignment). Goes
     *  straight at the frame's stable byte pointer; the bytes read are
     *  accounted at the next commitDataReplays(). */
    Word
    dataReplayRead(VAddr va, unsigned size)
    {
        Word v = 0;
        std::memcpy(&v, lastData_.bytes + pageOffset(va), size);
        replayBytesRead_ += size;
        return v;
    }

    /** Replayed store (caller checked dataReplayable + alignment);
     *  keeps the SMC decode-cache probe on the replay path. */
    void
    dataReplayWrite(VAddr va, Word value, unsigned size)
    {
        std::memcpy(lastData_.bytes + pageOffset(va), &value, size);
        replayBytesWritten_ += size;
        as_->decodeCache().noteWrite(va);
    }

    /** Commit @p n batched data replays (see dataReplayable()). */
    void
    commitDataReplays(std::uint64_t n)
    {
        tlb_.touchHitN(lastData_.way, n);
        pmem_.accountReplayBytes(replayBytesRead_, replayBytesWritten_);
        replayBytesRead_ = 0;
        replayBytesWritten_ = 0;
    }

    /** Atomic read-modify-write support: translate once with write
     *  intent, return the physical address for the caller to operate on.
     *  @p refOut (optional) receives a handle to the TLB entry that
     *  served the translation (hit or freshly walked), replayable with
     *  Tlb::touchHit while the TLB stamp is unchanged. */
    AccessResult translate(VAddr va, unsigned size, Access access,
                           Ring ring, PAddr *paOut,
                           Tlb::EntryRef *refOut = nullptr);

    Tlb &tlb() { return tlb_; }

    /** Invalidate one page's TLB entry (shootdown). */
    void invalidatePage(VAddr va) { tlb_.invalidatePage(va); }

    std::uint64_t pageWalks() const
    {
        return static_cast<std::uint64_t>(walks_.value());
    }

    /** Snapshot: the address-space generation and the TLB. The
     *  one-entry last-fetch cache is derived (revalidated against the
     *  TLB stamp) and resets cold on restore with identical modeled
     *  cycles and counters. */
    void snapSave(snap::Serializer &s) const override;
    void snapRestore(snap::Deserializer &d) override;

    /** Restore-path companion to snapRestore: point at the rebuilt
     *  address space WITHOUT the architectural CR3-purge of
     *  setAddressSpace() — the TLB content being restored belongs to
     *  exactly this space. */
    void snapAttach(AddressSpace *as);

  private:
    AddressSpace *as_ = nullptr; ///< snap: attach — see snapAttach()
    PhysicalMemory &pmem_;
    std::uint64_t asGen_ = 1;
    /** id of as_ (0 = none); see setAddressSpace.
     *  snap: attach — re-established by snapAttach(). */
    std::uint64_t lastAsId_ = 0;

    /** One-entry last-translation cache for sequential fetches. */
    struct LastFetch {
        std::uint64_t vpn = 0;
        std::uint64_t tlbStamp = 0; ///< 0 = invalid
        PAddr paBase = 0;
        Ring ring = Ring::User;
        Tlb::EntryRef way;
    } lastFetch_; ///< snap: derived — replay window, rebuilt on demand

    /** One-entry last-translation cache for data accesses (superblock
     *  engine only; primed by translate() on reads and writes). */
    struct LastData {
        std::uint64_t vpn = 0;
        std::uint64_t tlbStamp = 0; ///< 0 = invalid
        std::uint8_t *bytes = nullptr; ///< the frame's backing store
        Ring ring = Ring::User;
        bool writable = false;
        Tlb::EntryRef way;
    } lastData_; ///< snap: derived — replay window, rebuilt on demand

    /** Bytes moved by replayed accesses since the last
     *  commitDataReplays() (folded into the PhysicalMemory counters
     *  there). */
    std::uint64_t replayBytesRead_ = 0;    ///< snap: quiesced
    std::uint64_t replayBytesWritten_ = 0; ///< snap: quiesced

    stats::StatGroup statGroup_;
    Tlb tlb_;
    stats::Scalar walks_;
    stats::Scalar pageFaults_;

  public:
    /** Modeled cache/DRAM latency for a user access that hits the
     *  (unmodeled) cache hierarchy; folded into every access. */
    static constexpr Cycles kAccessCycles = 2;
};

} // namespace misp::mem

#endif // MISP_MEM_MMU_HH
