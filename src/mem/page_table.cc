#include "page_table.hh"

namespace misp::mem {

std::atomic<std::uint64_t> PageTable::nextRoot_{1};

PageTable::PageTable()
    : root_(nextRoot_.fetch_add(1, std::memory_order_relaxed))
{}

PageTable::~PageTable() = default;

const Pte *
PageTable::lookup(VAddr va) const
{
    const auto &leaf = dir_[dirIndex(va)];
    if (!leaf)
        return nullptr;
    const Pte &pte = (*leaf)[tblIndex(va)];
    return &pte;
}

Pte *
PageTable::lookupMut(VAddr va)
{
    auto &leaf = dir_[dirIndex(va)];
    if (!leaf)
        return nullptr;
    return &(*leaf)[tblIndex(va)];
}

void
PageTable::map(VAddr va, std::uint64_t frame, bool writable, bool user)
{
    auto &leaf = dir_[dirIndex(va)];
    if (!leaf)
        leaf = std::make_unique<Leaf>();
    Pte &pte = (*leaf)[tblIndex(va)];
    if (!pte.present)
        ++mapped_;
    pte.present = true;
    pte.writable = writable;
    pte.user = user;
    pte.accessed = false;
    pte.dirty = false;
    pte.frame = frame;
}

void
PageTable::snapSave(snap::Serializer &s) const
{
    s.u64(mapped_);
    for (std::size_t dir = 0; dir < kDirEntries; ++dir) {
        const auto &leaf = dir_[dir];
        if (!leaf)
            continue;
        for (std::size_t tbl = 0; tbl < kTblEntries; ++tbl) {
            const Pte &pte = (*leaf)[tbl];
            if (!pte.present)
                continue;
            VAddr va = (static_cast<VAddr>(dir) << (kPageShift + kTblBits)) |
                       (static_cast<VAddr>(tbl) << kPageShift);
            s.u64(va);
            s.b(pte.writable);
            s.b(pte.user);
            s.b(pte.accessed);
            s.b(pte.dirty);
            s.u64(pte.frame);
        }
    }
}

void
PageTable::snapRestore(snap::Deserializer &d)
{
    std::uint64_t count = d.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        VAddr va = d.u64();
        auto &leaf = dir_[dirIndex(va)];
        if (!leaf)
            leaf = std::make_unique<Leaf>();
        Pte &pte = (*leaf)[tblIndex(va)];
        if (pte.present)
            throw snap::SnapError("page table: duplicate mapping in "
                                  "image");
        pte.present = true;
        pte.writable = d.b();
        pte.user = d.b();
        pte.accessed = d.b();
        pte.dirty = d.b();
        pte.frame = d.u64();
        ++mapped_;
    }
}

Pte
PageTable::unmap(VAddr va)
{
    auto &leaf = dir_[dirIndex(va)];
    if (!leaf)
        return Pte{};
    Pte &pte = (*leaf)[tblIndex(va)];
    Pte old = pte;
    if (pte.present)
        --mapped_;
    pte = Pte{};
    return old;
}

} // namespace misp::mem
