#include "page_table.hh"

namespace misp::mem {

std::uint64_t PageTable::nextRoot_ = 1;

PageTable::PageTable() : root_(nextRoot_++) {}

PageTable::~PageTable() = default;

const Pte *
PageTable::lookup(VAddr va) const
{
    const auto &leaf = dir_[dirIndex(va)];
    if (!leaf)
        return nullptr;
    const Pte &pte = (*leaf)[tblIndex(va)];
    return &pte;
}

Pte *
PageTable::lookupMut(VAddr va)
{
    auto &leaf = dir_[dirIndex(va)];
    if (!leaf)
        return nullptr;
    return &(*leaf)[tblIndex(va)];
}

void
PageTable::map(VAddr va, std::uint64_t frame, bool writable, bool user)
{
    auto &leaf = dir_[dirIndex(va)];
    if (!leaf)
        leaf = std::make_unique<Leaf>();
    Pte &pte = (*leaf)[tblIndex(va)];
    if (!pte.present)
        ++mapped_;
    pte.present = true;
    pte.writable = writable;
    pte.user = user;
    pte.accessed = false;
    pte.dirty = false;
    pte.frame = frame;
}

Pte
PageTable::unmap(VAddr va)
{
    auto &leaf = dir_[dirIndex(va)];
    if (!leaf)
        return Pte{};
    Pte &pte = (*leaf)[tblIndex(va)];
    Pte old = pte;
    if (pte.present)
        --mapped_;
    pte = Pte{};
    return old;
}

} // namespace misp::mem
