#include "tlb.hh"

#include "obs/trace.hh"

namespace misp::mem {

namespace {

std::size_t
roundSets(std::size_t entries)
{
    // Round up: capacity is never below the requested entry count.
    // Power-of-two set count for mask indexing.
    std::size_t sets = (entries + Tlb::kWays - 1) / Tlb::kWays;
    std::size_t pow2 = 1;
    while (pow2 < sets)
        pow2 <<= 1;
    return pow2;
}

} // namespace

Tlb::Tlb(std::string name, std::size_t entries, stats::StatGroup *parent)
    : numSets_(roundSets(entries)),
      slots_(numSets_ * kWays),
      hand_(numSets_, 0),
      statGroup_(std::move(name), parent),
      hits_(&statGroup_, "hits", "TLB hits"),
      misses_(&statGroup_, "misses", "TLB misses"),
      flushes_(&statGroup_, "flushes", "full TLB purges")
{
    MISP_ASSERT(entries > 0);
}

const Pte *
Tlb::lookup(VAddr va, EntryRef *ref)
{
    const std::uint64_t vpn = pageNumber(va);
    Entry *set = &slots_[setIndex(vpn) * kWays];
    for (std::size_t w = 0; w < kWays; ++w) {
        Entry &e = set[w];
        if (e.valid && e.vpn == vpn) {
            e.used = true;
            ++hits_;
            if (ref)
                ref->entry = &e;
            return &e.pte;
        }
    }
    ++misses_;
    if (ref)
        ref->entry = nullptr;
    return nullptr;
}

const Pte *
Tlb::insert(VAddr va, const Pte &pte, EntryRef *ref)
{
    const std::uint64_t vpn = pageNumber(va);
    Entry *set = &slots_[setIndex(vpn) * kWays];
    Entry *victim = nullptr;

    // Re-insert over an existing mapping of the same page, else fill an
    // invalid way, else run the clock over the set.
    for (std::size_t w = 0; w < kWays && !victim; ++w) {
        if (set[w].valid && set[w].vpn == vpn)
            victim = &set[w];
    }
    for (std::size_t w = 0; w < kWays && !victim; ++w) {
        if (!set[w].valid)
            victim = &set[w];
    }
    if (!victim) {
        std::uint8_t &hand = hand_[setIndex(vpn)];
        // Clock: sweep past referenced ways (clearing the bit) until an
        // unreferenced one is found; bounded by 2 full revolutions.
        for (std::size_t step = 0; step < 2 * kWays; ++step) {
            Entry &cand = set[hand];
            hand = static_cast<std::uint8_t>((hand + 1) % kWays);
            if (!cand.used) {
                victim = &cand;
                break;
            }
            cand.used = false;
        }
        if (!victim)
            victim = &set[0]; // unreachable; defensive
    }

    victim->vpn = vpn;
    victim->pte = pte;
    victim->valid = true;
    victim->used = true;
    ++stamp_;
    if (ref)
        ref->entry = victim;
    return &victim->pte;
}

void
Tlb::invalidatePage(VAddr va)
{
    const std::uint64_t vpn = pageNumber(va);
    obs::trace(obs::TraceKind::TlbShootdown, 0, 0, vpn);
    Entry *set = &slots_[setIndex(vpn) * kWays];
    for (std::size_t w = 0; w < kWays; ++w) {
        if (set[w].valid && set[w].vpn == vpn) {
            set[w].valid = false;
            set[w].used = false;
            ++stamp_;
            return;
        }
    }
}

void
Tlb::flushAll()
{
    obs::trace(obs::TraceKind::TlbFlush);
    for (Entry &e : slots_) {
        e.valid = false;
        e.used = false;
    }
    std::fill(hand_.begin(), hand_.end(), 0);
    ++stamp_;
    ++flushes_;
}

std::size_t
Tlb::size() const
{
    std::size_t n = 0;
    for (const Entry &e : slots_) {
        if (e.valid)
            ++n;
    }
    return n;
}

void
Tlb::snapSave(snap::Serializer &s) const
{
    s.u64(slots_.size());
    for (const Entry &e : slots_) {
        s.u64(e.vpn);
        s.b(e.pte.present);
        s.b(e.pte.writable);
        s.b(e.pte.user);
        s.b(e.pte.accessed);
        s.b(e.pte.dirty);
        s.u64(e.pte.frame);
        s.b(e.valid);
        s.b(e.used);
    }
    s.u64(hand_.size());
    for (std::uint8_t h : hand_)
        s.u8(h);
    s.u64(stamp_);
}

void
Tlb::snapRestore(snap::Deserializer &d)
{
    if (d.u64() != slots_.size())
        throw snap::SnapError("tlb: geometry mismatch");
    for (Entry &e : slots_) {
        e.vpn = d.u64();
        e.pte.present = d.b();
        e.pte.writable = d.b();
        e.pte.user = d.b();
        e.pte.accessed = d.b();
        e.pte.dirty = d.b();
        e.pte.frame = d.u64();
        e.valid = d.b();
        e.used = d.b();
    }
    if (d.u64() != hand_.size())
        throw snap::SnapError("tlb: set-count mismatch");
    for (std::uint8_t &h : hand_)
        h = d.u8();
    stamp_ = d.u64();
}

} // namespace misp::mem
