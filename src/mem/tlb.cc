#include "tlb.hh"

namespace misp::mem {

Tlb::Tlb(std::string name, std::size_t entries, stats::StatGroup *parent)
    : entries_(entries),
      statGroup_(std::move(name), parent),
      hits_(&statGroup_, "hits", "TLB hits"),
      misses_(&statGroup_, "misses", "TLB misses"),
      flushes_(&statGroup_, "flushes", "full TLB purges")
{
    MISP_ASSERT(entries_ > 0);
}

const Pte *
Tlb::lookup(VAddr va)
{
    auto it = map_.find(pageNumber(va));
    if (it == map_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    it->second.lastUse = ++useClock_;
    return &it->second.pte;
}

void
Tlb::insert(VAddr va, const Pte &pte)
{
    if (map_.size() >= entries_ && !map_.count(pageNumber(va)))
        evictLru();
    map_[pageNumber(va)] = Slot{pte, ++useClock_};
}

void
Tlb::invalidatePage(VAddr va)
{
    map_.erase(pageNumber(va));
}

void
Tlb::flushAll()
{
    map_.clear();
    ++flushes_;
}

void
Tlb::evictLru()
{
    auto victim = map_.begin();
    for (auto it = map_.begin(); it != map_.end(); ++it) {
        if (it->second.lastUse < victim->second.lastUse)
            victim = it;
    }
    map_.erase(victim);
}

} // namespace misp::mem
