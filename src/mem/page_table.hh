/**
 * @file
 * Two-level page table, the structure a CR3-style register points at.
 *
 * MISA virtual addresses are 32 bits wide: 10 bits of directory index,
 * 10 bits of table index, 12 bits of page offset — exactly the classic
 * IA-32 non-PAE layout. The table is stored host-side for speed; the
 * `root()` token models the CR3 value, and sequencers compare root tokens
 * to detect address-space switches (which purge their TLBs, per the
 * paper's Section 2.3).
 */

#ifndef MISP_MEM_PAGE_TABLE_HH
#define MISP_MEM_PAGE_TABLE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>

#include "mem/paging.hh"
#include "sim/logging.hh"
#include "snapshot/serialize.hh"

namespace misp::mem {

/** Opaque address-space root token (the modeled CR3 value). */
using PageTableRoot = std::uint64_t;

constexpr PageTableRoot kNullRoot = 0;

/** Classic two-level page table. */
class PageTable : public snap::Saveable
{
  public:
    PageTable();
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /** The CR3 token for this table; unique per PageTable instance. */
    PageTableRoot root() const { return root_; }

    /** Look up the PTE mapping @p va; nullptr when no table entry exists.
     *  A present check is still required on the returned PTE. */
    const Pte *lookup(VAddr va) const;

    /** Install (or replace) the mapping for the page containing @p va. */
    void map(VAddr va, std::uint64_t frame, bool writable, bool user);

    /** Remove the mapping for the page containing @p va.
     *  @return the PTE that was removed (present=false if none). */
    Pte unmap(VAddr va);

    /** Mutable access for accessed/dirty bit updates by the walker. */
    Pte *lookupMut(VAddr va);

    /** Number of present mappings. */
    std::uint64_t mappedPages() const { return mapped_; }

    /** Simulated cost of one hardware page walk, in cycles. Two levels
     *  at DRAM-ish latency each. */
    static constexpr Cycles kWalkCycles = 40;

    /** Snapshot: present mappings with their accessed/dirty bits. The
     *  root token is NOT archived — a restored table gets a fresh
     *  unique token, which preserves every equality relation the model
     *  compares (injective both before and after). */
    void snapSave(snap::Serializer &s) const override;
    void snapRestore(snap::Deserializer &d) override;

  private:
    static constexpr unsigned kDirBits = 10;
    static constexpr unsigned kTblBits = 10;
    static constexpr std::size_t kDirEntries = 1u << kDirBits;
    static constexpr std::size_t kTblEntries = 1u << kTblBits;

    static unsigned
    dirIndex(VAddr va)
    {
        return (va >> (kPageShift + kTblBits)) & (kDirEntries - 1);
    }

    static unsigned
    tblIndex(VAddr va)
    {
        return (va >> kPageShift) & (kTblEntries - 1);
    }

    using Leaf = std::array<Pte, kTblEntries>;

    std::array<std::unique_ptr<Leaf>, kDirEntries> dir_;
    /** snap: config — the root is a process-lifetime-unique handle,
     *  only ever compared for equality between live tables (CR3
     *  semantics); it never travels in an image, and a machine
     *  rebuilt from config gets fresh-but-equivalent roots. */
    PageTableRoot root_;
    std::uint64_t mapped_ = 0;

    /** Atomic: --jobs N constructs machines on concurrent workers. */
    static std::atomic<std::uint64_t> nextRoot_;
};

} // namespace misp::mem

#endif // MISP_MEM_PAGE_TABLE_HH
