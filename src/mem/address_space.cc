#include "address_space.hh"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "sim/logging.hh"

namespace misp::mem {

namespace {
// The id's one job is process-lifetime uniqueness (ABA detection in
// Mmu::setAddressSpace); it never reaches simulated state or output.
// Atomic because --jobs N constructs machines on concurrent workers.
std::atomic<std::uint64_t> nextAddressSpaceId{1};
} // namespace

AddressSpace::AddressSpace(std::string name, PhysicalMemory &pmem)
    : name_(std::move(name)),
      pmem_(pmem),
      id_(nextAddressSpaceId.fetch_add(1, std::memory_order_relaxed)),
      decodeCache_(pmem)
{}

AddressSpace::~AddressSpace()
{
    // Return every resident frame so multiprogramming runs with process
    // churn do not exhaust physical memory.
    for (auto &[start, region] : regions_) {
        for (VAddr va = region.vma.start; va < region.vma.end;
             va += kPageSize) {
            Pte pte = table_.unmap(va);
            if (pte.present)
                pmem_.freeFrame(pte.frame);
        }
    }
}

VAddr
AddressSpace::defineRegion(VAddr start, std::uint64_t len, bool writable,
                           std::string label,
                           std::vector<std::uint8_t> image)
{
    MISP_ASSERT(len > 0);
    VAddr alignedStart = pageBase(start);
    VAddr alignedEnd = pageBase(start + len + kPageSize - 1);
    MISP_ASSERT(alignedEnd <= kUserLimit);

    // Overlap with an existing region is a setup error.
    for (const auto &[s, region] : regions_) {
        if (alignedStart < region.vma.end && region.vma.start < alignedEnd)
            fatal("address space '%s': region '%s' overlaps '%s'",
                  name_.c_str(), label.c_str(), region.vma.label.c_str());
    }

    Region region;
    region.vma = Vma{alignedStart, alignedEnd, writable, std::move(label)};
    if (!image.empty()) {
        // Backing image is indexed from the *aligned* start.
        std::uint64_t lead = start - alignedStart;
        std::vector<std::uint8_t> shifted(lead + image.size(), 0);
        std::memcpy(shifted.data() + lead, image.data(), image.size());
        region.image = std::move(shifted);
    }
    regions_.emplace(alignedStart, std::move(region));
    return alignedStart;
}

VAddr
AddressSpace::allocRegion(std::uint64_t len, bool writable,
                          std::string label)
{
    VAddr start = allocCursor_;
    std::uint64_t rounded = (len + kPageSize - 1) & ~kPageMask;
    // One guard page between regions catches stray overruns in guest code.
    allocCursor_ += rounded + kPageSize;
    MISP_ASSERT(allocCursor_ < kStackTop);
    defineRegion(start, rounded, writable, std::move(label));
    return start;
}

const AddressSpace::Region *
AddressSpace::findRegion(VAddr va) const
{
    auto it = regions_.upper_bound(va);
    if (it == regions_.begin())
        return nullptr;
    --it;
    return it->second.vma.contains(va) ? &it->second : nullptr;
}

const Vma *
AddressSpace::findVma(VAddr va) const
{
    const Region *r = findRegion(va);
    return r ? &r->vma : nullptr;
}

FaultOutcome
AddressSpace::handleFault(VAddr va, bool write)
{
    const Region *region = findRegion(va);
    if (!region)
        return FaultOutcome::BadAccess;
    if (write && !region->vma.writable)
        return FaultOutcome::BadAccess;

    const Pte *existing = table_.lookup(va);
    if (existing && existing->present) {
        // Racing fault (two sequencers touched the same fresh page); the
        // second fault finds the mapping installed — benign, just retry.
        return FaultOutcome::Paged;
    }

    std::uint64_t frame = pmem_.allocFrame();
    // All user pages are mapped user-accessible; write permission follows
    // the VMA.
    table_.map(va, frame, region->vma.writable, /*user=*/true);
    // A (re)mapped page can never serve stale predecoded contents.
    decodeCache_.invalidateVpn(pageNumber(va));
    ++resident_;
    ++faultsServiced_;

    // Copy in backing image content for this page, if any.
    if (!region->image.empty()) {
        VAddr pageStart = pageBase(va);
        std::uint64_t imgOff = pageStart - region->vma.start;
        if (imgOff < region->image.size()) {
            std::uint64_t n = std::min<std::uint64_t>(
                kPageSize, region->image.size() - imgOff);
            pmem_.writeBytes(frame << kPageShift,
                             region->image.data() + imgOff, n);
        }
    }
    return FaultOutcome::Paged;
}

std::uint64_t
AddressSpace::prefault(VAddr start, std::uint64_t len)
{
    std::uint64_t touched = 0;
    for (VAddr va = pageBase(start); va < start + len; va += kPageSize) {
        if (!mapped(va)) {
            if (handleFault(va, /*write=*/false) == FaultOutcome::Paged)
                ++touched;
        }
    }
    return touched;
}

bool
AddressSpace::mapped(VAddr va) const
{
    const Pte *pte = table_.lookup(va);
    return pte && pte->present;
}

void
AddressSpace::poke(VAddr va, const void *src, std::uint64_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        if (!mapped(va)) {
            FaultOutcome out = handleFault(va, /*write=*/true);
            if (out == FaultOutcome::BadAccess)
                panic("poke to unmapped address %#llx in '%s'",
                      (unsigned long long)va, name_.c_str());
        }
        const Pte *pte = table_.lookup(va);
        std::uint64_t chunk =
            std::min<std::uint64_t>(len, kPageSize - pageOffset(va));
        pmem_.writeBytes(pte->frameBase() + pageOffset(va), in, chunk);
        // Host-side writers (loaders, runtimes) obey the same decode
        // coherence rule as guest stores.
        decodeCache_.noteWrite(va);
        va += chunk;
        in += chunk;
        len -= chunk;
    }
}

void
AddressSpace::peek(VAddr va, void *dst, std::uint64_t len) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        std::uint64_t chunk =
            std::min<std::uint64_t>(len, kPageSize - pageOffset(va));
        const Pte *pte = table_.lookup(va);
        if (pte && pte->present) {
            pmem_.readBytes(pte->frameBase() + pageOffset(va), out, chunk);
        } else {
            std::memset(out, 0, chunk);
        }
        va += chunk;
        out += chunk;
        len -= chunk;
    }
}

Word
AddressSpace::peekWord(VAddr va, unsigned size) const
{
    Word v = 0;
    peek(va, &v, size);
    return v;
}

void
AddressSpace::pokeWord(VAddr va, Word value, unsigned size)
{
    poke(va, &value, size);
}

void
AddressSpace::snapSave(snap::Serializer &s) const
{
    s.u64(regions_.size());
    for (const auto &[start, region] : regions_) {
        (void)start;
        s.u64(region.vma.start);
        s.u64(region.vma.end);
        s.b(region.vma.writable);
        s.str(region.vma.label);
        s.u64(region.image.size());
        if (!region.image.empty())
            s.bytes(region.image.data(), region.image.size());
    }
    s.u64(allocCursor_);
    s.u64(resident_);
    s.u64(faultsServiced_);
    table_.snapSave(s);
}

void
AddressSpace::snapRestore(snap::Deserializer &d)
{
    MISP_ASSERT(regions_.empty()); // restore onto a fresh space only
    std::uint64_t count = d.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        Region region;
        region.vma.start = d.u64();
        region.vma.end = d.u64();
        region.vma.writable = d.b();
        region.vma.label = d.str();
        region.image.resize(d.u64());
        if (!region.image.empty())
            d.bytes(region.image.data(), region.image.size());
        VAddr start = region.vma.start;
        regions_.emplace(start, std::move(region));
    }
    allocCursor_ = d.u64();
    resident_ = d.u64();
    faultsServiced_ = d.u64();
    table_.snapRestore(d);
}

} // namespace misp::mem
