/**
 * @file
 * A process virtual address space: VMA list, backing images, and the
 * demand-paging policy the kernel model invokes on page faults.
 *
 * All pages — code, data, heap, stacks — are demand-paged: nothing is
 * mapped until first touch. This is what produces the "compulsory page
 * faults [that] cause the majority of proxy execution events" in the
 * paper's Table 1 analysis (§5.3), and what the page-probe pre-faulting
 * optimization (bench/ablation_pageprobe) eliminates.
 */

#ifndef MISP_MEM_ADDRESS_SPACE_HH
#define MISP_MEM_ADDRESS_SPACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cpu/decode_cache.hh"
#include "mem/page_table.hh"
#include "mem/paging.hh"
#include "mem/physical_memory.hh"
#include "sim/types.hh"
#include "snapshot/serialize.hh"

namespace misp::mem {

/** Canonical MISA user-space layout. */
constexpr VAddr kCodeBase = 0x0040'0000;  ///< 4 MiB
constexpr VAddr kDataBase = 0x0800'0000;  ///< 128 MiB
constexpr VAddr kHeapBase = 0x1000'0000;  ///< 256 MiB
constexpr VAddr kStackTop = 0xBFFF'F000;  ///< below the 3 GiB kernel split
constexpr VAddr kUserLimit = 0xC000'0000;

/** One virtual memory area. */
struct Vma {
    VAddr start = 0;  ///< inclusive, page aligned
    VAddr end = 0;    ///< exclusive, page aligned
    bool writable = false;
    std::string label; ///< "code", "heap", "stack:3", ...

    bool
    contains(VAddr va) const
    {
        return va >= start && va < end;
    }
};

/** Result of asking the address space to service a fault. */
enum class FaultOutcome {
    Paged,     ///< a frame was allocated and mapped; retry the access
    BadAccess, ///< address not in any VMA, or write to read-only VMA
};

/**
 * A virtual address space shared by all sequencers running one process.
 *
 * The MISP architecture's central memory property — every sequencer in a
 * MISP processor sees the same virtual address space — is modeled by all
 * sequencers of a processor pointing their MMUs at this object's page
 * table root while the owning thread is scheduled.
 */
class AddressSpace : public snap::Saveable
{
  public:
    AddressSpace(std::string name, PhysicalMemory &pmem);
    ~AddressSpace();

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    const std::string &name() const { return name_; }
    PageTable &pageTable() { return table_; }
    const PageTable &pageTable() const { return table_; }
    PageTableRoot root() const { return table_.root(); }

    /** Process-lifetime-unique identity (never reused, unlike the heap
     *  address); lets an MMU detect "same space reloaded" without the
     *  ABA hazard of comparing pointers across destruction. */
    std::uint64_t id() const { return id_; }

    /** Predecoded instruction pages derived from this space's memory.
     *  Shared by every sequencer currently pointing its MMU here, and
     *  invalidated by all writers (stores, pokes, mapping changes). */
    cpu::DecodeCache &decodeCache() { return decodeCache_; }
    const cpu::DecodeCache &decodeCache() const { return decodeCache_; }

    /**
     * Declare a VMA. If @p image is non-empty its bytes back the start of
     * the region (zero-fill beyond). Addresses are page-rounded outward.
     * @return the page-aligned start address.
     */
    VAddr defineRegion(VAddr start, std::uint64_t len, bool writable,
                       std::string label,
                       std::vector<std::uint8_t> image = {});

    /** Allocate a fresh page-aligned anonymous region above the heap.
     *  Used by the guest malloc and by stack carving. */
    VAddr allocRegion(std::uint64_t len, bool writable, std::string label);

    /** Demand-page the fault at @p va (called by the kernel model).
     *  On success installs the PTE and copies backing image bytes. */
    FaultOutcome handleFault(VAddr va, bool write);

    /** Pre-fault every page of [start,start+len): the §5.3 "page probe"
     *  optimization. @return pages actually faulted in. */
    std::uint64_t prefault(VAddr start, std::uint64_t len);

    /** True if the page holding @p va is currently mapped. */
    bool mapped(VAddr va) const;

    /** VMA lookup (nullptr if unmapped address). */
    const Vma *findVma(VAddr va) const;

    /**
     * Host-side debug/loader access that bypasses timing but honors the
     * paging state: reads of unmapped pages return zeroes; writes fault
     * pages in first. Used by loaders, checkers, and tests — never by
     * modeled instruction execution.
     */
    void poke(VAddr va, const void *src, std::uint64_t len);
    void peek(VAddr va, void *dst, std::uint64_t len) const;

    Word peekWord(VAddr va, unsigned size) const;
    void pokeWord(VAddr va, Word value, unsigned size);

    std::uint64_t residentPages() const { return resident_; }
    std::uint64_t faultsServiced() const { return faultsServiced_; }

    /** Snapshot: VMAs with their backing images, the allocation
     *  cursor, paging counters, and the page table. The decode cache
     *  is derived state (predecoded guest memory) and stays out of the
     *  image; it repopulates lazily and identically after restore. */
    void snapSave(snap::Serializer &s) const override;
    void snapRestore(snap::Deserializer &d) override;

  private:
    struct Region {
        Vma vma;
        std::vector<std::uint8_t> image; ///< backing bytes from vma.start
    };

    const Region *findRegion(VAddr va) const;

    std::string name_;    ///< snap: config
    PhysicalMemory &pmem_;
    /** snap: config — a process-lifetime-unique handle, only ever
     *  compared for equality between live spaces (Mmu ABA check); it
     *  never travels in an image. */
    std::uint64_t id_;
    cpu::DecodeCache decodeCache_; ///< snap: derived — rebuilds lazily
    PageTable table_;
    std::map<VAddr, Region> regions_; ///< keyed by start
    VAddr allocCursor_ = kHeapBase;
    std::uint64_t resident_ = 0;
    std::uint64_t faultsServiced_ = 0;
};

} // namespace misp::mem

#endif // MISP_MEM_ADDRESS_SPACE_HH
