/**
 * @file
 * Per-sequencer translation lookaside buffer.
 *
 * Each sequencer — OMS or AMS — owns a private TLB with its own hardware
 * page walker, exactly as the paper requires: "each sequencer can
 * independently execute a shred in Ring 3 ... with any TLB miss handled
 * independently by the sequencer's hardware TLB page walker" (§2.3).
 * Any CR3 write purges the writing sequencer's TLB; the MISP
 * serialization engine purges AMS TLBs when synchronizing privileged
 * state after an OMS Ring-0 episode that changed the root.
 *
 * The TLB is a set-associative array with clock (one-bit pseudo-LRU)
 * replacement — the layout real DTLBs use — rather than the map-backed
 * true-LRU structure early versions of this model carried. The array
 * form has two properties the execution engine's fast path depends on:
 *
 *  - Entry storage never reallocates, so a pointer returned by lookup()
 *    or insert() stays dereferenceable for the TLB's lifetime. Whether
 *    the entry still *means* anything is captured by stamp(), which
 *    advances on every insert, invalidate, and flush; a caller holding
 *    an EntryRef may replay a hit cheaply while the stamp is unchanged
 *    (see Mmu's last-translation cache).
 *  - Lookup is a handful of tag compares instead of a hash probe, which
 *    matters when it runs once per simulated instruction.
 */

#ifndef MISP_MEM_TLB_HH
#define MISP_MEM_TLB_HH

#include <cstdint>
#include <vector>

#include "mem/paging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "snapshot/serialize.hh"

namespace misp::mem {

/** Set-associative TLB with clock pseudo-LRU replacement. */
class Tlb : public snap::Saveable
{
  public:
    struct Entry {
        std::uint64_t vpn = 0;
        Pte pte;
        bool valid = false;
        bool used = false; ///< clock reference bit
    };

    /** Opaque handle to a resident entry, valid while stamp() holds. */
    struct EntryRef {
        Entry *entry = nullptr;
        explicit operator bool() const { return entry != nullptr; }
    };

    /**
     * @param entries capacity; 64 matches a Pentium-4-era DTLB. Rounded
     *        up so each set holds kWays entries.
     */
    Tlb(std::string name, std::size_t entries, stats::StatGroup *parent);

    /** Look up a cached translation. @return nullptr on miss. On a hit
     *  the entry's reference bit is set and @p ref (if given) receives a
     *  handle usable with touchHit() while stamp() is unchanged. */
    const Pte *lookup(VAddr va, EntryRef *ref = nullptr);

    /** Install a translation (after a successful page walk).
     *  @return the installed entry's PTE; the pointer stays valid for
     *  the TLB's lifetime (re-validate against stamp() before reuse). */
    const Pte *insert(VAddr va, const Pte &pte, EntryRef *ref = nullptr);

    /** Replay a hit on an entry known to still be resident (the caller
     *  verified stamp() is unchanged since lookup/insert returned
     *  @p ref). Performs exactly the modeled effects of lookup():
     *  reference-bit touch and hit accounting. */
    void
    touchHit(EntryRef ref)
    {
        ref.entry->used = true;
        ++hits_;
    }

    /** Batched form of touchHit(): commit @p n deferred hit replays on
     *  one entry at once. Valid under the same stamp() contract, with
     *  one extra requirement the superblock engine upholds: nothing may
     *  have *read* the reference bits (an insert's clock eviction scan)
     *  between the replayed fetches and this commit — the reference-bit
     *  set is idempotent, so only an intervening eviction decision
     *  could observe the difference, and any insert bumps stamp() and
     *  forces a real lookup first. */
    void
    touchHitN(EntryRef ref, std::uint64_t n)
    {
        if (n == 0)
            return;
        ref.entry->used = true;
        hits_ += n;
    }

    /** Remove one page's entry if cached (e.g. TLB shootdown). */
    void invalidatePage(VAddr va);

    /** Purge everything (CR3 write semantics). */
    void flushAll();

    /** Monotonic content-change stamp: advances on insert,
     *  invalidatePage, and flushAll. Cached EntryRefs and derived
     *  translations are only replayable while this is unchanged. */
    std::uint64_t stamp() const { return stamp_; }

    std::size_t capacity() const { return slots_.size(); }
    std::size_t size() const;

    std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(hits_.value());
    }
    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(misses_.value());
    }

    static constexpr std::size_t kWays = 4;

    /** Snapshot the full replacement state (entries, reference bits,
     *  clock hands, content stamp) — TLB residency decides future
     *  hit/miss cycles, so it is architectural for determinism. */
    void snapSave(snap::Serializer &s) const override;
    void snapRestore(snap::Deserializer &d) override;

  private:
    std::size_t setIndex(std::uint64_t vpn) const
    {
        return vpn & (numSets_ - 1);
    }

    std::size_t numSets_; ///< snap: config — fixed by the entry count
    std::vector<Entry> slots_;        ///< numSets_ * kWays, set-major
    std::vector<std::uint8_t> hand_;  ///< per-set clock hand
    std::uint64_t stamp_ = 1;

    stats::StatGroup statGroup_;
    stats::Scalar hits_;
    stats::Scalar misses_;
    stats::Scalar flushes_;
};

} // namespace misp::mem

#endif // MISP_MEM_TLB_HH
