/**
 * @file
 * Per-sequencer translation lookaside buffer.
 *
 * Each sequencer — OMS or AMS — owns a private TLB with its own hardware
 * page walker, exactly as the paper requires: "each sequencer can
 * independently execute a shred in Ring 3 ... with any TLB miss handled
 * independently by the sequencer's hardware TLB page walker" (§2.3).
 * Any CR3 write purges the writing sequencer's TLB; the MISP
 * serialization engine purges AMS TLBs when synchronizing privileged
 * state after an OMS Ring-0 episode that changed the root.
 */

#ifndef MISP_MEM_TLB_HH
#define MISP_MEM_TLB_HH

#include <cstdint>
#include <unordered_map>

#include "mem/paging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace misp::mem {

/** Fully-associative TLB with true-LRU replacement. */
class Tlb
{
  public:
    /**
     * @param entries capacity; 64 matches a Pentium-4-era DTLB.
     */
    Tlb(std::string name, std::size_t entries, stats::StatGroup *parent);

    /** Look up a cached translation. @return nullptr on miss. */
    const Pte *lookup(VAddr va);

    /** Install a translation (after a successful page walk). */
    void insert(VAddr va, const Pte &pte);

    /** Remove one page's entry if cached (e.g. TLB shootdown). */
    void invalidatePage(VAddr va);

    /** Purge everything (CR3 write semantics). */
    void flushAll();

    std::size_t capacity() const { return entries_; }
    std::size_t size() const { return map_.size(); }

    std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(hits_.value());
    }
    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(misses_.value());
    }

  private:
    struct Slot {
        Pte pte;
        std::uint64_t lastUse;
    };

    void evictLru();

    std::size_t entries_;
    std::uint64_t useClock_ = 0;
    std::unordered_map<std::uint64_t, Slot> map_; ///< keyed by VPN

    stats::StatGroup statGroup_;
    stats::Scalar hits_;
    stats::Scalar misses_;
    stats::Scalar flushes_;
};

} // namespace misp::mem

#endif // MISP_MEM_TLB_HH
