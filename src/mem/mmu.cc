#include "mmu.hh"

#include "cpu/decode_cache.hh"
#include "obs/trace.hh"

namespace misp::mem {

Mmu::Mmu(std::string name, PhysicalMemory &pmem, stats::StatGroup *parent)
    : pmem_(pmem),
      statGroup_(std::move(name), parent),
      tlb_("tlb", 64, &statGroup_),
      walks_(&statGroup_, "pageWalks", "hardware page walks performed"),
      pageFaults_(&statGroup_, "pageFaults", "translation page faults")
{}

void
Mmu::setAddressSpace(AddressSpace *as, bool preserveTlb)
{
    bool sameRoot = as_ && as && as_->root() == as->root();
    // Bump the generation (dropping every cached decoded-block
    // reference) only when the space actually changes. Identity is the
    // space's never-reused id, not its pointer, so a freed-and-
    // reallocated AddressSpace at the same heap address still
    // invalidates; reloading the same live space (common in the
    // multiprogramming runs) keeps coherent blocks.
    std::uint64_t newId = as ? as->id() : 0;
    if (newId != lastAsId_) {
        ++asGen_;
        lastAsId_ = newId;
    }
    as_ = as;
    lastFetch_.tlbStamp = 0;
    lastData_.tlbStamp = 0;
    // Architecturally a CR3 write always purges the TLB; preserveTlb
    // models the synchronization fast-path where the root is verified
    // unchanged, so no write is performed at all.
    if (!(preserveTlb && sameRoot))
        tlb_.flushAll();
}

void
Mmu::snapSave(snap::Serializer &s) const
{
    s.u64(asGen_);
    tlb_.snapSave(s);
}

void
Mmu::snapRestore(snap::Deserializer &d)
{
    asGen_ = d.u64();
    tlb_.snapRestore(d);
    lastFetch_ = LastFetch{};
    lastData_ = LastData{};
}

void
Mmu::snapAttach(AddressSpace *as)
{
    as_ = as;
    lastAsId_ = as ? as->id() : 0;
    lastFetch_.tlbStamp = 0;
    lastData_.tlbStamp = 0;
}

AccessResult
Mmu::translate(VAddr va, unsigned size, Access access, Ring ring,
               PAddr *paOut, Tlb::EntryRef *refOut)
{
    Tlb::EntryRef localRef;
    if (!refOut)
        refOut = &localRef;
    AccessResult res;
    if (!as_) {
        res.fault = Fault::pageFault(va, access == Access::Write);
        return res;
    }
    // Natural alignment is an architectural requirement of MISA.
    if (size > 1 && (va & (size - 1)) != 0) {
        res.fault = Fault::of(FaultKind::GeneralProtection, va);
        return res;
    }

    bool isWrite = access == Access::Write;
    const Pte *pte = tlb_.lookup(va, refOut);
    if (!pte) {
        // Hardware page walk.
        res.cycles += PageTable::kWalkCycles;
        ++walks_;
        Pte *walked = as_->pageTable().lookupMut(va);
        if (!walked || !walked->present) {
            ++pageFaults_;
            res.fault = Fault::pageFault(va, isWrite);
            return res;
        }
        walked->accessed = true;
        if (isWrite)
            walked->dirty = true;
        // insert() hands back the installed entry: no second probe, and
        // no pointer into a structure the insert may just have reshaped.
        pte = tlb_.insert(va, *walked, refOut);
        // The fill (miss + walk) path is engine-independent — hit
        // accounting is not (the superblock engine batches hit
        // replays), so only fills/shootdowns/flushes are traced.
        obs::trace(obs::TraceKind::TlbFill, 0,
                   static_cast<std::uint32_t>(access), pageNumber(va));
    }

    // Permission checks: user bit for Ring 3, write bit for stores.
    if (ring == Ring::User && !pte->user) {
        ++pageFaults_;
        res.fault = Fault::pageFault(va, isWrite);
        return res;
    }
    if (isWrite && !pte->writable) {
        ++pageFaults_;
        res.fault = Fault::pageFault(va, isWrite);
        return res;
    }

    if (paOut)
        *paOut = pte->frameBase() + pageOffset(va);
    res.cycles += kAccessCycles;
    // Prime the data-side last-translation cache (the superblock
    // engine's replay source). Execute translations go through the
    // fetch-side cache instead.
    if (access != Access::Execute) {
        lastData_.vpn = pageNumber(va);
        lastData_.tlbStamp = tlb_.stamp();
        lastData_.bytes = pmem_.frameData(pte->frameBase() >> kPageShift);
        lastData_.ring = ring;
        lastData_.writable = pte->writable;
        lastData_.way = *refOut;
    }
    return res;
}

AccessResult
Mmu::read(VAddr va, unsigned size, Ring ring)
{
    PAddr pa = 0;
    AccessResult res = translate(va, size, Access::Read, ring, &pa);
    if (res.fault)
        return res;
    res.value = pmem_.read(pa, size);
    return res;
}

AccessResult
Mmu::write(VAddr va, Word value, unsigned size, Ring ring)
{
    PAddr pa = 0;
    AccessResult res = translate(va, size, Access::Write, ring, &pa);
    if (res.fault)
        return res;
    pmem_.write(pa, value, size);
    // Self-modifying-code coherence: a store that lands on a predecoded
    // page drops that page (O(1) probe for ordinary data stores).
    as_->decodeCache().noteWrite(va);
    return res;
}

FetchResult
Mmu::fetchTranslate(VAddr va, Ring ring, bool fastPath)
{
    FetchResult res;
    if ((va & 15) != 0) { // 16-byte instruction bundle alignment
        res.fault = Fault::of(FaultKind::GeneralProtection, va);
        return res;
    }

    const std::uint64_t vpn = pageNumber(va);
    if (fastPath && lastFetch_.tlbStamp == tlb_.stamp() &&
        lastFetch_.vpn == vpn && lastFetch_.ring == ring) {
        // Replay the guaranteed hit: identical modeled effects to a full
        // lookup (reference-bit touch, hit count, access latency).
        tlb_.touchHit(lastFetch_.way);
        res.cycles = kAccessCycles;
        res.pa = lastFetch_.paBase + pageOffset(va);
        return res;
    }

    // Slow path: the same probe-or-walk as every data access (so fetch
    // behavior can never diverge from data-access behavior), plus the
    // last-translation cache refill.
    Tlb::EntryRef way;
    PAddr pa = 0;
    AccessResult ar = translate(va, 8, Access::Execute, ring, &pa, &way);
    res.fault = ar.fault;
    res.cycles = ar.cycles;
    if (res.fault)
        return res;
    res.pa = pa;

    lastFetch_.vpn = vpn;
    lastFetch_.tlbStamp = tlb_.stamp();
    lastFetch_.paBase = pa & ~static_cast<PAddr>(kPageMask);
    lastFetch_.ring = ring;
    lastFetch_.way = way;
    return res;
}

AccessResult
Mmu::fetchInst(VAddr va, std::uint8_t buf[16], Ring ring)
{
    // Reference fetch path: full TLB probe, then read the bundle bytes.
    FetchResult ft = fetchTranslate(va, ring, /*fastPath=*/false);
    AccessResult res;
    res.fault = ft.fault;
    res.cycles = ft.cycles;
    if (res.fault)
        return res;
    pmem_.readBytes(ft.pa, buf, 16);
    return res;
}

AccessResult
Mmu::fetch(VAddr va, unsigned size, Ring ring)
{
    PAddr pa = 0;
    AccessResult res = translate(va, size, Access::Execute, ring, &pa);
    if (res.fault)
        return res;
    res.value = pmem_.read(pa, size);
    return res;
}

} // namespace misp::mem
