#include "mmu.hh"

namespace misp::mem {

Mmu::Mmu(std::string name, PhysicalMemory &pmem, stats::StatGroup *parent)
    : pmem_(pmem),
      statGroup_(std::move(name), parent),
      tlb_("tlb", 64, &statGroup_),
      walks_(&statGroup_, "pageWalks", "hardware page walks performed"),
      pageFaults_(&statGroup_, "pageFaults", "translation page faults")
{}

void
Mmu::setAddressSpace(AddressSpace *as, bool preserveTlb)
{
    bool sameRoot = as_ && as && as_->root() == as->root();
    as_ = as;
    // Architecturally a CR3 write always purges the TLB; preserveTlb
    // models the synchronization fast-path where the root is verified
    // unchanged, so no write is performed at all.
    if (!(preserveTlb && sameRoot))
        tlb_.flushAll();
}

AccessResult
Mmu::translate(VAddr va, unsigned size, Access access, Ring ring,
               PAddr *paOut)
{
    AccessResult res;
    if (!as_) {
        res.fault = Fault::pageFault(va, access == Access::Write);
        return res;
    }
    // Natural alignment is an architectural requirement of MISA.
    if (size > 1 && (va & (size - 1)) != 0) {
        res.fault = Fault::of(FaultKind::GeneralProtection, va);
        return res;
    }

    bool isWrite = access == Access::Write;
    const Pte *pte = tlb_.lookup(va);
    if (!pte) {
        // Hardware page walk.
        res.cycles += PageTable::kWalkCycles;
        ++walks_;
        Pte *walked = as_->pageTable().lookupMut(va);
        if (!walked || !walked->present) {
            ++pageFaults_;
            res.fault = Fault::pageFault(va, isWrite);
            return res;
        }
        walked->accessed = true;
        if (isWrite)
            walked->dirty = true;
        tlb_.insert(va, *walked);
        pte = tlb_.lookup(va);
    }

    // Permission checks: user bit for Ring 3, write bit for stores.
    if (ring == Ring::User && !pte->user) {
        ++pageFaults_;
        res.fault = Fault::pageFault(va, isWrite);
        return res;
    }
    if (isWrite && !pte->writable) {
        ++pageFaults_;
        res.fault = Fault::pageFault(va, isWrite);
        return res;
    }

    if (paOut)
        *paOut = pte->frameBase() + pageOffset(va);
    res.cycles += kAccessCycles;
    return res;
}

AccessResult
Mmu::read(VAddr va, unsigned size, Ring ring)
{
    PAddr pa = 0;
    AccessResult res = translate(va, size, Access::Read, ring, &pa);
    if (res.fault)
        return res;
    res.value = pmem_.read(pa, size);
    return res;
}

AccessResult
Mmu::write(VAddr va, Word value, unsigned size, Ring ring)
{
    PAddr pa = 0;
    AccessResult res = translate(va, size, Access::Write, ring, &pa);
    if (res.fault)
        return res;
    pmem_.write(pa, value, size);
    return res;
}

AccessResult
Mmu::fetchInst(VAddr va, std::uint8_t buf[16], Ring ring)
{
    AccessResult res;
    if ((va & 15) != 0) {
        res.fault = Fault::of(FaultKind::GeneralProtection, va);
        return res;
    }
    PAddr pa = 0;
    // Alignment already guaranteed; translate with an 8-byte probe.
    res = translate(va, 8, Access::Execute, ring, &pa);
    if (res.fault)
        return res;
    pmem_.readBytes(pa, buf, 16);
    return res;
}

AccessResult
Mmu::fetch(VAddr va, unsigned size, Ring ring)
{
    PAddr pa = 0;
    AccessResult res = translate(va, size, Access::Execute, ring, &pa);
    if (res.fault)
        return res;
    res.value = pmem_.read(pa, size);
    return res;
}

} // namespace misp::mem
