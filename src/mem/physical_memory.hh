/**
 * @file
 * Sparse physical memory with a frame allocator.
 *
 * Frames are materialized lazily so a simulated machine can expose a large
 * physical address space without committing host memory. The kernel model
 * allocates frames on demand-paging faults; freeing returns frames to a
 * free list so long multiprogramming runs do not leak.
 */

#ifndef MISP_MEM_PHYSICAL_MEMORY_HH
#define MISP_MEM_PHYSICAL_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "mem/paging.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "snapshot/serialize.hh"

namespace misp::mem {

/** Byte-addressable sparse physical memory. */
class PhysicalMemory : public snap::Saveable
{
  public:
    /**
     * @param frames total number of physical frames (capacity).
     */
    explicit PhysicalMemory(std::uint64_t frames,
                            stats::StatGroup *parent = nullptr);

    /** Allocate a zeroed frame. @return frame number.
     *  fatal()s when physical memory is exhausted. */
    std::uint64_t allocFrame();

    /** Return a frame to the allocator. */
    void freeFrame(std::uint64_t frame);

    std::uint64_t framesTotal() const { return frames_; }
    std::uint64_t framesUsed() const { return used_; }
    std::uint64_t framesFree() const { return frames_ - used_; }

    /** Typed little-endian accessors. @p size in {1,2,4,8}.
     *  Accesses must not cross a frame boundary (callers split at page
     *  granularity, and guest accesses are size-aligned). */
    Word read(PAddr addr, unsigned size) const;
    void write(PAddr addr, Word value, unsigned size);

    /** Bulk copy helpers for loaders and the proxy save/restore paths. */
    void readBytes(PAddr addr, void *dst, std::uint64_t len) const;
    void writeBytes(PAddr addr, const void *src, std::uint64_t len);

    /** Stable pointer to @p frame's backing bytes (lazily
     *  materialized). The store is node-based and frames are never
     *  resized, so the pointer stays valid — and observes recycles in
     *  place — for the store's lifetime. Used by the Mmu's replay
     *  paths; replayed accesses account their bytes through
     *  accountReplayBytes() instead of read()/write(). */
    std::uint8_t *frameData(std::uint64_t frame)
    {
        return framePtrMut(frame);
    }

    /** Fold @p rd read / @p wr written bytes from a batched replay run
     *  into the access counters (bit-identical totals: addition
     *  commutes, and the replay path flushes at every boundary where
     *  the counters could be observed). */
    void
    accountReplayBytes(std::uint64_t rd, std::uint64_t wr)
    {
        bytesRead_ += rd;
        bytesWritten_ += wr;
    }

    /** Snapshot the allocator state and every materialized frame
     *  (frames are emitted in ascending order, so images of identical
     *  machine states are byte-identical). */
    void snapSave(snap::Serializer &s) const override;
    void snapRestore(snap::Deserializer &d) override;

  private:
    const std::uint8_t *framePtr(std::uint64_t frame) const;
    std::uint8_t *framePtrMut(std::uint64_t frame);

    std::uint64_t frames_;
    std::uint64_t used_ = 0;
    std::uint64_t nextFresh_ = 0;
    std::vector<std::uint64_t> freeList_;
    mutable std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
        store_;

    stats::StatGroup statGroup_;
    stats::Scalar framesAllocated_;
    stats::Scalar framesFreed_;
    stats::Scalar bytesRead_;
    stats::Scalar bytesWritten_;
};

} // namespace misp::mem

#endif // MISP_MEM_PHYSICAL_MEMORY_HH
