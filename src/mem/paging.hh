/**
 * @file
 * Paging constants and page-table entry layout for the MISA architecture.
 *
 * MISA mirrors the IA-32 system-programming features MISP depends on:
 * a 4 KiB page, a two-level page table rooted at a CR3-style control
 * register, hardware page walkers per sequencer, and TLBs that are purged
 * on any CR3 write (Section 2.3 of the paper).
 */

#ifndef MISP_MEM_PAGING_HH
#define MISP_MEM_PAGING_HH

#include <cstdint>

#include "sim/types.hh"

namespace misp::mem {

constexpr unsigned kPageShift = 12;
constexpr std::uint64_t kPageSize = 1ull << kPageShift;
constexpr std::uint64_t kPageMask = kPageSize - 1;

/** Virtual page number of an address. */
constexpr std::uint64_t
pageNumber(VAddr va)
{
    return va >> kPageShift;
}

/** Base address of the page containing @p va. */
constexpr VAddr
pageBase(VAddr va)
{
    return va & ~kPageMask;
}

constexpr std::uint64_t
pageOffset(VAddr va)
{
    return va & kPageMask;
}

/** Access intent, used for permission checks and dirty tracking. */
enum class Access { Read, Write, Execute };

/** Page-table entry: present/permission bits plus the physical frame. */
struct Pte {
    bool present = false;
    bool writable = false;
    bool user = false;      ///< accessible from Ring 3
    bool accessed = false;
    bool dirty = false;
    std::uint64_t frame = 0; ///< physical frame number

    PAddr
    frameBase() const
    {
        return frame << kPageShift;
    }
};

/** Architectural fault codes raised by instruction execution or
 *  translation. On an AMS every one of these becomes a proxy-execution
 *  trigger; on the OMS (or an SMP CPU) they vector into the kernel. */
enum class FaultKind : std::uint8_t {
    None = 0,
    PageFault,          ///< miss or permission failure during translation
    GeneralProtection,  ///< privilege violation (e.g. Ring-0 op in Ring 3)
    InvalidOpcode,
    DivideError,
    Syscall,            ///< SYSCALL instruction (trap, not an error)
    Breakpoint,
};

const char *faultKindName(FaultKind kind);

/** Full description of a raised fault. */
struct Fault {
    FaultKind kind = FaultKind::None;
    VAddr addr = 0;     ///< faulting address (page faults)
    bool write = false; ///< access was a write (page faults)
    Word code = 0;      ///< syscall number / subcode

    explicit operator bool() const { return kind != FaultKind::None; }

    static Fault none() { return Fault{}; }

    static Fault
    pageFault(VAddr addr, bool write)
    {
        return Fault{FaultKind::PageFault, addr, write, 0};
    }

    static Fault
    syscall(Word number)
    {
        return Fault{FaultKind::Syscall, 0, false, number};
    }

    static Fault
    of(FaultKind kind, Word code = 0)
    {
        return Fault{kind, 0, false, code};
    }
};

} // namespace misp::mem

#endif // MISP_MEM_PAGING_HH
