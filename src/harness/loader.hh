/**
 * @file
 * Guest process loader: places a workload image, the backend's stub
 * library, and a main stack into a fresh address space, and creates the
 * initial OS thread.
 */

#ifndef MISP_HARNESS_LOADER_HH
#define MISP_HARNESS_LOADER_HH

#include <string>
#include <vector>

#include "isa/program.hh"
#include "misp/misp_system.hh"
#include "shredlib/stub_library.hh"

namespace misp::harness {

/** A statically-placed, optionally image-backed guest data region. */
struct DataRegion {
    VAddr addr = 0;
    std::uint64_t size = 0;
    bool writable = true;
    std::string label = "data";
    std::vector<std::uint8_t> image; ///< may be shorter than size
};

/** A complete guest application, ready to load. */
struct GuestApp {
    std::string name;
    isa::Program program; ///< entry = symbol "main"
    std::vector<DataRegion> data;
};

/** A loaded process plus its initial thread. */
struct LoadedProcess {
    os::Process *process = nullptr;
    os::OsThread *mainThread = nullptr;
};

/** Load @p app into a new process on @p system with @p backend stubs.
 *  @p affinity optionally pins the main thread. */
LoadedProcess loadApp(arch::MispSystem &system, const GuestApp &app,
                      rt::Backend backend,
                      const std::vector<int> &affinity = {});

} // namespace misp::harness

#endif // MISP_HARNESS_LOADER_HH
