#include "loader.hh"

namespace misp::harness {

LoadedProcess
loadApp(arch::MispSystem &system, const GuestApp &app, rt::Backend backend,
        const std::vector<int> &affinity)
{
    os::Kernel &kernel = system.kernel();
    os::Process *proc = kernel.createProcess(app.name);
    mem::AddressSpace &as = proc->addressSpace();

    // Code: the workload program (read-only, demand-paged).
    as.defineRegion(app.program.base, app.program.byteSize(),
                    /*writable=*/false, "code", app.program.bytes());

    // The backend's stub library ("shredlib.dll" / "osthreads.dll").
    isa::Program stubs = rt::buildStubLibrary(backend);
    as.defineRegion(stubs.base, stubs.byteSize(), /*writable=*/false,
                    "stubs", stubs.bytes());

    // Static data regions.
    for (const DataRegion &region : app.data) {
        as.defineRegion(region.addr, region.size, region.writable,
                        region.label, region.image);
    }

    // Main stack, top of user space.
    constexpr std::uint64_t kMainStack = 256 * 1024;
    VAddr stackBase = mem::kStackTop - kMainStack;
    as.defineRegion(stackBase, kMainStack, /*writable=*/true, "stack:main");
    VAddr sp = mem::kStackTop - 64;

    os::OsThread *main =
        kernel.createThread(proc, app.program.symbol("main"), sp, 0);
    main->affinity = affinity;

    return LoadedProcess{proc, main};
}

} // namespace misp::harness
