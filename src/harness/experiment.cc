#include "experiment.hh"

#include <cstdio>

namespace misp::harness {

Experiment::Experiment(const arch::SystemConfig &config,
                       rt::Backend backend)
    : backend_(backend)
{
    system_ = std::make_unique<arch::MispSystem>(config);
    if (backend == rt::Backend::Shred) {
        shredRt_ = std::make_unique<rt::ShredRuntime>(
            &system_->rootStats());
        system_->attachRuntime(shredRt_.get());
    } else {
        osRt_ = std::make_unique<rt::OsApiRuntime>(&system_->rootStats());
        system_->attachRuntime(osRt_.get());
    }
}

Experiment::~Experiment() = default;

LoadedProcess
Experiment::load(const GuestApp &app, const std::vector<int> &affinity)
{
    return loadApp(*system_, app, backend_, affinity);
}

const char *
runStatusName(RunStatus status)
{
    switch (status) {
    case RunStatus::Completed:
        return "completed";
    case RunStatus::MaxTicksReached:
        return "max_ticks";
    case RunStatus::SnapshotError:
        return "snapshot_error";
    case RunStatus::WorkerCrashed:
        return "worker_crashed";
    case RunStatus::WorkerTimeout:
        return "worker_timeout";
    }
    return "unknown";
}

bool
runStatusFromName(const std::string &name, RunStatus *out)
{
    static constexpr RunStatus all[] = {
        RunStatus::Completed,     RunStatus::MaxTicksReached,
        RunStatus::SnapshotError, RunStatus::WorkerCrashed,
        RunStatus::WorkerTimeout,
    };
    for (RunStatus status : all) {
        if (name == runStatusName(status)) {
            *out = status;
            return true;
        }
    }
    return false;
}

bool
runStatusIsInfraFailure(RunStatus status)
{
    return status == RunStatus::SnapshotError ||
           status == RunStatus::WorkerCrashed ||
           status == RunStatus::WorkerTimeout;
}

RunOutcome
Experiment::runToCompletion(os::Process *target, Tick maxTicks)
{
    system_->start();
    return finishRun(target, maxTicks);
}

RunOutcome
Experiment::resumeToCompletion(os::Process *target, Tick maxTicks)
{
    return finishRun(target, maxTicks);
}

RunOutcome
Experiment::finishRun(os::Process *target, Tick maxTicks)
{
    Tick finished = 0;
    arch::MispSystem *sys = system_.get();
    system_->kernel().setProcessExitHook(
        [&finished, sys, target](os::Process *proc) {
            if (proc != target)
                return;
            finished = sys->eventQueue().curTick();
            sys->quiesce();
            // Let in-flight Ring-0 episodes and signal deliveries drain
            // (their accounting completes at episode end) before
            // stopping; background processes keep the queue non-empty.
            sys->eventQueue().scheduleLambda(
                sys->eventQueue().curTick() + 500'000, "experiment.stop",
                [sys] { sys->eventQueue().requestStop(); });
        });
    system_->run(maxTicks);
    RunOutcome out;
    if (finished == 0) {
        warn("experiment: target process '%s' did not finish within "
             "%llu ticks",
             target->name().c_str(), (unsigned long long)maxTicks);
        out.status = RunStatus::MaxTicksReached;
    } else {
        out.status = RunStatus::Completed;
        out.ticks = finished;
    }
    return out;
}

std::uint64_t
Experiment::events(unsigned proc, arch::Ring0Cause cause)
{
    return system_->processor(proc).eventCount(cause);
}

std::uint64_t
Experiment::totalInstsRetired()
{
    return harness::totalInstsRetired(*system_);
}

std::uint64_t
totalInstsRetired(arch::MispSystem &sys)
{
    std::uint64_t total = 0;
    for (unsigned p = 0; p < sys.numProcessors(); ++p) {
        arch::MispProcessor &mp = sys.processor(p);
        for (SequencerId sid = 0;; ++sid) {
            cpu::Sequencer *seq = mp.sequencer(sid);
            if (!seq)
                break;
            total += seq->instsRetired();
        }
    }
    return total;
}

double
reportHost(const std::string &name, std::uint64_t instsRetired,
           double hostSeconds, cpu::Engine engine)
{
    double mips =
        hostSeconds > 0.0 ? instsRetired / hostSeconds / 1e6 : 0.0;
    std::fprintf(stderr,
                 "HOST name=%s retired=%llu host_ms=%.1f mips=%.2f "
                 "engine=%s\n",
                 name.c_str(), (unsigned long long)instsRetired,
                 hostSeconds * 1e3, mips, cpu::engineName(engine));
    return mips;
}

const std::vector<EventField> &
eventFields()
{
    using ES = EventSnapshot;
    static const std::vector<EventField> kFields = {
        {"oms_syscalls", false,
         [](const ES &e) { return double(e.omsSyscalls); },
         [](ES &e, double v) { e.omsSyscalls = std::uint64_t(v); }},
        {"oms_page_faults", false,
         [](const ES &e) { return double(e.omsPageFaults); },
         [](ES &e, double v) { e.omsPageFaults = std::uint64_t(v); }},
        {"timer", false, [](const ES &e) { return double(e.timer); },
         [](ES &e, double v) { e.timer = std::uint64_t(v); }},
        {"interrupts", false,
         [](const ES &e) { return double(e.interrupts); },
         [](ES &e, double v) { e.interrupts = std::uint64_t(v); }},
        {"ams_syscalls", false,
         [](const ES &e) { return double(e.amsSyscalls); },
         [](ES &e, double v) { e.amsSyscalls = std::uint64_t(v); }},
        {"ams_page_faults", false,
         [](const ES &e) { return double(e.amsPageFaults); },
         [](ES &e, double v) { e.amsPageFaults = std::uint64_t(v); }},
        {"serializations", false,
         [](const ES &e) { return double(e.serializations); },
         [](ES &e, double v) { e.serializations = std::uint64_t(v); }},
        {"serialize_cycles", true,
         [](const ES &e) { return e.serializeCycles; },
         [](ES &e, double v) { e.serializeCycles = v; }},
        {"priv_cycles", true, [](const ES &e) { return e.privCycles; },
         [](ES &e, double v) { e.privCycles = v; }},
        {"proxy_signal_cycles", true,
         [](const ES &e) { return e.proxySignalCycles; },
         [](ES &e, double v) { e.proxySignalCycles = v; }},
        {"proxy_requests", false,
         [](const ES &e) { return double(e.proxyRequests); },
         [](ES &e, double v) { e.proxyRequests = std::uint64_t(v); }},
        {"suspended_cycles", true,
         [](const ES &e) { return e.suspendedCycles; },
         [](ES &e, double v) { e.suspendedCycles = v; }},
    };
    return kFields;
}

EventSnapshot
snapshotEvents(arch::MispProcessor &mp)
{
    using arch::Ring0Cause;
    EventSnapshot out;
    out.omsSyscalls = mp.eventCount(Ring0Cause::OmsSyscall);
    out.omsPageFaults = mp.eventCount(Ring0Cause::OmsPageFault);
    out.timer = mp.eventCount(Ring0Cause::Timer);
    out.interrupts = mp.eventCount(Ring0Cause::OtherInterrupt);
    out.amsSyscalls = mp.eventCount(Ring0Cause::ProxySyscall);
    out.amsPageFaults = mp.eventCount(Ring0Cause::ProxyPageFault);
    out.serializations = mp.serializations();
    out.serializeCycles = mp.statGroup().lookupValue("serializeCycles");
    out.privCycles = mp.statGroup().lookupValue("privCycles");
    out.proxySignalCycles =
        mp.statGroup().lookupValue("proxySignalCycles");
    out.proxyRequests = static_cast<std::uint64_t>(
        mp.statGroup().lookupValue("proxyRequests"));
    for (unsigned i = 0; i < mp.numAms(); ++i)
        out.suspendedCycles += double(mp.amsAt(i).suspendedCycles());
    return out;
}

} // namespace misp::harness
