#include "experiment.hh"

namespace misp::harness {

Experiment::Experiment(const arch::SystemConfig &config,
                       rt::Backend backend)
    : backend_(backend)
{
    system_ = std::make_unique<arch::MispSystem>(config);
    if (backend == rt::Backend::Shred) {
        shredRt_ = std::make_unique<rt::ShredRuntime>(
            &system_->rootStats());
        system_->attachRuntime(shredRt_.get());
    } else {
        osRt_ = std::make_unique<rt::OsApiRuntime>(&system_->rootStats());
        system_->attachRuntime(osRt_.get());
    }
}

Experiment::~Experiment() = default;

LoadedProcess
Experiment::load(const GuestApp &app, const std::vector<int> &affinity)
{
    return loadApp(*system_, app, backend_, affinity);
}

Tick
Experiment::run(os::Process *target, Tick maxTicks)
{
    Tick finished = 0;
    arch::MispSystem *sys = system_.get();
    system_->kernel().setProcessExitHook(
        [&finished, sys, target](os::Process *proc) {
            if (proc != target)
                return;
            finished = sys->eventQueue().curTick();
            sys->quiesce();
            // Let in-flight Ring-0 episodes and signal deliveries drain
            // (their accounting completes at episode end) before
            // stopping; background processes keep the queue non-empty.
            sys->eventQueue().scheduleLambda(
                sys->eventQueue().curTick() + 500'000, "experiment.stop",
                [sys] { sys->eventQueue().requestStop(); });
        });
    system_->start();
    system_->run(maxTicks);
    if (finished == 0)
        warn("experiment: target process '%s' did not finish within "
             "%llu ticks",
             target->name().c_str(), (unsigned long long)maxTicks);
    return finished;
}

std::uint64_t
Experiment::events(unsigned proc, arch::Ring0Cause cause)
{
    return system_->processor(proc).eventCount(cause);
}

} // namespace misp::harness
