/**
 * @file
 * The unified run layer: one value type describing a run to perform
 * (RunRequest) and one describing everything it measured (RunRecord),
 * with runOne() as the single execution entry point.
 *
 * Every consumer — the scenario runner behind `mispsim` and the figure
 * wrappers, bench_common's runWorkload(), tests — funnels through
 * runOne(), so run semantics (placement policy, timing, validation,
 * event harvesting) can never diverge between harnesses. A RunRecord
 * is self-contained and deterministic in its simulated fields (ticks,
 * events, retired instructions), which is what makes scenario-level
 * `--jobs N` fan-out possible: records computed on worker threads are
 * indistinguishable from records computed serially.
 */

#ifndef MISP_HARNESS_RUN_RECORD_HH
#define MISP_HARNESS_RUN_RECORD_HH

#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "obs/host_profile.hh"
#include "obs/trace.hh"
#include "workloads/workload.hh"

namespace misp::harness {

/** One workload instance to load: registry name + build parameters. */
struct RunWorkload {
    std::string name;
    wl::WorkloadParams params;
};

/** Everything needed to perform one measured run. */
struct RunRequest {
    /** Label for the uniform HOST throughput line on stderr. */
    std::string label = "run";

    /** The machine (including misp.engine — callers that honor
     *  --engine/--no-decode-cache set it before submitting; on a
     *  snapshot restore this engine choice overrides the saver's). */
    arch::SystemConfig config;
    rt::Backend backend = rt::Backend::Shred;

    /** The measured target process. Must name a registered workload. */
    RunWorkload target;
    /** Co-loaded background processes (mixed runs); not measured. */
    std::vector<RunWorkload> background;

    /** N competing single-threaded processes (Figure 7's load). */
    unsigned competitors = 0;
    std::string competitor = "spinner";

    /** Placement policy (Figure 7, §5.4): pin the target to processors
     *  with at least this many AMSs (0 = no pinning)... */
    unsigned pinMinAms = 0;
    /** ...and optionally keep competitors off those processors. */
    bool idealPlacement = false;

    /** Tick budget; exceeding it yields RunStatus::MaxTicksReached. */
    Tick maxTicks = 2'000'000'000'000ull;

    /** Emit the uniform HOST throughput line on stderr. */
    bool hostLine = true;
    /** Capture a full stats::StatGroup JSON dump into the record. */
    bool fullStats = false;

    // Snapshot plumbing (src/snapshot/) -------------------------------

    /** Restore the machine from this image instead of booting cold;
     *  the run continues from the archived tick. The image's config
     *  hash must match this request (fail-closed SnapshotError
     *  otherwise). Empty = cold boot. */
    std::string snapshotIn;
    /** After warmupTicks, archive the machine here, then keep running
     *  to completion — so a save leg's RunRecord stays byte-identical
     *  to an uninterrupted run's. Empty = never save. */
    std::string snapshotOut;
    /** Simulated ticks to run before saving snapshotOut. The save
     *  happens at the first snapshot point at or after this tick. */
    Tick warmupTicks = 0;

    // Observability (src/obs/) ----------------------------------------

    /** Deterministic trace recorder configuration (--trace, [trace]).
     *  Disabled by default; never part of configHash (tracing a run
     *  must not invalidate its snapshots). */
    obs::TraceConfig trace;
    /** Processed-event cursor: record only events past this count
     *  (--trace-skip). A restored run implicitly starts at the restore
     *  point's count, so a cold run with the same skip value emits a
     *  byte-identical trace. */
    std::uint64_t traceSkip = 0;
};

/** Everything measured by one run. Simulated fields (status, ticks,
 *  valid, events, instsRetired, statsJson) are deterministic; host
 *  timing is informational and varies run to run. */
struct RunRecord {
    /** How the run ended — no more ambiguous `Tick 0`. */
    RunStatus status = RunStatus::MaxTicksReached;
    /** Completion tick of the target; 0 unless status == Completed. */
    Tick ticks = 0;
    /** Host-side result validation (true when the workload has none). */
    bool valid = true;
    /** Table-1 event snapshot of processor 0. */
    EventSnapshot events;
    /** Retired guest instructions, all sequencers of all processors. */
    std::uint64_t instsRetired = 0;

    // Host-side throughput (informational; never byte-compared).
    double hostSeconds = 0.0;
    double hostMips = 0.0;

    /** Full root-stats dump (JSON) when RunRequest::fullStats is set. */
    std::string statsJson;

    /** Failure diagnostic (snapshot_error / worker_crashed /
     *  worker_timeout); never part of the deterministic JSON
     *  artifacts. */
    std::string note;

    /** How many launches the supervised --isolate backend spent on
     *  this point (1 = first try; >1 means retries happened). Always 1
     *  outside --isolate. */
    unsigned attempts = 1;

    /** Deterministic trace buffer (empty unless RunRequest::trace is
     *  enabled). Simulated-plane data: byte-compared by CI across
     *  engines, job counts, and snapshot topologies. */
    obs::TraceBuffer trace;

    /** Host wall-clock phase split (plane 2; informational, never
     *  byte-compared — the --profile aggregation input). */
    obs::HostPhases phases;

    bool completed() const { return status == RunStatus::Completed; }

    /** Completed and validated. */
    bool ok() const { return completed() && valid; }

    // Derived metrics ---------------------------------------------------

    double megaCycles() const { return ticks / 1e6; }

    /** Speedup of this run relative to @p baseline (baseline.ticks /
     *  ticks); 0 when either run never completed. */
    double speedupOver(const RunRecord &baseline) const;

    /** Table-1 normalization: @p count per 10^6 retired instructions
     *  (0 when nothing retired). */
    double perMegaInsts(double count) const;
};

/**
 * The single execution entry point: build the machine + runtime
 * backend, load the target (pinned per the placement policy), load
 * background workloads and competitors, run to target completion under
 * the wall clock, validate, and harvest Table-1 events from processor
 * 0. Raises SimError (via fatal()) on an unregistered workload name.
 */
RunRecord runOne(const RunRequest &req);

} // namespace misp::harness

#endif // MISP_HARNESS_RUN_RECORD_HH
