/**
 * @file
 * MetricFrame: the one queryable metrics store between the run layer
 * and every result consumer.
 *
 * A frame is a small columnar table built once per sweep: one row per
 * grid point (sweep coordinates x machine), one column per metric
 * (ticks, mcycles, insts, valid, completed, failed, attempts, speedup,
 * and the Table-1 event classes both raw and normalized per 10^6
 * retired instructions). `failed` is 1 on rows whose run ended in an
 * infrastructure failure (worker crash/timeout, snapshot error — see
 * runStatusIsInfraFailure), and `attempts` counts supervised --isolate
 * launches; both exist so degraded sweeps stay queryable. Rows are added in submission (grid) order and iterate
 * deterministically, which is what lets every renderer stay
 * byte-identical across reruns and `--jobs N` fan-out.
 *
 * Everything downstream of harness::runOne reads results through a
 * frame: the `[report]` assert evaluator (including its aggregate and
 * cross-axis references), the JSON/table/points emitters, the events
 * table, and the figure wrappers' presentation code. A new metric is
 * added here once and becomes visible to all of them at the same time;
 * hand-rolled walks over result vectors are the bug this layer
 * removes.
 *
 * Rows carry their sweep-coordinate *group*: all rows sharing one
 * coordinate combination (e.g. the 1p/misp/smp8 runs of one Figure-4
 * workload) form a group, the evaluation unit of per-point asserts and
 * the denominator of machine-relative metrics like speedup.
 *
 * Scale: axis keys/values and machine/workload names are interned into
 * integer ids on addRow, and finalize() builds hashed coord-tuple
 * indexes over them, so every lookup (cross-axis selectors, group and
 * baseline resolution, the wrapper benches' findRow) costs O(1) id
 * hashing instead of an O(rows) string-compare walk. Row iteration and
 * group numbering stay in grid order, so the indexes change no emitted
 * byte. The pre-index linear walks survive behind Lookup::Linear for
 * the frame-scale ablation and differential tests.
 */

#ifndef MISP_HARNESS_METRIC_FRAME_HH
#define MISP_HARNESS_METRIC_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "harness/run_record.hh"

namespace misp::harness {

class MetricFrame
{
  public:
    /** One sweep coordinate: (axis key, value), both as spelled in the
     *  spec (e.g. {"machine.signal_cycles", "5000"}). */
    using Coord = std::pair<std::string, std::string>;

    /** Row identity: where in the sweep this run sits. The measured
     *  numbers live in the columns, not here. */
    struct Row {
        std::string machine;
        std::string workload;
        unsigned competitors = 0;
        std::vector<Coord> coords;
        RunStatus status = RunStatus::MaxTicksReached;
        /** Full stats::StatGroup dump when the run captured one. */
        std::string statsJson;
        /** Coordinate-group index (valid after finalize()). */
        std::size_t group = 0;
    };

    /** Lookup strategy. Indexed is the default; Linear preserves the
     *  pre-index string-compare walks so the frame-scale ablation can
     *  measure the speedup and the tests can differential-check that
     *  both strategies answer every query identically. */
    enum class Lookup { Indexed, Linear };

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    explicit MetricFrame(Lookup lookup = Lookup::Indexed);

    /** Append one grid point's measurements. Rows must be added in
     *  grid (submission) order; iteration order is insertion order. */
    void addRow(std::string machine, std::string workload,
                unsigned competitors, std::vector<Coord> coords,
                const RunRecord &run);

    /**
     * Compute the coordinate groups and, when @p baselineMachine is
     * non-empty, the derived `speedup` column (baseline ticks / row
     * ticks within the row's group; 0 when either run never
     * completed). Call once, after the last addRow().
     */
    void finalize(const std::string &baselineMachine = "");

    // Shape ------------------------------------------------------------

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numGroups() const { return groups_.size(); }
    const Row &row(std::size_t r) const { return rows_[r]; }

    /** Column names, in emission order. */
    const std::vector<std::string> &metrics() const { return metrics_; }
    bool hasMetric(const std::string &name) const;

    // Point lookups -----------------------------------------------------

    /** Value of @p metric at row @p r; false when no such column. */
    bool value(std::size_t r, const std::string &metric,
               double *out) const;

    /** Like value(), but fatal on an unknown metric — for renderers
     *  addressing the fixed column set. */
    double at(std::size_t r, const std::string &metric) const;

    /** Speedup of row @p r relative to row @p base —
     *  RunRecord::speedupOver semantics (base ticks / row ticks; 0
     *  unless both runs completed). The `speedup` column and the
     *  table renderers' axis-relative columns both use this, so the
     *  completion rule lives in one place. */
    double speedupOf(std::size_t r, std::size_t base) const;

    // Group queries ------------------------------------------------------

    /** Rows of coordinate group @p g, in grid order. */
    const std::vector<std::size_t> &groupRows(std::size_t g) const
    {
        return groups_[g];
    }

    /** The coordinates every row of group @p g shares. */
    const std::vector<Coord> &groupCoords(std::size_t g) const;

    /** "key=value key=value" rendering of groupCoords ("-" if none). */
    std::string groupLabel(std::size_t g) const;

    /** Row of @p machine inside group @p g; npos if absent. */
    std::size_t rowInGroup(std::size_t g,
                           const std::string &machine) const;

    /** True when any row of group @p g ended in an infrastructure
     *  failure — the unit graceful-degradation reporting skips. */
    bool groupHasFailure(std::size_t g) const;

    /**
     * Cross-axis lookup: the row of @p machine whose coordinates equal
     * group @p g's with @p overrides substituted (each override key
     * must name a coordinate of the group — the caller validates
     * that). npos when no row matches.
     */
    std::size_t rowWithOverrides(std::size_t g,
                                 const std::string &machine,
                                 const std::vector<Coord> &overrides)
        const;

    /**
     * The `[report] baseline_axis` baseline of row @p r: the first row
     * (grid order = first axis value) on the same machine whose
     * coordinates match on every axis except @p axis. npos if absent.
     */
    std::size_t axisBaselineRow(std::size_t r,
                                const std::string &axis) const;

    /** First row at (machine, workload, competitors); npos if absent
     *  — the wrapper benches' simple-grid lookup. */
    std::size_t findRow(const std::string &machine,
                        const std::string &workload,
                        unsigned competitors) const;

    /** First row on @p machine whose coordinates contain every
     *  (key, value) pair of @p coords; npos if absent — the wrapper
     *  benches' multi-axis lookup. */
    std::size_t findRow(const std::string &machine,
                        const std::vector<Coord> &coords) const;

    /** The distinct `workload` values, in first-seen row order. */
    std::vector<std::string> workloads() const;

    /** Distinct values of sweep axis @p key, in first-seen row order
     *  (the selector normalizer's input). nullptr when no row carries
     *  the axis. Available after finalize(). */
    const std::vector<std::string> *
    axisValues(const std::string &key) const;

    /**
     * The full frame as deterministic JSON (the `mispsim --metrics`
     * CI artifact): column list plus one object per row with its
     * coordinates, status, and every column value. Integral values
     * print as integers, the rest with 9 significant digits; no host
     * timing is included, so reruns are byte-identical. Streams row
     * by row — nothing larger than one value is materialized.
     */
    void writeJson(std::ostream &os) const;

    // Shard-merge load path ---------------------------------------------

    /** One parsed `--metrics` dump row: identity plus every column
     *  value in dump order. `row.group` is ignored (groups are
     *  recomputed on load). */
    struct RawRow {
        Row row;
        std::vector<double> values;
    };

    /**
     * Rebuild a frame from parsed `--metrics` dump rows (the
     * `--merge-frames` path): adopt @p metrics verbatim as the column
     * list (a dump may already carry the derived `speedup` column),
     * load @p raws in the given order, and recompute the coordinate
     * groups. The frame must be freshly constructed. Returns false
     * with a diagnostic in @p err on a shape mismatch.
     */
    bool loadRows(const std::vector<std::string> &metrics,
                  std::vector<RawRow> raws, std::string *err);

  private:
    /** Interned symbol id (machine/workload names, axis keys/values). */
    using Id = std::uint32_t;
    static constexpr Id kNoId = 0xffffffffu;

    struct RowKeys {
        Id machine = kNoId;
        Id workload = kNoId;
        /** (axis key id, value id) in the row's coord order. */
        std::vector<std::pair<Id, Id>> coords;
    };

    Id intern(const std::string &s);
    Id lookupId(const std::string &s) const;

    std::size_t metricIndex(const std::string &name) const;
    void internRow(const Row &row);
    void computeGroups();
    void buildIndexes();
    void buildAxisBaselineIndex(Id axisId) const;

    // Pre-index linear walks (Lookup::Linear and the un-finalized
    // fallback; also the ablation's comparison baseline).
    std::size_t linearRowWithOverrides(std::size_t g,
                                       const std::string &machine,
                                       const std::vector<Coord> &o)
        const;
    std::size_t linearAxisBaselineRow(std::size_t r,
                                      const std::string &axis) const;
    std::size_t linearFindRow(const std::string &machine,
                              const std::string &workload,
                              unsigned competitors) const;
    std::size_t linearFindRow(const std::string &machine,
                              const std::vector<Coord> &coords) const;

    bool indexed() const;

    std::vector<std::string> metrics_;
    std::vector<std::vector<double>> columns_; ///< [metric][row]
    std::vector<Row> rows_;
    std::vector<std::vector<std::size_t>> groups_;
    bool finalized_ = false;
    Lookup lookup_ = Lookup::Indexed;

    // The interner and the hashed tuple indexes. Keys are the interned
    // ids packed into strings, so equal keys mean equal tuples (no
    // hash-collision conflation). Lookup-only: nothing ever iterates
    // these maps, so no hash order can leak into any artifact.
    std::unordered_map<std::string, Id> internIds_;
    std::vector<RowKeys> rowKeys_;           ///< [row]
    std::unordered_map<std::string, std::size_t> metricIds_;
    std::unordered_map<std::string, std::size_t> groupOfTuple_;
    std::unordered_map<std::string, std::size_t> rowOfMachineTuple_;
    std::unordered_map<std::string, std::size_t> rowOfSortedTuple_;
    std::unordered_map<std::string, std::size_t> rowOfTriple_;
    std::vector<std::vector<std::size_t>> rowsOfMachine_; ///< [machine id]
    std::vector<std::pair<std::string, std::vector<std::string>>>
        axisValues_; ///< per axis, values in first-seen order

    /** Lazy `baseline_axis` index: packed (axis, machine, coords with
     *  the axis value masked) -> first matching row. Built once per
     *  axis on first use; mutable because axisBaselineRow is
     *  logically const (queries are single-threaded). */
    mutable std::unordered_map<std::string, std::size_t>
        axisBaseline_;
    mutable std::vector<Id> axisBaselineBuilt_;
};

} // namespace misp::harness

#endif // MISP_HARNESS_METRIC_FRAME_HH
