/**
 * @file
 * Minimal one-sequencer machine for interpreter-level benches and
 * tests: one Sequencer, one AddressSpace, and an environment that
 * demand-pages faults and kills on anything else. No kernel, runtime,
 * or signal fabric — the scaffold for measuring or probing the
 * execution engine itself.
 */

#ifndef MISP_HARNESS_BARE_MACHINE_HH
#define MISP_HARNESS_BARE_MACHINE_HH

#include <string>

#include "cpu/sequencer.hh"
#include "isa/assembler.hh"
#include "mem/address_space.hh"
#include "mem/physical_memory.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace misp::harness {

struct BareMachine {
    EventQueue eq;
    mem::PhysicalMemory pmem{1 << 14};
    stats::StatGroup root{""};
    mem::AddressSpace as{"p", pmem};
    cpu::Sequencer seq{"s", 0, true, eq, pmem, &root};

    struct NullEnv : cpu::SequencerEnv {
        mem::AddressSpace *as;
        explicit NullEnv(mem::AddressSpace *a) : as(a) {}
        cpu::FaultAction
        handleFault(cpu::Sequencer &, const mem::Fault &f,
                    Cycles *c) override
        {
            *c = 0;
            if (f.kind == mem::FaultKind::PageFault &&
                as->handleFault(f.addr, f.write) ==
                    mem::FaultOutcome::Paged)
                return cpu::FaultAction::Retry;
            return cpu::FaultAction::Kill;
        }
        Cycles handleRtCall(cpu::Sequencer &, Word) override { return 0; }
        void signalInstruction(cpu::Sequencer &, SequencerId,
                               const cpu::SignalPayload &) override
        {}
        void sequencerHalted(cpu::Sequencer &) override {}
        unsigned numSequencers() const override { return 1; }
    } env{&as};

    isa::Program prog;

    explicit BareMachine(const std::string &src,
                         cpu::Engine engine = cpu::Engine::Superblock,
                         bool writableCode = false)
    {
        seq.setEnv(&env);
        seq.setEngine(engine);
        seq.mmu().setAddressSpace(&as);
        prog = isa::assemble(src, 0x40'0000);
        as.defineRegion(prog.base, prog.byteSize() + 64, writableCode,
                        "code", prog.bytes());
        as.defineRegion(0x10'0000, 8 * mem::kPageSize, true, "stack");
    }

    /** (Re)start at `main` — valid from Idle and from Halted. */
    void
    start()
    {
        seq.startAt(prog.symbol("main"),
                    0x10'0000 + 8 * mem::kPageSize - 64);
    }

    /** Start and run the event queue dry. */
    void
    run()
    {
        start();
        eq.run();
    }

    Word reg(unsigned r) const { return seq.context().regs[r]; }
};

} // namespace misp::harness

#endif // MISP_HARNESS_BARE_MACHINE_HH
