/**
 * @file
 * Experiment driver: builds a simulated machine with the right runtime
 * backend, loads guest applications, runs to completion of a measured
 * target process, and harvests statistics.
 */

#ifndef MISP_HARNESS_EXPERIMENT_HH
#define MISP_HARNESS_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <string>

#include "harness/loader.hh"
#include "misp/misp_system.hh"
#include "shredlib/os_runtime.hh"
#include "shredlib/shred_runtime.hh"

namespace misp::harness {

/** How a measured run ended. */
enum class RunStatus {
    Completed,       ///< the target process exited
    MaxTicksReached, ///< the target never finished within the budget
    SnapshotError,   ///< snapshot save/restore failed (fail-closed:
                     ///< corrupt image, config mismatch, I/O error)
    WorkerCrashed,   ///< --isolate worker process died before reporting
    WorkerTimeout,   ///< --isolate worker exceeded its wall-clock
                     ///< deadline and was killed by the supervisor
};

const char *runStatusName(RunStatus status);

/** Inverse of runStatusName — the `--merge-frames` dump reader's
 *  status parse. Returns false on an unknown name. */
bool runStatusFromName(const std::string &name, RunStatus *out);

/** True for statuses caused by the execution infrastructure (worker
 *  crash/timeout, snapshot failure) rather than by the simulated
 *  machine itself. These are the transient statuses the supervised
 *  --isolate backend retries, and the rows graceful-degradation
 *  reporting may skip; MaxTicksReached and validation failures are
 *  real simulation outcomes and are never retried or skipped. */
bool runStatusIsInfraFailure(RunStatus status);

/** Typed outcome of running a target process to completion. */
struct RunOutcome {
    RunStatus status = RunStatus::MaxTicksReached;
    /** Completion tick of the target; 0 unless status == Completed. */
    Tick ticks = 0;

    bool completed() const { return status == RunStatus::Completed; }
};

/** One machine + runtime instantiation. */
class Experiment
{
  public:
    Experiment(const arch::SystemConfig &config, rt::Backend backend);
    ~Experiment();

    arch::MispSystem &system() { return *system_; }
    rt::Backend backend() const { return backend_; }

    /** Load an application (see loadApp). */
    LoadedProcess load(const GuestApp &app,
                       const std::vector<int> &affinity = {});

    /**
     * Start the machine and run until @p target exits (or @p maxTicks).
     * Background processes (e.g. Figure 7's competing load) may still be
     * running when this returns.
     */
    RunOutcome runToCompletion(os::Process *target,
                               Tick maxTicks = 2'000'000'000'000ull);

    /**
     * runToCompletion() for a machine that is already under way — a
     * snapshot restore, or a continuation after a warmup leg. Skips
     * start(): thread dispatch and interrupt arming are part of the
     * restored state, and re-running them would double-arm timers.
     */
    RunOutcome resumeToCompletion(os::Process *target,
                                  Tick maxTicks = 2'000'000'000'000ull);

    /** Shortcut: Table-1 event count on processor @p proc. */
    std::uint64_t events(unsigned proc, arch::Ring0Cause cause);

    /** Sum of retired guest instructions over every sequencer of
     *  every processor — the numerator of host-MIPS reporting. */
    std::uint64_t totalInstsRetired();

    /** The concrete runtime backends, for the snapshot layer (exactly
     *  one is non-null, matching backend()). */
    rt::ShredRuntime *shredRuntime() { return shredRt_.get(); }
    rt::OsApiRuntime *osRuntime() { return osRt_.get(); }

  private:
    RunOutcome finishRun(os::Process *target, Tick maxTicks);

    rt::Backend backend_;
    std::unique_ptr<arch::MispSystem> system_;
    std::unique_ptr<rt::ShredRuntime> shredRt_;
    std::unique_ptr<rt::OsApiRuntime> osRt_;
};

/** Free-function form of Experiment::totalInstsRetired, for callers
 *  holding a bare system (e.g. BareMachine users). */
std::uint64_t totalInstsRetired(arch::MispSystem &sys);

/**
 * Table-1 event snapshot of one MISP processor — the single
 * harvesting point shared by the figure benches (bench_common's
 * RunResult) and the scenario runner (driver::PointResult), so a new
 * counter can never silently diverge between the two.
 */
struct EventSnapshot {
    std::uint64_t omsSyscalls = 0;
    std::uint64_t omsPageFaults = 0;
    std::uint64_t timer = 0;
    std::uint64_t interrupts = 0;
    std::uint64_t amsSyscalls = 0;
    std::uint64_t amsPageFaults = 0;
    std::uint64_t serializations = 0;
    double serializeCycles = 0;
    double privCycles = 0;
    double proxySignalCycles = 0;
    std::uint64_t proxyRequests = 0;
    /** Total cycles the AMSs spent suspended (summed over AMSs) — the
     *  cost the serialization-policy ablation quantifies. */
    double suspendedCycles = 0;
};

EventSnapshot snapshotEvents(arch::MispProcessor &mp);

/** One Table-1 counter: its canonical name (the JSON key and the
 *  assert-grammar `events.<name>` reference) plus paired accessors —
 *  the setter exists so wire codecs (the --isolate RunRecord pipe)
 *  can round-trip by iterating this registry instead of keeping a
 *  parallel field list. `cycles` fields are cycle sums (rendered
 *  %.0f); the rest are event counts (rendered as integers). */
struct EventField {
    const char *name;
    bool cycles;
    double (*get)(const EventSnapshot &);
    void (*set)(EventSnapshot &, double);
};

/** The authoritative counter list, in emission order — the single
 *  place the JSON emitter and the [report] assert evaluator agree on
 *  names, so a new counter can never be reachable from one but not
 *  the other. */
const std::vector<EventField> &eventFields();

/** Emit the uniform per-run HOST throughput line on stderr — the one
 *  format shared by the figure benches and the scenario runner so
 *  perf trajectories stay comparable across harnesses and PRs.
 *  @return MIPS. */
double reportHost(const std::string &name, std::uint64_t instsRetired,
                  double hostSeconds, cpu::Engine engine);

} // namespace misp::harness

#endif // MISP_HARNESS_EXPERIMENT_HH
