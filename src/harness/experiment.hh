/**
 * @file
 * Experiment driver: builds a simulated machine with the right runtime
 * backend, loads guest applications, runs to completion of a measured
 * target process, and harvests statistics.
 */

#ifndef MISP_HARNESS_EXPERIMENT_HH
#define MISP_HARNESS_EXPERIMENT_HH

#include <functional>
#include <memory>

#include "harness/loader.hh"
#include "misp/misp_system.hh"
#include "shredlib/os_runtime.hh"
#include "shredlib/shred_runtime.hh"

namespace misp::harness {

/** One machine + runtime instantiation. */
class Experiment
{
  public:
    Experiment(const arch::SystemConfig &config, rt::Backend backend);
    ~Experiment();

    arch::MispSystem &system() { return *system_; }
    rt::Backend backend() const { return backend_; }

    /** Load an application (see loadApp). */
    LoadedProcess load(const GuestApp &app,
                       const std::vector<int> &affinity = {});

    /**
     * Start the machine and run until @p target exits (or @p maxTicks).
     * Background processes (e.g. Figure 7's competing load) may still be
     * running when this returns.
     * @return completion tick of the target, or 0 if it never finished.
     */
    Tick run(os::Process *target, Tick maxTicks = 2'000'000'000'000ull);

    /** Shortcut: Table-1 event count on processor @p proc. */
    std::uint64_t events(unsigned proc, arch::Ring0Cause cause);

    /** Sum of retired guest instructions over every sequencer of
     *  every processor — the numerator of host-MIPS reporting. */
    std::uint64_t totalInstsRetired();

  private:
    rt::Backend backend_;
    std::unique_ptr<arch::MispSystem> system_;
    std::unique_ptr<rt::ShredRuntime> shredRt_;
    std::unique_ptr<rt::OsApiRuntime> osRt_;
};

/** Free-function form of Experiment::totalInstsRetired, for callers
 *  holding a bare system (e.g. BareMachine users). */
std::uint64_t totalInstsRetired(arch::MispSystem &sys);

/**
 * Table-1 event snapshot of one MISP processor — the single
 * harvesting point shared by the figure benches (bench_common's
 * RunResult) and the scenario runner (driver::PointResult), so a new
 * counter can never silently diverge between the two.
 */
struct EventSnapshot {
    std::uint64_t omsSyscalls = 0;
    std::uint64_t omsPageFaults = 0;
    std::uint64_t timer = 0;
    std::uint64_t interrupts = 0;
    std::uint64_t amsSyscalls = 0;
    std::uint64_t amsPageFaults = 0;
    std::uint64_t serializations = 0;
    double serializeCycles = 0;
    double privCycles = 0;
    double proxySignalCycles = 0;
    std::uint64_t proxyRequests = 0;
};

EventSnapshot snapshotEvents(arch::MispProcessor &mp);

/** Emit the uniform per-run HOST throughput line on stderr — the one
 *  format shared by the figure benches and the scenario runner so
 *  perf trajectories stay comparable across harnesses and PRs.
 *  @return MIPS. */
double reportHost(const std::string &name, std::uint64_t instsRetired,
                  double hostSeconds, bool decodeCache);

} // namespace misp::harness

#endif // MISP_HARNESS_EXPERIMENT_HH
