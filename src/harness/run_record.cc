#include "run_record.hh"

#include <chrono>
#include <sstream>

#include "sim/logging.hh"
#include "snapshot/snapshot.hh"

namespace misp::harness {

double
RunRecord::speedupOver(const RunRecord &baseline) const
{
    if (status != RunStatus::Completed ||
        baseline.status != RunStatus::Completed || ticks == 0)
        return 0.0;
    return double(baseline.ticks) / double(ticks);
}

double
RunRecord::perMegaInsts(double count) const
{
    if (instsRetired == 0)
        return 0.0;
    return count / (double(instsRetired) / 1e6);
}

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Everything measured after the simulation stops — shared by the cold,
 *  save-leg, and restored paths so a record can never depend on which
 *  path produced it. @p instsAtStart is the retired count already in
 *  the machine when this leg's wall clock started (nonzero only after
 *  a snapshot restore): the record's instsRetired stays the run total
 *  (byte-identical to a cold run), while host-throughput reporting
 *  covers only the instructions this process actually executed. */
void
harvest(RunRecord *out, Experiment &exp, os::Process *target,
        const wl::Workload &w, const RunRequest &req, RunOutcome outcome,
        double hostSeconds, std::uint64_t instsAtStart = 0)
{
    // Phase 2 timing: everything below is host-side bookkeeping.
    auto ts0 = Clock::now();

    out->status = outcome.status;
    out->ticks = outcome.ticks;
    out->instsRetired = exp.totalInstsRetired();
    std::uint64_t legInsts = out->instsRetired - instsAtStart;
    out->hostSeconds = hostSeconds;
    out->hostMips =
        hostSeconds > 0.0 ? legInsts / hostSeconds / 1e6 : 0.0;
    if (req.hostLine) {
        reportHost(req.label, legInsts, hostSeconds,
                   req.config.misp.engine);
    }

    out->valid = !w.validate || w.validate(target->addressSpace());

    out->events = snapshotEvents(exp.system().processor(0));

    if (req.fullStats) {
        std::ostringstream ss;
        exp.system().rootStats().dumpJson(ss);
        out->statsJson = ss.str();
    }

    out->phases.serialize = seconds(ts0, Clock::now());
}

RunRecord
snapshotFailure(const RunRequest &req, const std::string &what)
{
    warn("runOne[%s]: %s", req.label.c_str(), what.c_str());
    RunRecord out;
    out.status = RunStatus::SnapshotError;
    out.valid = false;
    out.note = what;
    return out;
}

/** The --from-snapshot path: reconstitute the machine from
 *  RunRequest::snapshotIn and continue to completion. The workload is
 *  still built host-side (deterministically, from the same params) for
 *  its result validator; nothing is loaded into the guest.
 *  @p tEntry is runOne's entry time (the parse phase started there). */
RunRecord
runFromSnapshot(const RunRequest &req, const wl::Workload &w,
                Clock::time_point tEntry)
{
    auto tRestore0 = Clock::now();

    std::string image, err;
    if (!snap::readFileBytes(req.snapshotIn, &image, &err))
        return snapshotFailure(req, err);

    // Hash pre-flight from the META section alone: a stale image is
    // rejected at header cost, not after a full machine rebuild.
    snap::SnapshotMeta meta;
    if (!snap::readSnapshotMeta(image, &meta, &err))
        return snapshotFailure(req, err);
    if (meta.cfgHash != snap::configHash(req)) {
        return snapshotFailure(
            req, "snapshot '" + req.snapshotIn + "' was produced by a "
                 "different experiment configuration");
    }

    snap::RestoredExperiment restored;
    if (!snap::restoreExperiment(image, &restored, &err))
        return snapshotFailure(req, err);
    // Images are engine-neutral: the saver's host engine is neither
    // recorded nor hash-relevant, and the restoring run's choice wins.
    restored.exp->system().setEngine(req.config.misp.engine);
    if (!restored.target)
        return snapshotFailure(
            req, "snapshot '" + req.snapshotIn + "' has no target "
                 "process");

    // The restored clock already sits at the archive's processed-event
    // count, so the recorder's base lands there automatically — a cold
    // run reproduces this trace byte-for-byte with --trace-skip set to
    // the `base` value the trace metadata reports.
    EventQueue &eq = restored.exp->system().eventQueue();
    std::uint64_t base = std::max(req.traceSkip, eq.numProcessed());
    obs::TraceRecorder rec(eq, req.trace, base);
    obs::ScopedTrace attach(req.trace.enabled ? &rec : nullptr);
    obs::traceMarker(obs::TraceKind::SnapshotRestore, 0, 0,
                     eq.numProcessed());

    RunRecord out;
    std::uint64_t warmupInsts = restored.exp->totalInstsRetired();
    auto t0 = Clock::now();
    out.phases.parse = seconds(tEntry, tRestore0);
    out.phases.warmup = seconds(tRestore0, t0);
    RunOutcome outcome =
        restored.exp->resumeToCompletion(restored.target, req.maxTicks);
    auto t1 = Clock::now();
    out.phases.run = seconds(t0, t1);
    harvest(&out, *restored.exp, restored.target, w, req, outcome,
            seconds(t0, t1), warmupInsts);
    if (req.trace.enabled)
        out.trace = rec.take();
    return out;
}

} // namespace

RunRecord
runOne(const RunRequest &req)
{
    auto tEntry = Clock::now();

    const wl::WorkloadInfo *info = wl::findWorkload(req.target.name);
    if (!info)
        fatal("runOne: unknown workload '%s'", req.target.name.c_str());

    wl::Workload w = info->build(req.target.params);

    if (!req.snapshotIn.empty())
        return runFromSnapshot(req, w, tEntry);

    Experiment exp(req.config, req.backend);

    // Placement policy (Figure 7, §5.4): pin the target to processors
    // with enough AMSs; optionally keep competitors off those CPUs.
    std::vector<int> targetAffinity;
    std::vector<int> otherCpus;
    if (req.pinMinAms > 0) {
        for (unsigned i = 0; i < exp.system().numProcessors(); ++i) {
            int cpu = exp.system().processor(i).cpuId();
            if (exp.system().processor(i).numAms() >= req.pinMinAms)
                targetAffinity.push_back(cpu);
            else
                otherCpus.push_back(cpu);
        }
    }
    LoadedProcess proc = exp.load(w.app, targetAffinity);

    for (const RunWorkload &bg : req.background) {
        const wl::WorkloadInfo *bgInfo = wl::findWorkload(bg.name);
        if (!bgInfo)
            fatal("runOne: unknown background workload '%s'",
                  bg.name.c_str());
        exp.load(bgInfo->build(bg.params).app);
    }

    const wl::WorkloadInfo *comp = wl::findWorkload(req.competitor);
    if (req.competitors > 0 && !comp)
        fatal("runOne: unknown competitor workload '%s'",
              req.competitor.c_str());
    for (unsigned c = 0; c < req.competitors; ++c) {
        std::vector<int> affinity;
        if (req.idealPlacement && !otherCpus.empty())
            affinity = otherCpus;
        wl::WorkloadParams compParams;
        exp.load(comp->build(compParams).app, affinity);
    }

    // Attach the trace recorder for the whole measured run (warmup leg
    // included, so a save leg's trace matches an uninterrupted run's).
    EventQueue &eq = exp.system().eventQueue();
    obs::TraceRecorder rec(eq, req.trace, req.traceSkip);
    obs::ScopedTrace attach(req.trace.enabled ? &rec : nullptr);

    RunRecord out;
    auto t0 = Clock::now();
    out.phases.parse = seconds(tEntry, t0);
    auto tRun0 = t0;
    RunOutcome outcome;
    if (req.snapshotOut.empty()) {
        outcome = exp.runToCompletion(proc.process, req.maxTicks);
    } else {
        // Warmup leg: run to the requested tick, step to the next
        // snapshot point, archive, then continue to completion — the
        // record (and every simulated number in it) stays identical to
        // an uninterrupted run; only the image file is extra.
        exp.system().start();
        exp.system().run(std::min(req.warmupTicks, req.maxTicks));
        if (!exp.system().kernel().processAlive(proc.process)) {
            return snapshotFailure(
                req, "warmup_ticks=" +
                         std::to_string(req.warmupTicks) +
                         " outlives the target; nothing to snapshot");
        }
        if (!snap::advanceToSnapshotPoint(exp)) {
            return snapshotFailure(
                req, "no snapshot point reached after warmup");
        }
        // The quiescence stepping may have run the last few events of
        // the target's life; an exit hook is not installed yet, so a
        // completion in that window must fail loudly here rather than
        // spin to the tick budget below.
        if (!exp.system().kernel().processAlive(proc.process)) {
            return snapshotFailure(
                req, "target completed while stepping to the snapshot "
                     "point; lower warmup_ticks");
        }
        std::string image, err;
        if (!snap::saveExperiment(exp, proc.process,
                                  snap::configHash(req), req.label,
                                  &image, &err) ||
            !snap::writeFileBytes(req.snapshotOut, image, &err)) {
            return snapshotFailure(req, err);
        }
        obs::trace(obs::TraceKind::SnapshotSave, 0, 0, image.size(),
                   eq.numProcessed());
        auto tWarm = Clock::now();
        out.phases.warmup = seconds(t0, tWarm);
        tRun0 = tWarm;
        outcome = exp.resumeToCompletion(proc.process, req.maxTicks);
    }
    auto t1 = Clock::now();
    out.phases.run = seconds(tRun0, t1);
    harvest(&out, exp, proc.process, w, req, outcome, seconds(t0, t1));
    if (req.trace.enabled)
        out.trace = rec.take();
    return out;
}

} // namespace misp::harness
