#include "run_record.hh"

#include <chrono>
#include <sstream>

#include "sim/logging.hh"

namespace misp::harness {

double
RunRecord::speedupOver(const RunRecord &baseline) const
{
    if (status != RunStatus::Completed ||
        baseline.status != RunStatus::Completed || ticks == 0)
        return 0.0;
    return double(baseline.ticks) / double(ticks);
}

double
RunRecord::perMegaInsts(double count) const
{
    if (instsRetired == 0)
        return 0.0;
    return count / (double(instsRetired) / 1e6);
}

RunRecord
runOne(const RunRequest &req)
{
    const wl::WorkloadInfo *info = wl::findWorkload(req.target.name);
    if (!info)
        fatal("runOne: unknown workload '%s'", req.target.name.c_str());

    wl::Workload w = info->build(req.target.params);

    Experiment exp(req.config, req.backend);

    // Placement policy (Figure 7, §5.4): pin the target to processors
    // with enough AMSs; optionally keep competitors off those CPUs.
    std::vector<int> targetAffinity;
    std::vector<int> otherCpus;
    if (req.pinMinAms > 0) {
        for (unsigned i = 0; i < exp.system().numProcessors(); ++i) {
            int cpu = exp.system().processor(i).cpuId();
            if (exp.system().processor(i).numAms() >= req.pinMinAms)
                targetAffinity.push_back(cpu);
            else
                otherCpus.push_back(cpu);
        }
    }
    LoadedProcess proc = exp.load(w.app, targetAffinity);

    for (const RunWorkload &bg : req.background) {
        const wl::WorkloadInfo *bgInfo = wl::findWorkload(bg.name);
        if (!bgInfo)
            fatal("runOne: unknown background workload '%s'",
                  bg.name.c_str());
        exp.load(bgInfo->build(bg.params).app);
    }

    const wl::WorkloadInfo *comp = wl::findWorkload(req.competitor);
    if (req.competitors > 0 && !comp)
        fatal("runOne: unknown competitor workload '%s'",
              req.competitor.c_str());
    for (unsigned c = 0; c < req.competitors; ++c) {
        std::vector<int> affinity;
        if (req.idealPlacement && !otherCpus.empty())
            affinity = otherCpus;
        wl::WorkloadParams compParams;
        exp.load(comp->build(compParams).app, affinity);
    }

    RunRecord out;
    auto t0 = std::chrono::steady_clock::now();
    RunOutcome outcome = exp.runToCompletion(proc.process, req.maxTicks);
    auto t1 = std::chrono::steady_clock::now();
    out.status = outcome.status;
    out.ticks = outcome.ticks;
    out.instsRetired = exp.totalInstsRetired();
    out.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    out.hostMips = out.hostSeconds > 0.0
                       ? out.instsRetired / out.hostSeconds / 1e6
                       : 0.0;
    if (req.hostLine) {
        reportHost(req.label, out.instsRetired, out.hostSeconds,
                   req.config.misp.decodeCache);
    }

    out.valid = !w.validate || w.validate(proc.process->addressSpace());

    out.events = snapshotEvents(exp.system().processor(0));

    if (req.fullStats) {
        std::ostringstream ss;
        exp.system().rootStats().dumpJson(ss);
        out.statsJson = ss.str();
    }
    return out;
}

} // namespace misp::harness
