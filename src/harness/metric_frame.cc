#include "metric_frame.hh"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace misp::harness {

MetricFrame::MetricFrame()
{
    metrics_ = {"ticks",     "mcycles", "insts",   "valid",
                "completed", "failed",  "attempts"};
    for (const EventField &f : eventFields())
        metrics_.push_back(std::string("events.") + f.name);
    for (const EventField &f : eventFields())
        metrics_.push_back(std::string("events_per_mi.") + f.name);
    columns_.resize(metrics_.size());
}

void
MetricFrame::addRow(std::string machine, std::string workload,
                    unsigned competitors, std::vector<Coord> coords,
                    const RunRecord &run)
{
    if (finalized_)
        fatal("MetricFrame: addRow() after finalize()");
    Row row;
    row.machine = std::move(machine);
    row.workload = std::move(workload);
    row.competitors = competitors;
    row.coords = std::move(coords);
    row.status = run.status;
    row.statsJson = run.statsJson;
    rows_.push_back(std::move(row));

    std::size_t c = 0;
    columns_[c++].push_back(double(run.ticks));
    columns_[c++].push_back(run.megaCycles());
    columns_[c++].push_back(double(run.instsRetired));
    columns_[c++].push_back(run.valid ? 1.0 : 0.0);
    columns_[c++].push_back(run.completed() ? 1.0 : 0.0);
    columns_[c++].push_back(runStatusIsInfraFailure(run.status) ? 1.0
                                                                : 0.0);
    columns_[c++].push_back(double(run.attempts));
    for (const EventField &f : eventFields())
        columns_[c++].push_back(f.get(run.events));
    for (const EventField &f : eventFields())
        columns_[c++].push_back(run.perMegaInsts(f.get(run.events)));
}

void
MetricFrame::finalize(const std::string &baselineMachine)
{
    if (finalized_)
        fatal("MetricFrame: finalize() called twice");
    finalized_ = true;

    // Group rows by coordinate combination, preserving first-seen
    // order (the grid expands machines fastest, so a group is the
    // machine list at one sweep coordinate).
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        std::size_t g = npos;
        for (std::size_t i = 0; i < groups_.size(); ++i) {
            if (rows_[groups_[i].front()].coords == rows_[r].coords) {
                g = i;
                break;
            }
        }
        if (g == npos) {
            g = groups_.size();
            groups_.emplace_back();
        }
        rows_[r].group = g;
        groups_[g].push_back(r);
    }

    if (baselineMachine.empty())
        return;

    // Derived column: speedup over the baseline machine of the same
    // coordinate group.
    metrics_.push_back("speedup");
    std::vector<double> &speedup = columns_.emplace_back();
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        std::size_t base = rowInGroup(rows_[r].group, baselineMachine);
        speedup.push_back(base != npos ? speedupOf(r, base) : 0.0);
    }
}

double
MetricFrame::speedupOf(std::size_t r, std::size_t base) const
{
    const std::vector<double> &ticks = columns_[0];
    const std::vector<double> &completed = columns_[4];
    if (completed[r] == 0.0 || completed[base] == 0.0 ||
        ticks[r] == 0.0)
        return 0.0;
    return ticks[base] / ticks[r];
}

bool
MetricFrame::hasMetric(const std::string &name) const
{
    return metricIndex(name) != npos;
}

std::size_t
MetricFrame::metricIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        if (metrics_[i] == name)
            return i;
    }
    return npos;
}

bool
MetricFrame::value(std::size_t r, const std::string &metric,
                   double *out) const
{
    std::size_t m = metricIndex(metric);
    if (m == npos)
        return false;
    *out = columns_[m][r];
    return true;
}

double
MetricFrame::at(std::size_t r, const std::string &metric) const
{
    double v = 0;
    if (!value(r, metric, &v))
        fatal("MetricFrame: no metric '%s'", metric.c_str());
    return v;
}

const std::vector<MetricFrame::Coord> &
MetricFrame::groupCoords(std::size_t g) const
{
    return rows_[groups_[g].front()].coords;
}

std::string
MetricFrame::groupLabel(std::size_t g) const
{
    std::string out;
    for (const Coord &c : groupCoords(g)) {
        if (!out.empty())
            out += " ";
        out += c.first + "=" + c.second;
    }
    return out.empty() ? "-" : out;
}

std::size_t
MetricFrame::rowInGroup(std::size_t g, const std::string &machine) const
{
    for (std::size_t r : groups_[g]) {
        if (rows_[r].machine == machine)
            return r;
    }
    return npos;
}

bool
MetricFrame::groupHasFailure(std::size_t g) const
{
    for (std::size_t r : groups_[g]) {
        if (runStatusIsInfraFailure(rows_[r].status))
            return true;
    }
    return false;
}

std::size_t
MetricFrame::rowWithOverrides(std::size_t g, const std::string &machine,
                              const std::vector<Coord> &overrides) const
{
    std::vector<Coord> want = groupCoords(g);
    for (const Coord &o : overrides) {
        for (Coord &c : want) {
            if (c.first == o.first)
                c.second = o.second;
        }
    }
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (rows_[r].machine == machine && rows_[r].coords == want)
            return r;
    }
    return npos;
}

std::size_t
MetricFrame::axisBaselineRow(std::size_t r, const std::string &axis) const
{
    const Row &of = rows_[r];
    for (std::size_t cand = 0; cand < rows_.size(); ++cand) {
        if (rows_[cand].machine != of.machine ||
            rows_[cand].coords.size() != of.coords.size())
            continue;
        bool match = true;
        for (std::size_t i = 0; i < of.coords.size(); ++i) {
            if (of.coords[i].first == axis)
                continue;
            match = match && rows_[cand].coords[i] == of.coords[i];
        }
        if (match)
            return cand;
    }
    return npos;
}

std::size_t
MetricFrame::findRow(const std::string &machine,
                     const std::string &workload,
                     unsigned competitors) const
{
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (rows_[r].machine == machine &&
            rows_[r].workload == workload &&
            rows_[r].competitors == competitors)
            return r;
    }
    return npos;
}

std::size_t
MetricFrame::findRow(const std::string &machine,
                     const std::vector<Coord> &coords) const
{
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (rows_[r].machine != machine)
            continue;
        bool match = true;
        for (const Coord &want : coords) {
            bool found = false;
            for (const Coord &have : rows_[r].coords)
                found = found || have == want;
            match = match && found;
        }
        if (match)
            return r;
    }
    return npos;
}

std::vector<std::string>
MetricFrame::workloads() const
{
    std::vector<std::string> names;
    for (const Row &r : rows_) {
        bool seen = false;
        for (const std::string &n : names)
            seen = seen || n == r.workload;
        if (!seen)
            names.push_back(r.workload);
    }
    return names;
}

namespace {

/** Deterministic JSON number: integers as integers, the rest with 9
 *  significant digits (every frame value is derived from simulated
 *  integers, so this is reproducible run to run). */
std::string
jsonNumber(double v)
{
    char buf[48];
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.9g", v);
    }
    return buf;
}

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    out += stats::jsonEscape(s);
    out += "\"";
    return out;
}

} // namespace

void
MetricFrame::writeJson(std::ostream &os) const
{
    os << "{\n";
    os << "  \"rows\": " << rows_.size() << ",\n";
    os << "  \"groups\": " << groups_.size() << ",\n";
    os << "  \"metrics\": [";
    for (std::size_t m = 0; m < metrics_.size(); ++m)
        os << (m ? ", " : "") << jsonString(metrics_[m]);
    os << "],\n";
    os << "  \"points\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        const Row &row = rows_[r];
        os << (r ? ",\n" : "\n");
        os << "    {\n";
        os << "      \"machine\": " << jsonString(row.machine) << ",\n";
        os << "      \"workload\": " << jsonString(row.workload)
           << ",\n";
        os << "      \"competitors\": " << row.competitors << ",\n";
        os << "      \"coords\": {";
        for (std::size_t c = 0; c < row.coords.size(); ++c) {
            os << (c ? ", " : "") << jsonString(row.coords[c].first)
               << ": " << jsonString(row.coords[c].second);
        }
        os << "},\n";
        os << "      \"group\": " << row.group << ",\n";
        os << "      \"status\": " << jsonString(runStatusName(row.status))
           << ",\n";
        os << "      \"values\": {";
        for (std::size_t m = 0; m < metrics_.size(); ++m) {
            os << (m ? ", " : "") << jsonString(metrics_[m]) << ": "
               << jsonNumber(columns_[m][r]);
        }
        os << "}\n";
        os << "    }";
    }
    os << "\n  ]\n}\n";
}

} // namespace misp::harness
