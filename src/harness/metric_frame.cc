#include "metric_frame.hh"

#include <algorithm>
#include <ostream>
#include <unordered_set>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace misp::harness {

namespace {

/** Append one interned id to a packed tuple key (4 bytes, fixed
 *  width, so distinct id sequences always pack to distinct keys —
 *  tuple equality is string equality, never a hash accident). */
void
packId(std::string &key, std::uint32_t id)
{
    key.push_back(char(id & 0xff));
    key.push_back(char((id >> 8) & 0xff));
    key.push_back(char((id >> 16) & 0xff));
    key.push_back(char((id >> 24) & 0xff));
}

void
packPairs(std::string &key,
          const std::vector<std::pair<std::uint32_t, std::uint32_t>> &ps)
{
    for (const auto &p : ps) {
        packId(key, p.first);
        packId(key, p.second);
    }
}

} // namespace

MetricFrame::MetricFrame(Lookup lookup) : lookup_(lookup)
{
    metrics_ = {"ticks",     "mcycles", "insts",   "valid",
                "completed", "failed",  "attempts"};
    for (const EventField &f : eventFields())
        metrics_.push_back(std::string("events.") + f.name);
    for (const EventField &f : eventFields())
        metrics_.push_back(std::string("events_per_mi.") + f.name);
    columns_.resize(metrics_.size());
    for (std::size_t m = 0; m < metrics_.size(); ++m)
        metricIds_.emplace(metrics_[m], m);
}

bool
MetricFrame::indexed() const
{
    return lookup_ == Lookup::Indexed && finalized_;
}

MetricFrame::Id
MetricFrame::intern(const std::string &s)
{
    auto [it, fresh] =
        internIds_.emplace(s, static_cast<Id>(internIds_.size()));
    (void)fresh;
    return it->second;
}

MetricFrame::Id
MetricFrame::lookupId(const std::string &s) const
{
    auto it = internIds_.find(s);
    return it == internIds_.end() ? kNoId : it->second;
}

void
MetricFrame::internRow(const Row &row)
{
    RowKeys keys;
    keys.machine = intern(row.machine);
    keys.workload = intern(row.workload);
    keys.coords.reserve(row.coords.size());
    for (const Coord &c : row.coords)
        keys.coords.emplace_back(intern(c.first), intern(c.second));
    rowKeys_.push_back(std::move(keys));
}

void
MetricFrame::addRow(std::string machine, std::string workload,
                    unsigned competitors, std::vector<Coord> coords,
                    const RunRecord &run)
{
    if (finalized_)
        fatal("MetricFrame: addRow() after finalize()");
    Row row;
    row.machine = std::move(machine);
    row.workload = std::move(workload);
    row.competitors = competitors;
    row.coords = std::move(coords);
    row.status = run.status;
    row.statsJson = run.statsJson;
    rows_.push_back(std::move(row));
    internRow(rows_.back());

    std::size_t c = 0;
    columns_[c++].push_back(double(run.ticks));
    columns_[c++].push_back(run.megaCycles());
    columns_[c++].push_back(double(run.instsRetired));
    columns_[c++].push_back(run.valid ? 1.0 : 0.0);
    columns_[c++].push_back(run.completed() ? 1.0 : 0.0);
    columns_[c++].push_back(runStatusIsInfraFailure(run.status) ? 1.0
                                                                : 0.0);
    columns_[c++].push_back(double(run.attempts));
    for (const EventField &f : eventFields())
        columns_[c++].push_back(f.get(run.events));
    for (const EventField &f : eventFields())
        columns_[c++].push_back(run.perMegaInsts(f.get(run.events)));
}

void
MetricFrame::computeGroups()
{
    // Group rows by coordinate combination, preserving first-seen
    // order (the grid expands machines fastest, so a group is the
    // machine list at one sweep coordinate). The hashed tuple index
    // assigns group numbers in exactly the order the old pairwise
    // coordinate comparison did, so group numbering — and every
    // artifact carrying it — is unchanged.
    if (lookup_ == Lookup::Indexed) {
        for (std::size_t r = 0; r < rows_.size(); ++r) {
            std::string key;
            key.reserve(rowKeys_[r].coords.size() * 8);
            packPairs(key, rowKeys_[r].coords);
            auto [it, fresh] =
                groupOfTuple_.emplace(std::move(key), groups_.size());
            if (fresh)
                groups_.emplace_back();
            rows_[r].group = it->second;
            groups_[it->second].push_back(r);
        }
        return;
    }
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        std::size_t g = npos;
        for (std::size_t i = 0; i < groups_.size(); ++i) {
            if (rows_[groups_[i].front()].coords == rows_[r].coords) {
                g = i;
                break;
            }
        }
        if (g == npos) {
            g = groups_.size();
            groups_.emplace_back();
        }
        rows_[r].group = g;
        groups_[g].push_back(r);
    }
}

void
MetricFrame::buildIndexes()
{
    // All emplace-first: the first row owning a tuple wins, matching
    // the "first match in grid order" contract of the linear walks.
    std::unordered_map<Id, std::size_t> axisSlot;
    std::unordered_set<std::uint64_t> axisValueSeen;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        const RowKeys &keys = rowKeys_[r];

        std::string tuple;
        tuple.reserve(keys.coords.size() * 8 + 4);
        packId(tuple, keys.machine);
        packPairs(tuple, keys.coords);
        rowOfMachineTuple_.emplace(tuple, r);

        std::vector<std::pair<Id, Id>> sorted = keys.coords;
        std::sort(sorted.begin(), sorted.end());
        std::string sortedKey;
        sortedKey.reserve(sorted.size() * 8 + 4);
        packId(sortedKey, keys.machine);
        packPairs(sortedKey, sorted);
        rowOfSortedTuple_.emplace(std::move(sortedKey), r);

        std::string triple;
        packId(triple, keys.machine);
        packId(triple, keys.workload);
        packId(triple, rows_[r].competitors);
        rowOfTriple_.emplace(std::move(triple), r);

        if (keys.machine >= rowsOfMachine_.size())
            rowsOfMachine_.resize(keys.machine + 1);
        rowsOfMachine_[keys.machine].push_back(r);

        for (std::size_t c = 0; c < keys.coords.size(); ++c) {
            const Id k = keys.coords[c].first;
            const Id v = keys.coords[c].second;
            auto [slot, freshAxis] =
                axisSlot.emplace(k, axisValues_.size());
            if (freshAxis)
                axisValues_.emplace_back(rows_[r].coords[c].first,
                                         std::vector<std::string>{});
            const std::uint64_t kv =
                (std::uint64_t(k) << 32) | std::uint64_t(v);
            if (axisValueSeen.insert(kv).second)
                axisValues_[slot->second].second.push_back(
                    rows_[r].coords[c].second);
        }
    }
}

void
MetricFrame::finalize(const std::string &baselineMachine)
{
    if (finalized_)
        fatal("MetricFrame: finalize() called twice");
    finalized_ = true;
    computeGroups();
    if (lookup_ == Lookup::Indexed)
        buildIndexes();

    if (baselineMachine.empty())
        return;

    // Derived column: speedup over the baseline machine of the same
    // coordinate group (baseline row resolved once per group, not
    // once per row).
    metrics_.push_back("speedup");
    metricIds_.emplace("speedup", metrics_.size() - 1);
    std::vector<std::size_t> baseOfGroup(groups_.size());
    for (std::size_t g = 0; g < groups_.size(); ++g)
        baseOfGroup[g] = rowInGroup(g, baselineMachine);
    std::vector<double> &speedup = columns_.emplace_back();
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        std::size_t base = baseOfGroup[rows_[r].group];
        speedup.push_back(base != npos ? speedupOf(r, base) : 0.0);
    }
}

bool
MetricFrame::loadRows(const std::vector<std::string> &metrics,
                      std::vector<RawRow> raws, std::string *err)
{
    if (finalized_ || !rows_.empty()) {
        if (err)
            *err = "loadRows: frame is not freshly constructed";
        return false;
    }
    metrics_ = metrics;
    columns_.assign(metrics_.size(), {});
    metricIds_.clear();
    for (std::size_t m = 0; m < metrics_.size(); ++m)
        metricIds_.emplace(metrics_[m], m);
    for (std::size_t i = 0; i < raws.size(); ++i) {
        RawRow &raw = raws[i];
        if (raw.values.size() != metrics_.size()) {
            if (err)
                *err = "loadRows: row " + std::to_string(i) +
                       " carries " + std::to_string(raw.values.size()) +
                       " values for " +
                       std::to_string(metrics_.size()) + " metrics";
            return false;
        }
        rows_.push_back(std::move(raw.row));
        internRow(rows_.back());
        for (std::size_t m = 0; m < metrics_.size(); ++m)
            columns_[m].push_back(raw.values[m]);
    }
    finalized_ = true;
    computeGroups();
    if (lookup_ == Lookup::Indexed)
        buildIndexes();
    return true;
}

double
MetricFrame::speedupOf(std::size_t r, std::size_t base) const
{
    const std::vector<double> &ticks = columns_[0];
    const std::vector<double> &completed = columns_[4];
    if (completed[r] == 0.0 || completed[base] == 0.0 ||
        ticks[r] == 0.0)
        return 0.0;
    return ticks[base] / ticks[r];
}

bool
MetricFrame::hasMetric(const std::string &name) const
{
    return metricIndex(name) != npos;
}

std::size_t
MetricFrame::metricIndex(const std::string &name) const
{
    if (lookup_ == Lookup::Indexed) {
        auto it = metricIds_.find(name);
        return it == metricIds_.end() ? npos : it->second;
    }
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        if (metrics_[i] == name)
            return i;
    }
    return npos;
}

bool
MetricFrame::value(std::size_t r, const std::string &metric,
                   double *out) const
{
    std::size_t m = metricIndex(metric);
    if (m == npos)
        return false;
    *out = columns_[m][r];
    return true;
}

double
MetricFrame::at(std::size_t r, const std::string &metric) const
{
    double v = 0;
    if (!value(r, metric, &v))
        fatal("MetricFrame: no metric '%s'", metric.c_str());
    return v;
}

const std::vector<MetricFrame::Coord> &
MetricFrame::groupCoords(std::size_t g) const
{
    return rows_[groups_[g].front()].coords;
}

std::string
MetricFrame::groupLabel(std::size_t g) const
{
    std::string out;
    for (const Coord &c : groupCoords(g)) {
        if (!out.empty())
            out += " ";
        out += c.first + "=" + c.second;
    }
    return out.empty() ? "-" : out;
}

std::size_t
MetricFrame::rowInGroup(std::size_t g, const std::string &machine) const
{
    if (indexed()) {
        const Id m = lookupId(machine);
        if (m == kNoId)
            return npos;
        for (std::size_t r : groups_[g]) {
            if (rowKeys_[r].machine == m)
                return r;
        }
        return npos;
    }
    for (std::size_t r : groups_[g]) {
        if (rows_[r].machine == machine)
            return r;
    }
    return npos;
}

bool
MetricFrame::groupHasFailure(std::size_t g) const
{
    for (std::size_t r : groups_[g]) {
        if (runStatusIsInfraFailure(rows_[r].status))
            return true;
    }
    return false;
}

std::size_t
MetricFrame::linearRowWithOverrides(std::size_t g,
                                    const std::string &machine,
                                    const std::vector<Coord> &overrides)
    const
{
    std::vector<Coord> want = groupCoords(g);
    for (const Coord &o : overrides) {
        for (Coord &c : want) {
            if (c.first == o.first)
                c.second = o.second;
        }
    }
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (rows_[r].machine == machine && rows_[r].coords == want)
            return r;
    }
    return npos;
}

std::size_t
MetricFrame::rowWithOverrides(std::size_t g, const std::string &machine,
                              const std::vector<Coord> &overrides) const
{
    if (!indexed())
        return linearRowWithOverrides(g, machine, overrides);
    const Id m = lookupId(machine);
    if (m == kNoId)
        return npos;
    std::vector<std::pair<Id, Id>> want =
        rowKeys_[groups_[g].front()].coords;
    for (const Coord &o : overrides) {
        const Id k = lookupId(o.first);
        if (k == kNoId)
            continue; // key unseen anywhere: substitutes nothing
        const Id v = lookupId(o.second);
        bool present = false;
        for (auto &c : want) {
            if (c.first == k) {
                present = true;
                c.second = v;
            }
        }
        // A value string no row carries can never match.
        if (present && v == kNoId)
            return npos;
    }
    std::string key;
    key.reserve(want.size() * 8 + 4);
    packId(key, m);
    packPairs(key, want);
    auto it = rowOfMachineTuple_.find(key);
    return it == rowOfMachineTuple_.end() ? npos : it->second;
}

std::size_t
MetricFrame::linearAxisBaselineRow(std::size_t r,
                                   const std::string &axis) const
{
    const Row &of = rows_[r];
    for (std::size_t cand = 0; cand < rows_.size(); ++cand) {
        if (rows_[cand].machine != of.machine ||
            rows_[cand].coords.size() != of.coords.size())
            continue;
        bool match = true;
        for (std::size_t i = 0; i < of.coords.size(); ++i) {
            if (of.coords[i].first == axis)
                continue;
            match = match && rows_[cand].coords[i] == of.coords[i];
        }
        if (match)
            return cand;
    }
    return npos;
}

void
MetricFrame::buildAxisBaselineIndex(Id axisId) const
{
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        const RowKeys &keys = rowKeys_[r];
        std::string key;
        key.reserve(keys.coords.size() * 8 + 8);
        packId(key, axisId);
        packId(key, keys.machine);
        for (const auto &c : keys.coords) {
            packId(key, c.first);
            packId(key, c.first == axisId ? kNoId : c.second);
        }
        axisBaseline_.emplace(std::move(key), r);
    }
    axisBaselineBuilt_.push_back(axisId);
}

std::size_t
MetricFrame::axisBaselineRow(std::size_t r,
                             const std::string &axis) const
{
    if (!indexed())
        return linearAxisBaselineRow(r, axis);
    const RowKeys &keys = rowKeys_[r];
    const Id axisId = lookupId(axis);
    if (axisId == kNoId) {
        // No row carries the axis, so the baseline is simply the
        // first row with this row's machine and exact coordinates.
        std::string key;
        key.reserve(keys.coords.size() * 8 + 4);
        packId(key, keys.machine);
        packPairs(key, keys.coords);
        auto it = rowOfMachineTuple_.find(key);
        return it == rowOfMachineTuple_.end() ? npos : it->second;
    }
    if (std::find(axisBaselineBuilt_.begin(), axisBaselineBuilt_.end(),
                  axisId) == axisBaselineBuilt_.end())
        buildAxisBaselineIndex(axisId);
    std::string key;
    key.reserve(keys.coords.size() * 8 + 8);
    packId(key, axisId);
    packId(key, keys.machine);
    for (const auto &c : keys.coords) {
        packId(key, c.first);
        packId(key, c.first == axisId ? kNoId : c.second);
    }
    auto it = axisBaseline_.find(key);
    return it == axisBaseline_.end() ? npos : it->second;
}

std::size_t
MetricFrame::linearFindRow(const std::string &machine,
                           const std::string &workload,
                           unsigned competitors) const
{
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (rows_[r].machine == machine &&
            rows_[r].workload == workload &&
            rows_[r].competitors == competitors)
            return r;
    }
    return npos;
}

std::size_t
MetricFrame::findRow(const std::string &machine,
                     const std::string &workload,
                     unsigned competitors) const
{
    if (!indexed())
        return linearFindRow(machine, workload, competitors);
    const Id m = lookupId(machine);
    const Id w = lookupId(workload);
    if (m == kNoId || w == kNoId)
        return npos;
    std::string key;
    packId(key, m);
    packId(key, w);
    packId(key, competitors);
    auto it = rowOfTriple_.find(key);
    return it == rowOfTriple_.end() ? npos : it->second;
}

std::size_t
MetricFrame::linearFindRow(const std::string &machine,
                           const std::vector<Coord> &coords) const
{
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (rows_[r].machine != machine)
            continue;
        bool match = true;
        for (const Coord &want : coords) {
            bool found = false;
            for (const Coord &have : rows_[r].coords)
                found = found || have == want;
            match = match && found;
        }
        if (match)
            return r;
    }
    return npos;
}

std::size_t
MetricFrame::findRow(const std::string &machine,
                     const std::vector<Coord> &coords) const
{
    if (!indexed())
        return linearFindRow(machine, coords);
    const Id m = lookupId(machine);
    if (m == kNoId || m >= rowsOfMachine_.size() ||
        rowsOfMachine_[m].empty())
        return npos;
    std::vector<std::pair<Id, Id>> want;
    want.reserve(coords.size());
    for (const Coord &c : coords) {
        const Id k = lookupId(c.first);
        const Id v = lookupId(c.second);
        if (k == kNoId || v == kNoId)
            return npos; // an unseen key or value matches no row
        want.emplace_back(k, v);
    }
    const std::vector<std::size_t> &mine = rowsOfMachine_[m];
    // Full-tuple fast path: a query naming every axis is an exact
    // sorted-tuple hash hit. A miss (or a partial query) falls back to
    // a containment scan over this machine's rows — id comparisons
    // only, never strings.
    if (want.size() == rowKeys_[mine.front()].coords.size()) {
        std::vector<std::pair<Id, Id>> sorted = want;
        std::sort(sorted.begin(), sorted.end());
        std::string key;
        key.reserve(sorted.size() * 8 + 4);
        packId(key, m);
        packPairs(key, sorted);
        auto it = rowOfSortedTuple_.find(key);
        if (it != rowOfSortedTuple_.end())
            return it->second;
    }
    for (std::size_t r : mine) {
        bool match = true;
        for (const auto &w : want) {
            bool found = false;
            for (const auto &have : rowKeys_[r].coords)
                found = found || have == w;
            match = match && found;
        }
        if (match)
            return r;
    }
    return npos;
}

std::vector<std::string>
MetricFrame::workloads() const
{
    std::vector<std::string> names;
    if (indexed()) {
        std::unordered_set<Id> seen;
        for (std::size_t r = 0; r < rows_.size(); ++r) {
            if (seen.insert(rowKeys_[r].workload).second)
                names.push_back(rows_[r].workload);
        }
        return names;
    }
    for (const Row &r : rows_) {
        bool seen = false;
        for (const std::string &n : names)
            seen = seen || n == r.workload;
        if (!seen)
            names.push_back(r.workload);
    }
    return names;
}

const std::vector<std::string> *
MetricFrame::axisValues(const std::string &key) const
{
    for (const auto &axis : axisValues_) {
        if (axis.first == key)
            return &axis.second;
    }
    return nullptr;
}

void
MetricFrame::writeJson(std::ostream &os) const
{
    using stats::writeJsonNumber;
    using stats::writeJsonQuoted;
    os << "{\n";
    os << "  \"rows\": " << rows_.size() << ",\n";
    os << "  \"groups\": " << groups_.size() << ",\n";
    os << "  \"metrics\": [";
    for (std::size_t m = 0; m < metrics_.size(); ++m) {
        os << (m ? ", " : "");
        writeJsonQuoted(os, metrics_[m]);
    }
    os << "],\n";
    os << "  \"points\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        const Row &row = rows_[r];
        os << (r ? ",\n" : "\n");
        os << "    {\n";
        os << "      \"machine\": ";
        writeJsonQuoted(os, row.machine);
        os << ",\n";
        os << "      \"workload\": ";
        writeJsonQuoted(os, row.workload);
        os << ",\n";
        os << "      \"competitors\": " << row.competitors << ",\n";
        os << "      \"coords\": {";
        for (std::size_t c = 0; c < row.coords.size(); ++c) {
            os << (c ? ", " : "");
            writeJsonQuoted(os, row.coords[c].first);
            os << ": ";
            writeJsonQuoted(os, row.coords[c].second);
        }
        os << "},\n";
        os << "      \"group\": " << row.group << ",\n";
        os << "      \"status\": ";
        writeJsonQuoted(os, runStatusName(row.status));
        os << ",\n";
        os << "      \"values\": {";
        for (std::size_t m = 0; m < metrics_.size(); ++m) {
            os << (m ? ", " : "");
            writeJsonQuoted(os, metrics_[m]);
            os << ": ";
            writeJsonNumber(os, columns_[m][r]);
        }
        os << "}\n";
        os << "    }";
    }
    os << "\n  ]\n}\n";
}

} // namespace misp::harness
