#include "signal_fabric.hh"

#include "obs/trace.hh"
#include "snapshot/tags.hh"

namespace misp::arch {

SignalFabric::SignalFabric(EventQueue &eq, Cycles signalCycles,
                           stats::StatGroup *parent, int ownerCpu)
    : eq_(eq),
      signalCycles_(signalCycles),
      ownerCpu_(ownerCpu),
      statGroup_("fabric", parent),
      deliveries_(&statGroup_, "deliveries", "signals delivered")
{}

namespace {

/** Pending deliveries are snapshottable: the closure is rebuilt at
 *  restore from (owner CPU, target SID, payload). */
EventTag
deliveryTag(std::uint32_t kind, int ownerCpu, SequencerId sid,
            const cpu::SignalPayload &payload)
{
    EventTag tag;
    if (ownerCpu < 0)
        return tag; // untagged: bare-fabric tests, never snapshotted
    tag.kind = kind;
    tag.arg = {static_cast<std::uint64_t>(ownerCpu), sid, payload.eip,
               payload.esp, payload.arg};
    return tag;
}

} // namespace

void
SignalFabric::sendSignal(cpu::Sequencer &dst,
                         const cpu::SignalPayload &payload)
{
    ++deliveries_;
    obs::trace(obs::TraceKind::SignalSend, dst.sid(),
               ownerCpu_ < 0 ? 0 : static_cast<std::uint32_t>(ownerCpu_),
               payload.eip, payload.arg);
    cpu::Sequencer *target = &dst;
    eq_.scheduleLambda(eq_.curTick() + signalCycles_, "fabric.signal",
                       [target, payload] { target->deliverSignal(payload); },
                       Event::kPrioInterrupt,
                       deliveryTag(snap::tag::kFabricSignal, ownerCpu_,
                                   dst.sid(), payload));
}

void
SignalFabric::sendProxyRequest(cpu::Sequencer &oms,
                               const cpu::SignalPayload &payload)
{
    ++deliveries_;
    obs::trace(obs::TraceKind::ProxySend, oms.sid(),
               ownerCpu_ < 0 ? 0 : static_cast<std::uint32_t>(ownerCpu_),
               payload.arg);
    cpu::Sequencer *target = &oms;
    eq_.scheduleLambda(
        eq_.curTick() + signalCycles_, "fabric.proxyReq",
        [target, payload] { target->deliverProxyRequest(payload); },
        Event::kPrioInterrupt,
        deliveryTag(snap::tag::kFabricProxyReq, ownerCpu_, oms.sid(),
                    payload));
}

void
SignalFabric::sendAction(const std::string &name,
                         std::function<void()> action)
{
    ++deliveries_;
    eq_.scheduleLambda(eq_.curTick() + signalCycles_, name,
                       std::move(action), Event::kPrioInterrupt);
}

} // namespace misp::arch
