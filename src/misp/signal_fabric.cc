#include "signal_fabric.hh"

namespace misp::arch {

SignalFabric::SignalFabric(EventQueue &eq, Cycles signalCycles,
                           stats::StatGroup *parent)
    : eq_(eq),
      signalCycles_(signalCycles),
      statGroup_("fabric", parent),
      deliveries_(&statGroup_, "deliveries", "signals delivered")
{}

void
SignalFabric::sendSignal(cpu::Sequencer &dst,
                         const cpu::SignalPayload &payload)
{
    ++deliveries_;
    cpu::Sequencer *target = &dst;
    eq_.scheduleLambda(eq_.curTick() + signalCycles_, "fabric.signal",
                       [target, payload] { target->deliverSignal(payload); },
                       Event::kPrioInterrupt);
}

void
SignalFabric::sendProxyRequest(cpu::Sequencer &oms,
                               const cpu::SignalPayload &payload)
{
    ++deliveries_;
    cpu::Sequencer *target = &oms;
    eq_.scheduleLambda(
        eq_.curTick() + signalCycles_, "fabric.proxyReq",
        [target, payload] { target->deliverProxyRequest(payload); },
        Event::kPrioInterrupt);
}

void
SignalFabric::sendAction(const std::string &name,
                         std::function<void()> action)
{
    ++deliveries_;
    eq_.scheduleLambda(eq_.curTick() + signalCycles_, name,
                       std::move(action), Event::kPrioInterrupt);
}

} // namespace misp::arch
