/**
 * @file
 * The inter-sequencer signaling fabric of one MISP processor.
 *
 * Carries every signal class the architecture defines (§2.4):
 * user-level SIGNAL continuations, proxy-execution requests and
 * completions, and the firmware-level suspend/resume used by the
 * serialization engine. Each delivery costs `signalCycles` — the
 * parameter Figure 5 sweeps.
 */

#ifndef MISP_MISP_SIGNAL_FABRIC_HH
#define MISP_MISP_SIGNAL_FABRIC_HH

#include <functional>

#include "cpu/sequencer.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace misp::arch {

/** Point-to-point signal delivery with a uniform latency model. */
class SignalFabric
{
  public:
    /** @p ownerCpu is the kernel CPU slot of the owning processor's
     *  OMS; it keys the snapshot tags on signal-delivery events so a
     *  pending delivery can be re-targeted after a machine-state
     *  restore. -1 (tests driving a bare fabric) disables tagging. */
    SignalFabric(EventQueue &eq, Cycles signalCycles,
                 stats::StatGroup *parent, int ownerCpu = -1);

    Cycles signalCycles() const { return signalCycles_; }
    void setSignalCycles(Cycles c) { signalCycles_ = c; }

    /** Deliver a user-level SIGNAL continuation to @p dst. */
    void sendSignal(cpu::Sequencer &dst, const cpu::SignalPayload &payload);

    /** Deliver a proxy-execution request notification to the OMS. */
    void sendProxyRequest(cpu::Sequencer &oms,
                          const cpu::SignalPayload &payload);

    /** Deliver an arbitrary action after the signal latency; used for
     *  firmware-level suspend/resume and proxy completion, which carry
     *  side effects rather than continuations. */
    void sendAction(const std::string &name, std::function<void()> action);

    std::uint64_t deliveries() const
    {
        return static_cast<std::uint64_t>(deliveries_.value());
    }

  private:
    EventQueue &eq_;
    Cycles signalCycles_;
    int ownerCpu_;

    stats::StatGroup statGroup_;
    stats::Scalar deliveries_;
};

} // namespace misp::arch

#endif // MISP_MISP_SIGNAL_FABRIC_HH
