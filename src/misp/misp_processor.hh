/**
 * @file
 * The MISP processor: the paper's primary contribution (§2).
 *
 * One MispProcessor couples an OS-managed sequencer (OMS) with N
 * application-managed sequencers (AMS) and implements the four
 * architectural mechanisms the paper defines:
 *
 *  1. user-level inter-sequencer signaling (SIGNAL / YIELD-CONDITIONAL),
 *  2. a shared virtual address space maintained by serializing AMSs
 *     across OMS Ring-0 episodes (§2.3),
 *  3. proxy execution, which relays AMS faults to the OMS so that OS
 *     services happen on behalf of Ring-3-only sequencers (§2.5), and
 *  4. the OS-visible single-logical-CPU illusion: the kernel schedules
 *     ordinary OS threads onto the OMS, with the aggregate AMS state
 *     saved and restored at thread switches (§2.2).
 *
 * It also implements the paper's firmware event log: every serializing
 * event is classified exactly as in Table 1 (OMS SysCall / PF / Timer /
 * Interrupt, AMS SysCall / PF), and the Eq.1–Eq.3 overhead components
 * are accumulated for the model cross-check bench.
 */

#ifndef MISP_MISP_MISP_PROCESSOR_HH
#define MISP_MISP_MISP_PROCESSOR_HH

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cpu/sequencer.hh"
#include "misp/misp_config.hh"
#include "misp/signal_fabric.hh"
#include "os/kernel.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace misp::arch {

class MispProcessor;

/** Runtime hook: ShredLib (or another user-level runtime) implements
 *  this to service RTCALL instructions and to track which gang of
 *  shreds is bound to the processor's AMSs. */
class RtHandler
{
  public:
    virtual ~RtHandler() = default;

    /** Service an RTCALL executed on @p seq. @return cycles charged. */
    virtual Cycles rtcall(MispProcessor &proc, cpu::Sequencer &seq,
                          Word service) = 0;

    /** The kernel loaded @p thread onto this processor's OMS; the
     *  thread's shreds may now use the AMSs. */
    virtual void onThreadLoaded(MispProcessor &proc, os::OsThread &t) = 0;

    /** The kernel is about to switch @p thread away. */
    virtual void onThreadUnloading(MispProcessor &proc, os::OsThread &t) = 0;
};

/** Why a Ring-0 episode happened; the Table 1 classification. */
enum class Ring0Cause : std::uint8_t {
    OmsSyscall = 0,
    OmsPageFault,
    Timer,
    OtherInterrupt,
    ProxySyscall,   ///< AMS syscall serviced by proxy execution
    ProxyPageFault, ///< AMS page fault serviced by proxy execution
    NumCauses
};

const char *ring0CauseName(Ring0Cause cause);

/** An in-flight proxy-execution request (§2.5). */
struct ProxyRequest {
    cpu::Sequencer *ams = nullptr;
    mem::Fault fault;
    cpu::SequencerContext savedCtx; ///< AMS state saved at fault time
    Tick start = 0;
};

/**
 * One MISP processor (1 OMS + N AMS), acting as the SequencerEnv for all
 * of its sequencers and as the CPU driver for one kernel CPU slot.
 */
class MispProcessor : public cpu::SequencerEnv, public snap::Saveable
{
  public:
    MispProcessor(std::string name, const MispConfig &config,
                  EventQueue &eq, mem::PhysicalMemory &pmem,
                  os::Kernel &kernel, stats::StatGroup *parent);

    ~MispProcessor() override;

    const std::string &name() const { return name_; }
    const MispConfig &config() const { return config_; }

    /** Re-select the host execution engine on every sequencer (used
     *  after a snapshot restore, where the requester's engine choice —
     *  not the saver's — governs; the engine is never architectural
     *  state, so this is always safe). */
    void
    setEngine(cpu::Engine engine)
    {
        config_.engine = engine;
        oms_->setEngine(engine);
        for (auto &ams : ams_)
            ams->setEngine(engine);
    }

    /** Kernel CPU slot id of the OMS. */
    int cpuId() const { return cpuId_; }

    cpu::Sequencer &oms() { return *oms_; }
    unsigned numAms() const { return static_cast<unsigned>(ams_.size()); }
    cpu::Sequencer &amsAt(unsigned i) { return *ams_[i]; }

    /** Sequencer by SID (0 = OMS, 1..N = AMS). */
    cpu::Sequencer *sequencer(SequencerId sid);

    SignalFabric &fabric() { return fabric_; }
    os::Kernel &kernel() { return kernel_; }
    EventQueue &eventQueue() { return eq_; }

    void attachRuntime(RtHandler *rt) { runtime_ = rt; }
    RtHandler *runtime() const { return runtime_; }

    // ---- kernel CPU driver --------------------------------------------
    /** Load @p thread onto the OMS (restore context + AMS save area).
     *  Called at startup and after context-switch decisions. */
    void loadThread(os::OsThread *thread);

    /** Thread currently loaded on the OMS (kernel's view). */
    os::OsThread *currentThread() const;

    /** Start periodic timer (and optional device) interrupts. */
    void startInterrupts();

    /** Stop delivering interrupts (end of experiment). */
    void stopInterrupts();

    /** True while a Ring-0 episode is in progress. */
    bool inRing0() const { return inRing0_; }

    // ---- SequencerEnv --------------------------------------------------
    cpu::FaultAction handleFault(cpu::Sequencer &seq,
                                 const mem::Fault &fault,
                                 Cycles *extraCycles) override;
    Cycles handleRtCall(cpu::Sequencer &seq, Word service) override;
    void signalInstruction(cpu::Sequencer &seq, SequencerId sid,
                           const cpu::SignalPayload &payload) override;
    void sequencerHalted(cpu::Sequencer &seq) override;
    unsigned numSequencers() const override
    {
        return 1 + static_cast<unsigned>(ams_.size());
    }

    // ---- proxy execution (called by the runtime's proxy handler) -------
    /** True if a proxy request is queued or being serviced. */
    bool proxyInFlight() const { return !proxyQueue_.empty(); }

    /** Service the oldest pending proxy request on the OMS; invoked by
     *  ShredLib's guest proxy-handler stub via RTCALL (§2.5, §4.2).
     *  @return cycles charged to the OMS for the impersonation. */
    Cycles serviceProxy(cpu::Sequencer &omsSeq);

    /** Raise a syscall-class Ring-0 episode from runtime code running on
     *  the OMS (used by runtime services that must enter the kernel,
     *  e.g. the OS-thread backend's thread_create). Counts as an OMS
     *  SysCall event; the caller must have placed the OMS InKernel via
     *  enterKernelEpisode(). @p work runs after the suspension handshake
     *  and typically wraps a Kernel entry point plus any context
     *  patching. */
    void raiseSyscallEpisode(std::function<os::KernelResult()> work);

    // ---- table-1 statistics ---------------------------------------------
    std::uint64_t eventCount(Ring0Cause cause) const;
    std::uint64_t serializations() const
    {
        return static_cast<std::uint64_t>(serializations_.value());
    }

    stats::StatGroup &statGroup() { return statGroup_; }

    // ---- snapshot -------------------------------------------------------
    /** Snapshot interrupt arming, the proxy queue, the pending timer /
     *  device-IRQ occurrences, and every sequencer. Must not be called
     *  mid-Ring-0-episode (the in-flight episode phases capture
     *  closures); snap::snapshotReady() guards this. */
    void snapSave(snap::Serializer &s) const override;
    void snapRestore(snap::Deserializer &d) override;

    /** Identities of the periodic-interrupt events, for the snapshot
     *  layer's every-pending-event-is-claimed audit. */
    const Event *snapTimerEvent() const { return timerEvent_.get(); }
    const Event *snapDeviceEvent() const { return deviceEvent_.get(); }

  private:
    friend class MispSystemTestPeer;

    /** Begin a Ring-0 episode on the OMS at the current tick:
     *  suspend AMSs, run @p work after the suspension handshake, apply
     *  the kernel decision, resume AMSs, and finally call @p done (may
     *  be null). @p onBehalfOfProxy carries the AMS whose serviced
     *  context must be restored at episode end. */
    void ring0Episode(Ring0Cause cause,
                      std::function<os::KernelResult()> work,
                      std::function<void(const os::KernelResult &)> done,
                      std::optional<ProxyRequest> proxy);

    void beginSerialization();
    void endSerialization(bool rootChanged);
    /** Phase-1 half of a thread switch: snapshot the outgoing thread's
     *  OMS context and AMS save area *in the same event as the kernel's
     *  scheduling decision*, so a cross-CPU wake can never observe (and
     *  re-dispatch) the thread with a stale context. */
    void saveOutgoingThread(const os::KernelResult &res);
    /** Phase-2 half: restore the incoming thread at Ring-0 exit. */
    void loadIncomingThread(const os::KernelResult &res);
    void completeProxy(ProxyRequest req, const os::KernelResult &res);
    void onTimer();
    void onDeviceIrq();
    void scheduleNextDeviceIrq();

    std::string name_;  ///< snap: config
    MispConfig config_; ///< snap: config
    EventQueue &eq_;
    mem::PhysicalMemory &pmem_;
    os::Kernel &kernel_;
    int cpuId_;         ///< snap: config

    stats::StatGroup statGroup_;
    /** snap: config — the fabric's only non-stat state is the
     *  configured signal cost; in-flight deliveries travel as
     *  tagged events via the snapshot layer's event codecs. */
    SignalFabric fabric_;

    std::unique_ptr<cpu::Sequencer> oms_;
    std::vector<std::unique_ptr<cpu::Sequencer>> ams_;

    RtHandler *runtime_ = nullptr; ///< snap: config — wired at build

    /** snap: quiesced — snapSave asserts it; the quiescence
     *  protocol steps the queue past Ring-0 episodes first. */
    bool inRing0_ = false;
    bool interruptsOn_ = false;
    std::deque<ProxyRequest> proxyQueue_;
    /** Owned periodic-interrupt events, rescheduled in place (rather
     *  than freshly allocated per occurrence) so a pending occurrence
     *  has a stable identity the snapshot layer can claim. */
    std::unique_ptr<LambdaEvent> timerEvent_;
    std::unique_ptr<LambdaEvent> deviceEvent_;

    // Table 1 event log.
    stats::Vector events_;
    stats::Scalar serializations_;
    stats::Scalar serializeCycles_; ///< sum of full 2*signal+priv windows
    stats::Scalar privCycles_;      ///< priv portion only
    stats::Scalar proxyRequests_;
    stats::Scalar proxySignalCycles_; ///< Eq.2 egress overhead accumulator
    stats::Scalar threadSwitches_;
};

} // namespace misp::arch

#endif // MISP_MISP_MISP_PROCESSOR_HH
