#include "misp_system.hh"

namespace misp::arch {

SystemConfig
SystemConfig::uniprocessor(unsigned numAms)
{
    SystemConfig cfg;
    cfg.amsPerProcessor = {numAms};
    return cfg;
}

SystemConfig
SystemConfig::mp(const std::vector<unsigned> &amsCounts)
{
    SystemConfig cfg;
    cfg.amsPerProcessor = amsCounts;
    return cfg;
}

MispSystem::MispSystem(const SystemConfig &config)
    : config_(config), root_("")
{
    pmem_ = std::make_unique<mem::PhysicalMemory>(config_.physFrames,
                                                  &root_);
    kernel_ = std::make_unique<os::Kernel>(eq_, *pmem_, config_.kernel,
                                           &root_);
    kernel_->setClient(this);

    for (std::size_t i = 0; i < config_.amsPerProcessor.size(); ++i) {
        MispConfig mc = config_.misp;
        mc.numAms = config_.amsPerProcessor[i];
        procs_.push_back(std::make_unique<MispProcessor>(
            "misp" + std::to_string(i), mc, eq_, *pmem_, *kernel_,
            &root_));
    }
}

MispSystem::~MispSystem() = default;

MispProcessor *
MispSystem::processorForCpu(int cpu)
{
    for (auto &p : procs_) {
        if (p->cpuId() == cpu)
            return p.get();
    }
    return nullptr;
}

void
MispSystem::attachRuntime(RtHandler *rt)
{
    for (auto &p : procs_)
        p->attachRuntime(rt);
}

void
MispSystem::start()
{
    for (auto &p : procs_) {
        // cpuWake() may already have dispatched a thread here when it
        // was created; only pick for still-idle CPUs.
        if (kernel_->current(p->cpuId()) == nullptr) {
            os::OsThread *t = kernel_->pickNext(p->cpuId());
            if (t)
                p->loadThread(t);
        }
        p->startInterrupts();
    }
}

Tick
MispSystem::run(Tick maxTicks)
{
    return eq_.run(maxTicks);
}

void
MispSystem::quiesce()
{
    for (auto &p : procs_)
        p->stopInterrupts();
}

void
MispSystem::cpuWake(int cpu)
{
    MispProcessor *proc = processorForCpu(cpu);
    if (!proc)
        return;
    if (proc->inRing0() || proc->currentThread() != nullptr)
        return;
    if (!proc->oms().idle())
        return;
    os::OsThread *t = kernel_->pickNext(cpu);
    if (!t)
        return;
    // Loading from idle is the tail of whichever kernel path readied the
    // thread; charge the dispatch as kernel time on this OMS.
    proc->oms().chargeKernelCycles(kernel_->config().ctxSwitch);
    proc->loadThread(t);
}

} // namespace misp::arch
