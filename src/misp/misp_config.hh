/**
 * @file
 * Configuration of a MISP processor model.
 */

#ifndef MISP_MISP_MISP_CONFIG_HH
#define MISP_MISP_MISP_CONFIG_HH

#include "cpu/engine.hh"
#include "sim/types.hh"

namespace misp::arch {

/** Serialization policy for OMS Ring-0 episodes (§2.3). */
enum class SerializationPolicy {
    /** The paper's simple implementation: suspend every AMS whenever the
     *  OMS transitions to Ring 0; resume (with synchronized privileged
     *  state) when it returns to Ring 3. */
    SuspendAll,
    /** The paper's sketched aggressive alternative: AMSs keep executing
     *  speculatively while hardware monitors the control registers; they
     *  are only disturbed if CR3 actually changed (thread switch), in
     *  which case their TLBs are purged and state synchronized. */
    SpeculativeMonitor,
};

const char *serializationPolicyName(SerializationPolicy p);

/** Per-MISP-processor knobs. */
struct MispConfig {
    /** Number of application-managed sequencers. */
    unsigned numAms = 7;

    /** Inter-sequencer signaling cost, in cycles. The paper assumes
     *  5000 as "a conservative estimate of a microcode-based
     *  implementation" (§5.2); Figure 5 sweeps {0, 500, 1000, 5000}. */
    Cycles signalCycles = 5000;

    /** Cost of one sequencer-context save or restore to memory (proxy
     *  impersonation and thread switches). */
    Cycles contextXferCycles = 150;

    SerializationPolicy serialization = SerializationPolicy::SuspendAll;

    /** Instructions per sequencer scheduling slice (timing fidelity
     *  knob; see Sequencer::setSliceLimit). */
    unsigned sliceLimit = 32;

    /** Host-side execution engine: reference (per-instruction
     *  fetch+decode), decode cache (predecoded pages), or superblock
     *  (chained basic-block dispatch over predecoded pages). Simulated
     *  cycles and stats are bit-identical across all three; this is a
     *  simulation-speed knob, never architectural state (snapshots
     *  neither record it nor key compatibility on it). The
     *  `--no-decode-cache` escape hatch selects Reference. */
    cpu::Engine engine = cpu::Engine::Superblock;
};

} // namespace misp::arch

#endif // MISP_MISP_MISP_CONFIG_HH
