/**
 * @file
 * A complete simulated machine built from MISP processors (§2.6).
 *
 * "Like traditional processors, multiple MISP processors can be combined
 * to form a multiprocessor system. The OS sees only the OMSs and
 * schedules threads to run on each."
 *
 * A MispSystem owns the event queue, physical memory, the kernel model,
 * and one or more MispProcessors. The per-processor AMS count vector
 * expresses all of Figure 6's configurations:
 *
 *   1x8     -> {7}
 *   2x4     -> {3, 3}
 *   4x2     -> {1, 1, 1, 1}
 *   1x4+4   -> {3, 0, 0, 0, 0}
 */

#ifndef MISP_MISP_MISP_SYSTEM_HH
#define MISP_MISP_MISP_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "misp/misp_processor.hh"
#include "os/kernel.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace misp::arch {

/** Whole-machine configuration. */
struct SystemConfig {
    /** AMS count per MISP processor; size = number of processors. */
    std::vector<unsigned> amsPerProcessor{7};
    MispConfig misp;       ///< shared per-processor knobs (AMS count ignored)
    os::KernelConfig kernel;
    std::uint64_t physFrames = 1 << 18; ///< 1 GiB of simulated DRAM

    /** Shorthand constructors for the paper's configurations. */
    static SystemConfig uniprocessor(unsigned numAms = 7);
    static SystemConfig mp(const std::vector<unsigned> &amsCounts);
};

/** The simulated machine. */
class MispSystem : public os::KernelClient
{
  public:
    explicit MispSystem(const SystemConfig &config);
    ~MispSystem() override;

    MispSystem(const MispSystem &) = delete;
    MispSystem &operator=(const MispSystem &) = delete;

    EventQueue &eventQueue() { return eq_; }
    mem::PhysicalMemory &physMem() { return *pmem_; }
    os::Kernel &kernel() { return *kernel_; }
    stats::StatGroup &rootStats() { return root_; }
    const SystemConfig &config() const { return config_; }

    unsigned numProcessors() const
    {
        return static_cast<unsigned>(procs_.size());
    }
    MispProcessor &processor(unsigned i) { return *procs_[i]; }

    /** Processor whose OMS is kernel CPU @p cpu (nullptr if none). */
    MispProcessor *processorForCpu(int cpu);

    /** Attach a runtime to every processor. */
    void attachRuntime(RtHandler *rt);

    /** Re-select the host execution engine machine-wide (see
     *  MispProcessor::setEngine; used to apply the restoring run's
     *  engine choice after a snapshot restore). */
    void
    setEngine(cpu::Engine engine)
    {
        config_.misp.engine = engine;
        for (auto &p : procs_)
            p->setEngine(engine);
    }

    /** Kick off scheduling: assign ready threads to idle OMSs and start
     *  interrupt delivery. Call once after creating initial threads. */
    void start();

    /** Run the simulation until the event queue drains or @p maxTicks
     *  elapse. @return final tick. */
    Tick run(Tick maxTicks = kMaxTick);

    /** Stop interrupt generation (lets the queue drain at the end of an
     *  experiment). */
    void quiesce();

    // ---- KernelClient ---------------------------------------------------
    void cpuWake(int cpu) override;

  private:
    SystemConfig config_;
    EventQueue eq_;
    stats::StatGroup root_;
    std::unique_ptr<mem::PhysicalMemory> pmem_;
    std::unique_ptr<os::Kernel> kernel_;
    std::vector<std::unique_ptr<MispProcessor>> procs_;
};

} // namespace misp::arch

#endif // MISP_MISP_MISP_SYSTEM_HH
