#include "misp_processor.hh"

#include <optional>

#include "obs/trace.hh"
#include "snapshot/state_io.hh"

namespace misp::arch {

using cpu::SeqState;

const char *
serializationPolicyName(SerializationPolicy p)
{
    switch (p) {
      case SerializationPolicy::SuspendAll: return "suspend-all";
      case SerializationPolicy::SpeculativeMonitor:
        return "speculative-monitor";
    }
    return "?";
}

const char *
ring0CauseName(Ring0Cause cause)
{
    switch (cause) {
      case Ring0Cause::OmsSyscall: return "oms-syscall";
      case Ring0Cause::OmsPageFault: return "oms-page-fault";
      case Ring0Cause::Timer: return "timer";
      case Ring0Cause::OtherInterrupt: return "interrupt";
      case Ring0Cause::ProxySyscall: return "ams-syscall";
      case Ring0Cause::ProxyPageFault: return "ams-page-fault";
      case Ring0Cause::NumCauses: break;
    }
    return "?";
}

MispProcessor::MispProcessor(std::string name, const MispConfig &config,
                             EventQueue &eq, mem::PhysicalMemory &pmem,
                             os::Kernel &kernel, stats::StatGroup *parent)
    : name_(std::move(name)),
      config_(config),
      eq_(eq),
      pmem_(pmem),
      kernel_(kernel),
      cpuId_(kernel.addCpu()),
      statGroup_(name_, parent),
      fabric_(eq, config.signalCycles, &statGroup_, cpuId_),
      events_(&statGroup_, "serializingEvents",
              "Table-1 event counts by cause",
              static_cast<std::size_t>(Ring0Cause::NumCauses)),
      serializations_(&statGroup_, "serializations",
                      "Ring-0 serialization episodes"),
      serializeCycles_(&statGroup_, "serializeCycles",
                       "total serialization window cycles (2*signal+priv)"),
      privCycles_(&statGroup_, "privCycles", "cycles of Ring-0 work"),
      proxyRequests_(&statGroup_, "proxyRequests",
                     "proxy execution requests from AMSs"),
      proxySignalCycles_(&statGroup_, "proxySignalCycles",
                         "Eq.2 egress signal overhead (3*signal/request)"),
      threadSwitches_(&statGroup_, "threadSwitches",
                      "OS thread switches applied on this processor")
{
    oms_ = std::make_unique<cpu::Sequencer>("oms", 0, /*ring0=*/true, eq_,
                                            pmem_, &statGroup_);
    oms_->setEnv(this);
    oms_->setSliceLimit(config_.sliceLimit);
    oms_->setEngine(config_.engine);
    for (unsigned i = 0; i < config_.numAms; ++i) {
        ams_.push_back(std::make_unique<cpu::Sequencer>(
            "ams" + std::to_string(i + 1), i + 1, /*ring0=*/false, eq_,
            pmem_, &statGroup_));
        ams_.back()->setEnv(this);
        ams_.back()->setSliceLimit(config_.sliceLimit);
        ams_.back()->setEngine(config_.engine);
    }
    timerEvent_ = std::make_unique<LambdaEvent>(name_ + ".timer",
                                                [this] { onTimer(); });
    deviceEvent_ = std::make_unique<LambdaEvent>(
        name_ + ".deviceIrq", [this] { onDeviceIrq(); });
}

MispProcessor::~MispProcessor()
{
    // A run cut short (tick budget, snapshot save-and-exit) leaves the
    // periodic interrupts armed; detach them before the queue sees a
    // destroyed event.
    if (timerEvent_->scheduled())
        eq_.deschedule(timerEvent_.get());
    if (deviceEvent_->scheduled())
        eq_.deschedule(deviceEvent_.get());
}

cpu::Sequencer *
MispProcessor::sequencer(SequencerId sid)
{
    if (sid == 0)
        return oms_.get();
    if (sid <= ams_.size())
        return ams_[sid - 1].get();
    return nullptr;
}

os::OsThread *
MispProcessor::currentThread() const
{
    return kernel_.current(cpuId_);
}

std::uint64_t
MispProcessor::eventCount(Ring0Cause cause) const
{
    return static_cast<std::uint64_t>(
        events_.at(static_cast<std::size_t>(cause)));
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

void
MispProcessor::snapSave(snap::Serializer &s) const
{
    // Ring-0 episode phases capture arbitrary closures; the snapshot
    // layer steps the queue past them before calling us.
    MISP_ASSERT(!inRing0_);
    s.b(interruptsOn_);
    s.u64(proxyQueue_.size());
    for (const ProxyRequest &req : proxyQueue_) {
        s.u64(req.ams->sid());
        snap::putFault(s, req.fault);
        snap::putContext(s, req.savedCtx);
        s.u64(req.start);
    }
    snap::putEventSchedule(s, timerEvent_.get());
    snap::putEventSchedule(s, deviceEvent_.get());
    oms_->snapSave(s);
    for (const auto &ams : ams_)
        ams->snapSave(s);
}

void
MispProcessor::snapRestore(snap::Deserializer &d)
{
    interruptsOn_ = d.b();
    std::uint64_t pending = d.u64();
    for (std::uint64_t i = 0; i < pending; ++i) {
        ProxyRequest req;
        SequencerId sid = static_cast<SequencerId>(d.u64());
        req.ams = sequencer(sid);
        if (!req.ams)
            throw snap::SnapError("processor: proxy request names an "
                                  "absent sequencer");
        req.fault = snap::getFault(d);
        req.savedCtx = snap::getContext(d);
        req.start = d.u64();
        proxyQueue_.push_back(std::move(req));
    }
    snap::getEventSchedule(d, eq_, timerEvent_.get());
    snap::getEventSchedule(d, eq_, deviceEvent_.get());
    oms_->snapRestore(d);
    for (auto &ams : ams_)
        ams->snapRestore(d);
}

// ---------------------------------------------------------------------
// Kernel CPU driver
// ---------------------------------------------------------------------

void
MispProcessor::loadThread(os::OsThread *thread)
{
    if (!thread)
        return;
    MISP_ASSERT(thread->cpu() == cpuId_);
    MISP_ASSERT(oms_->idle());

    mem::AddressSpace *as = &thread->process()->addressSpace();
    // All sequencers of a MISP processor share the thread's virtual
    // address space (§2.3): every MMU gets the same root.
    oms_->mmu().setAddressSpace(as);
    for (auto &ams : ams_)
        ams->mmu().setAddressSpace(as);

    if (thread->context().eip != 0) {
        oms_->restartFromContext(thread->context());
    }
    // eip == 0 marks a thread whose OMS was parked in the user-level
    // scheduler; the runtime re-arms it from onThreadLoaded.

    // Restore the aggregate AMS save area (§2.2/§2.6). A saved context
    // with eip == 0 marks an AMS that was idle.
    auto &save = thread->amsSaveArea();
    for (std::size_t i = 0; i < save.size() && i < ams_.size(); ++i) {
        if (save[i].eip != 0)
            ams_[i]->restartFromContext(save[i]);
    }
    save.clear();

    if (runtime_)
        runtime_->onThreadLoaded(*this, *thread);
}

void
MispProcessor::saveOutgoingThread(const os::KernelResult &res)
{
    ++threadSwitches_;
    os::OsThread *prev = res.prev;
    if (prev) {
        if (runtime_)
            runtime_->onThreadUnloading(*this, *prev);
        prev->context() = oms_->saveContext();
        if (!oms_->hasLiveStream()) {
            // The OMS was parked in the user-level scheduler (no current
            // shred): mark the saved context idle so reload leaves the
            // OMS parked for the runtime to re-arm, instead of resuming
            // a stale instruction stream.
            prev->context().eip = 0;
        }
        // Aggregate AMS save (performed concurrently on real hardware;
        // the cost is inside the kernel's ctxSwitch priv figure).
        auto &save = prev->amsSaveArea();
        save.assign(ams_.size(), cpu::SequencerContext{});
        for (std::size_t i = 0; i < ams_.size(); ++i) {
            if (ams_[i]->hasLiveStream()) {
                save[i] = ams_[i]->saveContext();
            } else {
                save[i].eip = 0;
            }
        }
    }
    for (auto &ams : ams_)
        ams->unloadForSwitch();
    oms_->unloadForSwitch();

    // In-flight proxy requests belong to the outgoing thread. Their
    // AMS contexts were saved at the *faulting* EIP (proxy never
    // advances it), so the shreds simply re-fault and re-request proxy
    // execution when the thread is reloaded; the stale bookkeeping is
    // dropped here.
    proxyQueue_.clear();
    oms_->clearPendingProxies();
}

void
MispProcessor::loadIncomingThread(const os::KernelResult &res)
{
    if (res.next) {
        MISP_ASSERT(res.next->cpu() == cpuId_);
        loadThread(res.next);
    }
}

void
MispProcessor::startInterrupts()
{
    if (interruptsOn_)
        return;
    interruptsOn_ = true;
    const os::KernelConfig &kc = kernel_.config();
    // Stagger timer phase per CPU slot so MP configurations do not
    // serialize all processors at the same instant.
    Tick phase = kc.timerPeriod / (1 + static_cast<Tick>(cpuId_) % 7);
    eq_.schedule(timerEvent_.get(), eq_.curTick() + phase);
    if (kc.deviceIrqMeanPeriod > 0)
        scheduleNextDeviceIrq();
}

void
MispProcessor::stopInterrupts()
{
    interruptsOn_ = false;
}

void
MispProcessor::onTimer()
{
    if (!interruptsOn_)
        return;
    eq_.schedule(timerEvent_.get(),
                 eq_.curTick() + kernel_.config().timerPeriod);
    events_[static_cast<std::size_t>(Ring0Cause::Timer)] += 1;
    if (inRing0_) {
        // Coalesced: the OMS is already serialized in Ring 0. The tick
        // is counted; the next one reschedules.
        return;
    }
    ring0Episode(
        Ring0Cause::Timer, [this] { return kernel_.timerTick(cpuId_); },
        nullptr, std::nullopt);
}

void
MispProcessor::scheduleNextDeviceIrq()
{
    Tick gap = kernel_.nextDeviceIrqGap();
    if (gap == 0)
        return;
    eq_.schedule(deviceEvent_.get(), eq_.curTick() + gap);
}

void
MispProcessor::onDeviceIrq()
{
    if (!interruptsOn_)
        return;
    scheduleNextDeviceIrq();
    events_[static_cast<std::size_t>(Ring0Cause::OtherInterrupt)] += 1;
    if (inRing0_)
        return;
    ring0Episode(
        Ring0Cause::OtherInterrupt,
        [this] { return kernel_.deviceIrq(cpuId_); }, nullptr,
        std::nullopt);
}

// ---------------------------------------------------------------------
// Ring-0 episode orchestration (§2.3 serialization)
// ---------------------------------------------------------------------

void
MispProcessor::beginSerialization()
{
    if (config_.serialization != SerializationPolicy::SuspendAll)
        return;
    for (auto &amsPtr : ams_) {
        cpu::Sequencer *ams = amsPtr.get();
        fabric_.sendAction(name_ + ".suspend",
                           [ams] { ams->suspend(); });
    }
}

void
MispProcessor::endSerialization(bool rootChanged)
{
    if (config_.serialization == SerializationPolicy::SuspendAll) {
        for (auto &amsPtr : ams_) {
            cpu::Sequencer *ams = amsPtr.get();
            fabric_.sendAction(name_ + ".resume",
                               [ams] { ams->resumeFromSerialization(); });
        }
    } else if (rootChanged) {
        // Speculative monitor: AMSs kept executing; a CR3 change means
        // their speculative work must be discarded at TLB granularity,
        // and their predecoded blocks resynchronized with it.
        for (auto &ams : ams_) {
            ams->mmu().tlb().flushAll();
            ams->invalidateDecodedBlock();
        }
    }
}

void
MispProcessor::ring0Episode(
    Ring0Cause cause, std::function<os::KernelResult()> work,
    std::function<void(const os::KernelResult &)> done,
    std::optional<ProxyRequest> proxy)
{
    MISP_ASSERT(!inRing0_);
    inRing0_ = true;
    obs::trace(obs::TraceKind::Ring0Enter,
               static_cast<std::uint16_t>(oms_->sid()),
               static_cast<std::uint32_t>(cause));

    // The OMS enters Ring 0. If this episode was raised from inside the
    // OMS's own execution (fault path), the sequencer is already
    // InKernel; an interrupt path needs pauseForKernel().
    if (oms_->state() == SeqState::Running)
        oms_->pauseForKernel();

    beginSerialization();

    // A processor with no AMSs (a plain CPU in an SMP or mixed
    // configuration) has nothing to synchronize: no handshake latency.
    // Likewise, the speculative-monitor ablation lets AMSs keep running,
    // so the OMS enters the kernel without waiting.
    const Cycles signal =
        (ams_.empty() ||
         config_.serialization == SerializationPolicy::SpeculativeMonitor)
            ? 0
            : fabric_.signalCycles();
    Tick t0 = eq_.curTick();

    // Phase 1 (t0 + signal): suspension handshake complete; the kernel
    // work executes.
    eq_.scheduleLambda(t0 + signal, name_ + ".ring0work", [this, cause,
                                                           work, done,
                                                           proxy, signal,
                                                           t0] {
        os::KernelResult res = work();
        privCycles_ += res.priv;
        // The outgoing thread's context must be snapshotted in the same
        // event as the kernel's decision: once it sits in a wait queue a
        // wake from another CPU may re-dispatch it at any later event.
        if (res.reschedule)
            saveOutgoingThread(res);

        // Phase 2 (t0 + signal + priv): return to Ring 3.
        eq_.scheduleLambda(
            eq_.curTick() + res.priv, name_ + ".ring0end",
            [this, cause, res, done, proxy, signal, t0] {
                oms_->chargeKernelCycles(signal + res.priv);
                if (res.fatalFault)
                    fatal("%s: unservicable fault (guest bug), cause=%s",
                          name_.c_str(), ring0CauseName(cause));

                if (res.reschedule)
                    loadIncomingThread(res);
                if (proxy)
                    completeProxy(*proxy, res);

                endSerialization(/*rootChanged=*/res.reschedule);
                ++serializations_;
                serializeCycles_ += 2 * signal + res.priv;
                inRing0_ = false;
                obs::trace(obs::TraceKind::Ring0Exit,
                           static_cast<std::uint16_t>(oms_->sid()),
                           static_cast<std::uint32_t>(cause), res.priv);

                if (done)
                    done(res);

                // Resume the OMS's user execution if it is still parked
                // in the kernel (i.e. no thread switch displaced it).
                if (oms_->state() == SeqState::InKernel)
                    oms_->resume();

                // Wakes that arrived while we were in Ring 0 were
                // declined (the CPU was busy); poll for ready work now
                // so a woken thread does not wait for the next timer.
                if (currentThread() == nullptr && oms_->idle()) {
                    os::OsThread *next = kernel_.pickNext(cpuId_);
                    if (next)
                        loadThread(next);
                }
                (void)t0;
            });
    });
}

// ---------------------------------------------------------------------
// Proxy execution (§2.5)
// ---------------------------------------------------------------------

Cycles
MispProcessor::serviceProxy(cpu::Sequencer &omsSeq)
{
    MISP_ASSERT(&omsSeq == oms_.get());
    if (proxyQueue_.empty()) {
        // Spurious dispatch (e.g. the request was consumed by an earlier
        // handler activation): nothing to do.
        return 0;
    }
    if (inRing0_) {
        // The handler was dispatched to an idle OMS while an
        // interrupt-initiated Ring-0 episode is still in flight; decline
        // and redeliver so the request retries after the episode.
        cpu::SignalPayload payload;
        payload.arg = proxyQueue_.front().ams->sid();
        fabric_.sendProxyRequest(*oms_, payload);
        return 0;
    }
    ProxyRequest req = proxyQueue_.front();
    proxyQueue_.pop_front();

    os::OsThread *thread = currentThread();
    MISP_ASSERT(thread != nullptr);

    // The OMS saves its own state and assumes the AMS's (impersonation).
    Cycles charge = 2 * config_.contextXferCycles;

    Ring0Cause cause = req.fault.kind == mem::FaultKind::Syscall
                           ? Ring0Cause::ProxySyscall
                           : Ring0Cause::ProxyPageFault;

    omsSeq.enterKernelEpisode();

    mem::Fault fault = req.fault;
    ring0Episode(
        cause,
        [this, thread, fault, ctx = req.savedCtx]() -> os::KernelResult {
            // "The OMS re-executes the faulting instruction, triggering
            // the fault again and causing OS services to be activated."
            if (fault.kind == mem::FaultKind::Syscall) {
                std::array<Word, 4> args{ctx.regs[0], ctx.regs[1],
                                         ctx.regs[2], ctx.regs[3]};
                os::KernelResult res =
                    kernel_.syscall(cpuId_, *thread, fault.code, args);
                if (res.reschedule) {
                    // A blocking syscall from a shred would block the
                    // whole OS thread (the ODE lesson, §5.5). The model
                    // does not support it; workloads must keep blocking
                    // syscalls on OS threads.
                    warn("%s: blocking syscall %llu proxied from an AMS "
                         "is unsupported; treated as immediate",
                         name_.c_str(), (unsigned long long)fault.code);
                    res.reschedule = false;
                    res.prev = res.next = nullptr;
                }
                return res;
            }
            return kernel_.pageFault(cpuId_, *thread, fault.addr,
                                     fault.write);
        },
        nullptr, req);

    // The final restore of the OMS's own context happens when the guest
    // proxy-handler stub YRETs; its cost is pre-charged here.
    return charge + config_.contextXferCycles;
}

void
MispProcessor::raiseSyscallEpisode(std::function<os::KernelResult()> work)
{
    events_[static_cast<std::size_t>(Ring0Cause::OmsSyscall)] += 1;
    ring0Episode(Ring0Cause::OmsSyscall, std::move(work), nullptr,
                 std::nullopt);
}

void
MispProcessor::completeProxy(ProxyRequest req, const os::KernelResult &res)
{
    // Patch the serviced architectural state before shipping it back.
    if (req.fault.kind == mem::FaultKind::Syscall) {
        req.savedCtx.regs[0] = res.retval;
        req.savedCtx.eip += isa::kInstBytes;
    }
    // Page fault: the kernel installed the mapping; the AMS retries the
    // same EIP.
    proxySignalCycles_ += 3 * fabric_.signalCycles();

    cpu::Sequencer *ams = req.ams;
    cpu::SequencerContext serviced = req.savedCtx;
    fabric_.sendAction(name_ + ".proxyDone", [ams, serviced] {
        if (ams->state() == SeqState::WaitingProxy) {
            ams->restoreContext(serviced);
            ams->resume(/*retryFault=*/true);
        }
        // If the thread was switched away mid-proxy (guarded against,
        // but kept safe), the serviced context is already in the save
        // area and will resume on reload.
    });
}

// ---------------------------------------------------------------------
// SequencerEnv
// ---------------------------------------------------------------------

cpu::FaultAction
MispProcessor::handleFault(cpu::Sequencer &seq, const mem::Fault &fault,
                           Cycles *extraCycles)
{
    *extraCycles = 0;

    if (&seq == oms_.get()) {
        os::OsThread *thread = currentThread();
        switch (fault.kind) {
          case mem::FaultKind::Syscall: {
            if (!thread)
                panic("%s: syscall with no thread loaded", name_.c_str());
            events_[static_cast<std::size_t>(Ring0Cause::OmsSyscall)] += 1;
            std::array<Word, 4> args{
                seq.context().regs[0], seq.context().regs[1],
                seq.context().regs[2], seq.context().regs[3]};
            Word number = fault.code;
            seq.enterKernelEpisode();
            ring0Episode(
                Ring0Cause::OmsSyscall,
                [this, thread, number, args]() {
                    os::KernelResult res =
                        kernel_.syscall(cpuId_, *thread, number, args);
                    // Patch the return while the context is still on the
                    // OMS (it may be saved by a switch right after).
                    oms_->context().regs[0] = res.retval;
                    oms_->context().eip += isa::kInstBytes;
                    return res;
                },
                nullptr, std::nullopt);
            return cpu::FaultAction::Deferred;
          }
          case mem::FaultKind::PageFault: {
            if (!thread)
                panic("%s: page fault with no thread loaded",
                      name_.c_str());
            events_[static_cast<std::size_t>(Ring0Cause::OmsPageFault)] +=
                1;
            VAddr va = fault.addr;
            bool write = fault.write;
            seq.enterKernelEpisode();
            ring0Episode(
                Ring0Cause::OmsPageFault,
                [this, thread, va, write]() {
                    return kernel_.pageFault(cpuId_, *thread, va, write);
                },
                nullptr, std::nullopt);
            return cpu::FaultAction::Deferred;
          }
          default:
            warn("%s: OMS raised %s at eip=%#llx; killing", name_.c_str(),
                 mem::faultKindName(fault.kind),
                 (unsigned long long)seq.context().eip);
            return cpu::FaultAction::Kill;
        }
    }

    // AMS: every OS-requiring fault becomes a proxy-execution trigger.
    switch (fault.kind) {
      case mem::FaultKind::Syscall:
        events_[static_cast<std::size_t>(Ring0Cause::ProxySyscall)] += 1;
        break;
      case mem::FaultKind::PageFault:
        events_[static_cast<std::size_t>(Ring0Cause::ProxyPageFault)] += 1;
        break;
      default:
        warn("%s: AMS %s raised %s at eip=%#llx; killing", name_.c_str(),
             seq.name().c_str(), mem::faultKindName(fault.kind),
             (unsigned long long)seq.context().eip);
        return cpu::FaultAction::Kill;
    }

    ++proxyRequests_;
    ProxyRequest req;
    req.ams = &seq;
    req.fault = fault;
    req.savedCtx = seq.saveContext();
    req.start = eq_.curTick();
    proxyQueue_.push_back(req);

    seq.beginProxyWait();

    cpu::SignalPayload payload;
    payload.arg = seq.sid();
    fabric_.sendProxyRequest(*oms_, payload);

    return cpu::FaultAction::Deferred;
}

Cycles
MispProcessor::handleRtCall(cpu::Sequencer &seq, Word service)
{
    if (!runtime_) {
        warn("%s: RTCALL %llu with no runtime attached", name_.c_str(),
             (unsigned long long)service);
        return 0;
    }
    obs::trace(obs::TraceKind::RtcallEnter,
               static_cast<std::uint16_t>(seq.sid()), 0, service);
    Cycles cycles = runtime_->rtcall(*this, seq, service);
    obs::trace(obs::TraceKind::RtcallExit,
               static_cast<std::uint16_t>(seq.sid()), 0, service, cycles);
    return cycles;
}

void
MispProcessor::signalInstruction(cpu::Sequencer &seq, SequencerId sid,
                                 const cpu::SignalPayload &payload)
{
    (void)seq;
    cpu::Sequencer *target = sequencer(sid);
    if (!target) {
        warn("%s: SIGNAL to invalid SID %u ignored", name_.c_str(), sid);
        return;
    }
    fabric_.sendSignal(*target, payload);
}

void
MispProcessor::sequencerHalted(cpu::Sequencer &seq)
{
    (void)seq;
    // HALT is a test/benchmark convenience; real workloads terminate via
    // the runtime (RT_EXIT_PROCESS). Nothing to coordinate here.
}

} // namespace misp::arch
