/**
 * @file
 * RMS sparse kernels: sparse_mvm, sparse_mvm_sym, sparse_mvm_trans.
 * CSR matrices are generated host-side deterministically; the transposed
 * and symmetric variants scatter with atomic FETCHADD, exercising the
 * coherence-visible read-modify-write path.
 */

#include "workloads/builder_util.hh"
#include "workloads/workload.hh"

namespace misp::wl {

using isa::Cond;
using isa::ProgramBuilder;
using namespace reg;

namespace {

constexpr std::uint64_t kValMask = 0xFFFF;

struct Csr {
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    std::vector<std::int64_t> rowPtr; // rows+1
    std::vector<std::int64_t> colIdx;
    std::vector<std::int64_t> vals;
};

Csr
makeCsr(std::uint64_t rows, std::uint64_t cols, unsigned nnzPerRow,
        std::uint64_t seed, bool lowerTriangular)
{
    Rng rng(seed);
    Csr m;
    m.rows = rows;
    m.cols = cols;
    m.rowPtr.resize(rows + 1, 0);
    for (std::uint64_t i = 0; i < rows; ++i) {
        m.rowPtr[i] = static_cast<std::int64_t>(m.colIdx.size());
        std::uint64_t limit = lowerTriangular ? i + 1 : cols;
        unsigned count = 1 + static_cast<unsigned>(
            rng.below(nnzPerRow));
        std::uint64_t prev = 0;
        for (unsigned e = 0; e < count && prev < limit; ++e) {
            std::uint64_t span = (limit - prev + count - e - 1) /
                                 (count - e);
            std::uint64_t col = prev + rng.below(std::max<std::uint64_t>(
                                          span, 1));
            if (col >= limit)
                break;
            m.colIdx.push_back(static_cast<std::int64_t>(col));
            m.vals.push_back(
                static_cast<std::int64_t>(rng.next() & kValMask));
            prev = col + 1;
        }
    }
    m.rowPtr[rows] = static_cast<std::int64_t>(m.colIdx.size());
    return m;
}

struct SparseLayout {
    VAddr rowPtr, colIdx, vals, x, y;
};

SparseLayout
layoutCsr(DataLayout &layout, const Csr &m,
          const std::vector<std::int64_t> &x)
{
    SparseLayout out;
    out.rowPtr = layout.reserveInts(m.rowPtr, "rowPtr");
    out.colIdx = layout.reserveInts(m.colIdx, "colIdx");
    out.vals = layout.reserveInts(m.vals, "vals");
    out.x = layout.reserveInts(x, "x");
    out.y = layout.reserve(std::max(m.rows, m.cols) * 8, "y");
    return out;
}

std::vector<std::int64_t>
randomInts(std::uint64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int64_t> v(n);
    for (auto &e : v)
        e = static_cast<std::int64_t>(rng.next() & kValMask);
    return v;
}

/** Emit the common row-loop prologue: s0=i in [lo,hi); for each row,
 *  t3 = element cursor = rowPtr[i], s2 = rowPtr[i+1]. The @p body emits
 *  per-element code with the element index in t3 (it may clobber
 *  t0,t1,t2,t4,s3,s4). */
void
emitCsrRowLoop(ProgramBuilder &b, const SparseLayout &addrs,
               std::uint64_t rows, unsigned workers,
               const std::function<void()> &perRowInit,
               const std::function<void()> &perElem,
               const std::function<void()> &perRowDone)
{
    emitChunkBounds(b, rows, workers, s0, s1);
    auto rowLoop = b.newLabel(), rowsDone = b.newLabel();
    b.bind(rowLoop);
    b.cmp(s0, s1);
    b.jcc(Cond::Ge, rowsDone);
    // t3 = rowPtr[i], s2 = rowPtr[i+1]
    b.shli(t0, s0, 3);
    b.addi(t0, t0, static_cast<std::int64_t>(addrs.rowPtr));
    b.ld(t3, t0, 0, 8);
    b.ld(s2, t0, 8, 8);
    perRowInit();
    auto elemLoop = b.newLabel(), elemDone = b.newLabel();
    b.bind(elemLoop);
    b.cmp(t3, s2);
    b.jcc(Cond::Ge, elemDone);
    perElem();
    b.addi(t3, t3, 1);
    b.jmp(elemLoop);
    b.bind(elemDone);
    perRowDone();
    b.addi(s0, s0, 1);
    b.jmp(rowLoop);
    b.bind(rowsDone);
    b.ret();
}

Workload
finishSparse(ProgramBuilder &b, DataLayout &layout, const char *name,
             VAddr yAddr, std::vector<std::int64_t> expected,
             std::uint64_t work)
{
    Workload w;
    w.app.name = name;
    w.app.program = b.finish(mem::kCodeBase);
    w.app.data = layout.take();
    w.validate = makeIntArrayValidator(yAddr, std::move(expected),
                                       std::string(name) + ".y");
    w.workEstimate = work;
    return w;
}

} // namespace

// ---------------------------------------------------------------------
// sparse_mvm: y = A * x (CSR), row-partitioned, gather only.
// ---------------------------------------------------------------------
Workload
buildSparseMvm(const WorkloadParams &p)
{
    // Problem shape: `param.rows` overrides the matrix order,
    // `param.nnz` the nonzeros per row (density) — the sparse-suite
    // analogs of the dense kernels' `param.dim`.
    const std::uint64_t n = p.extraU64("rows", 4096 * p.scale);
    const unsigned nnz =
        static_cast<unsigned>(p.extraU64("nnz", 12));
    Csr m = makeCsr(n, n, nnz, p.seed, false);
    auto x = randomInts(n, p.seed + 1);

    DataLayout layout;
    SparseLayout addrs = layoutCsr(layout, m, x);

    ProgramBuilder b;
    emitMainProlog(b, p.prefault
                          ? std::vector<std::pair<VAddr, std::uint64_t>>{
                                {addrs.vals, m.vals.size() * 8},
                                {addrs.colIdx, m.colIdx.size() * 8},
                                {addrs.x, n * 8},
                                {addrs.y, n * 8}}
                          : std::vector<std::pair<VAddr, std::uint64_t>>{});
    auto worker = b.newLabel();
    emitCreateAndJoin(b, p.workers, worker);
    emitMainEpilog(b);

    b.bind(worker);
    emitCsrRowLoop(
        b, addrs, n, p.workers,
        [&] { b.movi(s3, 0); }, // acc
        [&] {
            // t4 = vals[t3] * x[colIdx[t3]]
            b.shli(t0, t3, 3);
            b.addi(t1, t0, static_cast<std::int64_t>(addrs.colIdx));
            b.ld(t2, t1, 0, 8); // col
            b.addi(t1, t0, static_cast<std::int64_t>(addrs.vals));
            b.ld(t4, t1, 0, 8); // val
            b.shli(t2, t2, 3);
            b.addi(t2, t2, static_cast<std::int64_t>(addrs.x));
            b.ld(t2, t2, 0, 8);
            b.mul(t4, t4, t2);
            b.add(s3, s3, t4);
        },
        [&] {
            emitComputeBurst(b, 240000, t4);
            b.shli(t0, s0, 3);
            b.addi(t0, t0, static_cast<std::int64_t>(addrs.y));
            b.st(t0, 0, s3, 8);
        });

    std::vector<std::int64_t> expected(n, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
        for (auto e = m.rowPtr[i]; e < m.rowPtr[i + 1]; ++e)
            expected[i] += m.vals[e] * x[m.colIdx[e]];
    }
    return finishSparse(b, layout, "sparse_mvm", addrs.y,
                        std::move(expected), m.vals.size() * 16);
}

// ---------------------------------------------------------------------
// sparse_mvm_trans: y = A^T * x — every element scatters, so updates go
// through atomic FETCHADD.
// ---------------------------------------------------------------------
Workload
buildSparseMvmTrans(const WorkloadParams &p)
{
    const std::uint64_t n = 2048 * p.scale;
    Csr m = makeCsr(n, n, 12, p.seed, false);
    auto x = randomInts(n, p.seed + 1);

    DataLayout layout;
    SparseLayout addrs = layoutCsr(layout, m, x);

    ProgramBuilder b;
    emitMainProlog(b, p.prefault
                          ? std::vector<std::pair<VAddr, std::uint64_t>>{
                                {addrs.vals, m.vals.size() * 8},
                                {addrs.colIdx, m.colIdx.size() * 8},
                                {addrs.x, n * 8},
                                {addrs.y, n * 8}}
                          : std::vector<std::pair<VAddr, std::uint64_t>>{});
    auto worker = b.newLabel();
    emitCreateAndJoin(b, p.workers, worker);
    emitMainEpilog(b);

    b.bind(worker);
    emitCsrRowLoop(
        b, addrs, n, p.workers,
        [&] {
            // s3 = x[i]
            b.shli(t0, s0, 3);
            b.addi(t0, t0, static_cast<std::int64_t>(addrs.x));
            b.ld(s3, t0, 0, 8);
        },
        [&] {
            b.shli(t0, t3, 3);
            b.addi(t1, t0, static_cast<std::int64_t>(addrs.colIdx));
            b.ld(t2, t1, 0, 8); // col
            b.addi(t1, t0, static_cast<std::int64_t>(addrs.vals));
            b.ld(t4, t1, 0, 8); // val
            b.mul(t4, t4, s3);
            b.shli(t2, t2, 3);
            b.addi(t2, t2, static_cast<std::int64_t>(addrs.y));
            b.fetchadd(s4, t2, t4); // y[col] += val * x[i]
        },
        [&] { emitComputeBurst(b, 400000, t4); });

    std::vector<std::int64_t> expected(n, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
        for (auto e = m.rowPtr[i]; e < m.rowPtr[i + 1]; ++e)
            expected[m.colIdx[e]] += m.vals[e] * x[i];
    }
    return finishSparse(b, layout, "sparse_mvm_trans", addrs.y,
                        std::move(expected), m.vals.size() * 24);
}

// ---------------------------------------------------------------------
// sparse_mvm_sym: y = A * x with A symmetric, stored lower-triangular —
// gather along the row, atomic scatter along the column.
// ---------------------------------------------------------------------
Workload
buildSparseMvmSym(const WorkloadParams &p)
{
    const std::uint64_t n = 2048 * p.scale;
    Csr m = makeCsr(n, n, 10, p.seed, /*lowerTriangular=*/true);
    auto x = randomInts(n, p.seed + 1);

    DataLayout layout;
    SparseLayout addrs = layoutCsr(layout, m, x);

    ProgramBuilder b;
    emitMainProlog(b);
    auto worker = b.newLabel();
    emitCreateAndJoin(b, p.workers, worker);
    emitMainEpilog(b);

    b.bind(worker);
    emitCsrRowLoop(
        b, addrs, n, p.workers,
        [&] {
            b.movi(s3, 0); // row acc
            // s4 = x[i]
            b.shli(t0, s0, 3);
            b.addi(t0, t0, static_cast<std::int64_t>(addrs.x));
            b.ld(s4, t0, 0, 8);
        },
        [&] {
            b.shli(t0, t3, 3);
            b.addi(t1, t0, static_cast<std::int64_t>(addrs.colIdx));
            b.ld(t2, t1, 0, 8); // col j (j <= i)
            b.addi(t1, t0, static_cast<std::int64_t>(addrs.vals));
            b.ld(t4, t1, 0, 8); // val
            // acc += val * x[j]
            b.shli(t1, t2, 3);
            b.addi(t1, t1, static_cast<std::int64_t>(addrs.x));
            b.ld(t1, t1, 0, 8);
            b.mul(t1, t1, t4);
            b.add(s3, s3, t1);
            // if j != i: y[j] += val * x[i] atomically
            b.cmp(t2, s0);
            auto diag = b.newLabel();
            b.jcc(Cond::Eq, diag);
            b.mul(t4, t4, s4);
            b.shli(t2, t2, 3);
            b.addi(t2, t2, static_cast<std::int64_t>(addrs.y));
            b.fetchadd(t1, t2, t4);
            b.bind(diag);
        },
        [&] {
            emitComputeBurst(b, 400000, t4);
            // y[i] += acc atomically
            b.shli(t0, s0, 3);
            b.addi(t0, t0, static_cast<std::int64_t>(addrs.y));
            b.fetchadd(t1, t0, s3);
        });

    std::vector<std::int64_t> expected(n, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
        for (auto e = m.rowPtr[i]; e < m.rowPtr[i + 1]; ++e) {
            auto j = static_cast<std::uint64_t>(m.colIdx[e]);
            expected[i] += m.vals[e] * x[j];
            if (j != i)
                expected[j] += m.vals[e] * x[i];
        }
    }
    return finishSparse(b, layout, "sparse_mvm_sym", addrs.y,
                        std::move(expected), m.vals.size() * 28);
}

} // namespace misp::wl
