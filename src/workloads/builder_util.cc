#include "builder_util.hh"

#include "sim/logging.hh"

namespace misp::wl {

using isa::Cond;
using isa::ProgramBuilder;

const StubCalls &
StubCalls::get()
{
    static StubCalls calls = [] {
        isa::Program stubs = rt::buildStubLibrary(rt::Backend::Shred);
        StubCalls c;
        c.init = stubs.symbol("rt_init");
        c.create = stubs.symbol("shred_create");
        c.joinAll = stubs.symbol("join_all");
        c.self = stubs.symbol("shred_self");
        c.yield = stubs.symbol("yield");
        c.mutexLock = stubs.symbol("mutex_lock");
        c.mutexUnlock = stubs.symbol("mutex_unlock");
        c.barrierWait = stubs.symbol("barrier_wait");
        c.semWait = stubs.symbol("sem_wait");
        c.semPost = stubs.symbol("sem_post");
        c.condWait = stubs.symbol("cond_wait");
        c.condSignal = stubs.symbol("cond_signal");
        c.condBroadcast = stubs.symbol("cond_broadcast");
        c.eventWait = stubs.symbol("event_wait");
        c.eventSet = stubs.symbol("event_set");
        c.malloc = stubs.symbol("malloc");
        c.prefault = stubs.symbol("prefault");
        c.exitProcess = stubs.symbol("exit_process");
        c.logWrite = stubs.symbol("log_write");
        return c;
    }();
    return calls;
}

void
emitMainProlog(ProgramBuilder &b,
               const std::vector<std::pair<VAddr, std::uint64_t>>
                   &prefaultRanges)
{
    const StubCalls &stubs = StubCalls::get();
    b.exportHere("main");
    b.callAbs(stubs.init);
    for (const auto &[addr, len] : prefaultRanges) {
        b.movi(reg::a0, addr);
        b.movi(reg::a1, len);
        b.callAbs(stubs.prefault);
    }
}

void
emitCreateAndJoin(ProgramBuilder &b, unsigned workers,
                  ProgramBuilder::Label workerFn)
{
    using namespace reg;
    const StubCalls &stubs = StubCalls::get();
    b.movi(t0, 0);
    auto loop = b.newLabel();
    auto done = b.newLabel();
    b.bind(loop);
    b.cmpi(t0, workers);
    b.jcc(Cond::Ge, done);
    b.leaLabel(a0, workerFn);
    b.mov(a1, t0);
    b.callAbs(stubs.create);
    b.addi(t0, t0, 1);
    b.jmp(loop);
    b.bind(done);
    b.callAbs(stubs.joinAll);
}

void
emitMainEpilog(ProgramBuilder &b)
{
    const StubCalls &stubs = StubCalls::get();
    b.movi(reg::a0, 0);
    b.callAbs(stubs.exitProcess);
}

void
emitComputeBurst(ProgramBuilder &b, std::uint64_t totalCycles,
                 unsigned scratch)
{
    constexpr std::uint64_t kChunk = 2000;
    if (totalCycles <= kChunk) {
        if (totalCycles > 0)
            b.compute(totalCycles);
        return;
    }
    std::uint64_t iters = totalCycles / kChunk;
    std::uint64_t rem = totalCycles % kChunk;
    b.movi(scratch, iters);
    auto loop = b.newLabel();
    b.bind(loop);
    b.compute(kChunk);
    b.subi(scratch, scratch, 1);
    b.cmpi(scratch, 0);
    b.jcc(Cond::Gt, loop);
    if (rem > 0)
        b.compute(rem);
}

void
emitSerialFill(ProgramBuilder &b, VAddr base, std::uint64_t count,
               std::uint64_t stride, std::uint64_t mult, std::uint64_t add,
               std::uint64_t mask)
{
    using namespace reg;
    // t0 = i, t1 = addr cursor, t2 = value scratch
    b.movi(t0, 0);
    b.movi(t1, base);
    auto loop = b.newLabel();
    auto done = b.newLabel();
    b.bind(loop);
    b.cmpi(t0, static_cast<std::int64_t>(count));
    b.jcc(Cond::Ge, done);
    b.muli(t2, t0, static_cast<std::int64_t>(mult));
    b.addi(t2, t2, static_cast<std::int64_t>(add));
    b.andi(t2, t2, mask);
    b.st(t1, 0, t2, 8);
    b.addi(t1, t1, static_cast<std::int64_t>(stride));
    b.addi(t0, t0, 1);
    b.jmp(loop);
    b.bind(done);
}

std::vector<std::int64_t>
hostFill(std::uint64_t count, std::uint64_t mult, std::uint64_t add,
         std::uint64_t mask)
{
    std::vector<std::int64_t> out(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        out[i] = static_cast<std::int64_t>((i * mult + add) & mask);
    }
    return out;
}

void
emitChunkBounds(ProgramBuilder &b, std::uint64_t total, unsigned workers,
                unsigned regLo, unsigned regHi)
{
    std::uint64_t chunk = (total + workers - 1) / workers;
    // lo = min(idx*chunk, total); hi = min(lo+chunk, total)
    b.muli(regLo, reg::a0, static_cast<std::int64_t>(chunk));
    b.movi(reg::t5, total);
    b.cmp(regLo, reg::t5);
    auto loOk = b.newLabel();
    b.jcc(Cond::Le, loOk);
    b.mov(regLo, reg::t5);
    b.bind(loOk);
    b.addi(regHi, regLo, static_cast<std::int64_t>(chunk));
    b.cmp(regHi, reg::t5);
    auto hiOk = b.newLabel();
    b.jcc(Cond::Le, hiOk);
    b.mov(regHi, reg::t5);
    b.bind(hiOk);
}

std::function<bool(mem::AddressSpace &)>
makeIntArrayValidator(VAddr addr, std::vector<std::int64_t> expected,
                      std::string what)
{
    return [addr, expected = std::move(expected),
            what = std::move(what)](mem::AddressSpace &as) {
        for (std::size_t i = 0; i < expected.size(); ++i) {
            auto got = static_cast<std::int64_t>(
                as.peekWord(addr + i * 8, 8));
            if (got != expected[i]) {
                warn("%s: mismatch at [%zu]: got %lld, want %lld",
                     what.c_str(), i, (long long)got,
                     (long long)expected[i]);
                return false;
            }
        }
        return true;
    };
}

} // namespace misp::wl
