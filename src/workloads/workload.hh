/**
 * @file
 * Workload registry: the paper's evaluation suite (§5.2).
 *
 * RMS kernels (Recognition-Mining-Synthesis suite): ADAt, dense_mmm,
 * dense_mvm, dense_mvm_sym, gauss, kmeans, sparse_mvm, sparse_mvm_sym,
 * sparse_mvm_trans, svm_c, plus the RayTracer application. These are
 * fully reimplemented as multi-shredded guest programs doing real
 * (integer) computation; results are validated against host-side
 * reference implementations.
 *
 * SPEComp applications (swim, applu, galgel, equake, art): the sources
 * and Intel compilers are unavailable, so each is substituted by a
 * synthetic OpenMP-style loop-nest generator whose serializing-event
 * profile (serial-init pages, barrier cadence, syscall rates, AMS
 * syscall rate for art) is shaped after the paper's Table 1. See
 * DESIGN.md §2 for the substitution rationale.
 */

#ifndef MISP_WORKLOADS_WORKLOAD_HH
#define MISP_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "harness/loader.hh"
#include "mem/address_space.hh"

namespace misp::wl {

/** Knobs shared by every workload builder. */
struct WorkloadParams {
    unsigned workers = 7;       ///< shreds (or worker threads) created
    std::uint64_t scale = 1;    ///< problem-size multiplier
    bool prefault = false;      ///< §5.3 page-probe optimization
    std::uint64_t seed = 42;    ///< deterministic input generation

    /** Per-workload knobs, set via `param.<key> = <value>` in scenario
     *  specs (setWorkloadParam strips the prefix). Interpretation is up
     *  to the builder (e.g. the RayTracer's `rows` scene size);
     *  builders ignore keys they do not consume. */
    std::vector<std::pair<std::string, std::string>> extra;

    /** Value of per-workload knob @p key parsed as an integer, or
     *  @p fallback when the knob is absent or unparseable. */
    std::uint64_t extraU64(const std::string &key,
                           std::uint64_t fallback) const;
};

/** A built workload instance. */
struct Workload {
    harness::GuestApp app;
    /** Host-side result check (empty = none). Reads guest memory after
     *  the run; returns true when the computation was correct. */
    std::function<bool(mem::AddressSpace &)> validate;
    /** Rough useful-work estimate (guest compute cycles), for sanity
     *  checks of speedup figures. */
    std::uint64_t workEstimate = 0;
};

using WorkloadBuilder = std::function<Workload(const WorkloadParams &)>;

struct WorkloadInfo {
    std::string name;
    std::string suite; ///< "rms" or "specomp" or "util"
    WorkloadBuilder build;
};

/** All registered workloads, in the paper's Figure-4 order. */
const std::vector<WorkloadInfo> &allWorkloads();

/** Utility workloads (suite "util", e.g. the spinner): loadable through
 *  findWorkload()/selectWorkloads() but never part of allWorkloads(),
 *  so figure suites and sweeps over "all" are unchanged. */
const std::vector<WorkloadInfo> &utilWorkloads();

/** Lookup by name across the figure suite and the utility workloads;
 *  nullptr if unknown. */
const WorkloadInfo *findWorkload(const std::string &name);

/**
 * Expand a workload selector into registry entries:
 *  - "all"        -> every figure workload (allWorkloads order),
 *  - "suite:<s>"  -> the figure workloads whose suite is <s>,
 *  - otherwise    -> the single named workload.
 * Returns an empty vector (and sets @p err when non-null) if nothing
 * matches.
 */
std::vector<const WorkloadInfo *>
selectWorkloads(const std::string &selector, std::string *err = nullptr);

/**
 * Set one WorkloadParams field from its scenario-spec key/value form:
 * "workers", "scale", "prefault", "seed", or a per-workload knob
 * "param.<key>" (stored in WorkloadParams::extra). Returns false (and
 * sets @p err when non-null) on an unknown key or unparseable value.
 */
bool setWorkloadParam(WorkloadParams &params, const std::string &key,
                      const std::string &value, std::string *err = nullptr);

// Individual builders (also reachable through the registry).
Workload buildAdat(const WorkloadParams &p);
Workload buildDenseMmm(const WorkloadParams &p);
Workload buildDenseMvm(const WorkloadParams &p);
Workload buildDenseMvmSym(const WorkloadParams &p);
Workload buildGauss(const WorkloadParams &p);
Workload buildKmeans(const WorkloadParams &p);
Workload buildSparseMvm(const WorkloadParams &p);
Workload buildSparseMvmSym(const WorkloadParams &p);
Workload buildSparseMvmTrans(const WorkloadParams &p);
Workload buildSvmC(const WorkloadParams &p);
Workload buildRaytracer(const WorkloadParams &p);
Workload buildSwim(const WorkloadParams &p);
Workload buildApplu(const WorkloadParams &p);
Workload buildGalgel(const WorkloadParams &p);
Workload buildEquake(const WorkloadParams &p);
Workload buildArt(const WorkloadParams &p);

/** A single-threaded CPU-bound process (Figure 7's competing load). */
Workload buildSpinner(const WorkloadParams &p);

} // namespace misp::wl

#endif // MISP_WORKLOADS_WORKLOAD_HH
