/**
 * @file
 * RMS iterative kernels: gauss (red-black Gauss–Seidel PDE solver) and
 * kmeans (K-means clustering). Both initialize their working sets with
 * serial guest stores in main — which is exactly why the paper's Table 1
 * shows gauss/kmeans/svm_c with large *OMS* page-fault counts while the
 * other RMS kernels fault mostly on AMSs.
 */

#include <limits>

#include "workloads/builder_util.hh"
#include "workloads/workload.hh"

namespace misp::wl {

using isa::Cond;
using isa::ProgramBuilder;
using namespace reg;

// ---------------------------------------------------------------------
// gauss: red-black Gauss–Seidel sweeps over a 2D grid; two barriers per
// iteration separate the color phases.
// ---------------------------------------------------------------------
Workload
buildGauss(const WorkloadParams &p)
{
    const std::uint64_t g = 96 * p.scale; // grid is g x g
    const std::uint64_t iters = 6;
    const std::uint64_t fillMult = 31, fillAdd = 7;
    const std::uint64_t fillMask = 0xFFFF;
    const unsigned totalParticipants = p.workers; // workers only

    DataLayout layout;
    VAddr grid = layout.reserve(g * g * 8, "grid");
    VAddr barrier = layout.reserve(mem::kPageSize, "barrier");

    ProgramBuilder b;
    emitMainProlog(b);
    // Serial init on the OMS: the whole grid.
    emitSerialFill(b, grid, g * g, 8, fillMult, fillAdd, fillMask);
    auto worker = b.newLabel();
    emitCreateAndJoin(b, p.workers, worker);
    emitMainEpilog(b);

    // worker(idx): rows [lo,hi) within [1, g-1)
    b.bind(worker);
    // Interior rows: total = g - 2, shifted by 1.
    emitChunkBounds(b, g - 2, p.workers, s0, s1);
    b.addi(s0, s0, 1);
    b.addi(s1, s1, 1);
    b.movi(s2, 0); // iteration * 2 + color counter (0 .. 2*iters)
    auto phaseLoop = b.newLabel(), doneAll = b.newLabel();
    b.bind(phaseLoop);
    b.cmpi(s2, static_cast<std::int64_t>(2 * iters));
    b.jcc(Cond::Ge, doneAll);
    // color = s2 & 1  -> s3
    b.andi(s3, s2, 1);
    // row loop: t0 = i
    b.mov(t0, s0);
    auto rowLoop = b.newLabel(), rowsDone = b.newLabel();
    b.bind(rowLoop);
    b.cmp(t0, s1);
    b.jcc(Cond::Ge, rowsDone);
    // first j with (i + j) % 2 == color: j = 1 + ((i + 1 + color) & 1)
    b.add(t1, t0, s3);
    b.addi(t1, t1, 1);
    b.andi(t1, t1, 1);
    b.addi(t1, t1, 1); // j
    auto colLoop = b.newLabel(), colsDone = b.newLabel();
    b.bind(colLoop);
    b.cmpi(t1, static_cast<std::int64_t>(g - 1));
    b.jcc(Cond::Ge, colsDone);
    // t2 = &grid[i][j]
    b.muli(t2, t0, static_cast<std::int64_t>(g));
    b.add(t2, t2, t1);
    b.shli(t2, t2, 3);
    b.addi(t2, t2, static_cast<std::int64_t>(grid));
    // t3 = up + down + left + right
    b.ld(t3, t2, -static_cast<std::int64_t>(g * 8), 8);
    b.ld(t4, t2, static_cast<std::int64_t>(g * 8), 8);
    b.add(t3, t3, t4);
    b.ld(t4, t2, -8, 8);
    b.add(t3, t3, t4);
    b.ld(t4, t2, 8, 8);
    b.add(t3, t3, t4);
    b.shri(t3, t3, 2); // / 4
    b.st(t2, 0, t3, 8);
    emitComputeBurst(b, 14400, t4);
    b.addi(t1, t1, 2);
    b.jmp(colLoop);
    b.bind(colsDone);
    b.addi(t0, t0, 1);
    b.jmp(rowLoop);
    b.bind(rowsDone);
    // Barrier between phases.
    b.movi(a0, barrier);
    b.movi(a1, totalParticipants);
    b.callAbs(StubCalls::get().barrierWait);
    b.addi(s2, s2, 1);
    b.jmp(phaseLoop);
    b.bind(doneAll);
    b.ret();

    // Host reference: replicate exactly, including the chunked sweep
    // order (within a color, updates do not interact across rows of the
    // same color because neighbours are the other color).
    auto grid0 = hostFill(g * g, fillMult, fillAdd, fillMask);
    std::vector<std::int64_t> h = grid0;
    for (std::uint64_t it = 0; it < iters; ++it) {
        for (unsigned color = 0; color < 2; ++color) {
            for (std::uint64_t i = 1; i + 1 < g; ++i) {
                for (std::uint64_t j = 1 + ((i + 1 + color) & 1);
                     j + 1 < g; j += 2) {
                    std::int64_t sum = h[(i - 1) * g + j] +
                                       h[(i + 1) * g + j] +
                                       h[i * g + j - 1] +
                                       h[i * g + j + 1];
                    h[i * g + j] = sum >> 2;
                }
            }
        }
    }

    Workload w;
    w.app.name = "gauss";
    w.app.program = b.finish(mem::kCodeBase);
    w.app.data = layout.take();
    w.validate =
        makeIntArrayValidator(grid, std::move(h), "gauss.grid");
    w.workEstimate = iters * g * g * 20;
    return w;
}

// ---------------------------------------------------------------------
// kmeans: assignment + mutex-protected global accumulation + barriered
// centroid recomputation, for a fixed number of iterations.
// ---------------------------------------------------------------------
Workload
buildKmeans(const WorkloadParams &p)
{
    const std::uint64_t points = 2048 * p.scale;
    const std::uint64_t dim = 4;
    const std::uint64_t clusters = 8;
    const std::uint64_t iters = 4;
    const std::uint64_t fillMult = 40503, fillAdd = 3;
    const std::uint64_t fillMask = 0xFFFF;
    const std::uint64_t accWords = clusters * (dim + 1);

    DataLayout layout;
    VAddr pts = layout.reserve(points * dim * 8, "points");
    VAddr centroids = layout.reserve(clusters * dim * 8, "centroids");
    VAddr globalAcc = layout.reserve(accWords * 8, "globalAcc");
    VAddr localAcc =
        layout.reserve(p.workers * accWords * 8, "localAcc");
    VAddr mutex = layout.reserve(mem::kPageSize, "mutex");
    VAddr barrier = layout.reserve(mem::kPageSize, "barrier");

    const unsigned participants = p.workers;
    const StubCalls &stubs = StubCalls::get();

    ProgramBuilder b;
    emitMainProlog(b);
    // Serial init on the OMS: points; centroids seeded with the same
    // generator, so centroid k starts equal to point k.
    emitSerialFill(b, pts, points * dim, 8, fillMult, fillAdd, fillMask);
    emitSerialFill(b, centroids, clusters * dim, 8, fillMult, fillAdd,
                   fillMask);
    auto worker = b.newLabel();
    emitCreateAndJoin(b, p.workers, worker);
    emitMainEpilog(b);

    auto emitBarrier = [&] {
        b.movi(a0, barrier);
        b.movi(a1, participants);
        b.callAbs(stubs.barrierWait);
    };

    // worker(idx):
    //   s4 = idx, s2 = iteration, s3 = &localAcc[idx], s0/s1 = pt chunk
    b.bind(worker);
    b.mov(s4, a0);
    b.muli(s3, s4, static_cast<std::int64_t>(accWords * 8));
    b.addi(s3, s3, static_cast<std::int64_t>(localAcc));
    b.movi(s2, 0);
    auto iterLoop = b.newLabel(), doneAll = b.newLabel();
    b.bind(iterLoop);
    b.cmpi(s2, static_cast<std::int64_t>(iters));
    b.jcc(Cond::Ge, doneAll);

    // --- phase A: worker 0 zeroes the global accumulators -------------
    emitBarrier();
    {
        b.cmpi(s4, 0);
        auto skipZero = b.newLabel();
        b.jcc(Cond::Ne, skipZero);
        b.movi(t0, 0);
        auto zLoop = b.newLabel(), zDone = b.newLabel();
        b.bind(zLoop);
        b.cmpi(t0, static_cast<std::int64_t>(accWords));
        b.jcc(Cond::Ge, zDone);
        b.shli(t1, t0, 3);
        b.addi(t1, t1, static_cast<std::int64_t>(globalAcc));
        b.movi(t2, 0);
        b.st(t1, 0, t2, 8);
        b.addi(t0, t0, 1);
        b.jmp(zLoop);
        b.bind(zDone);
        b.bind(skipZero);
    }
    emitBarrier();

    // --- phase B: zero local acc, assign points, accumulate locally ---
    {
        b.movi(t0, 0);
        auto zLoop = b.newLabel(), zDone = b.newLabel();
        b.bind(zLoop);
        b.cmpi(t0, static_cast<std::int64_t>(accWords));
        b.jcc(Cond::Ge, zDone);
        b.shli(t1, t0, 3);
        b.add(t1, t1, s3);
        b.movi(t2, 0);
        b.st(t1, 0, t2, 8);
        b.addi(t0, t0, 1);
        b.jmp(zLoop);
        b.bind(zDone);
    }
    // Recompute the point chunk (a0 was clobbered by stub calls).
    b.mov(a0, s4);
    emitChunkBounds(b, points, p.workers, s0, s1);
    auto ptLoop = b.newLabel(), ptsDone = b.newLabel();
    b.bind(ptLoop);
    b.cmp(s0, s1);
    b.jcc(Cond::Ge, ptsDone);
    // a3 = &points[pt][0]
    b.muli(a3, s0, static_cast<std::int64_t>(dim * 8));
    b.addi(a3, a3, static_cast<std::int64_t>(pts));
    b.movi(a1, 0);            // best cluster
    b.movi(a2, ~0ull >> 1);   // best distance = INT64_MAX
    b.movi(t0, 0);            // k
    auto kLoop = b.newLabel(), kDone = b.newLabel();
    b.bind(kLoop);
    b.cmpi(t0, static_cast<std::int64_t>(clusters));
    b.jcc(Cond::Ge, kDone);
    b.movi(t1, 0); // d
    b.movi(t2, 0); // dist
    auto dLoop = b.newLabel(), dDone = b.newLabel();
    b.bind(dLoop);
    b.cmpi(t1, static_cast<std::int64_t>(dim));
    b.jcc(Cond::Ge, dDone);
    b.shli(t3, t1, 3);
    b.add(t3, t3, a3);
    b.ld(t3, t3, 0, 8); // p[d]
    b.muli(t4, t0, static_cast<std::int64_t>(dim));
    b.add(t4, t4, t1);
    b.shli(t4, t4, 3);
    b.addi(t4, t4, static_cast<std::int64_t>(centroids));
    b.ld(t4, t4, 0, 8); // c[k][d]
    b.sub(t3, t3, t4);
    b.mul(t3, t3, t3);
    b.add(t2, t2, t3);
    b.addi(t1, t1, 1);
    b.jmp(dLoop);
    b.bind(dDone);
    emitComputeBurst(b, 12000, t4);
    b.cmp(t2, a2);
    auto notBetter = b.newLabel();
    b.jcc(Cond::Ge, notBetter);
    b.mov(a2, t2);
    b.mov(a1, t0);
    b.bind(notBetter);
    b.addi(t0, t0, 1);
    b.jmp(kLoop);
    b.bind(kDone);
    // local[best*(dim+1) + d] += p[d]; local[best*(dim+1)+dim] += 1
    b.muli(t0, a1, static_cast<std::int64_t>((dim + 1) * 8));
    b.add(t0, t0, s3); // &local[best][0]
    b.movi(t1, 0);
    auto accLoop = b.newLabel(), accDone = b.newLabel();
    b.bind(accLoop);
    b.cmpi(t1, static_cast<std::int64_t>(dim));
    b.jcc(Cond::Ge, accDone);
    b.shli(t2, t1, 3);
    b.add(t2, t2, a3);
    b.ld(t3, t2, 0, 8); // p[d]
    b.shli(t2, t1, 3);
    b.add(t2, t2, t0);
    b.ld(t4, t2, 0, 8);
    b.add(t4, t4, t3);
    b.st(t2, 0, t4, 8);
    b.addi(t1, t1, 1);
    b.jmp(accLoop);
    b.bind(accDone);
    b.ld(t4, t0, static_cast<std::int64_t>(dim * 8), 8);
    b.addi(t4, t4, 1);
    b.st(t0, static_cast<std::int64_t>(dim * 8), t4, 8);
    b.addi(s0, s0, 1);
    b.jmp(ptLoop);
    b.bind(ptsDone);

    // --- phase C: mutex-protected merge into the global accumulators --
    b.movi(a0, mutex);
    b.callAbs(stubs.mutexLock);
    {
        b.movi(t0, 0);
        auto mLoop = b.newLabel(), mDone = b.newLabel();
        b.bind(mLoop);
        b.cmpi(t0, static_cast<std::int64_t>(accWords));
        b.jcc(Cond::Ge, mDone);
        b.shli(t1, t0, 3);
        b.add(t2, t1, s3);
        b.ld(t3, t2, 0, 8); // local value
        b.addi(t2, t1, static_cast<std::int64_t>(globalAcc));
        b.ld(t4, t2, 0, 8);
        b.add(t4, t4, t3);
        b.st(t2, 0, t4, 8);
        b.addi(t0, t0, 1);
        b.jmp(mLoop);
        b.bind(mDone);
    }
    b.movi(a0, mutex);
    b.callAbs(stubs.mutexUnlock);
    emitBarrier();

    // --- phase D: worker 0 recomputes centroids ------------------------
    {
        b.cmpi(s4, 0);
        auto skip = b.newLabel();
        b.jcc(Cond::Ne, skip);
        b.movi(t0, 0); // k
        auto cLoop = b.newLabel(), cDone = b.newLabel();
        b.bind(cLoop);
        b.cmpi(t0, static_cast<std::int64_t>(clusters));
        b.jcc(Cond::Ge, cDone);
        // t3 = count
        b.muli(t1, t0, static_cast<std::int64_t>((dim + 1) * 8));
        b.addi(t1, t1, static_cast<std::int64_t>(globalAcc));
        b.ld(t3, t1, static_cast<std::int64_t>(dim * 8), 8);
        b.cmpi(t3, 0);
        auto skipK = b.newLabel();
        b.jcc(Cond::Eq, skipK);
        b.movi(t2, 0); // d
        auto dLoop2 = b.newLabel(), dDone2 = b.newLabel();
        b.bind(dLoop2);
        b.cmpi(t2, static_cast<std::int64_t>(dim));
        b.jcc(Cond::Ge, dDone2);
        b.shli(t4, t2, 3);
        b.add(t4, t4, t1);
        b.ld(t4, t4, 0, 8); // sum
        b.div(t4, t4, t3);  // / count
        // store into centroids[k][d]
        b.muli(a3, t0, static_cast<std::int64_t>(dim));
        b.add(a3, a3, t2);
        b.shli(a3, a3, 3);
        b.addi(a3, a3, static_cast<std::int64_t>(centroids));
        b.st(a3, 0, t4, 8);
        b.addi(t2, t2, 1);
        b.jmp(dLoop2);
        b.bind(dDone2);
        b.bind(skipK);
        b.addi(t0, t0, 1);
        b.jmp(cLoop);
        b.bind(cDone);
        b.bind(skip);
    }
    emitBarrier();

    b.addi(s2, s2, 1);
    b.jmp(iterLoop);
    b.bind(doneAll);
    b.ret();

    // ---- host reference ------------------------------------------------
    auto ptHost = hostFill(points * dim, fillMult, fillAdd, fillMask);
    auto cHost = hostFill(clusters * dim, fillMult, fillAdd, fillMask);
    for (std::uint64_t it = 0; it < iters; ++it) {
        std::vector<std::int64_t> acc(accWords, 0);
        for (std::uint64_t pt = 0; pt < points; ++pt) {
            std::int64_t best = 0;
            std::int64_t bestDist =
                std::numeric_limits<std::int64_t>::max();
            for (std::uint64_t k = 0; k < clusters; ++k) {
                std::int64_t dist = 0;
                for (std::uint64_t d = 0; d < dim; ++d) {
                    std::int64_t diff = ptHost[pt * dim + d] -
                                        cHost[k * dim + d];
                    dist += diff * diff;
                }
                if (dist < bestDist) {
                    bestDist = dist;
                    best = static_cast<std::int64_t>(k);
                }
            }
            for (std::uint64_t d = 0; d < dim; ++d)
                acc[best * (dim + 1) + d] += ptHost[pt * dim + d];
            acc[best * (dim + 1) + dim] += 1;
        }
        for (std::uint64_t k = 0; k < clusters; ++k) {
            std::int64_t count = acc[k * (dim + 1) + dim];
            if (count == 0)
                continue;
            for (std::uint64_t d = 0; d < dim; ++d)
                cHost[k * dim + d] = acc[k * (dim + 1) + d] / count;
        }
    }

    Workload w;
    w.app.name = "kmeans";
    w.app.program = b.finish(mem::kCodeBase);
    w.app.data = layout.take();
    w.validate = makeIntArrayValidator(centroids, std::move(cHost),
                                       "kmeans.centroids");
    w.workEstimate = iters * points * clusters * (dim * 10 + 30);
    return w;
}

} // namespace misp::wl
