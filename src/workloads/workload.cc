#include "workload.hh"

#include "sim/logging.hh"
#include "sim/parse.hh"

namespace misp::wl {

std::uint64_t
WorkloadParams::extraU64(const std::string &key,
                         std::uint64_t fallback) const
{
    for (const auto &[k, v] : extra) {
        if (k != key)
            continue;
        std::uint64_t out = 0;
        // Fail closed: a knob that is present but unparseable must not
        // silently run the default (the grid point's coords would
        // claim otherwise). setWorkloadParam cannot type-check param.*
        // values (their meaning is per-builder), so the consumer does.
        if (!parse::u64(v, &out))
            fatal("workload param '%s': expected an integer, got '%s'",
                  key.c_str(), v.c_str());
        return out;
    }
    return fallback;
}

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> kAll = {
        {"ADAt", "rms", buildAdat},
        {"dense_mmm", "rms", buildDenseMmm},
        {"dense_mvm", "rms", buildDenseMvm},
        {"dense_mvm_sym", "rms", buildDenseMvmSym},
        {"gauss", "rms", buildGauss},
        {"kmeans", "rms", buildKmeans},
        {"sparse_mvm", "rms", buildSparseMvm},
        {"sparse_mvm_sym", "rms", buildSparseMvmSym},
        {"sparse_mvm_trans", "rms", buildSparseMvmTrans},
        {"svm_c", "rms", buildSvmC},
        {"Raytracer", "rms", buildRaytracer},
        {"swim", "specomp", buildSwim},
        {"applu", "specomp", buildApplu},
        {"galgel", "specomp", buildGalgel},
        {"equake", "specomp", buildEquake},
        {"art", "specomp", buildArt},
    };
    return kAll;
}

const std::vector<WorkloadInfo> &
utilWorkloads()
{
    static const std::vector<WorkloadInfo> kUtil = {
        {"spinner", "util", buildSpinner},
    };
    return kUtil;
}

const WorkloadInfo *
findWorkload(const std::string &name)
{
    for (const WorkloadInfo &info : allWorkloads()) {
        if (info.name == name)
            return &info;
    }
    for (const WorkloadInfo &info : utilWorkloads()) {
        if (info.name == name)
            return &info;
    }
    return nullptr;
}

std::vector<const WorkloadInfo *>
selectWorkloads(const std::string &selector, std::string *err)
{
    std::vector<const WorkloadInfo *> out;
    if (selector == "all") {
        for (const WorkloadInfo &info : allWorkloads())
            out.push_back(&info);
        return out;
    }
    if (selector.rfind("suite:", 0) == 0) {
        const std::string suite = selector.substr(6);
        for (const WorkloadInfo &info : allWorkloads()) {
            if (info.suite == suite)
                out.push_back(&info);
        }
        if (out.empty() && err)
            *err = "unknown workload suite '" + suite + "'";
        return out;
    }
    if (const WorkloadInfo *info = findWorkload(selector)) {
        out.push_back(info);
        return out;
    }
    if (err)
        *err = "unknown workload '" + selector + "'";
    return out;
}

bool
setWorkloadParam(WorkloadParams &params, const std::string &key,
                 const std::string &value, std::string *err)
{
    std::uint64_t u = 0;
    bool b = false;
    if (key == "workers") {
        unsigned w = 0;
        if (!parse::u32(value, &w)) {
            if (err)
                *err = "workers: expected an integer, got '" + value + "'";
            return false;
        }
        params.workers = w;
        return true;
    }
    if (key == "scale") {
        if (!parse::u64(value, &u)) {
            if (err)
                *err = "scale: expected an integer, got '" + value + "'";
            return false;
        }
        params.scale = u;
        return true;
    }
    if (key == "seed") {
        if (!parse::u64(value, &u)) {
            if (err)
                *err = "seed: expected an integer, got '" + value + "'";
            return false;
        }
        params.seed = u;
        return true;
    }
    if (key == "prefault") {
        if (!parse::boolean(value, &b)) {
            if (err)
                *err = "prefault: expected a boolean, got '" + value + "'";
            return false;
        }
        params.prefault = b;
        return true;
    }
    if (key.rfind("param.", 0) == 0) {
        const std::string knob = key.substr(6);
        if (knob.empty()) {
            if (err)
                *err = "param.: missing a knob name";
            return false;
        }
        for (auto &[k, v] : params.extra) {
            if (k == knob) {
                v = value;
                return true;
            }
        }
        params.extra.emplace_back(knob, value);
        return true;
    }
    if (err)
        *err = "unknown workload parameter '" + key + "'";
    return false;
}

} // namespace misp::wl
