#include "workload.hh"

namespace misp::wl {

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> kAll = {
        {"ADAt", "rms", buildAdat},
        {"dense_mmm", "rms", buildDenseMmm},
        {"dense_mvm", "rms", buildDenseMvm},
        {"dense_mvm_sym", "rms", buildDenseMvmSym},
        {"gauss", "rms", buildGauss},
        {"kmeans", "rms", buildKmeans},
        {"sparse_mvm", "rms", buildSparseMvm},
        {"sparse_mvm_sym", "rms", buildSparseMvmSym},
        {"sparse_mvm_trans", "rms", buildSparseMvmTrans},
        {"svm_c", "rms", buildSvmC},
        {"Raytracer", "rms", buildRaytracer},
        {"swim", "specomp", buildSwim},
        {"applu", "specomp", buildApplu},
        {"galgel", "specomp", buildGalgel},
        {"equake", "specomp", buildEquake},
        {"art", "specomp", buildArt},
    };
    return kAll;
}

const WorkloadInfo *
findWorkload(const std::string &name)
{
    for (const WorkloadInfo &info : allWorkloads()) {
        if (info.name == name)
            return &info;
    }
    return nullptr;
}

} // namespace misp::wl
