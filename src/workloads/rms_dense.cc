/**
 * @file
 * RMS dense linear-algebra kernels: dense_mvm, dense_mmm, dense_mvm_sym,
 * ADAt and svm_c (§5.2). Real integer computation on guest memory,
 * validated against host references; FP density of the originals is
 * modeled with COMPUTE bursts in the inner loops.
 */

#include "workloads/builder_util.hh"
#include "workloads/workload.hh"

namespace misp::wl {

using isa::Cond;
using isa::ProgramBuilder;
using namespace reg;

namespace {

constexpr std::uint64_t kValMask = 0xFFFF;

std::vector<std::int64_t>
randomInts(std::uint64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int64_t> v(n);
    for (auto &x : v)
        x = static_cast<std::int64_t>(rng.next() & kValMask);
    return v;
}

/** Emit: rd = mem64[base + idxReg*8] (clobbers scratch). */
void
emitLoadIndexed(ProgramBuilder &b, unsigned rd, VAddr base,
                unsigned idxReg, unsigned scratch)
{
    b.shli(scratch, idxReg, 3);
    b.addi(scratch, scratch, static_cast<std::int64_t>(base));
    b.ld(rd, scratch, 0, 8);
}

/** Emit: mem64[base + idxReg*8] = rs (clobbers scratch). */
void
emitStoreIndexed(ProgramBuilder &b, VAddr base, unsigned idxReg,
                 unsigned rs, unsigned scratch)
{
    b.shli(scratch, idxReg, 3);
    b.addi(scratch, scratch, static_cast<std::int64_t>(base));
    b.st(scratch, 0, rs, 8);
}

} // namespace

// ---------------------------------------------------------------------
// dense_mvm: y = A * x, rows statically chunked across shreds.
// ---------------------------------------------------------------------
Workload
buildDenseMvm(const WorkloadParams &p)
{
    // Problem shape: `param.rows` overrides the row count, `param.dim`
    // the inner (dot-product) dimension — the knobs the scenario specs
    // sweep to scale the dense kernels' memory footprint.
    const std::uint64_t n = p.extraU64("rows", 512 * p.scale);
    const std::uint64_t m = p.extraU64("dim", 128);
    // Modeled FP work per row, calibrated so the compute-to-page-fault
    // ratio matches the paper's scale (see DESIGN.md).
    const std::uint64_t rowFlops = m * 9600;

    auto aVals = randomInts(n * m, p.seed);
    auto xVals = randomInts(m, p.seed + 1);

    DataLayout layout;
    VAddr aAddr = layout.reserveInts(aVals, "A");
    VAddr xAddr = layout.reserveInts(xVals, "x");
    VAddr yAddr = layout.reserve(n * 8, "y");

    ProgramBuilder b;
    emitMainProlog(b, p.prefault
                          ? std::vector<std::pair<VAddr, std::uint64_t>>{
                                {aAddr, n * m * 8}, {xAddr, m * 8},
                                {yAddr, n * 8}}
                          : std::vector<std::pair<VAddr, std::uint64_t>>{});
    auto worker = b.newLabel();
    emitCreateAndJoin(b, p.workers, worker);
    emitMainEpilog(b);

    // worker(idx): rows [lo,hi)
    b.bind(worker);
    emitChunkBounds(b, n, p.workers, s0, s1); // s0=i, s1=hi
    auto rowLoop = b.newLabel();
    auto done = b.newLabel();
    b.bind(rowLoop);
    b.cmp(s0, s1);
    b.jcc(Cond::Ge, done);
    // t3 = &A[i][0]
    b.muli(t3, s0, static_cast<std::int64_t>(m * 8));
    b.addi(t3, t3, static_cast<std::int64_t>(aAddr));
    b.movi(t1, 0); // j
    b.movi(t2, 0); // acc
    auto inner = b.newLabel();
    auto innerDone = b.newLabel();
    b.bind(inner);
    b.cmpi(t1, static_cast<std::int64_t>(m));
    b.jcc(Cond::Ge, innerDone);
    b.shli(t0, t1, 3);
    b.add(t0, t0, t3);
    b.ld(t4, t0, 0, 8); // A[i][j]
    emitLoadIndexed(b, s2, xAddr, t1, s3); // x[j]
    b.mul(t4, t4, s2);
    b.add(t2, t2, t4);
    b.addi(t1, t1, 1);
    b.jmp(inner);
    b.bind(innerDone);
    emitComputeBurst(b, rowFlops, t1);
    emitStoreIndexed(b, yAddr, s0, t2, s3);
    b.addi(s0, s0, 1);
    b.jmp(rowLoop);
    b.bind(done);
    b.ret();

    // Host reference.
    std::vector<std::int64_t> expected(n, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
        std::int64_t acc = 0;
        for (std::uint64_t j = 0; j < m; ++j)
            acc += aVals[i * m + j] * xVals[j];
        expected[i] = acc;
    }

    Workload w;
    w.app.name = "dense_mvm";
    w.app.program = b.finish(mem::kCodeBase);
    w.app.data = layout.take();
    w.validate = makeIntArrayValidator(yAddr, std::move(expected),
                                       "dense_mvm.y");
    w.workEstimate = n * (m * 10 + rowFlops);
    return w;
}

// ---------------------------------------------------------------------
// dense_mmm: C = A * B, rows of C chunked across shreds.
// ---------------------------------------------------------------------
Workload
buildDenseMmm(const WorkloadParams &p)
{
    const std::uint64_t n = 48 * p.scale; // C is n x n, A n x k, B k x n
    const std::uint64_t k = 48;
    const std::uint64_t dotFlops = k * 9600;

    auto aVals = randomInts(n * k, p.seed);
    auto bVals = randomInts(k * n, p.seed + 1);

    DataLayout layout;
    VAddr aAddr = layout.reserveInts(aVals, "A");
    VAddr bAddr = layout.reserveInts(bVals, "B");
    VAddr cAddr = layout.reserve(n * n * 8, "C");

    ProgramBuilder b;
    emitMainProlog(b);
    auto worker = b.newLabel();
    emitCreateAndJoin(b, p.workers, worker);
    emitMainEpilog(b);

    b.bind(worker);
    emitChunkBounds(b, n, p.workers, s0, s1); // i in [s0, s1)
    auto iLoop = b.newLabel(), iDone = b.newLabel();
    b.bind(iLoop);
    b.cmp(s0, s1);
    b.jcc(Cond::Ge, iDone);
    b.movi(s2, 0); // j
    auto jLoop = b.newLabel(), jDone = b.newLabel();
    b.bind(jLoop);
    b.cmpi(s2, static_cast<std::int64_t>(n));
    b.jcc(Cond::Ge, jDone);
    b.movi(t1, 0); // l
    b.movi(t2, 0); // acc
    auto lLoop = b.newLabel(), lDone = b.newLabel();
    b.bind(lLoop);
    b.cmpi(t1, static_cast<std::int64_t>(k));
    b.jcc(Cond::Ge, lDone);
    // A[i][l]
    b.muli(t0, s0, static_cast<std::int64_t>(k));
    b.add(t0, t0, t1);
    b.shli(t0, t0, 3);
    b.addi(t0, t0, static_cast<std::int64_t>(aAddr));
    b.ld(t3, t0, 0, 8);
    // B[l][j]
    b.muli(t0, t1, static_cast<std::int64_t>(n));
    b.add(t0, t0, s2);
    b.shli(t0, t0, 3);
    b.addi(t0, t0, static_cast<std::int64_t>(bAddr));
    b.ld(t4, t0, 0, 8);
    b.mul(t3, t3, t4);
    b.add(t2, t2, t3);
    b.addi(t1, t1, 1);
    b.jmp(lLoop);
    b.bind(lDone);
    emitComputeBurst(b, dotFlops, t1);
    // C[i][j] = acc
    b.muli(t0, s0, static_cast<std::int64_t>(n));
    b.add(t0, t0, s2);
    b.shli(t0, t0, 3);
    b.addi(t0, t0, static_cast<std::int64_t>(cAddr));
    b.st(t0, 0, t2, 8);
    b.addi(s2, s2, 1);
    b.jmp(jLoop);
    b.bind(jDone);
    b.addi(s0, s0, 1);
    b.jmp(iLoop);
    b.bind(iDone);
    b.ret();

    std::vector<std::int64_t> expected(n * n, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t j = 0; j < n; ++j) {
            std::int64_t acc = 0;
            for (std::uint64_t l = 0; l < k; ++l)
                acc += aVals[i * k + l] * bVals[l * n + j];
            expected[i * n + j] = acc;
        }
    }

    Workload w;
    w.app.name = "dense_mmm";
    w.app.program = b.finish(mem::kCodeBase);
    w.app.data = layout.take();
    w.validate = makeIntArrayValidator(cAddr, std::move(expected),
                                       "dense_mmm.C");
    w.workEstimate = n * n * (k * 12 + dotFlops);
    return w;
}

// ---------------------------------------------------------------------
// dense_mvm_sym: y = A * x with A symmetric, stored as the packed upper
// triangle; off-diagonal contributions scatter into y with atomic
// FETCHADD (the locking the symmetric variants need).
// ---------------------------------------------------------------------
Workload
buildDenseMvmSym(const WorkloadParams &p)
{
    const std::uint64_t n = 256 * p.scale;
    // Packed upper triangle: element (i,j), j>=i, at off(i) + (j-i),
    // off(i) = i*n - i*(i-1)/2.
    const std::uint64_t packed = n * (n + 1) / 2;

    auto aVals = randomInts(packed, p.seed);
    auto xVals = randomInts(n, p.seed + 1);

    DataLayout layout;
    VAddr aAddr = layout.reserveInts(aVals, "Apacked");
    VAddr xAddr = layout.reserveInts(xVals, "x");
    VAddr yAddr = layout.reserve(n * 8, "y");
    // Host-side offset table avoids guest-side triangular arithmetic.
    std::vector<std::int64_t> offs(n);
    for (std::uint64_t i = 0; i < n; ++i)
        offs[i] = static_cast<std::int64_t>(i * n - i * (i - 1) / 2);
    VAddr offAddr = layout.reserveInts(offs, "rowOffsets");

    ProgramBuilder b;
    emitMainProlog(b);
    auto worker = b.newLabel();
    emitCreateAndJoin(b, p.workers, worker);
    emitMainEpilog(b);

    b.bind(worker);
    emitChunkBounds(b, n, p.workers, s0, s1);
    auto iLoop = b.newLabel(), iDone = b.newLabel();
    b.bind(iLoop);
    b.cmp(s0, s1);
    b.jcc(Cond::Ge, iDone);
    // t3 = &A[off(i)]
    emitLoadIndexed(b, t3, offAddr, s0, t0);
    b.shli(t3, t3, 3);
    b.addi(t3, t3, static_cast<std::int64_t>(aAddr));
    emitLoadIndexed(b, s4, xAddr, s0, t0); // s4 = x[i]
    b.mov(s2, s0);  // j = i
    b.movi(t2, 0);  // acc for y[i]
    auto jLoop = b.newLabel(), jDone = b.newLabel();
    b.bind(jLoop);
    b.cmpi(s2, static_cast<std::int64_t>(n));
    b.jcc(Cond::Ge, jDone);
    b.ld(t4, t3, 0, 8); // av = *cursor
    emitLoadIndexed(b, t0, xAddr, s2, t1);
    b.mul(t0, t0, t4);
    b.add(t2, t2, t0); // acc += av * x[j]
    // if j > i: y[j] += av * x[i], atomically
    b.cmp(s2, s0);
    auto noScatter = b.newLabel();
    b.jcc(Cond::Le, noScatter);
    b.mul(t0, t4, s4);       // av * x[i]
    b.shli(t1, s2, 3);
    b.addi(t1, t1, static_cast<std::int64_t>(yAddr));
    b.fetchadd(s3, t1, t0);  // y[j] += ...
    b.bind(noScatter);
    b.addi(t3, t3, 8);
    b.addi(s2, s2, 1);
    b.jmp(jLoop);
    b.bind(jDone);
    emitComputeBurst(b, n * 12000, t1);
    // y[i] += acc, atomically (other rows scatter into it too).
    b.shli(t1, s0, 3);
    b.addi(t1, t1, static_cast<std::int64_t>(yAddr));
    b.fetchadd(s3, t1, t2);
    b.addi(s0, s0, 1);
    b.jmp(iLoop);
    b.bind(iDone);
    b.ret();

    std::vector<std::int64_t> expected(n, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t j = i; j < n; ++j) {
            std::int64_t av =
                aVals[i * n - i * (i - 1) / 2 + (j - i)];
            expected[i] += av * xVals[j];
            if (j > i)
                expected[j] += av * xVals[i];
        }
    }

    Workload w;
    w.app.name = "dense_mvm_sym";
    w.app.program = b.finish(mem::kCodeBase);
    w.app.data = layout.take();
    w.validate = makeIntArrayValidator(yAddr, std::move(expected),
                                       "dense_mvm_sym.y");
    w.workEstimate = packed * 24;
    return w;
}

// ---------------------------------------------------------------------
// ADAt: B = A * D * A^T with diagonal D — the covariance-style kernel.
// ---------------------------------------------------------------------
Workload
buildAdat(const WorkloadParams &p)
{
    const std::uint64_t n = 40 * p.scale; // B is n x n
    const std::uint64_t k = 64;           // A is n x k, D is k

    auto aVals = randomInts(n * k, p.seed);
    auto dVals = randomInts(k, p.seed + 1);

    DataLayout layout;
    VAddr aAddr = layout.reserveInts(aVals, "A");
    VAddr dAddr = layout.reserveInts(dVals, "D");
    VAddr bAddr = layout.reserve(n * n * 8, "B");

    ProgramBuilder b;
    emitMainProlog(b);
    auto worker = b.newLabel();
    emitCreateAndJoin(b, p.workers, worker);
    emitMainEpilog(b);

    b.bind(worker);
    emitChunkBounds(b, n, p.workers, s0, s1);
    auto iLoop = b.newLabel(), iDone = b.newLabel();
    b.bind(iLoop);
    b.cmp(s0, s1);
    b.jcc(Cond::Ge, iDone);
    b.movi(s2, 0); // j
    auto jLoop = b.newLabel(), jDone = b.newLabel();
    b.bind(jLoop);
    b.cmpi(s2, static_cast<std::int64_t>(n));
    b.jcc(Cond::Ge, jDone);
    b.movi(t1, 0); // l
    b.movi(t2, 0); // acc
    auto lLoop = b.newLabel(), lDone = b.newLabel();
    b.bind(lLoop);
    b.cmpi(t1, static_cast<std::int64_t>(k));
    b.jcc(Cond::Ge, lDone);
    // A[i][l] * D[l] * A[j][l], with values masked to stay in range.
    b.muli(t0, s0, static_cast<std::int64_t>(k));
    b.add(t0, t0, t1);
    b.shli(t0, t0, 3);
    b.addi(t0, t0, static_cast<std::int64_t>(aAddr));
    b.ld(t3, t0, 0, 8);
    emitLoadIndexed(b, t4, dAddr, t1, t0);
    b.mul(t3, t3, t4);
    b.andi(t3, t3, 0xFFFFF); // keep magnitudes bounded
    b.muli(t0, s2, static_cast<std::int64_t>(k));
    b.add(t0, t0, t1);
    b.shli(t0, t0, 3);
    b.addi(t0, t0, static_cast<std::int64_t>(aAddr));
    b.ld(t4, t0, 0, 8);
    b.mul(t3, t3, t4);
    b.add(t2, t2, t3);
    b.addi(t1, t1, 1);
    b.jmp(lLoop);
    b.bind(lDone);
    emitComputeBurst(b, k * 9600, t1);
    b.muli(t0, s0, static_cast<std::int64_t>(n));
    b.add(t0, t0, s2);
    b.shli(t0, t0, 3);
    b.addi(t0, t0, static_cast<std::int64_t>(bAddr));
    b.st(t0, 0, t2, 8);
    b.addi(s2, s2, 1);
    b.jmp(jLoop);
    b.bind(jDone);
    b.addi(s0, s0, 1);
    b.jmp(iLoop);
    b.bind(iDone);
    b.ret();

    std::vector<std::int64_t> expected(n * n, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t j = 0; j < n; ++j) {
            std::int64_t acc = 0;
            for (std::uint64_t l = 0; l < k; ++l) {
                std::int64_t t =
                    (aVals[i * k + l] * dVals[l]) & 0xFFFFF;
                acc += t * aVals[j * k + l];
            }
            expected[i * n + j] = acc;
        }
    }

    Workload w;
    w.app.name = "ADAt";
    w.app.program = b.finish(mem::kCodeBase);
    w.app.data = layout.take();
    w.validate = makeIntArrayValidator(bAddr, std::move(expected),
                                       "ADAt.B");
    w.workEstimate = n * n * k * 16;
    return w;
}

// ---------------------------------------------------------------------
// svm_c: SVM classification — dot-product scores of samples against
// support vectors. The samples are initialized *serially by main*, so
// this kernel shows the paper's gauss/kmeans/svm_c profile of many OMS
// (not AMS) compulsory page faults.
// ---------------------------------------------------------------------
Workload
buildSvmC(const WorkloadParams &p)
{
    const std::uint64_t samples = 512 * p.scale;
    const std::uint64_t vectors = 32;
    const std::uint64_t dim = 64;     // sample dimensionality
    const std::uint64_t dimStep = 8;  // sparse feature stride
    const std::uint64_t fillMult = 77, fillAdd = 13;

    auto svVals = randomInts(vectors * dim, p.seed);
    auto alphaVals = randomInts(vectors, p.seed + 1);

    DataLayout layout;
    VAddr sampleAddr = layout.reserve(samples * dim * 8, "samples");
    VAddr svAddr = layout.reserveInts(svVals, "supportVectors");
    VAddr alphaAddr = layout.reserveInts(alphaVals, "alpha");
    VAddr scoreAddr = layout.reserve(samples * 8, "scores");

    ProgramBuilder b;
    emitMainProlog(b);
    // Serial sample initialization on the OMS (guest stores).
    emitSerialFill(b, sampleAddr, samples * dim, 8, fillMult, fillAdd,
                   kValMask);
    auto worker = b.newLabel();
    emitCreateAndJoin(b, p.workers, worker);
    emitMainEpilog(b);

    b.bind(worker);
    emitChunkBounds(b, samples, p.workers, s0, s1);
    auto sLoop = b.newLabel(), sDone = b.newLabel();
    b.bind(sLoop);
    b.cmp(s0, s1);
    b.jcc(Cond::Ge, sDone);
    b.movi(s2, 0); // v
    b.movi(s3, 0); // score acc
    auto vLoop = b.newLabel(), vDone = b.newLabel();
    b.bind(vLoop);
    b.cmpi(s2, static_cast<std::int64_t>(vectors));
    b.jcc(Cond::Ge, vDone);
    b.movi(t1, 0); // d
    b.movi(t2, 0); // dot
    auto dLoop = b.newLabel(), dDone = b.newLabel();
    b.bind(dLoop);
    b.cmpi(t1, static_cast<std::int64_t>(dim));
    b.jcc(Cond::Ge, dDone);
    b.muli(t0, s0, static_cast<std::int64_t>(dim));
    b.add(t0, t0, t1);
    b.shli(t0, t0, 3);
    b.addi(t0, t0, static_cast<std::int64_t>(sampleAddr));
    b.ld(t3, t0, 0, 8);
    b.muli(t0, s2, static_cast<std::int64_t>(dim));
    b.add(t0, t0, t1);
    b.shli(t0, t0, 3);
    b.addi(t0, t0, static_cast<std::int64_t>(svAddr));
    b.ld(t4, t0, 0, 8);
    b.mul(t3, t3, t4);
    b.add(t2, t2, t3);
    b.addi(t1, t1, static_cast<std::int64_t>(dimStep));
    b.jmp(dLoop);
    b.bind(dDone);
    b.andi(t2, t2, 0xFFFFFFF);
    emitLoadIndexed(b, t4, alphaAddr, s2, t0);
    b.mul(t2, t2, t4);
    b.add(s3, s3, t2);
    emitComputeBurst(b, 64000, t1); // kernel-function FP cost
    b.addi(s2, s2, 1);
    b.jmp(vLoop);
    b.bind(vDone);
    emitStoreIndexed(b, scoreAddr, s0, s3, t0);
    b.addi(s0, s0, 1);
    b.jmp(sLoop);
    b.bind(sDone);
    b.ret();

    // Host reference, mirroring the guest serial fill.
    auto sampleHost = hostFill(samples * dim, fillMult, fillAdd, kValMask);
    std::vector<std::int64_t> expected(samples, 0);
    for (std::uint64_t s = 0; s < samples; ++s) {
        std::int64_t score = 0;
        for (std::uint64_t v = 0; v < vectors; ++v) {
            std::int64_t dot = 0;
            for (std::uint64_t d = 0; d < dim; d += dimStep)
                dot += sampleHost[s * dim + d] * svVals[v * dim + d];
            dot &= 0xFFFFFFF;
            score += dot * alphaVals[v];
        }
        expected[s] = score;
    }

    Workload w;
    w.app.name = "svm_c";
    w.app.program = b.finish(mem::kCodeBase);
    w.app.data = layout.take();
    w.validate = makeIntArrayValidator(scoreAddr, std::move(expected),
                                       "svm_c.scores");
    w.workEstimate = samples * vectors * (dim / dimStep * 12 + 64000);
    return w;
}

} // namespace misp::wl
