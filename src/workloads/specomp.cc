/**
 * @file
 * SPEComp application proxies: swim, applu, galgel, equake, art.
 *
 * The paper runs the real SPEComp suite (ref inputs) through a
 * MISP-enabled OpenMP runtime. Sources and the Intel compilers are not
 * available here, so each application is substituted by a synthetic
 * OpenMP-style generator: iterated parallel sweeps over a working-set
 * array with barrier-separated phases, a serial-init fraction executed
 * by main (OMS page faults), per-iteration main-thread syscalls (the
 * runtime/IO activity that dominates swim/equake in Table 1), and — for
 * art only — a low rate of syscalls from inside the parallel region
 * (the paper's only workload with nonzero AMS SysCall counts).
 *
 * The substitution preserves the quantities the evaluation consumes:
 * event-class mix, working-set paging, and near-linear scalability.
 */

#include "workloads/builder_util.hh"
#include "workloads/workload.hh"

namespace misp::wl {

using isa::Cond;
using isa::ProgramBuilder;
using namespace reg;

namespace {

struct SpecProfile {
    const char *name;
    std::uint64_t words;          ///< working-set size (8-byte words)
    double serialInitFraction;    ///< share initialized serially by main
    std::uint64_t iters;          ///< outer (timestep) iterations
    Cycles computePerElem;        ///< modeled FP work per touched element
    std::uint64_t elemStride;     ///< words between touched elements
    unsigned mainSyscallsPerIter; ///< OS requests from main per timestep
    std::uint64_t workerSyscallEvery; ///< 0 = never (elements between)
};

Workload
buildSpecOmp(const SpecProfile &profIn, const WorkloadParams &p)
{
    // Loop-nest knobs, sweepable from scenario specs: `param.iters`
    // overrides the outer timestep count, `param.depth` deepens the
    // per-element compute nest (multiplying the modeled FP work).
    // Result validation derives from the effective iteration count, so
    // overridden runs still check.
    SpecProfile prof = profIn;
    prof.iters = p.extraU64("iters", prof.iters);
    prof.computePerElem = static_cast<Cycles>(
        prof.computePerElem * p.extraU64("depth", 1));

    const std::uint64_t words = prof.words * p.scale;
    const std::uint64_t serialWords = static_cast<std::uint64_t>(
        static_cast<double>(words) * prof.serialInitFraction);
    const StubCalls &stubs = StubCalls::get();
    const unsigned participants = p.workers;
    const std::uint64_t elems = words / prof.elemStride;

    DataLayout layout;
    VAddr data = layout.reserve(words * 8, "field");
    VAddr barrier = layout.reserve(mem::kPageSize, "barrier");
    VAddr logBuf = layout.reserve(mem::kPageSize, "logbuf");

    ProgramBuilder b;
    emitMainProlog(b, p.prefault
                          ? std::vector<std::pair<VAddr, std::uint64_t>>{
                                {data, words * 8}}
                          : std::vector<std::pair<VAddr, std::uint64_t>>{});
    // Serial initialization of the leading fraction (OMS page faults).
    if (serialWords > 0)
        emitSerialFill(b, data, serialWords / 8, 64, 13, 5, 0xFFFF);

    auto worker = b.newLabel();

    // Interleave create/join with per-iteration main syscalls: OpenMP
    // runtimes fork/join once and barrier per timestep, with the master
    // doing I/O between steps. We model: create workers once; workers
    // barrier per iteration; main does its syscalls after join (the
    // ordering does not matter for event counts).
    emitCreateAndJoin(b, p.workers, worker);
    for (std::uint64_t it = 0; it < prof.iters; ++it) {
        for (unsigned s = 0; s < prof.mainSyscallsPerIter; ++s) {
            b.movi(a0, 1);      // fd
            b.movi(a1, logBuf); // buf
            b.movi(a2, 24);     // len
            b.callAbs(stubs.logWrite);
        }
    }
    emitMainEpilog(b);

    // worker(idx): for each iteration, sweep the chunk with
    // stride-`elemStride` read-modify-write + compute, then barrier.
    b.bind(worker);
    b.mov(s4, a0); // worker index
    b.movi(s2, 0); // iteration
    auto iterLoop = b.newLabel(), doneAll = b.newLabel();
    b.bind(iterLoop);
    b.cmpi(s2, static_cast<std::int64_t>(prof.iters));
    b.jcc(Cond::Ge, doneAll);
    b.mov(a0, s4);
    emitChunkBounds(b, elems, p.workers, s0, s1);
    b.movi(s3, 0); // elements since last worker syscall
    auto elemLoop = b.newLabel(), elemsDone = b.newLabel();
    b.bind(elemLoop);
    b.cmp(s0, s1);
    b.jcc(Cond::Ge, elemsDone);
    // addr = data + (elem * stride) * 8
    b.muli(t0, s0, static_cast<std::int64_t>(prof.elemStride * 8));
    b.addi(t0, t0, static_cast<std::int64_t>(data));
    b.ld(t1, t0, 0, 8);
    b.muli(t1, t1, 3);
    b.addi(t1, t1, 1);
    b.andi(t1, t1, 0xFFFF);
    b.st(t0, 0, t1, 8);
    emitComputeBurst(b, prof.computePerElem, t1);
    if (prof.workerSyscallEvery > 0) {
        b.addi(s3, s3, 1);
        b.cmpi(s3, static_cast<std::int64_t>(prof.workerSyscallEvery));
        auto noSys = b.newLabel();
        b.jcc(Cond::Lt, noSys);
        b.movi(s3, 0);
        // An OS query from inside the parallel region: on MISP this is
        // an AMS syscall and therefore a proxy-execution event.
        b.syscall(static_cast<Word>(os::Sys::Noop));
        b.bind(noSys);
    }
    b.addi(s0, s0, 1);
    b.jmp(elemLoop);
    b.bind(elemsDone);
    b.movi(a0, barrier);
    b.movi(a1, participants);
    b.callAbs(stubs.barrierWait);
    b.addi(s2, s2, 1);
    b.jmp(iterLoop);
    b.bind(doneAll);
    b.ret();

    Workload w;
    w.app.name = prof.name;
    w.app.program = b.finish(mem::kCodeBase);
    w.app.data = layout.take();
    // The field's final value is deterministic but interleaving-free
    // (disjoint chunks); validate a spot value: every element got
    // `iters` applications of x -> (3x+1) & 0xFFFF.
    VAddr dataAddr = data;
    std::uint64_t itersCopy = prof.iters;
    std::uint64_t serialCopy = serialWords;
    std::uint64_t strideCopy = prof.elemStride;
    std::uint64_t elemsCopy = elems;
    w.validate = [dataAddr, itersCopy, serialCopy, strideCopy,
                  elemsCopy](mem::AddressSpace &as) {
        auto apply = [&](std::int64_t v) {
            for (std::uint64_t i = 0; i < itersCopy; ++i)
                v = (v * 3 + 1) & 0xFFFF;
            return v;
        };
        for (std::uint64_t e : {std::uint64_t{0}, elemsCopy / 2,
                                elemsCopy - 1}) {
            std::uint64_t wordIdx = e * strideCopy;
            // Initial value: serial fill covers index i at addr stride
            // 64 bytes (8 words): word w got value ((w/8)*13+5)&0xFFFF
            // if w%8==0 and w/8 < serial count; else 0.
            std::int64_t init = 0;
            if (wordIdx % 8 == 0 && wordIdx / 8 < serialCopy / 8)
                init = static_cast<std::int64_t>(
                    ((wordIdx / 8) * 13 + 5) & 0xFFFF);
            std::int64_t want = apply(init);
            auto got = static_cast<std::int64_t>(
                as.peekWord(dataAddr + wordIdx * 8, 8));
            if (got != want) {
                warn("%s: field[%llu] = %lld, want %lld", "specomp",
                     (unsigned long long)wordIdx, (long long)got,
                     (long long)want);
                return false;
            }
        }
        return true;
    };
    w.workEstimate = prof.iters * elems *
                     (prof.computePerElem + 14);
    return w;
}

} // namespace

// Profiles shaped after Table 1's relative event mix (scaled down).
// All of them take the `param.iters` / `param.depth` loop-nest knobs;
// the scenario sweeps exercise them on swim and applu (mixed.scn).
Workload
buildSwim(const WorkloadParams &p)
{
    // Syscall-heavy master, huge parallel working set (AMS PFs).
    return buildSpecOmp({"swim", 192 * 1024, 0.05, 12, 5300, 8, 14, 0}, p);
}

Workload
buildApplu(const WorkloadParams &p)
{
    return buildSpecOmp({"applu", 160 * 1024, 0.08, 15, 5300, 8, 3, 0}, p);
}

Workload
buildGalgel(const WorkloadParams &p)
{
    // Majority of compulsory faults on the OMS (large serial init).
    return buildSpecOmp({"galgel", 128 * 1024, 0.55, 15, 5000, 8, 2, 0}, p);
}

Workload
buildEquake(const WorkloadParams &p)
{
    return buildSpecOmp({"equake", 96 * 1024, 0.10, 15, 5800, 8, 8, 0}, p);
}

Workload
buildArt(const WorkloadParams &p)
{
    // The only app with AMS-side syscalls (Table 1: 436).
    return buildSpecOmp({"art", 96 * 1024, 0.12, 15, 5700, 8, 4, 600}, p);
}

} // namespace misp::wl
