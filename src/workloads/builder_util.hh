/**
 * @file
 * Shared helpers for authoring multi-shredded guest workloads.
 */

#ifndef MISP_WORKLOADS_BUILDER_UTIL_HH
#define MISP_WORKLOADS_BUILDER_UTIL_HH

#include <cstring>
#include <vector>

#include "harness/loader.hh"
#include "isa/program.hh"
#include "mem/address_space.hh"
#include "shredlib/stub_library.hh"
#include "sim/random.hh"

namespace misp::wl {

/** Resolved stub-library entry points (identical for both backends by
 *  the fixed-slot ABI). */
struct StubCalls {
    VAddr init, create, joinAll, self, yield;
    VAddr mutexLock, mutexUnlock, barrierWait;
    VAddr semWait, semPost, condWait, condSignal, condBroadcast;
    VAddr eventWait, eventSet;
    VAddr malloc, prefault, exitProcess, logWrite;

    static const StubCalls &get();
};

/** Sequential static-data layout starting at the guest data base. */
class DataLayout
{
  public:
    /** Reserve @p bytes (page-aligned) and return the guest address. */
    VAddr
    reserve(std::uint64_t bytes, std::string label)
    {
        VAddr addr = cursor_;
        std::uint64_t rounded =
            (bytes + mem::kPageSize - 1) & ~(mem::kPageSize - 1);
        cursor_ += rounded + mem::kPageSize; // guard page
        regions_.push_back(
            harness::DataRegion{addr, rounded, true, std::move(label), {}});
        return addr;
    }

    /** Reserve and back with an int64 image. */
    VAddr
    reserveInts(const std::vector<std::int64_t> &values, std::string label)
    {
        VAddr addr = reserve(values.size() * 8, std::move(label));
        auto &img = regions_.back().image;
        img.resize(values.size() * 8);
        std::memcpy(img.data(), values.data(), img.size());
        return addr;
    }

    std::vector<harness::DataRegion> take() { return std::move(regions_); }

  private:
    VAddr cursor_ = mem::kDataBase;
    std::vector<harness::DataRegion> regions_;
};

/** Registers conventionally used by workload code. Stub calls clobber
 *  r0 (return value) and r9 (sync-word touch); r4..r8 and r14 survive
 *  only within straight-line shred code (no callee-save convention —
 *  workloads simply avoid calls while values are live, or re-derive). */
namespace reg {
constexpr unsigned a0 = 0, a1 = 1, a2 = 2, a3 = 3;
constexpr unsigned t0 = 4, t1 = 5, t2 = 6, t3 = 7, t4 = 8, t5 = 9;
constexpr unsigned s0 = 10, s1 = 11, s2 = 12, s3 = 13, s4 = 14;
} // namespace reg

/** Emit `main:` with rt_init and optional §5.3 page probes. Serial
 *  setup code goes right after this. */
void emitMainProlog(isa::ProgramBuilder &b,
                    const std::vector<std::pair<VAddr, std::uint64_t>>
                        &prefaultRanges = {});

/** Emit the parallel region: create @p workers shreds running
 *  @p workerFn(arg = worker index), then join_all. */
void emitCreateAndJoin(isa::ProgramBuilder &b, unsigned workers,
                       isa::ProgramBuilder::Label workerFn);

/** Emit exit_process(0). */
void emitMainEpilog(isa::ProgramBuilder &b);

/** Emit a compute burst of ~@p totalCycles as a loop of bounded COMPUTE
 *  instructions (chunks of ~2000 cycles), so pending suspensions and
 *  signals are still honored at instruction boundaries. Clobbers
 *  @p scratch. Models the FP-dense inner loops of the original
 *  workloads at the paper's compute-to-fault ratios. */
void emitComputeBurst(isa::ProgramBuilder &b, std::uint64_t totalCycles,
                      unsigned scratch);

/** Emit a serial guest-init loop: for (i = 0; i < count; ++i)
 *  mem64[base + i*stride] = (i * mult + add) & mask.
 *  Touches pages on the executing (main/OMS) sequencer. */
void emitSerialFill(isa::ProgramBuilder &b, VAddr base,
                    std::uint64_t count, std::uint64_t stride,
                    std::uint64_t mult, std::uint64_t add,
                    std::uint64_t mask);

/** Host-side mirror of emitSerialFill (for reference computations). */
std::vector<std::int64_t> hostFill(std::uint64_t count, std::uint64_t mult,
                                   std::uint64_t add, std::uint64_t mask);

/** Emit code computing this worker's [lo, hi) static chunk of @p total
 *  items into registers @p regLo / @p regHi, given the worker index in
 *  r0 at function entry. Clobbers t5. */
void emitChunkBounds(isa::ProgramBuilder &b, std::uint64_t total,
                     unsigned workers, unsigned regLo, unsigned regHi);

/** Host-side chunk mirror. */
inline std::pair<std::uint64_t, std::uint64_t>
hostChunk(std::uint64_t total, unsigned workers, unsigned index)
{
    std::uint64_t chunk = (total + workers - 1) / workers;
    std::uint64_t lo = std::min<std::uint64_t>(index * chunk, total);
    std::uint64_t hi = std::min<std::uint64_t>(lo + chunk, total);
    return {lo, hi};
}

/** Build a validator comparing an int64 guest array to @p expected. */
std::function<bool(mem::AddressSpace &)>
makeIntArrayValidator(VAddr addr, std::vector<std::int64_t> expected,
                      std::string what);

} // namespace misp::wl

#endif // MISP_WORKLOADS_BUILDER_UTIL_HH
