/**
 * @file
 * RayTracer: the paper's "highly scalable multithreaded graphics
 * application" [Hurley'05]. Rows of the framebuffer are claimed
 * dynamically through an atomic row counter (the classic ray-tracing
 * work-stealing pattern), and per-pixel cost is data-dependent — some
 * rays terminate quickly, some bounce — modeled by a COMPUTE burst whose
 * length derives from the pixel hash.
 */

#include "workloads/builder_util.hh"
#include "workloads/workload.hh"

namespace misp::wl {

using isa::Cond;
using isa::ProgramBuilder;
using namespace reg;

namespace {

std::int64_t
pixelValue(std::uint64_t x, std::uint64_t y)
{
    std::uint64_t h = (x * 2654435761ull) ^ (y * 40503ull);
    h ^= h >> 13;
    return static_cast<std::int64_t>(h & 0xFFFF);
}

} // namespace

Workload
buildRaytracer(const WorkloadParams &p)
{
    // Scene size: width follows the shared `scale` knob; the row count
    // is a per-workload knob (`param.rows` in scenario specs) so sweeps
    // can grow the scene without touching every other workload.
    const std::uint64_t width = 192 * p.scale;
    const std::uint64_t height = p.extraU64("rows", 144);
    const Cycles basePixelCost = 2000;
    const Cycles pixelBaseBurst = 14000;

    DataLayout layout;
    VAddr frame = layout.reserve(width * height * 8, "framebuffer");
    VAddr rowCounter = layout.reserve(mem::kPageSize, "rowCounter");

    ProgramBuilder b;
    emitMainProlog(b);
    auto worker = b.newLabel();
    emitCreateAndJoin(b, p.workers, worker);
    emitMainEpilog(b);

    // worker: loop { row = fetchadd(rowCounter, 1); if row >= H stop;
    //               render row }
    b.bind(worker);
    auto grabRow = b.newLabel(), done = b.newLabel();
    b.bind(grabRow);
    b.movi(t0, rowCounter);
    b.movi(t1, 1);
    b.fetchadd(s0, t0, t1); // s0 = my row
    b.cmpi(s0, static_cast<std::int64_t>(height));
    b.jcc(Cond::Ge, done);
    // s1 = &frame[row][0]
    b.muli(s1, s0, static_cast<std::int64_t>(width * 8));
    b.addi(s1, s1, static_cast<std::int64_t>(frame));
    b.movi(s2, 0); // x
    auto pixLoop = b.newLabel(), rowDone = b.newLabel();
    b.bind(pixLoop);
    b.cmpi(s2, static_cast<std::int64_t>(width));
    b.jcc(Cond::Ge, rowDone);
    // h = (x*2654435761) ^ (y*40503); h ^= h >> 13; v = h & 0xFFFF
    b.muli(t2, s2, 2654435761ll);
    b.muli(t3, s0, 40503);
    b.alu(isa::Opcode::Xor, t2, t2, t3);
    b.shri(t3, t2, 13);
    b.alu(isa::Opcode::Xor, t2, t2, t3);
    b.andi(t2, t2, 0xFFFF);
    // Data-dependent ray cost: a base burst plus 4*(v & 0x3FF) cycles —
    // some rays terminate quickly, some bounce around the scene.
    emitComputeBurst(b, pixelBaseBurst, t0);
    b.andi(t3, t2, 0x3FF);
    b.shli(t3, t3, 2);
    b.compute(basePixelCost, t3);
    // frame[row][x] = v
    b.shli(t4, s2, 3);
    b.add(t4, t4, s1);
    b.st(t4, 0, t2, 8);
    b.addi(s2, s2, 1);
    b.jmp(pixLoop);
    b.bind(rowDone);
    b.jmp(grabRow);
    b.bind(done);
    b.ret();

    std::vector<std::int64_t> expected(width * height, 0);
    for (std::uint64_t y = 0; y < height; ++y) {
        for (std::uint64_t x = 0; x < width; ++x)
            expected[y * width + x] = pixelValue(x, y);
    }

    Workload w;
    w.app.name = "Raytracer";
    w.app.program = b.finish(mem::kCodeBase);
    w.app.data = layout.take();
    w.validate = makeIntArrayValidator(frame, std::move(expected),
                                       "raytracer.frame");
    w.workEstimate =
        width * height * (pixelBaseBurst + basePixelCost + 2048 + 14);
    return w;
}

Workload
buildSpinner(const WorkloadParams &p)
{
    (void)p;
    ProgramBuilder b;
    b.exportHere("main");
    auto loop = b.newLabel();
    b.bind(loop);
    b.compute(400);
    b.jmp(loop); // runs until the harness stops the simulation

    Workload w;
    w.app.name = "spinner";
    w.app.program = b.finish(mem::kCodeBase);
    return w;
}

} // namespace misp::wl
