/**
 * @file
 * OS-level process and thread objects.
 *
 * An OsThread is the unit the OS schedules onto a CPU (an OMS, or an SMP
 * core). For MISP, one OsThread additionally carries the aggregate save
 * area for the cumulative AMS states — "the primary, if not the only,
 * additional OS support required of a legacy OS" (§2.2).
 */

#ifndef MISP_OS_PROCESS_HH
#define MISP_OS_PROCESS_HH

#include <memory>
#include <string>
#include <vector>

#include "cpu/sequencer.hh"
#include "mem/address_space.hh"
#include "sim/types.hh"

namespace misp::os {

class Process;

/** Scheduling state of an OS thread. */
enum class ThreadState : std::uint8_t {
    Ready,   ///< runnable, waiting for a CPU
    Running, ///< loaded on a CPU
    Blocked, ///< sleeping / futex / join
    Done,    ///< exited
};

const char *threadStateName(ThreadState s);

/** One OS-visible thread. */
class OsThread
{
  public:
    OsThread(Tid tid, Process *process, VAddr eip, VAddr esp, Word arg)
        : tid_(tid), process_(process)
    {
        ctx_.eip = eip;
        ctx_.sp() = esp;
        // Thread argument convention: r0 (first argument register) and
        // r2 (matching the SIGNAL continuation payload convention).
        ctx_.regs[0] = arg;
        ctx_.regs[2] = arg;
    }

    Tid tid() const { return tid_; }
    Process *process() const { return process_; }

    ThreadState state() const { return state_; }
    void setState(ThreadState s) { state_ = s; }

    /** Saved OMS-context while not running. */
    cpu::SequencerContext &context() { return ctx_; }

    /** Aggregate AMS save area (§2.2). Sized/filled by the MISP
     *  processor model on context switch; empty for plain threads. */
    std::vector<cpu::SequencerContext> &amsSaveArea() { return amsSave_; }

    /** Opaque per-thread slot for the runtime that owns this thread's
     *  shreds (set by ShredRuntime). */
    void *runtimeData() const { return runtimeData_; }
    void setRuntimeData(void *p) { runtimeData_ = p; }

    /** CPU this thread is currently loaded on (valid when Running). */
    int cpu() const { return cpu_; }
    void setCpu(int c) { cpu_ = c; }

    /** Accumulated quantum usage since last reschedule, in timer ticks. */
    unsigned quantumTicks = 0;

    /** CPU affinity: empty = any CPU. The paper notes a thread (and its
     *  shreds) "should not migrate to a MISP processor that does not
     *  have the proper number of AMSs" (§5.4); harnesses pin shredded
     *  threads to adequate processors. */
    std::vector<int> affinity;

    bool
    allowedOn(int cpu) const
    {
        if (affinity.empty())
            return true;
        for (int c : affinity) {
            if (c == cpu)
                return true;
        }
        return false;
    }

  private:
    Tid tid_;
    Process *process_;
    ThreadState state_ = ThreadState::Ready;
    cpu::SequencerContext ctx_;
    std::vector<cpu::SequencerContext> amsSave_;
    void *runtimeData_ = nullptr;
    int cpu_ = -1;
};

/** One OS process: an address space plus its threads. */
class Process
{
  public:
    Process(Pid pid, std::string name, mem::PhysicalMemory &pmem)
        : pid_(pid), name_(std::move(name)),
          as_(std::make_unique<mem::AddressSpace>(name_, pmem))
    {}

    Pid pid() const { return pid_; }
    const std::string &name() const { return name_; }
    mem::AddressSpace &addressSpace() { return *as_; }

    const std::vector<OsThread *> &threads() const { return threads_; }
    void addThread(OsThread *t) { threads_.push_back(t); }

    bool
    allThreadsDone() const
    {
        for (const OsThread *t : threads_) {
            if (t->state() != ThreadState::Done)
                return false;
        }
        return true;
    }

    /** Exit flag; once set, remaining threads are reaped. */
    bool exited = false;
    Word exitCode = 0;

  private:
    Pid pid_;
    std::string name_;
    std::unique_ptr<mem::AddressSpace> as_;
    std::vector<OsThread *> threads_;
};

} // namespace misp::os

#endif // MISP_OS_PROCESS_HH
