#include "kernel.hh"

#include <cmath>

namespace misp::os {

const char *
threadStateName(ThreadState s)
{
    switch (s) {
      case ThreadState::Ready: return "ready";
      case ThreadState::Running: return "running";
      case ThreadState::Blocked: return "blocked";
      case ThreadState::Done: return "done";
    }
    return "?";
}

Kernel::Kernel(EventQueue &eq, mem::PhysicalMemory &pmem,
               const KernelConfig &config, stats::StatGroup *parent)
    : eq_(eq),
      pmem_(pmem),
      config_(config),
      rng_(config.seed),
      statGroup_("kernel", parent),
      syscalls_(&statGroup_, "syscalls", "system calls serviced"),
      pageFaults_(&statGroup_, "pageFaults", "page faults serviced"),
      timerIrqs_(&statGroup_, "timerIrqs", "timer interrupts serviced"),
      deviceIrqs_(&statGroup_, "deviceIrqs", "device interrupts serviced"),
      ctxSwitches_(&statGroup_, "ctxSwitches", "thread context switches"),
      threadsCreated_(&statGroup_, "threadsCreated", "OS threads created"),
      badFaults_(&statGroup_, "badFaults", "unservicable faults (bugs)")
{}

Kernel::~Kernel() = default;

int
Kernel::addCpu()
{
    current_.push_back(nullptr);
    return static_cast<int>(current_.size()) - 1;
}

Process *
Kernel::createProcess(const std::string &name)
{
    processes_.push_back(
        std::make_unique<Process>(nextPid_++, name, pmem_));
    return processes_.back().get();
}

OsThread *
Kernel::createThread(Process *proc, VAddr eip, VAddr esp, Word arg)
{
    MISP_ASSERT(proc != nullptr);
    threads_.push_back(
        std::make_unique<OsThread>(nextTid_++, proc, eip, esp, arg));
    OsThread *t = threads_.back().get();
    proc->addThread(t);
    ++threadsCreated_;
    makeReady(t);
    return t;
}

void
Kernel::makeReady(OsThread *t)
{
    t->setState(ThreadState::Ready);
    t->setCpu(-1);
    ready_.push_back(t);
    wakeIdleCpu();
}

void
Kernel::wakeIdleCpu()
{
    if (!client_ || ready_.empty())
        return;
    for (int cpu = 0; cpu < static_cast<int>(current_.size()); ++cpu) {
        if (current_[cpu] != nullptr)
            continue;
        bool eligible = false;
        for (OsThread *t : ready_) {
            if (t->allowedOn(cpu)) {
                eligible = true;
                break;
            }
        }
        if (eligible) {
            client_->cpuWake(cpu);
            return;
        }
    }
}

OsThread *
Kernel::pickNext(int cpu)
{
    MISP_ASSERT(cpu >= 0 && cpu < static_cast<int>(current_.size()));
    MISP_ASSERT(current_[cpu] == nullptr);
    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
        if (!(*it)->allowedOn(cpu))
            continue;
        OsThread *t = *it;
        ready_.erase(it);
        t->setState(ThreadState::Running);
        t->setCpu(cpu);
        t->quantumTicks = 0;
        current_[cpu] = t;
        return t;
    }
    return nullptr;
}

bool
Kernel::processAlive(const Process *proc) const
{
    return proc && !proc->allThreadsDone();
}

void
Kernel::finishThread(OsThread &t)
{
    t.setState(ThreadState::Done);
    if (t.cpu() >= 0) {
        current_[t.cpu()] = nullptr;
        t.setCpu(-1);
    }
    // Wake joiners.
    auto it = joiners_.find(t.tid());
    if (it != joiners_.end()) {
        for (OsThread *j : it->second)
            makeReady(j);
        joiners_.erase(it);
    }
}

KernelResult
Kernel::scheduleDecision(int cpu, bool force)
{
    KernelResult res;
    OsThread *cur = current_[cpu];
    if (!force && cur && cur->quantumTicks < config_.quantumTicks)
        return res;
    bool haveEligible = false;
    for (OsThread *t : ready_) {
        if (t->allowedOn(cpu)) {
            haveEligible = true;
            break;
        }
    }
    if (!haveEligible && cur)
        return res; // nothing better to run

    res.reschedule = true;
    res.prev = cur;
    if (cur) {
        // Preempted: back of the queue.
        cur->setState(ThreadState::Ready);
        cur->setCpu(-1);
        current_[cpu] = nullptr;
        ready_.push_back(cur);
    }
    res.next = pickNext(cpu);
    if (res.prev != res.next && (res.prev || res.next)) {
        ++ctxSwitches_;
        res.priv += config_.ctxSwitch;
    }
    return res;
}

KernelResult
Kernel::syscall(int cpu, OsThread &t, Word number,
                const std::array<Word, 4> &args)
{
    ++syscalls_;
    KernelResult res;
    res.priv = config_.syscallBase;

    switch (static_cast<Sys>(number)) {
      case Sys::ExitThread: {
        finishThread(t);
        res.reschedule = true;
        res.prev = nullptr; // no context worth saving
        res.next = pickNext(cpu);
        res.priv += config_.ctxSwitch;
        ++ctxSwitches_;
        break;
      }
      case Sys::ExitProcess: {
        Process *proc = t.process();
        proc->exited = true;
        proc->exitCode = args[0];
        // Reap every thread of the process.
        for (OsThread *pt : proc->threads()) {
            if (pt->state() == ThreadState::Done)
                continue;
            if (pt == &t || pt->cpu() < 0) {
                // Remove queued/blocked threads outright.
                if (pt->state() == ThreadState::Ready) {
                    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
                        if (*it == pt) {
                            ready_.erase(it);
                            break;
                        }
                    }
                }
                finishThread(*pt);
            }
            // Threads running on *other* CPUs finish when they next trap;
            // the driver checks processAlive().
        }
        res.reschedule = true;
        res.prev = nullptr;
        res.next = pickNext(cpu);
        res.priv += config_.ctxSwitch;
        ++ctxSwitches_;
        if (processExitHook_)
            processExitHook_(proc);
        break;
      }
      case Sys::Write: {
        Word len = args[2];
        res.priv += config_.writePerByte * len;
        res.retval = len;
        break;
      }
      case Sys::Yield: {
        KernelResult sched = scheduleDecision(cpu, /*force=*/true);
        res.priv += sched.priv;
        res.reschedule = sched.reschedule;
        res.prev = sched.prev;
        res.next = sched.next;
        break;
      }
      case Sys::Sleep: {
        Tick wake = eq_.curTick() + args[0];
        t.setState(ThreadState::Blocked);
        current_[cpu] = nullptr;
        t.setCpu(-1);
        OsThread *tp = &t;
        eq_.scheduleLambda(wake, "kernel.sleepWake", [this, tp] {
            if (tp->state() == ThreadState::Blocked)
                makeReady(tp);
        });
        res.reschedule = true;
        res.prev = tp;
        res.next = pickNext(cpu);
        res.priv += config_.ctxSwitch;
        ++ctxSwitches_;
        break;
      }
      case Sys::ThreadCreate: {
        OsThread *nt = createThread(t.process(), args[0], args[1], args[2]);
        res.retval = nt->tid();
        break;
      }
      case Sys::ThreadJoin: {
        Tid target = static_cast<Tid>(args[0]);
        OsThread *targetThread = nullptr;
        for (OsThread *pt : t.process()->threads()) {
            if (pt->tid() == target) {
                targetThread = pt;
                break;
            }
        }
        if (!targetThread || targetThread->state() == ThreadState::Done) {
            res.retval = 0; // already done (or never existed)
            break;
        }
        joiners_[target].push_back(&t);
        t.setState(ThreadState::Blocked);
        current_[cpu] = nullptr;
        t.setCpu(-1);
        res.reschedule = true;
        res.prev = &t;
        res.next = pickNext(cpu);
        res.priv += config_.ctxSwitch;
        ++ctxSwitches_;
        break;
      }
      case Sys::FutexWait: {
        VAddr addr = args[0];
        Word expected = args[1];
        Word cur = t.process()->addressSpace().peekWord(addr, 8);
        if (getenv("MISP_FUTEX_DEBUG"))
            fprintf(stderr, "[%llu] tid=%u WAIT addr=%llx exp=%llu cur=%llu\n",
                (unsigned long long)eq_.curTick(), t.tid(),
                (unsigned long long)addr, (unsigned long long)expected,
                (unsigned long long)cur);
        if (cur != expected) {
            res.retval = 1; // value changed; no wait
            break;
        }
        futexQueues_[FutexKey{t.process()->pid(), addr}].push_back(&t);
        t.setState(ThreadState::Blocked);
        current_[cpu] = nullptr;
        t.setCpu(-1);
        res.reschedule = true;
        res.prev = &t;
        res.next = pickNext(cpu);
        res.priv += config_.ctxSwitch;
        ++ctxSwitches_;
        break;
      }
      case Sys::FutexWake: {
        VAddr addr = args[0];
        Word count = args[1];
        if (getenv("MISP_FUTEX_DEBUG"))
            fprintf(stderr, "[%llu] tid=%u WAKE addr=%llx n=%llu\n",
                (unsigned long long)eq_.curTick(), t.tid(),
                (unsigned long long)addr, (unsigned long long)count);
        auto it = futexQueues_.find(FutexKey{t.process()->pid(), addr});
        Word woken = 0;
        if (it != futexQueues_.end()) {
            while (woken < count && !it->second.empty()) {
                OsThread *w = it->second.front();
                it->second.pop_front();
                makeReady(w);
                ++woken;
            }
            if (it->second.empty())
                futexQueues_.erase(it);
        }
        res.retval = woken;
        break;
      }
      case Sys::GetTid:
        res.retval = t.tid();
        break;
      case Sys::Noop:
        break;
      default:
        warn("unknown syscall %llu from tid %u",
             (unsigned long long)number, t.tid());
        res.retval = static_cast<Word>(-1);
        break;
    }
    return res;
}

KernelResult
Kernel::pageFault(int cpu, OsThread &t, VAddr va, bool write)
{
    (void)cpu;
    ++pageFaults_;
    KernelResult res;
    res.priv = config_.pageFaultService;
    mem::FaultOutcome out = t.process()->addressSpace().handleFault(va, write);
    if (out == mem::FaultOutcome::BadAccess) {
        ++badFaults_;
        res.fatalFault = true;
    }
    return res;
}

KernelResult
Kernel::timerTick(int cpu)
{
    ++timerIrqs_;
    KernelResult res;
    res.priv = config_.timerService;
    OsThread *cur = current_[cpu];
    if (cur)
        ++cur->quantumTicks;
    KernelResult sched = scheduleDecision(cpu, /*force=*/false);
    res.priv += sched.priv;
    res.reschedule = sched.reschedule;
    res.prev = sched.prev;
    res.next = sched.next;
    return res;
}

KernelResult
Kernel::deviceIrq(int cpu)
{
    (void)cpu;
    ++deviceIrqs_;
    KernelResult res;
    res.priv = config_.deviceIrqService;
    return res;
}

Tick
Kernel::nextDeviceIrqGap()
{
    if (config_.deviceIrqMeanPeriod == 0)
        return 0;
    // Exponential inter-arrival from the deterministic RNG.
    double u = rng_.real();
    if (u < 1e-12)
        u = 1e-12;
    double gap = -std::log(u) * static_cast<double>(
        config_.deviceIrqMeanPeriod);
    if (gap < 1.0)
        gap = 1.0;
    return static_cast<Tick>(gap);
}

} // namespace misp::os
