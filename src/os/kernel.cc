#include "kernel.hh"

#include <cmath>

#include "obs/trace.hh"
#include "snapshot/state_io.hh"
#include "snapshot/tags.hh"

namespace misp::os {

const char *
threadStateName(ThreadState s)
{
    switch (s) {
      case ThreadState::Ready: return "ready";
      case ThreadState::Running: return "running";
      case ThreadState::Blocked: return "blocked";
      case ThreadState::Done: return "done";
    }
    return "?";
}

Kernel::Kernel(EventQueue &eq, mem::PhysicalMemory &pmem,
               const KernelConfig &config, stats::StatGroup *parent)
    : eq_(eq),
      pmem_(pmem),
      config_(config),
      rng_(config.seed),
      statGroup_("kernel", parent),
      syscalls_(&statGroup_, "syscalls", "system calls serviced"),
      pageFaults_(&statGroup_, "pageFaults", "page faults serviced"),
      timerIrqs_(&statGroup_, "timerIrqs", "timer interrupts serviced"),
      deviceIrqs_(&statGroup_, "deviceIrqs", "device interrupts serviced"),
      ctxSwitches_(&statGroup_, "ctxSwitches", "thread context switches"),
      threadsCreated_(&statGroup_, "threadsCreated", "OS threads created"),
      badFaults_(&statGroup_, "badFaults", "unservicable faults (bugs)")
{}

Kernel::~Kernel() = default;

int
Kernel::addCpu()
{
    current_.push_back(nullptr);
    return static_cast<int>(current_.size()) - 1;
}

Process *
Kernel::createProcess(const std::string &name)
{
    processes_.push_back(
        std::make_unique<Process>(nextPid_++, name, pmem_));
    return processes_.back().get();
}

OsThread *
Kernel::createThread(Process *proc, VAddr eip, VAddr esp, Word arg)
{
    MISP_ASSERT(proc != nullptr);
    threads_.push_back(
        std::make_unique<OsThread>(nextTid_++, proc, eip, esp, arg));
    OsThread *t = threads_.back().get();
    proc->addThread(t);
    ++threadsCreated_;
    makeReady(t);
    return t;
}

void
Kernel::makeReady(OsThread *t)
{
    t->setState(ThreadState::Ready);
    t->setCpu(-1);
    ready_.push_back(t);
    wakeIdleCpu();
}

void
Kernel::wakeIdleCpu()
{
    if (!client_ || ready_.empty())
        return;
    for (int cpu = 0; cpu < static_cast<int>(current_.size()); ++cpu) {
        if (current_[cpu] != nullptr)
            continue;
        bool eligible = false;
        for (OsThread *t : ready_) {
            if (t->allowedOn(cpu)) {
                eligible = true;
                break;
            }
        }
        if (eligible) {
            client_->cpuWake(cpu);
            return;
        }
    }
}

OsThread *
Kernel::pickNext(int cpu)
{
    MISP_ASSERT(cpu >= 0 && cpu < static_cast<int>(current_.size()));
    MISP_ASSERT(current_[cpu] == nullptr);
    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
        if (!(*it)->allowedOn(cpu))
            continue;
        OsThread *t = *it;
        ready_.erase(it);
        t->setState(ThreadState::Running);
        t->setCpu(cpu);
        t->quantumTicks = 0;
        current_[cpu] = t;
        return t;
    }
    return nullptr;
}

bool
Kernel::processAlive(const Process *proc) const
{
    return proc && !proc->allThreadsDone();
}

Process *
Kernel::processByPid(Pid pid) const
{
    for (const auto &p : processes_) {
        if (p->pid() == pid)
            return p.get();
    }
    return nullptr;
}

OsThread *
Kernel::threadByTid(Tid tid) const
{
    for (const auto &t : threads_) {
        if (t->tid() == tid)
            return t.get();
    }
    return nullptr;
}

void
Kernel::snapSave(snap::Serializer &s) const
{
    s.u64(nextPid_);
    s.u64(nextTid_);
    for (std::uint64_t w : rng_.state())
        s.u64(w);

    s.u64(processes_.size());
    for (const auto &p : processes_) {
        s.u64(p->pid());
        s.str(p->name());
        s.b(p->exited);
        s.u64(p->exitCode);
        p->addressSpace().snapSave(s);
    }

    s.u64(threads_.size());
    for (const auto &t : threads_) {
        s.u64(t->tid());
        s.u64(t->process()->pid());
        s.u8(static_cast<std::uint8_t>(t->state()));
        snap::putContext(s, t->context());
        const auto &save = t->amsSaveArea();
        s.u64(save.size());
        for (const cpu::SequencerContext &ctx : save)
            snap::putContext(s, ctx);
        s.i64(t->cpu());
        s.u32(t->quantumTicks);
        s.u64(t->affinity.size());
        for (int cpu : t->affinity)
            s.i64(cpu);
    }

    s.u64(ready_.size());
    for (const OsThread *t : ready_)
        s.u64(t->tid());

    s.u64(current_.size());
    for (const OsThread *t : current_)
        s.u64(t ? t->tid() : 0);

    s.u64(futexQueues_.size());
    for (const auto &[key, queue] : futexQueues_) {
        s.u64(key.pid);
        s.u64(key.addr);
        s.u64(queue.size());
        for (const OsThread *t : queue)
            s.u64(t->tid());
    }

    s.u64(joiners_.size());
    for (const auto &[target, waiters] : joiners_) {
        s.u64(target);
        s.u64(waiters.size());
        for (const OsThread *t : waiters)
            s.u64(t->tid());
    }
}

void
Kernel::snapRestore(snap::Deserializer &d)
{
    MISP_ASSERT(processes_.empty() && threads_.empty());
    nextPid_ = static_cast<Pid>(d.u64());
    nextTid_ = static_cast<Tid>(d.u64());
    std::array<std::uint64_t, 4> rng;
    for (std::uint64_t &w : rng)
        w = d.u64();
    rng_.setState(rng);

    std::uint64_t nProcs = d.u64();
    for (std::uint64_t i = 0; i < nProcs; ++i) {
        Pid pid = static_cast<Pid>(d.u64());
        std::string name = d.str();
        processes_.push_back(
            std::make_unique<Process>(pid, name, pmem_));
        Process *p = processes_.back().get();
        p->exited = d.b();
        p->exitCode = d.u64();
        p->addressSpace().snapRestore(d);
    }

    auto thread = [this](Tid tid) -> OsThread * {
        OsThread *t = threadByTid(tid);
        if (!t)
            throw snap::SnapError("kernel: unknown tid in image");
        return t;
    };

    std::uint64_t nThreads = d.u64();
    for (std::uint64_t i = 0; i < nThreads; ++i) {
        Tid tid = static_cast<Tid>(d.u64());
        Process *proc = processByPid(static_cast<Pid>(d.u64()));
        if (!proc)
            throw snap::SnapError("kernel: thread names an unknown pid");
        threads_.push_back(
            std::make_unique<OsThread>(tid, proc, 0, 0, 0));
        OsThread *t = threads_.back().get();
        proc->addThread(t);
        t->setState(static_cast<ThreadState>(d.u8()));
        t->context() = snap::getContext(d);
        auto &save = t->amsSaveArea();
        save.resize(d.u64());
        for (cpu::SequencerContext &ctx : save)
            ctx = snap::getContext(d);
        t->setCpu(static_cast<int>(d.i64()));
        t->quantumTicks = d.u32();
        t->affinity.resize(d.u64());
        for (int &cpu : t->affinity)
            cpu = static_cast<int>(d.i64());
    }

    std::uint64_t nReady = d.u64();
    for (std::uint64_t i = 0; i < nReady; ++i)
        ready_.push_back(thread(static_cast<Tid>(d.u64())));

    std::uint64_t nCpus = d.u64();
    if (nCpus != current_.size())
        throw snap::SnapError("kernel: CPU count mismatch");
    for (OsThread *&cur : current_) {
        Tid tid = static_cast<Tid>(d.u64());
        cur = tid ? thread(tid) : nullptr;
    }

    std::uint64_t nFutex = d.u64();
    for (std::uint64_t i = 0; i < nFutex; ++i) {
        FutexKey key;
        key.pid = static_cast<Pid>(d.u64());
        key.addr = d.u64();
        std::deque<OsThread *> queue;
        std::uint64_t n = d.u64();
        for (std::uint64_t k = 0; k < n; ++k)
            queue.push_back(thread(static_cast<Tid>(d.u64())));
        futexQueues_.emplace(key, std::move(queue));
    }

    std::uint64_t nJoin = d.u64();
    for (std::uint64_t i = 0; i < nJoin; ++i) {
        Tid target = static_cast<Tid>(d.u64());
        std::vector<OsThread *> waiters;
        std::uint64_t n = d.u64();
        for (std::uint64_t k = 0; k < n; ++k)
            waiters.push_back(thread(static_cast<Tid>(d.u64())));
        joiners_.emplace(target, std::move(waiters));
    }
}

void
Kernel::snapRestoreSleepWake(Tid tid, Tick when, std::uint64_t seq)
{
    OsThread *tp = threadByTid(tid);
    if (!tp)
        throw snap::SnapError("kernel: sleep wakeup names an unknown tid");
    snap::checkEventSchedule(eq_, when, seq);
    EventTag tag;
    tag.kind = snap::tag::kKernelSleepWake;
    tag.arg[0] = tid;
    eq_.restoreLambda(
        when, seq, "kernel.sleepWake",
        [this, tp] {
            if (tp->state() == ThreadState::Blocked)
                makeReady(tp);
        },
        Event::kPrioDefault, tag);
}

void
Kernel::finishThread(OsThread &t)
{
    t.setState(ThreadState::Done);
    if (t.cpu() >= 0) {
        current_[t.cpu()] = nullptr;
        t.setCpu(-1);
    }
    // Wake joiners.
    auto it = joiners_.find(t.tid());
    if (it != joiners_.end()) {
        for (OsThread *j : it->second)
            makeReady(j);
        joiners_.erase(it);
    }
}

KernelResult
Kernel::scheduleDecision(int cpu, bool force)
{
    KernelResult res;
    OsThread *cur = current_[cpu];
    if (!force && cur && cur->quantumTicks < config_.quantumTicks)
        return res;
    bool haveEligible = false;
    for (OsThread *t : ready_) {
        if (t->allowedOn(cpu)) {
            haveEligible = true;
            break;
        }
    }
    if (!haveEligible && cur)
        return res; // nothing better to run

    res.reschedule = true;
    res.prev = cur;
    if (cur) {
        // Preempted: back of the queue.
        cur->setState(ThreadState::Ready);
        cur->setCpu(-1);
        current_[cpu] = nullptr;
        ready_.push_back(cur);
    }
    res.next = pickNext(cpu);
    obs::trace(obs::TraceKind::KernelSchedule, 0,
               static_cast<std::uint32_t>(cpu),
               res.prev ? res.prev->tid() + 1 : 0,
               res.next ? res.next->tid() + 1 : 0);
    if (res.prev != res.next && (res.prev || res.next)) {
        ++ctxSwitches_;
        obs::trace(obs::TraceKind::KernelCtxSwitch, 0,
                   static_cast<std::uint32_t>(cpu),
                   res.prev ? res.prev->tid() + 1 : 0,
                   res.next ? res.next->tid() + 1 : 0);
        res.priv += config_.ctxSwitch;
    }
    return res;
}

KernelResult
Kernel::syscall(int cpu, OsThread &t, Word number,
                const std::array<Word, 4> &args)
{
    ++syscalls_;
    KernelResult res;
    res.priv = config_.syscallBase;

    switch (static_cast<Sys>(number)) {
      case Sys::ExitThread: {
        finishThread(t);
        res.reschedule = true;
        res.prev = nullptr; // no context worth saving
        res.next = pickNext(cpu);
        res.priv += config_.ctxSwitch;
        ++ctxSwitches_;
        obs::trace(obs::TraceKind::KernelCtxSwitch, 0,
                   static_cast<std::uint32_t>(cpu), 0,
                   res.next ? res.next->tid() + 1 : 0);
        break;
      }
      case Sys::ExitProcess: {
        Process *proc = t.process();
        proc->exited = true;
        proc->exitCode = args[0];
        // Reap every thread of the process.
        for (OsThread *pt : proc->threads()) {
            if (pt->state() == ThreadState::Done)
                continue;
            if (pt == &t || pt->cpu() < 0) {
                // Remove queued/blocked threads outright.
                if (pt->state() == ThreadState::Ready) {
                    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
                        if (*it == pt) {
                            ready_.erase(it);
                            break;
                        }
                    }
                }
                finishThread(*pt);
            }
            // Threads running on *other* CPUs finish when they next trap;
            // the driver checks processAlive().
        }
        res.reschedule = true;
        res.prev = nullptr;
        res.next = pickNext(cpu);
        res.priv += config_.ctxSwitch;
        ++ctxSwitches_;
        obs::trace(obs::TraceKind::KernelCtxSwitch, 0,
                   static_cast<std::uint32_t>(cpu), 0,
                   res.next ? res.next->tid() + 1 : 0);
        if (processExitHook_)
            processExitHook_(proc);
        break;
      }
      case Sys::Write: {
        Word len = args[2];
        res.priv += config_.writePerByte * len;
        res.retval = len;
        break;
      }
      case Sys::Yield: {
        KernelResult sched = scheduleDecision(cpu, /*force=*/true);
        res.priv += sched.priv;
        res.reschedule = sched.reschedule;
        res.prev = sched.prev;
        res.next = sched.next;
        break;
      }
      case Sys::Sleep: {
        Tick wake = eq_.curTick() + args[0];
        t.setState(ThreadState::Blocked);
        current_[cpu] = nullptr;
        t.setCpu(-1);
        OsThread *tp = &t;
        EventTag tag;
        tag.kind = snap::tag::kKernelSleepWake;
        tag.arg[0] = tp->tid();
        eq_.scheduleLambda(
            wake, "kernel.sleepWake",
            [this, tp] {
                if (tp->state() == ThreadState::Blocked)
                    makeReady(tp);
            },
            Event::kPrioDefault, tag);
        res.reschedule = true;
        res.prev = tp;
        res.next = pickNext(cpu);
        res.priv += config_.ctxSwitch;
        ++ctxSwitches_;
        break;
      }
      case Sys::ThreadCreate: {
        OsThread *nt = createThread(t.process(), args[0], args[1], args[2]);
        res.retval = nt->tid();
        break;
      }
      case Sys::ThreadJoin: {
        Tid target = static_cast<Tid>(args[0]);
        OsThread *targetThread = nullptr;
        for (OsThread *pt : t.process()->threads()) {
            if (pt->tid() == target) {
                targetThread = pt;
                break;
            }
        }
        if (!targetThread || targetThread->state() == ThreadState::Done) {
            res.retval = 0; // already done (or never existed)
            break;
        }
        joiners_[target].push_back(&t);
        t.setState(ThreadState::Blocked);
        current_[cpu] = nullptr;
        t.setCpu(-1);
        res.reschedule = true;
        res.prev = &t;
        res.next = pickNext(cpu);
        res.priv += config_.ctxSwitch;
        ++ctxSwitches_;
        break;
      }
      case Sys::FutexWait: {
        VAddr addr = args[0];
        Word expected = args[1];
        Word cur = t.process()->addressSpace().peekWord(addr, 8);
        if (getenv("MISP_FUTEX_DEBUG"))
            fprintf(stderr, "[%llu] tid=%u WAIT addr=%llx exp=%llu cur=%llu\n",
                (unsigned long long)eq_.curTick(), t.tid(),
                (unsigned long long)addr, (unsigned long long)expected,
                (unsigned long long)cur);
        if (cur != expected) {
            res.retval = 1; // value changed; no wait
            break;
        }
        futexQueues_[FutexKey{t.process()->pid(), addr}].push_back(&t);
        t.setState(ThreadState::Blocked);
        current_[cpu] = nullptr;
        t.setCpu(-1);
        res.reschedule = true;
        res.prev = &t;
        res.next = pickNext(cpu);
        res.priv += config_.ctxSwitch;
        ++ctxSwitches_;
        break;
      }
      case Sys::FutexWake: {
        VAddr addr = args[0];
        Word count = args[1];
        if (getenv("MISP_FUTEX_DEBUG"))
            fprintf(stderr, "[%llu] tid=%u WAKE addr=%llx n=%llu\n",
                (unsigned long long)eq_.curTick(), t.tid(),
                (unsigned long long)addr, (unsigned long long)count);
        auto it = futexQueues_.find(FutexKey{t.process()->pid(), addr});
        Word woken = 0;
        if (it != futexQueues_.end()) {
            while (woken < count && !it->second.empty()) {
                OsThread *w = it->second.front();
                it->second.pop_front();
                makeReady(w);
                ++woken;
            }
            if (it->second.empty())
                futexQueues_.erase(it);
        }
        res.retval = woken;
        break;
      }
      case Sys::GetTid:
        res.retval = t.tid();
        break;
      case Sys::Noop:
        break;
      default:
        warn("unknown syscall %llu from tid %u",
             (unsigned long long)number, t.tid());
        res.retval = static_cast<Word>(-1);
        break;
    }
    return res;
}

KernelResult
Kernel::pageFault(int cpu, OsThread &t, VAddr va, bool write)
{
    (void)cpu;
    ++pageFaults_;
    KernelResult res;
    res.priv = config_.pageFaultService;
    mem::FaultOutcome out = t.process()->addressSpace().handleFault(va, write);
    if (out == mem::FaultOutcome::BadAccess) {
        ++badFaults_;
        res.fatalFault = true;
    }
    return res;
}

KernelResult
Kernel::timerTick(int cpu)
{
    ++timerIrqs_;
    KernelResult res;
    res.priv = config_.timerService;
    OsThread *cur = current_[cpu];
    if (cur)
        ++cur->quantumTicks;
    obs::trace(obs::TraceKind::KernelQuantum, 0,
               static_cast<std::uint32_t>(cpu),
               cur ? cur->tid() + 1 : 0, cur ? cur->quantumTicks : 0);
    KernelResult sched = scheduleDecision(cpu, /*force=*/false);
    res.priv += sched.priv;
    res.reschedule = sched.reschedule;
    res.prev = sched.prev;
    res.next = sched.next;
    return res;
}

KernelResult
Kernel::deviceIrq(int cpu)
{
    (void)cpu;
    ++deviceIrqs_;
    KernelResult res;
    res.priv = config_.deviceIrqService;
    return res;
}

Tick
Kernel::nextDeviceIrqGap()
{
    if (config_.deviceIrqMeanPeriod == 0)
        return 0;
    // Exponential inter-arrival from the deterministic RNG.
    double u = rng_.real();
    if (u < 1e-12)
        u = 1e-12;
    double gap = -std::log(u) * static_cast<double>(
        config_.deviceIrqMeanPeriod);
    if (gap < 1.0)
        gap = 1.0;
    return static_cast<Tick>(gap);
}

} // namespace misp::os
