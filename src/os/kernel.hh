/**
 * @file
 * The operating-system model.
 *
 * The paper's evaluation treats the OS as a generator of *serializing
 * events* — system calls, page faults, timer interrupts and other
 * interrupts (Table 1) — each of which costs a Ring-0 episode (`priv` in
 * the Eq.1 overhead model) and, on a MISP processor, a suspension of all
 * AMSs. This kernel model provides exactly those behaviours:
 *
 *  - processes and threads with a global round-robin ready queue,
 *  - preemptive scheduling driven by per-CPU timer interrupts,
 *  - demand paging via AddressSpace (compulsory page faults),
 *  - a small syscall ABI (exit/write/yield/sleep/thread/futex),
 *  - context-switch costing, including the aggregate AMS save/restore
 *    the paper notes is the one piece of extra OS support MISP needs.
 *
 * The kernel is host-modeled: it manipulates guest-visible state and
 * charges cycle costs, but its own code is not interpreted guest code.
 * CPU drivers (MispSystem / SmpSystem) call in through the entry points
 * and apply the returned scheduling decisions.
 */

#ifndef MISP_OS_KERNEL_HH
#define MISP_OS_KERNEL_HH

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "os/process.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "snapshot/serialize.hh"

namespace misp::os {

/** MISA syscall numbers. */
enum class Sys : Word {
    ExitThread = 1,
    ExitProcess = 2,
    Write = 3,       ///< r0=fd, r1=buf, r2=len
    Yield = 4,
    Sleep = 5,       ///< r0=cycles
    ThreadCreate = 6,///< r0=eip, r1=esp, r2=arg -> tid
    ThreadJoin = 7,  ///< r0=tid
    FutexWait = 8,   ///< r0=addr, r1=expected -> 0 waited / 1 no-wait
    FutexWake = 9,   ///< r0=addr, r1=count -> woken
    GetTid = 10,
    Noop = 11,       ///< trap-and-return; models a trivial OS query
};

/** Ring-0 cycle-cost model and interrupt cadence. */
struct KernelConfig {
    Cycles syscallBase = 1200;   ///< trap + dispatch + return
    Cycles writePerByte = 2;     ///< added to Write
    Cycles pageFaultService = 4500; ///< VMA walk + frame alloc + map
    Cycles timerService = 2200;
    Cycles deviceIrqService = 1800;
    Cycles ctxSwitch = 3500;     ///< scheduler + address-space switch
    Tick timerPeriod = 3'000'000; ///< 1 kHz at the paper's 3.0 GHz
    unsigned quantumTicks = 2;   ///< timer ticks per scheduling quantum
    Tick deviceIrqMeanPeriod = 11'000'000; ///< 0 disables device IRQs
    std::uint64_t seed = 12345;
};

/** Decision returned by a kernel entry point; the CPU driver applies it. */
struct KernelResult {
    Cycles priv = 0;      ///< Ring-0 cycles to charge on this CPU
    Word retval = 0;      ///< syscall return value (into r0)
    bool reschedule = false; ///< the CPU must switch threads
    OsThread *prev = nullptr; ///< outgoing thread (save ctx unless Done)
    OsThread *next = nullptr; ///< incoming thread (nullptr = idle)
    bool fatalFault = false;  ///< unservicable fault (guest bug)
};

/** Callback interface for asynchronous wakeups. */
class KernelClient
{
  public:
    virtual ~KernelClient() = default;

    /** A thread became ready and @p cpu is idle: the driver should call
     *  pickNext() and load the result. */
    virtual void cpuWake(int cpu) = 0;
};

/** The OS model. */
class Kernel : public snap::Saveable
{
  public:
    Kernel(EventQueue &eq, mem::PhysicalMemory &pmem,
           const KernelConfig &config, stats::StatGroup *parent);
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    const KernelConfig &config() const { return config_; }

    void setClient(KernelClient *client) { client_ = client; }

    /** Register a schedulable CPU (an OMS or SMP core). @return id. */
    int addCpu();
    unsigned numCpus() const { return static_cast<unsigned>(current_.size()); }

    // ---- process / thread management ----------------------------------
    Process *createProcess(const std::string &name);
    /** Create a thread and enqueue it ready. Stack must be carved by the
     *  caller (runtime or loader). */
    OsThread *createThread(Process *proc, VAddr eip, VAddr esp, Word arg);

    /** Pop the next ready thread for @p cpu (nullptr = idle). Marks it
     *  Running on @p cpu. */
    OsThread *pickNext(int cpu);

    OsThread *current(int cpu) const { return current_[cpu]; }

    /** True while any thread of @p proc has not exited. */
    bool processAlive(const Process *proc) const;

    /** Lookup by stable identity (snapshot restore, harness targets). */
    Process *processByPid(Pid pid) const;
    OsThread *threadByTid(Tid tid) const;

    // ---- kernel entry points (driver calls these) ----------------------
    KernelResult syscall(int cpu, OsThread &t, Word number,
                         const std::array<Word, 4> &args);
    KernelResult pageFault(int cpu, OsThread &t, VAddr va, bool write);
    KernelResult timerTick(int cpu);
    KernelResult deviceIrq(int cpu);

    /** Next interval until a device IRQ (exponential, deterministic). */
    Tick nextDeviceIrqGap();

    /** Invoked when a process fully exits (harness completion hook). */
    void
    setProcessExitHook(std::function<void(Process *)> hook)
    {
        processExitHook_ = std::move(hook);
    }

    // ---- accounting -----------------------------------------------------
    std::uint64_t contextSwitches() const
    {
        return static_cast<std::uint64_t>(ctxSwitches_.value());
    }

    stats::StatGroup &statGroup() { return statGroup_; }

    // ---- snapshot -------------------------------------------------------
    /** Snapshot processes (including their address spaces and page
     *  tables), threads, the scheduler queues, futex/join wait queues,
     *  and the device-IRQ RNG. Pending sleep wakeups are tagged events
     *  restored by snapRestoreSleepWake(). */
    void snapSave(snap::Serializer &s) const override;
    void snapRestore(snap::Deserializer &d) override;

    /** Re-create one pending Sys::Sleep wakeup with its original
     *  delivery tick and queue insertion sequence. */
    void snapRestoreSleepWake(Tid tid, Tick when, std::uint64_t seq);

  private:
    struct FutexKey {
        Pid pid;
        VAddr addr;
        auto operator<=>(const FutexKey &) const = default;
    };

    void makeReady(OsThread *t);
    void wakeIdleCpu();
    KernelResult scheduleDecision(int cpu, bool force);
    void finishThread(OsThread &t);

    EventQueue &eq_;
    mem::PhysicalMemory &pmem_;
    KernelConfig config_;            ///< snap: config
    KernelClient *client_ = nullptr; ///< snap: config — wired at build
    Rng rng_;

    Pid nextPid_ = 1;
    Tid nextTid_ = 1;
    std::vector<std::unique_ptr<Process>> processes_;
    std::vector<std::unique_ptr<OsThread>> threads_;

    std::deque<OsThread *> ready_;
    std::vector<OsThread *> current_;

    std::map<FutexKey, std::deque<OsThread *>> futexQueues_;
    std::map<Tid, std::vector<OsThread *>> joiners_;
    /** snap: config — harness completion wiring, re-installed by
     *  the same build path that constructs the restore target. */
    std::function<void(Process *)> processExitHook_;

    stats::StatGroup statGroup_;
    stats::Scalar syscalls_;
    stats::Scalar pageFaults_;
    stats::Scalar timerIrqs_;
    stats::Scalar deviceIrqs_;
    stats::Scalar ctxSwitches_;
    stats::Scalar threadsCreated_;
    stats::Scalar badFaults_;
};

} // namespace misp::os

#endif // MISP_OS_KERNEL_HH
