#include "runner.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <filesystem>
#include <mutex>
#include <ostream>
#include <thread>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "snapshot/snapshot.hh"

namespace misp::driver {

namespace {

void
progressLine(std::ostream &os, std::size_t done, std::size_t total,
             const ScenarioPoint &pt, const PointResult &r)
{
    os << "[" << done << "/" << total << "] " << r.machine << " "
       << r.workload;
    if (!pt.coords.empty())
        os << " " << pt.coordString();
    os << " ticks=" << r.run.ticks << (r.run.valid ? "" : " INVALID")
       << "\n";
    os.flush();
}

/** The run-log's point identifier: machine:workload plus any swept
 *  coordinates — enough to join log lines back to result rows. */
std::string
runLogPoint(const ScenarioPoint &pt)
{
    std::string s = pt.machine.name + ":" + pt.workload.name;
    if (!pt.coords.empty())
        s += " " + pt.coordString();
    return s;
}

/** Emit one run-log line (no-op on a null log). Wall time and status
 *  are omitted from the JSON when left at their sentinels. */
void
logAttempt(obs::RunLog *log, const char *event, const ScenarioPoint &pt,
           int attempt, double wallMs = -1.0,
           const std::string &status = std::string())
{
    if (!log)
        return;
    obs::RunLogEntry e;
    e.event = event;
    e.point = runLogPoint(pt);
    e.attempt = attempt;
    e.wallMs = wallMs;
    e.status = status;
    log->log(e);
}

double
wallMsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

std::string
snapshotPointPath(const std::string &dir, std::size_t index)
{
    return dir + "/point_" + std::to_string(index) + ".misnap";
}

harness::RunRequest
makeRunRequest(const Scenario &sc, const ScenarioPoint &pt,
               const RunnerOptions &opts, std::size_t pointIndex)
{
    harness::RunRequest req;
    req.label = sc.name + "_" + pt.machine.name + "_" + pt.workload.name;
    if (pt.competitors)
        req.label += "_+" + std::to_string(pt.competitors);
    req.config = pt.machine.toSystemConfig();
    if (opts.forceEngine)
        req.config.misp.engine = opts.engine;
    req.backend = pt.machine.backend;
    req.target = {pt.workload.name, pt.workload.params};
    for (const WorkloadSpec &bg : pt.background)
        req.background.push_back({bg.name, bg.params});
    req.competitors = pt.competitors;
    req.competitor = pt.competitor;
    req.pinMinAms = pt.machine.pinMinAms;
    req.idealPlacement = pt.machine.idealPlacement;
    req.maxTicks = sc.maxTicks;
    req.hostLine = opts.hostLines;
    req.fullStats = opts.fullStats;
    if (!opts.snapshotSaveDir.empty()) {
        req.snapshotOut =
            snapshotPointPath(opts.snapshotSaveDir, pointIndex);
        req.warmupTicks = sc.snapshotWarmupTicks;
    }
    if (!opts.snapshotLoadDir.empty()) {
        req.snapshotIn =
            snapshotPointPath(opts.snapshotLoadDir, pointIndex);
    }
    // Trace defaults (categories, buffer bound) come from the spec's
    // [trace] section; whether anything records at all is the CLI's
    // call (--trace), and the skip cursor is CLI-only.
    req.trace = sc.trace;
    req.trace.enabled = opts.traceEnabled;
    req.traceSkip = opts.traceSkip;
    return req;
}

PointResult
ScenarioRunner::runPoint(const Scenario &sc, const ScenarioPoint &pt,
                         std::size_t pointIndex)
{
    PointResult out;
    out.machine = pt.machine.name;
    out.workload = pt.workload.name;
    out.competitors = pt.competitors;
    out.coords = pt.coords;
    out.run = harness::runOne(makeRunRequest(sc, pt, opts_, pointIndex));
    return out;
}

std::vector<PointResult>
ScenarioRunner::runAll(const Scenario &sc,
                       const std::vector<ScenarioPoint> &pts,
                       std::ostream *progress)
{
    if (opts_.isolate)
        return runIsolated(sc, pts, progress);

    std::vector<PointResult> results(pts.size());
    std::size_t jobs = std::max(1u, opts_.jobs);
    jobs = std::min(jobs, pts.size());

    if (jobs <= 1) {
        for (std::size_t i = 0; i < pts.size(); ++i) {
            logAttempt(opts_.runLog, "dispatched", pts[i], 1);
            auto ta = std::chrono::steady_clock::now();
            results[i] = runPoint(sc, pts[i], gridIndex(i));
            logAttempt(opts_.runLog, "completed", pts[i], 1,
                       wallMsSince(ta),
                       harness::runStatusName(results[i].run.status));
            if (progress)
                progressLine(*progress, i + 1, pts.size(), pts[i],
                             results[i]);
        }
        return results;
    }

    // Fan the grid out over a worker pool. Each point is an
    // independent deterministic simulation; results land at their
    // submission index, so emitter output is byte-identical to the
    // serial path. Only the progress lines (stderr) reflect completion
    // order.
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::mutex progressMutex;
    std::vector<std::exception_ptr> errors(pts.size());

    auto worker = [&] {
        for (;;) {
            // Stop claiming new points once any point has failed —
            // in-flight simulations finish, queued ones are abandoned
            // (the serial path would not have started them either).
            if (failed.load(std::memory_order_relaxed))
                return;
            std::size_t i = next.fetch_add(1);
            if (i >= pts.size())
                return;
            logAttempt(opts_.runLog, "dispatched", pts[i], 1);
            auto ta = std::chrono::steady_clock::now();
            try {
                results[i] = runPoint(sc, pts[i], gridIndex(i));
            } catch (...) {
                errors[i] = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                logAttempt(opts_.runLog, "failed", pts[i], 1,
                           wallMsSince(ta));
                done.fetch_add(1);
                continue;
            }
            logAttempt(opts_.runLog, "completed", pts[i], 1,
                       wallMsSince(ta),
                       harness::runStatusName(results[i].run.status));
            std::size_t completed = done.fetch_add(1) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progressMutex);
                progressLine(*progress, completed, pts.size(), pts[i],
                             results[i]);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t t = 0; t < jobs; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    // Surface the first failure in submission order, as the serial
    // path would have.
    for (std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

// ---------------------------------------------------------------------
// Supervised crash-isolated worker backend (--jobs N --isolate)
// ---------------------------------------------------------------------

namespace {

using SupervisorClock = std::chrono::steady_clock;

/** One live worker child: its pid, the read end of its result pipe,
 *  the grid point + attempt it owns, its wall-clock deadline, and the
 *  bytes received so far. */
struct IsolatedWorker {
    pid_t pid = -1;
    int fd = -1;
    std::size_t index = 0;
    unsigned attempt = 1;
    std::string buf;
    bool hasDeadline = false;
    SupervisorClock::time_point deadline{};
    SupervisorClock::time_point started{};
    bool timedOut = false;
};

/** A relaunch waiting out its backoff delay. */
struct PendingLaunch {
    std::size_t index = 0;
    unsigned attempt = 1;
    SupervisorClock::time_point launchAt{};
};

/** Write all of @p data to @p fd; false when the descriptor failed
 *  (closed pipe, I/O error). A worker whose payload cannot be shipped
 *  in full must exit non-zero — a silently dropped tail would leave
 *  the parent parsing a truncated record. */
bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** Milliseconds until @p when (>= 1 so a poll timeout can't busy-spin),
 *  folded into @p timeout (-1 = infinite). */
void
foldTimeout(SupervisorClock::time_point now,
            SupervisorClock::time_point when, int *timeout)
{
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  when - now)
                  .count();
    int t = ms <= 0 ? 0 : static_cast<int>(std::min<long long>(
                              ms + 1, 3600 * 1000));
    if (*timeout < 0 || t < *timeout)
        *timeout = t;
}

} // namespace

std::vector<PointResult>
ScenarioRunner::runIsolated(const Scenario &sc,
                            const std::vector<ScenarioPoint> &pts,
                            std::ostream *progress)
{
    std::vector<PointResult> results(pts.size());
    // Coordinates are parent-side facts; only the measured RunRecord
    // crosses the process boundary.
    for (std::size_t i = 0; i < pts.size(); ++i) {
        results[i].machine = pts[i].machine.name;
        results[i].workload = pts[i].workload.name;
        results[i].competitors = pts[i].competitors;
        results[i].coords = pts[i].coords;
    }

    // Resolve supervision knobs: explicit CLI values override the
    // scenario's [run] defaults.
    const std::uint64_t deadlineMs =
        opts_.deadlineMs >= 0 ? static_cast<std::uint64_t>(opts_.deadlineMs)
                              : sc.pointDeadlineMs;
    const unsigned retries = opts_.retries >= 0
                                 ? static_cast<unsigned>(opts_.retries)
                                 : sc.retries;
    const unsigned backoffMs =
        opts_.backoffMs >= 0 ? static_cast<unsigned>(opts_.backoffMs)
                             : sc.retryBackoffMs;
    FaultPlan plan = sc.faults;
    plan.merge(opts_.faults);

    // A worker SIGKILLed mid-write (deadline expiry) leaves the parent
    // holding a half-open pipe; conversely a dying parent must not let
    // a worker's write turn into a fatal SIGPIPE in either process.
    // Ignore it for the duration and restore the old disposition after.
    struct sigaction ignorePipe {};
    struct sigaction savedPipe {};
    ignorePipe.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignorePipe, &savedPipe);

    // Children inherit stdio buffers; empty them now so a child's
    // exit can never replay parent output.
    std::fflush(stdout);
    std::fflush(stderr);

    const std::size_t jobs =
        std::min<std::size_t>(std::max(1u, opts_.jobs), pts.size());
    std::vector<IsolatedWorker> live;
    std::deque<PendingLaunch> pending;
    std::size_t next = 0;
    std::size_t done = 0;

    auto failRecord = [](harness::RunStatus status,
                         const std::string &why) {
        harness::RunRecord rec;
        rec.status = status;
        rec.valid = false;
        rec.note = why;
        return rec;
    };

    // The single sink for a finished attempt: retry transient failures
    // while the budget lasts, otherwise finalize the point with its
    // attempt count (and a give-up note when retries were spent).
    auto completeOrRetry = [&](std::size_t index, unsigned attempt,
                               harness::RunRecord rec,
                               double wallMs = -1.0) {
        if (harness::runStatusIsInfraFailure(rec.status) &&
            attempt <= retries) {
            const auto delay = std::chrono::milliseconds(
                static_cast<std::uint64_t>(backoffMs)
                << (attempt - 1));
            if (opts_.runLog) {
                obs::RunLogEntry e;
                e.event = "retried";
                e.point = runLogPoint(pts[index]);
                e.attempt = static_cast<int>(attempt);
                e.wallMs = wallMs;
                e.backoffMs = static_cast<long>(delay.count());
                e.status = harness::runStatusName(rec.status);
                opts_.runLog->log(e);
            }
            pending.push_back(
                {index, attempt + 1, SupervisorClock::now() + delay});
            return;
        }
        logAttempt(opts_.runLog, "completed", pts[index],
                   static_cast<int>(attempt), wallMs,
                   harness::runStatusName(rec.status));
        rec.attempts = attempt;
        if (harness::runStatusIsInfraFailure(rec.status) && attempt > 1)
            rec.note = "gave up after " + std::to_string(attempt) +
                       " attempts: " + rec.note;
        results[index].run = std::move(rec);
        ++done;
        if (progress) {
            progressLine(*progress, done, pts.size(), pts[index],
                         results[index]);
        }
    };

    auto launch = [&](std::size_t index, unsigned attempt) {
        // Every launch attempt gets exactly one "dispatched" line (pid
        // -1 when the worker never forked), so a point's dispatched
        // count in the run log always equals its RunRecord::attempts.
        auto logDispatch = [&](long pid) {
            if (!opts_.runLog)
                return;
            obs::RunLogEntry e;
            e.event = "dispatched";
            e.point = runLogPoint(pts[index]);
            e.attempt = static_cast<int>(attempt);
            e.pid = pid;
            opts_.runLog->log(e);
        };
        // Fault decisions are made parent-side, pre-fork: the child
        // inherits `fault` through fork() memory, and parent-side
        // kinds (fork_fail) never spawn at all.
        FaultKind fault{};
        const bool faulted =
            plan.faultFor(gridIndex(index), attempt, &fault);
        if (faulted && fault == FaultKind::ForkFail) {
            logDispatch(-1);
            completeOrRetry(index, attempt,
                            failRecord(harness::RunStatus::WorkerCrashed,
                                       "fork() failed (injected)"));
            return;
        }
        int fds[2];
        if (::pipe(fds) != 0) {
            logDispatch(-1);
            completeOrRetry(index, attempt,
                            failRecord(harness::RunStatus::WorkerCrashed,
                                       "pipe() failed"));
            return;
        }
        pid_t pid = ::fork();
        if (pid < 0) {
            ::close(fds[0]);
            ::close(fds[1]);
            logDispatch(-1);
            completeOrRetry(index, attempt,
                            failRecord(harness::RunStatus::WorkerCrashed,
                                       "fork() failed"));
            return;
        }
        if (pid == 0) {
            // Worker child: one point, result over the pipe, hard exit
            // (no parent-side destructors or buffers to double-flush).
            ::close(fds[0]);
            if (faulted && fault == FaultKind::Crash)
                ::abort();
            if (faulted && fault == FaultKind::Hang) {
                // Never compute, never write: the supervisor's
                // deadline is the only way out.
                for (;;)
                    ::pause();
            }
            int code = 0;
            try {
                harness::RunRequest req = makeRunRequest(
                    sc, pts[index], opts_, gridIndex(index));
                if (faulted && fault == FaultKind::CorruptSnapshot) {
                    // Drive the run layer's real fail-closed restore
                    // path rather than faking a status.
                    req.snapshotIn = snapshotPointPath(
                        "/nonexistent-injected-fault",
                        gridIndex(index));
                }
                harness::RunRecord rec = harness::runOne(req);
                std::string payload = snap::encodeRunRecord(rec);
                if (faulted && fault == FaultKind::CorruptPipe) {
                    // Ship garbage the parent must reject: truncate to
                    // half and flip a byte so neither the CRC nor the
                    // length check can pass.
                    payload.resize(payload.size() / 2);
                    if (!payload.empty())
                        payload[0] ^= 0x5a;
                }
                if (!writeAll(fds[1], payload))
                    code = 3;
            } catch (const std::exception &e) {
                std::fprintf(stderr, "mispsim worker [%zu]: %s\n", index,
                             e.what());
                code = 3;
            } catch (...) {
                code = 3;
            }
            ::close(fds[1]);
            // Flush only what this child wrote (HOST/diagnostic lines);
            // inherited parent buffer content was flushed before the
            // fork and must not be emitted a second time.
            std::fflush(stderr);
            ::_exit(code);
        }
        ::close(fds[1]);
        logDispatch(pid);
        IsolatedWorker w;
        w.pid = pid;
        w.fd = fds[0];
        w.index = index;
        w.attempt = attempt;
        w.started = SupervisorClock::now();
        if (deadlineMs > 0) {
            w.hasDeadline = true;
            w.deadline = w.started + std::chrono::milliseconds(deadlineMs);
        }
        live.push_back(std::move(w));
    };

    auto reap = [&](IsolatedWorker &w) {
        // Drain whatever is left, then collect the exit status.
        char chunk[65536];
        for (;;) {
            ssize_t n = ::read(w.fd, chunk, sizeof(chunk));
            if (n > 0) {
                w.buf.append(chunk, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        ::close(w.fd);
        int status = 0;
        ::waitpid(w.pid, &status, 0);

        harness::RunRecord rec;
        std::string err;
        if (w.timedOut) {
            rec = failRecord(harness::RunStatus::WorkerTimeout,
                             "worker exceeded " +
                                 std::to_string(deadlineMs) +
                                 "ms deadline");
        } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            rec = failRecord(
                harness::RunStatus::WorkerCrashed,
                WIFSIGNALED(status)
                    ? "worker killed by signal " +
                          std::to_string(WTERMSIG(status))
                    : "worker exited with status " +
                          std::to_string(WIFEXITED(status)
                                             ? WEXITSTATUS(status)
                                             : -1));
        } else if (!snap::decodeRunRecord(w.buf, &rec, &err)) {
            // Truncated or corrupted payloads fail closed here — the
            // codec checks structure, CRC, and exact length.
            rec = failRecord(harness::RunStatus::WorkerCrashed,
                             "worker result undecodable: " + err);
        }
        const double wallMs =
            std::chrono::duration<double, std::milli>(
                SupervisorClock::now() - w.started)
                .count();
        completeOrRetry(w.index, w.attempt, std::move(rec), wallMs);
    };

    while (done < pts.size()) {
        // Fill free worker slots: due retries first (they are older
        // work), then fresh points in submission order.
        auto now = SupervisorClock::now();
        while (live.size() < jobs) {
            if (!pending.empty() && pending.front().launchAt <= now) {
                PendingLaunch p = pending.front();
                pending.pop_front();
                launch(p.index, p.attempt);
            } else if (next < pts.size()) {
                launch(next++, 1);
            } else {
                break;
            }
            now = SupervisorClock::now();
        }

        if (live.empty()) {
            if (pending.empty())
                break; // nothing running, nothing scheduled
            // Sleep out the earliest backoff delay.
            int timeout = -1;
            for (const PendingLaunch &p : pending)
                foldTimeout(now, p.launchAt, &timeout);
            ::poll(nullptr, 0, timeout);
            continue;
        }

        // Wake for pipe traffic, the earliest worker deadline, or the
        // earliest pending relaunch — whichever comes first.
        int timeout = -1;
        for (const IsolatedWorker &w : live)
            if (w.hasDeadline && !w.timedOut)
                foldTimeout(now, w.deadline, &timeout);
        for (const PendingLaunch &p : pending)
            foldTimeout(now, p.launchAt, &timeout);

        std::vector<pollfd> fds(live.size());
        for (std::size_t i = 0; i < live.size(); ++i)
            fds[i] = pollfd{live[i].fd, POLLIN, 0};
        if (::poll(fds.data(), fds.size(), timeout) < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        // Read ready pipes; a closed write end (EOF) means the worker
        // is finishing — reap it.
        for (std::size_t i = live.size(); i-- > 0;) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            char chunk[65536];
            ssize_t n = ::read(live[i].fd, chunk, sizeof(chunk));
            if (n > 0) {
                live[i].buf.append(chunk, static_cast<std::size_t>(n));
            } else if (n == 0 || (n < 0 && errno != EINTR)) {
                reap(live[i]);
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(i));
            }
        }
        // Enforce deadlines: SIGKILL expired workers. The kill closes
        // their pipe's write end, so the normal EOF path reaps them on
        // the next iteration with the timeout flag set.
        now = SupervisorClock::now();
        for (IsolatedWorker &w : live) {
            if (w.hasDeadline && !w.timedOut && now >= w.deadline) {
                w.timedOut = true;
                if (opts_.runLog) {
                    obs::RunLogEntry e;
                    e.event = "timed_out";
                    e.point = runLogPoint(pts[w.index]);
                    e.attempt = static_cast<int>(w.attempt);
                    e.pid = w.pid;
                    e.wallMs = std::chrono::duration<double, std::milli>(
                                   now - w.started)
                                   .count();
                    opts_.runLog->log(e);
                }
                ::kill(w.pid, SIGKILL);
            }
        }
    }

    ::sigaction(SIGPIPE, &savedPipe, nullptr);
    return results;
}

const PointResult *
findResult(const std::vector<PointResult> &results,
           const std::string &machine, const std::string &workload,
           unsigned competitors)
{
    for (const PointResult &r : results) {
        if (r.machine == machine && r.workload == workload &&
            r.competitors == competitors)
            return &r;
    }
    return nullptr;
}

const PointResult *
findResultCoords(const std::vector<PointResult> &results,
                 const std::string &machine,
                 const std::vector<std::pair<std::string, std::string>>
                     &coords)
{
    for (const PointResult &r : results) {
        if (r.machine != machine)
            continue;
        bool match = true;
        for (const auto &want : coords) {
            bool found = false;
            for (const auto &have : r.coords)
                found = found || have == want;
            match = match && found;
        }
        if (match)
            return &r;
    }
    return nullptr;
}

harness::MetricFrame
buildMetricFrame(const Scenario &sc,
                 const std::vector<PointResult> &results)
{
    harness::MetricFrame frame;
    for (const PointResult &r : results)
        frame.addRow(r.machine, r.workload, r.competitors, r.coords,
                     r.run);
    frame.finalize(sc.report.baselineMachine);
    return frame;
}

void
writeJson(std::ostream &os, const Scenario &sc, bool quickMode,
          const harness::MetricFrame &frame)
{
    os << "{\n";
    os << "  \"scenario\": " << stats::jsonQuote(sc.name) << ",\n";
    os << "  \"title\": " << stats::jsonQuote(sc.title) << ",\n";
    os << "  \"quick\": " << (quickMode ? "true" : "false") << ",\n";
    os << "  \"points\": [";
    for (std::size_t i = 0; i < frame.numRows(); ++i) {
        const harness::MetricFrame::Row &r = frame.row(i);
        os << (i ? ",\n" : "\n");
        os << "    {\n";
        os << "      \"machine\": " << stats::jsonQuote(r.machine) << ",\n";
        os << "      \"workload\": " << stats::jsonQuote(r.workload) << ",\n";
        os << "      \"competitors\": " << r.competitors << ",\n";
        os << "      \"coords\": {";
        for (std::size_t c = 0; c < r.coords.size(); ++c) {
            os << (c ? ", " : "") << stats::jsonQuote(r.coords[c].first) << ": "
               << stats::jsonQuote(r.coords[c].second);
        }
        os << "},\n";
        os << "      \"status\": "
           << stats::jsonQuote(harness::runStatusName(r.status)) << ",\n";
        os << "      \"ticks\": "
           << static_cast<std::uint64_t>(frame.at(i, "ticks")) << ",\n";
        os << "      \"valid\": "
           << (frame.at(i, "valid") != 0.0 ? "true" : "false") << ",\n";
        os << "      \"insts_retired\": "
           << static_cast<std::uint64_t>(frame.at(i, "insts")) << ",\n";
        const std::vector<harness::EventField> &fields =
            harness::eventFields();
        os << "      \"events\": {\n";
        for (std::size_t f = 0; f < fields.size(); ++f) {
            os << "        \"" << fields[f].name << "\": ";
            double v =
                frame.at(i, std::string("events.") + fields[f].name);
            if (fields[f].cycles) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.0f", v);
                os << buf;
            } else {
                os << static_cast<std::uint64_t>(v);
            }
            os << (f + 1 < fields.size() ? ",\n" : "\n");
        }
        os << "      }";
        if (!r.statsJson.empty())
            os << ",\n      \"stats\": " << r.statsJson;
        os << "\n    }";
    }
    os << "\n  ]\n}\n";
}

void
writeMetricsJson(std::ostream &os, const Scenario &sc, bool quickMode,
                 const harness::MetricFrame &frame)
{
    os << "{\n";
    os << "  \"scenario\": " << stats::jsonQuote(sc.name) << ",\n";
    os << "  \"title\": " << stats::jsonQuote(sc.title) << ",\n";
    os << "  \"quick\": " << (quickMode ? "true" : "false") << ",\n";
    os << "  \"frame\":\n";
    frame.writeJson(os);
    os << "}\n";
}

void
writeTable(std::ostream &os, const Scenario &sc,
           const harness::MetricFrame &frame, bool markdown)
{
    if (frame.numRows() == 0) {
        os << "(no points)\n";
        return;
    }

    // Column set: machine, workload, swept coords, Mcycles, then the
    // [report]-requested speedups.
    std::vector<std::string> coordKeys;
    for (const auto &[key, value] : frame.row(0).coords) {
        (void)value;
        if (key != "workload.name") // already the workload column
            coordKeys.push_back(key);
    }
    const bool vsMachine = !sc.report.baselineMachine.empty();
    const bool vsAxis = !sc.report.baselineAxis.empty();
    bool anyInvalid = false;
    bool anyFailed = false;
    for (std::size_t i = 0; i < frame.numRows(); ++i) {
        anyInvalid = anyInvalid || frame.at(i, "valid") == 0.0;
        anyFailed = anyFailed || frame.at(i, "failed") != 0.0;
    }

    std::vector<std::string> header = {"machine", "workload"};
    for (const std::string &k : coordKeys)
        header.push_back(k);
    header.push_back("Mcycles");
    if (vsMachine)
        header.push_back("speedup_vs_" + sc.report.baselineMachine);
    if (vsAxis)
        header.push_back("vs_" + sc.report.baselineAxis + "0");
    if (anyInvalid)
        header.push_back("valid");
    if (anyFailed)
        header.push_back("status");

    using Frame = harness::MetricFrame;
    // One row's cells at a time — the table streams in two passes
    // (width scan, then emission) instead of materializing the sweep.
    auto formatRow = [&](std::size_t i) {
        const Frame::Row &r = frame.row(i);
        std::vector<std::string> row = {r.machine, r.workload};
        for (const std::string &k : coordKeys) {
            std::string v;
            for (const auto &[ck, cv] : r.coords) {
                if (ck == k)
                    v = cv;
            }
            row.push_back(v);
        }
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.3f", frame.at(i, "mcycles"));
        row.push_back(buf);
        if (vsMachine) {
            // The frame's derived speedup column is already relative
            // to the [report] baseline machine of this row's group.
            std::size_t base = frame.rowInGroup(
                r.group, sc.report.baselineMachine);
            if (base != Frame::npos && frame.at(i, "ticks") != 0.0)
                std::snprintf(buf, sizeof(buf), "%.3f",
                              frame.at(i, "speedup"));
            else
                std::snprintf(buf, sizeof(buf), "-");
            row.push_back(buf);
        }
        if (vsAxis) {
            std::size_t base =
                frame.axisBaselineRow(i, sc.report.baselineAxis);
            if (base != Frame::npos && frame.at(i, "ticks") != 0.0)
                std::snprintf(buf, sizeof(buf), "%.3f",
                              frame.speedupOf(i, base));
            else
                std::snprintf(buf, sizeof(buf), "-");
            row.push_back(buf);
        }
        if (anyInvalid)
            row.push_back(frame.at(i, "valid") != 0.0 ? "yes" : "NO");
        if (anyFailed)
            row.push_back(harness::runStatusName(r.status));
        return row;
    };

    // Markdown needs no alignment, so the width pass only runs for
    // the plain-text renderer.
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    if (!markdown) {
        for (std::size_t i = 0; i < frame.numRows(); ++i) {
            const std::vector<std::string> row = formatRow(i);
            for (std::size_t c = 0; c < row.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto emitRow = [&](const std::vector<std::string> &row) {
        if (markdown) {
            os << "|";
            for (std::size_t c = 0; c < row.size(); ++c)
                os << " " << row[c] << " |";
            os << "\n";
        } else {
            for (std::size_t c = 0; c < row.size(); ++c) {
                os << (c ? "  " : "");
                os << row[c]
                   << std::string(widths[c] - row[c].size(), ' ');
            }
            os << "\n";
        }
    };

    if (!sc.title.empty())
        os << (markdown ? "### " : "") << sc.title << "\n\n";
    emitRow(header);
    if (markdown) {
        os << "|";
        for (std::size_t c = 0; c < header.size(); ++c)
            os << " --- |";
        os << "\n";
    } else {
        std::size_t total = 0;
        for (std::size_t c = 0; c < widths.size(); ++c)
            total += widths[c] + (c ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (std::size_t i = 0; i < frame.numRows(); ++i)
        emitRow(formatRow(i));
}

void
writePoints(std::ostream &os, const harness::MetricFrame &frame)
{
    for (std::size_t i = 0; i < frame.numRows(); ++i) {
        const harness::MetricFrame::Row &r = frame.row(i);
        // All swept coordinates ride along (';'-joined, '-' when there
        // are none) so lines stay unambiguous for axes beyond
        // workload.name/competitors (e.g. machine.signal_cycles).
        std::string coords;
        for (const auto &[key, value] : r.coords) {
            if (!coords.empty())
                coords += ";";
            coords += key + "=" + value;
        }
        os << "machine=" << r.machine << " workload=" << r.workload
           << " competitors=" << r.competitors << " coords="
           << (coords.empty() ? "-" : coords) << " ticks="
           << static_cast<std::uint64_t>(frame.at(i, "ticks"))
           << " valid=" << (frame.at(i, "valid") != 0.0 ? 1 : 0);
        // Surviving points keep the legacy line format byte-for-byte;
        // only infrastructure-failed points grow a status marker, so
        // `grep -v ' status='` recovers the clean-run-comparable set.
        if (frame.at(i, "failed") != 0.0)
            os << " status=" << harness::runStatusName(r.status);
        os << "\n";
    }
}

std::string
findScenarioFile(const std::string &nameOrPath, const char *argv0)
{
    namespace fs = std::filesystem;
    std::vector<fs::path> candidates;
    candidates.emplace_back(nameOrPath);
    for (const char *prefix :
         {"scenarios/", "../scenarios/", "../../scenarios/"})
        candidates.emplace_back(prefix + nameOrPath);
    if (argv0 && argv0[0]) {
        fs::path exeDir = fs::path(argv0).parent_path();
        candidates.push_back(exeDir / "scenarios" / nameOrPath);
        candidates.push_back(exeDir / ".." / "scenarios" / nameOrPath);
        candidates.push_back(exeDir / ".." / ".." / "scenarios" /
                             nameOrPath);
    }
    for (const fs::path &p : candidates) {
        std::error_code ec;
        if (fs::exists(p, ec) && fs::is_regular_file(p, ec))
            return p.string();
    }
    return "";
}

bool
runScenarioByName(const std::string &nameOrPath, const char *argv0,
                  bool quick, const RunnerOptions &opts, const char *tool,
                  Scenario *sc, std::vector<PointResult> *results)
{
    std::string path = findScenarioFile(nameOrPath, argv0);
    if (path.empty()) {
        std::fprintf(stderr,
                     "%s: scenario '%s' not found (run from the repo "
                     "root)\n",
                     tool, nameOrPath.c_str());
        return false;
    }
    SpecFile spec;
    std::vector<ScenarioPoint> grid;
    std::string err;
    if (!SpecFile::parseFile(path, &spec, &err) ||
        !Scenario::fromSpec(spec, sc, &err) ||
        !sc->expandPoints(quick, &grid, &err)) {
        std::fprintf(stderr, "%s: %s\n", tool, err.c_str());
        return false;
    }
    *results = ScenarioRunner(opts).runAll(*sc, grid);
    return true;
}

} // namespace misp::driver
