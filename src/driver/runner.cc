#include "runner.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <ostream>
#include <sstream>

#include "harness/experiment.hh"

namespace misp::driver {

namespace {

std::string
jsonString(const std::string &s)
{
    return "\"" + stats::jsonEscape(s) + "\"";
}

bool
sameCoords(const PointResult &r,
           const std::vector<std::pair<std::string, std::string>> &coords)
{
    return r.coords == coords;
}

/** Baseline for [report] baseline_axis: the first result (grid order =
 *  first axis value) on the same machine with the same non-axis
 *  coordinates. */
const PointResult *
axisBaseline(const std::vector<PointResult> &results, const PointResult &r,
             const std::string &axis)
{
    for (const PointResult &cand : results) {
        if (cand.machine != r.machine ||
            cand.coords.size() != r.coords.size())
            continue;
        bool match = true;
        for (std::size_t i = 0; i < cand.coords.size(); ++i) {
            if (cand.coords[i].first == axis)
                continue;
            match = match && cand.coords[i] == r.coords[i];
        }
        if (match)
            return &cand;
    }
    return nullptr;
}

const PointResult *
machineBaseline(const std::vector<PointResult> &results,
                const PointResult &r, const std::string &machine)
{
    for (const PointResult &cand : results) {
        if (cand.machine == machine && sameCoords(cand, r.coords))
            return &cand;
    }
    return nullptr;
}

} // namespace

PointResult
ScenarioRunner::runPoint(const Scenario &sc, const ScenarioPoint &pt)
{
    const wl::WorkloadInfo *info = wl::findWorkload(pt.workload.name);
    MISP_ASSERT(info != nullptr); // expandPoints validated the name

    wl::Workload w = info->build(pt.workload.params);

    arch::SystemConfig sys = pt.machine.toSystemConfig();
    if (opts_.noDecodeCache)
        sys.misp.decodeCache = false;
    harness::Experiment exp(sys, pt.machine.backend);

    // Placement policy (Figure 7, §5.4): pin the target to processors
    // with enough AMSs; optionally keep competitors off those CPUs.
    std::vector<int> targetAffinity;
    std::vector<int> otherCpus;
    if (pt.machine.pinMinAms > 0) {
        for (unsigned i = 0; i < exp.system().numProcessors(); ++i) {
            int cpu = exp.system().processor(i).cpuId();
            if (exp.system().processor(i).numAms() >= pt.machine.pinMinAms)
                targetAffinity.push_back(cpu);
            else
                otherCpus.push_back(cpu);
        }
    }
    harness::LoadedProcess proc = exp.load(w.app, targetAffinity);

    for (const WorkloadSpec &bg : pt.background) {
        const wl::WorkloadInfo *bgInfo = wl::findWorkload(bg.name);
        MISP_ASSERT(bgInfo != nullptr);
        exp.load(bgInfo->build(bg.params).app);
    }

    const wl::WorkloadInfo *comp = wl::findWorkload(pt.competitor);
    for (unsigned c = 0; c < pt.competitors; ++c) {
        std::vector<int> affinity;
        if (pt.machine.idealPlacement && !otherCpus.empty())
            affinity = otherCpus;
        wl::WorkloadParams compParams;
        exp.load(comp->build(compParams).app, affinity);
    }

    PointResult out;
    out.machine = pt.machine.name;
    out.workload = pt.workload.name;
    out.competitors = pt.competitors;
    out.coords = pt.coords;

    auto t0 = std::chrono::steady_clock::now();
    out.ticks = exp.run(proc.process, sc.maxTicks);
    auto t1 = std::chrono::steady_clock::now();
    out.instsRetired = exp.totalInstsRetired();
    out.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    out.hostMips = out.hostSeconds > 0.0
                       ? out.instsRetired / out.hostSeconds / 1e6
                       : 0.0;
    if (opts_.hostLines) {
        std::string name = sc.name + "_" + out.machine + "_" + out.workload;
        if (out.competitors)
            name += "_+" + std::to_string(out.competitors);
        harness::reportHost(name, out.instsRetired, out.hostSeconds,
                            sys.misp.decodeCache);
    }

    out.valid = !w.validate || w.validate(proc.process->addressSpace());

    out.events = harness::snapshotEvents(exp.system().processor(0));

    if (opts_.fullStats) {
        std::ostringstream ss;
        exp.system().rootStats().dumpJson(ss);
        out.statsJson = ss.str();
    }
    return out;
}

std::vector<PointResult>
ScenarioRunner::runAll(const Scenario &sc,
                       const std::vector<ScenarioPoint> &pts,
                       std::ostream *progress)
{
    std::vector<PointResult> results;
    results.reserve(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        PointResult r = runPoint(sc, pts[i]);
        if (progress) {
            *progress << "[" << (i + 1) << "/" << pts.size() << "] "
                      << r.machine << " " << r.workload;
            if (!pts[i].coords.empty())
                *progress << " " << pts[i].coordString();
            *progress << " ticks=" << r.ticks
                      << (r.valid ? "" : " INVALID") << "\n";
            progress->flush();
        }
        results.push_back(std::move(r));
    }
    return results;
}

const PointResult *
findResult(const std::vector<PointResult> &results,
           const std::string &machine, const std::string &workload,
           unsigned competitors)
{
    for (const PointResult &r : results) {
        if (r.machine == machine && r.workload == workload &&
            r.competitors == competitors)
            return &r;
    }
    return nullptr;
}

void
writeJson(std::ostream &os, const Scenario &sc, bool quickMode,
          const std::vector<PointResult> &results)
{
    os << "{\n";
    os << "  \"scenario\": " << jsonString(sc.name) << ",\n";
    os << "  \"title\": " << jsonString(sc.title) << ",\n";
    os << "  \"quick\": " << (quickMode ? "true" : "false") << ",\n";
    os << "  \"points\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const PointResult &r = results[i];
        os << (i ? ",\n" : "\n");
        os << "    {\n";
        os << "      \"machine\": " << jsonString(r.machine) << ",\n";
        os << "      \"workload\": " << jsonString(r.workload) << ",\n";
        os << "      \"competitors\": " << r.competitors << ",\n";
        os << "      \"coords\": {";
        for (std::size_t c = 0; c < r.coords.size(); ++c) {
            os << (c ? ", " : "") << jsonString(r.coords[c].first) << ": "
               << jsonString(r.coords[c].second);
        }
        os << "},\n";
        os << "      \"ticks\": " << r.ticks << ",\n";
        os << "      \"valid\": " << (r.valid ? "true" : "false") << ",\n";
        os << "      \"insts_retired\": " << r.instsRetired << ",\n";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6f", r.hostSeconds);
        os << "      \"host_seconds\": " << buf << ",\n";
        std::snprintf(buf, sizeof(buf), "%.3f", r.hostMips);
        os << "      \"host_mips\": " << buf << ",\n";
        const harness::EventSnapshot &ev = r.events;
        os << "      \"events\": {\n";
        os << "        \"oms_syscalls\": " << ev.omsSyscalls << ",\n";
        os << "        \"oms_page_faults\": " << ev.omsPageFaults
           << ",\n";
        os << "        \"timer\": " << ev.timer << ",\n";
        os << "        \"interrupts\": " << ev.interrupts << ",\n";
        os << "        \"ams_syscalls\": " << ev.amsSyscalls << ",\n";
        os << "        \"ams_page_faults\": " << ev.amsPageFaults
           << ",\n";
        os << "        \"serializations\": " << ev.serializations
           << ",\n";
        std::snprintf(buf, sizeof(buf), "%.0f", ev.serializeCycles);
        os << "        \"serialize_cycles\": " << buf << ",\n";
        std::snprintf(buf, sizeof(buf), "%.0f", ev.privCycles);
        os << "        \"priv_cycles\": " << buf << ",\n";
        std::snprintf(buf, sizeof(buf), "%.0f", ev.proxySignalCycles);
        os << "        \"proxy_signal_cycles\": " << buf << ",\n";
        os << "        \"proxy_requests\": " << ev.proxyRequests << "\n";
        os << "      }";
        if (!r.statsJson.empty())
            os << ",\n      \"stats\": " << r.statsJson;
        os << "\n    }";
    }
    os << "\n  ]\n}\n";
}

void
writeTable(std::ostream &os, const Scenario &sc,
           const std::vector<PointResult> &results, bool markdown)
{
    if (results.empty()) {
        os << "(no points)\n";
        return;
    }

    // Column set: machine, workload, swept coords, Mcycles, then the
    // [report]-requested speedups.
    std::vector<std::string> coordKeys;
    for (const auto &[key, value] : results.front().coords) {
        (void)value;
        if (key != "workload.name") // already the workload column
            coordKeys.push_back(key);
    }
    const bool vsMachine = !sc.report.baselineMachine.empty();
    const bool vsAxis = !sc.report.baselineAxis.empty();
    bool anyInvalid = false;
    for (const PointResult &r : results)
        anyInvalid = anyInvalid || !r.valid;

    std::vector<std::string> header = {"machine", "workload"};
    for (const std::string &k : coordKeys)
        header.push_back(k);
    header.push_back("Mcycles");
    if (vsMachine)
        header.push_back("speedup_vs_" + sc.report.baselineMachine);
    if (vsAxis)
        header.push_back("vs_" + sc.report.baselineAxis + "0");
    if (anyInvalid)
        header.push_back("valid");

    std::vector<std::vector<std::string>> rows;
    for (const PointResult &r : results) {
        std::vector<std::string> row = {r.machine, r.workload};
        for (const std::string &k : coordKeys) {
            std::string v;
            for (const auto &[ck, cv] : r.coords) {
                if (ck == k)
                    v = cv;
            }
            row.push_back(v);
        }
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.3f", r.ticks / 1e6);
        row.push_back(buf);
        if (vsMachine) {
            const PointResult *base =
                machineBaseline(results, r, sc.report.baselineMachine);
            if (base && r.ticks)
                std::snprintf(buf, sizeof(buf), "%.3f",
                              double(base->ticks) / double(r.ticks));
            else
                std::snprintf(buf, sizeof(buf), "-");
            row.push_back(buf);
        }
        if (vsAxis) {
            const PointResult *base =
                axisBaseline(results, r, sc.report.baselineAxis);
            if (base && r.ticks)
                std::snprintf(buf, sizeof(buf), "%.3f",
                              double(base->ticks) / double(r.ticks));
            else
                std::snprintf(buf, sizeof(buf), "-");
            row.push_back(buf);
        }
        if (anyInvalid)
            row.push_back(r.valid ? "yes" : "NO");
        rows.push_back(std::move(row));
    }

    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c) {
        widths[c] = header[c].size();
        for (const auto &row : rows)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emitRow = [&](const std::vector<std::string> &row) {
        if (markdown) {
            os << "|";
            for (std::size_t c = 0; c < row.size(); ++c)
                os << " " << row[c] << " |";
            os << "\n";
        } else {
            for (std::size_t c = 0; c < row.size(); ++c) {
                os << (c ? "  " : "");
                os << row[c]
                   << std::string(widths[c] - row[c].size(), ' ');
            }
            os << "\n";
        }
    };

    if (!sc.title.empty())
        os << (markdown ? "### " : "") << sc.title << "\n\n";
    emitRow(header);
    if (markdown) {
        os << "|";
        for (std::size_t c = 0; c < header.size(); ++c)
            os << " --- |";
        os << "\n";
    } else {
        std::size_t total = 0;
        for (std::size_t c = 0; c < widths.size(); ++c)
            total += widths[c] + (c ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows)
        emitRow(row);
}

void
writePoints(std::ostream &os, const std::vector<PointResult> &results)
{
    for (const PointResult &r : results) {
        // All swept coordinates ride along (';'-joined, '-' when there
        // are none) so lines stay unambiguous for axes beyond
        // workload.name/competitors (e.g. machine.signal_cycles).
        std::string coords;
        for (const auto &[key, value] : r.coords) {
            if (!coords.empty())
                coords += ";";
            coords += key + "=" + value;
        }
        os << "machine=" << r.machine << " workload=" << r.workload
           << " competitors=" << r.competitors << " coords="
           << (coords.empty() ? "-" : coords) << " ticks=" << r.ticks
           << " valid=" << (r.valid ? 1 : 0) << "\n";
    }
}

std::string
findScenarioFile(const std::string &nameOrPath, const char *argv0)
{
    namespace fs = std::filesystem;
    std::vector<fs::path> candidates;
    candidates.emplace_back(nameOrPath);
    for (const char *prefix :
         {"scenarios/", "../scenarios/", "../../scenarios/"})
        candidates.emplace_back(prefix + nameOrPath);
    if (argv0 && argv0[0]) {
        fs::path exeDir = fs::path(argv0).parent_path();
        candidates.push_back(exeDir / "scenarios" / nameOrPath);
        candidates.push_back(exeDir / ".." / "scenarios" / nameOrPath);
        candidates.push_back(exeDir / ".." / ".." / "scenarios" /
                             nameOrPath);
    }
    for (const fs::path &p : candidates) {
        std::error_code ec;
        if (fs::exists(p, ec) && fs::is_regular_file(p, ec))
            return p.string();
    }
    return "";
}

bool
runScenarioByName(const std::string &nameOrPath, const char *argv0,
                  bool quick, const RunnerOptions &opts, const char *tool,
                  Scenario *sc, std::vector<PointResult> *results)
{
    std::string path = findScenarioFile(nameOrPath, argv0);
    if (path.empty()) {
        std::fprintf(stderr,
                     "%s: scenario '%s' not found (run from the repo "
                     "root)\n",
                     tool, nameOrPath.c_str());
        return false;
    }
    SpecFile spec;
    std::vector<ScenarioPoint> grid;
    std::string err;
    if (!SpecFile::parseFile(path, &spec, &err) ||
        !Scenario::fromSpec(spec, sc, &err) ||
        !sc->expandPoints(quick, &grid, &err)) {
        std::fprintf(stderr, "%s: %s\n", tool, err.c_str());
        return false;
    }
    *results = ScenarioRunner(opts).runAll(*sc, grid);
    return true;
}

} // namespace misp::driver
