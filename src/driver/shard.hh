/**
 * @file
 * Sharded sweeps with deterministic merge: `mispsim --shard k/N` runs
 * an Nth of a scenario grid and dumps its rows with a shard header;
 * `mispsim --merge-frames OUT IN...` reassembles the per-shard
 * `--metrics` dumps into one MetricFrame that is byte-identical to
 * the serial run's.
 *
 * The partition is by *coordinate-combination* index, not raw point
 * index: combination j (one value per sweep axis) goes to shard
 * j % N, and a combination's points — one per machine, the grid's
 * innermost loop — travel together. Keeping coordinate groups whole
 * inside a shard means the per-row derived `speedup` column each
 * shard computes equals the serial run's, so merged dumps need no
 * recomputation to match byte-for-byte. Shard points keep their
 * *global* grid indices (RunnerOptions::pointIndices), so snapshot
 * image names and fault-plan targets compose with a shard exactly as
 * with the full run.
 *
 * Merging is fail-closed: every dump's scenario name, quick flag,
 * shard arity, grid size, and config hash must match the scenario
 * the merger expanded, the shard index sets must be disjoint and
 * cover the grid (overlaps and gaps are detected and named), and
 * each row's identity must match the grid point it claims to be.
 * Every diagnostic names the offending file.
 */

#ifndef MISP_DRIVER_SHARD_HH
#define MISP_DRIVER_SHARD_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "driver/scenario.hh"
#include "harness/metric_frame.hh"

namespace misp::driver {

/** `--shard k/N`: this process owns coordinate combinations
 *  j % count == index. */
struct ShardSpec {
    std::size_t index = 0;
    std::size_t count = 1;
};

/** Parse "k/N" (0 <= k < N, N >= 1). False + diagnostic on junk. */
bool parseShardSpec(const std::string &text, ShardSpec *out,
                    std::string *err);

/**
 * FNV-1a 64-bit hash (hex) over the expanded grid's identity:
 * scenario name, tick budget, and every point's machine, workload,
 * competitor count, and coordinates in grid order. Two shard runs
 * merge only if they hashed the same grid, so dumps from a different
 * scenario revision fail closed instead of interleaving silently.
 */
std::string gridConfigHash(const Scenario &sc,
                           const std::vector<ScenarioPoint> &pts);

/**
 * Global grid indices shard @p shard owns, ascending: the points of
 * every coordinate combination j with j % count == index. The grid
 * is combinations x machines with machines innermost
 * (scenario.cc expandPoints), so point p belongs to combination
 * p / @p machinesPerCombo.
 */
std::vector<std::size_t> shardPointIndices(const ShardSpec &shard,
                                           std::size_t totalPoints,
                                           std::size_t machinesPerCombo);

/**
 * The `--shard` variant of writeMetricsJson: the serial dump plus a
 * "shard" header object carrying the spec, full-grid point count,
 * config hash, and the rows' global grid indices. Row objects are
 * byte-identical to the serial emitter's, which is what makes the
 * merged dump a plain writeMetricsJson of the merged frame.
 */
void writeShardMetricsJson(std::ostream &os, const Scenario &sc,
                           bool quickMode,
                           const harness::MetricFrame &frame,
                           const ShardSpec &shard,
                           std::size_t totalPoints,
                           const std::string &configHash,
                           const std::vector<std::size_t> &indices);

/** One parsed per-shard `--metrics` dump. */
struct ShardDump {
    std::string path; ///< where it was read from (diagnostics)
    std::string scenario;
    bool quick = false;
    ShardSpec shard;
    std::size_t points = 0; ///< full-grid point count
    std::string configHash;
    std::vector<std::size_t> indices; ///< global index per row
    std::vector<std::string> metrics;
    std::vector<harness::MetricFrame::RawRow> rows;
};

/** Parse one shard dump. Fail-closed: malformed JSON, a missing
 *  header field, or an unknown status name is an error naming
 *  @p path, never a partial dump. */
bool readShardDump(const std::string &path, ShardDump *out,
                   std::string *err);

/**
 * Validate @p dumps against the expanded grid and reassemble them
 * into @p out (rows in global grid order, groups recomputed, the
 * dumps' column set adopted verbatim). @p quick must be the mode the
 * grid was expanded under; every dump must agree. False + a
 * diagnostic naming the offending file on any mismatch: wrong
 * scenario/quick/hash, inconsistent or duplicate shard specs
 * (overlap), missing shards or indices (gaps), row identities that
 * contradict the grid.
 */
bool mergeShardDumps(const Scenario &sc, bool quick,
                     const std::vector<ScenarioPoint> &pts,
                     const std::vector<ShardDump> &dumps,
                     harness::MetricFrame *out, std::string *err);

} // namespace misp::driver

#endif // MISP_DRIVER_SHARD_HH
