/**
 * @file
 * ScenarioRunner: executes an expanded scenario grid on the unified
 * run layer (harness::runOne), plus the result emitters every consumer
 * shares — JSON (machine-readable, CI artifacts), text and markdown
 * tables (humans, $GITHUB_STEP_SUMMARY), and canonical point lines
 * (the equivalence diff between `mispsim` and the wrapper benches).
 *
 * One grid point is exactly one harness::RunRequest: build the
 * workload, instantiate the machine + runtime backend, load the target
 * (pinned per the machine's placement policy), load background
 * workloads and competitor processes, run to target completion under
 * the wall clock, harvest Table-1 events from processor 0. The
 * resulting harness::RunRecord is self-contained and deterministic in
 * its simulated fields, so grid points can fan out across a worker
 * pool (RunnerOptions::jobs) with submission-order output that is
 * byte-identical to a serial run.
 */

#ifndef MISP_DRIVER_RUNNER_HH
#define MISP_DRIVER_RUNNER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/scenario.hh"
#include "harness/metric_frame.hh"
#include "harness/run_record.hh"
#include "obs/host_run_log.hh"

namespace misp::driver {

/** One grid point's coordinates plus everything its run measured. */
struct PointResult {
    // Coordinates.
    std::string machine;
    std::string workload;
    unsigned competitors = 0;
    std::vector<std::pair<std::string, std::string>> coords;

    /** The measured record (status, ticks, validation, Table-1 events,
     *  derived metrics) — see harness/run_record.hh. */
    harness::RunRecord run;
};

struct RunnerOptions {
    /** Force one host execution engine on every machine, overriding
     *  the scenario's `engine` knob (--engine=ref|cache|superblock;
     *  --no-decode-cache / MISP_NO_DECODE_CACHE=1 are aliases for
     *  --engine=ref). */
    bool forceEngine = false;
    cpu::Engine engine = cpu::Engine::Superblock;
    /** Capture a full stats::StatGroup JSON dump per point. */
    bool fullStats = false;
    /** Emit the uniform HOST throughput line per run on stderr. */
    bool hostLines = true;
    /** Worker threads for the grid (--jobs N). Grid points are
     *  independent deterministic runs; results are stored in
     *  submission order, so every emitter's output is byte-identical
     *  to a serial run. 0 and 1 both mean serial. */
    unsigned jobs = 1;

    /** Crash-isolated workers (--isolate): fork one child process per
     *  grid point (up to `jobs` concurrently) and ship each point's
     *  RunRecord back over a pipe. Submission-order results and
     *  byte-identical artifacts, like the thread pool — but a point
     *  that crashes its worker is recorded as
     *  RunStatus::WorkerCrashed instead of taking the sweep down. */
    bool isolate = false;

    // Supervision knobs for the --isolate backend. The -1 sentinels
    // mean "use the scenario's [run] defaults"; an explicit CLI value
    // overrides the spec.

    /** Wall-clock deadline per worker attempt in ms (--deadline). A
     *  worker that exceeds it is SIGKILLed and its point recorded as
     *  RunStatus::WorkerTimeout. 0 = no deadline. */
    std::int64_t deadlineMs = -1;
    /** Extra launches after a transient failure — worker crash,
     *  timeout, or snapshot error — before the point is given up
     *  (--retries). 0 = fail on first attempt. */
    int retries = -1;
    /** Base relaunch delay in ms (--backoff); attempt k is delayed
     *  backoff * 2^(k-1) ms (deterministic exponential backoff). */
    int backoffMs = -1;

    /** Deterministic fault-injection plan (--inject); merged over the
     *  scenario's [faults] schedule (the CLI seed wins). Only honored
     *  by the --isolate backend — faults are worker misbehaviors. */
    FaultPlan faults;

    /** Directory to write one warmup image per grid point into
     *  (--save-snapshot): each point warms up for the scenario's
     *  [snapshot] warmup_ticks, archives point_<index>.misnap, and
     *  runs on to completion (results unchanged). */
    std::string snapshotSaveDir;
    /** Directory to restore per-point warmup images from
     *  (--from-snapshot); each image's config hash is validated
     *  against the point's request (fail-closed per point). Restored
     *  results are byte-identical to cold runs except the fullStats
     *  decode-cache hit/miss counters, which restart cold (the decode
     *  cache is derived state and stays out of images). */
    std::string snapshotLoadDir;

    // Observability (src/obs/) ----------------------------------------

    /** Record each point's deterministic event trace (--trace FILE).
     *  Categories and the buffer bound come from the scenario's
     *  [trace] section; the trace rides the RunRecord, so --jobs and
     *  --isolate fan-out preserve byte identity for free. */
    bool traceEnabled = false;
    /** Processed-event cursor (--trace-skip N): events before the Nth
     *  processed queue event are not recorded. Set it to a restored
     *  trace's reported `base` to reproduce that trace from a cold
     *  run. */
    std::uint64_t traceSkip = 0;

    /** Host-plane supervisor run log (--run-log FILE); not owned, may
     *  be null. Receives dispatch/retry/timeout/completion telemetry —
     *  wall-clock facts only, never simulated data. */
    obs::RunLog *runLog = nullptr;

    /** Global grid indices of the submitted points (--shard k/N):
     *  entry i is the submission index pts[i] holds in the *full*
     *  grid. Snapshot image files (point_<k>.misnap) and fault-plan
     *  targets are keyed by this index, so a shard composes with
     *  --save-snapshot/--from-snapshot and --inject exactly as the
     *  same points would in an unsharded run. Empty = identity. */
    std::vector<std::size_t> pointIndices;
};

/** The image file `--save-snapshot`/`--from-snapshot` use for grid
 *  point @p index under @p dir. */
std::string snapshotPointPath(const std::string &dir, std::size_t index);

/** The RunRequest a grid point denotes — the single translation from
 *  scenario model to the unified run layer (shared with tests).
 *  @p pointIndex keys the per-point snapshot image file when the
 *  options ask for snapshot traffic. */
harness::RunRequest makeRunRequest(const Scenario &sc,
                                   const ScenarioPoint &pt,
                                   const RunnerOptions &opts,
                                   std::size_t pointIndex = 0);

class ScenarioRunner
{
  public:
    /** Kept as a member alias so callers read
     *  `ScenarioRunner::Options`. */
    using Options = RunnerOptions;

    explicit ScenarioRunner(const Options &opts = Options()) : opts_(opts)
    {}

    /** Run one grid point (@p pointIndex keys its snapshot image). */
    PointResult runPoint(const Scenario &sc, const ScenarioPoint &pt,
                         std::size_t pointIndex = 0);

    /** Run the whole grid — serially in order, on Options::jobs worker
     *  threads, or on forked worker processes (Options::isolate) — and
     *  return results in submission order. One progress line per
     *  completed point on @p progress when non-null (completion order
     *  under a worker pool). */
    std::vector<PointResult> runAll(const Scenario &sc,
                                    const std::vector<ScenarioPoint> &pts,
                                    std::ostream *progress = nullptr);

  private:
    std::vector<PointResult>
    runIsolated(const Scenario &sc, const std::vector<ScenarioPoint> &pts,
                std::ostream *progress);

    /** Full-grid submission index of submitted point @p i (identity
     *  unless Options::pointIndices says otherwise). */
    std::size_t gridIndex(std::size_t i) const
    {
        return opts_.pointIndices.empty() ? i : opts_.pointIndices[i];
    }

    Options opts_;
};

/** Result at (machine, workload, competitors); nullptr if absent.
 *  Kept for run-equivalence tests comparing raw RunRecords; result
 *  *metrics* are read through the MetricFrame. */
const PointResult *findResult(const std::vector<PointResult> &results,
                              const std::string &machine,
                              const std::string &workload,
                              unsigned competitors);

/** Result on @p machine whose coords contain every (key, value) pair
 *  of @p coords; nullptr if absent (see findResult's caveat). */
const PointResult *
findResultCoords(const std::vector<PointResult> &results,
                 const std::string &machine,
                 const std::vector<std::pair<std::string, std::string>>
                     &coords);

/**
 * Build the sweep's MetricFrame — the single translation from grid
 * results to the queryable metrics store every consumer (asserts,
 * emitters, wrapper benches) reads. Rows are added in grid order and
 * the `speedup` column uses the scenario's [report] baseline_machine.
 */
harness::MetricFrame
buildMetricFrame(const Scenario &sc,
                 const std::vector<PointResult> &results);

/** Machine-readable results: scenario header + one object per point.
 *  Fully deterministic (host timing stays on the stderr HOST lines),
 *  so reruns and `--jobs N` runs are byte-identical. */
void writeJson(std::ostream &os, const Scenario &sc, bool quickMode,
               const harness::MetricFrame &frame);

/** Human results table; GitHub-flavoured markdown when @p markdown.
 *  Adds the [report]-requested speedup columns. */
void writeTable(std::ostream &os, const Scenario &sc,
                const harness::MetricFrame &frame, bool markdown);

/** Canonical `machine=... workload=... competitors=... ticks=...
 *  valid=...` lines — the equivalence-diff format. */
void writePoints(std::ostream &os, const harness::MetricFrame &frame);

/** The `mispsim --metrics FILE` artifact: scenario header + the full
 *  frame (every row x every column) as deterministic JSON. */
void writeMetricsJson(std::ostream &os, const Scenario &sc,
                      bool quickMode,
                      const harness::MetricFrame &frame);

/**
 * Locate a scenario file: @p nameOrPath as given, then under
 * `scenarios/` relative to the working directory and its parents, then
 * relative to the executable's directory (@p argv0) and its parents.
 * Returns "" when nothing exists.
 */
std::string findScenarioFile(const std::string &nameOrPath,
                             const char *argv0);

/**
 * The figure-wrapper entry point: locate @p nameOrPath (per
 * findScenarioFile), parse + validate + expand the grid (applying
 * [quick] overrides when @p quick), and run every point. On failure,
 * prints a "@p tool: ..." diagnostic to stderr and returns false.
 */
bool runScenarioByName(const std::string &nameOrPath, const char *argv0,
                       bool quick, const RunnerOptions &opts,
                       const char *tool, Scenario *sc,
                       std::vector<PointResult> *results);

} // namespace misp::driver

#endif // MISP_DRIVER_RUNNER_HH
