/**
 * @file
 * ScenarioRunner: executes an expanded scenario grid point-by-point on
 * harness::Experiment, and the result emitters every consumer shares —
 * JSON (machine-readable, CI artifacts), text and markdown tables
 * (humans, $GITHUB_STEP_SUMMARY), and canonical point lines (the
 * equivalence diff between `mispsim` and the wrapper bench binaries).
 *
 * One grid point is exactly the run the hand-rolled figure benches
 * performed: build the workload, instantiate the machine + runtime
 * backend, load the target (pinned per the machine's placement
 * policy), load background workloads and competitor processes, run to
 * target completion under the wall clock, harvest Table-1 events from
 * processor 0. Simulated results are deterministic, so the same spec
 * always reproduces the same numbers.
 */

#ifndef MISP_DRIVER_RUNNER_HH
#define MISP_DRIVER_RUNNER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/scenario.hh"
#include "harness/experiment.hh"

namespace misp::driver {

/** Everything measured at one grid point. */
struct PointResult {
    // Coordinates.
    std::string machine;
    std::string workload;
    unsigned competitors = 0;
    std::vector<std::pair<std::string, std::string>> coords;

    // Simulated outcome (deterministic).
    Tick ticks = 0;   ///< target completion tick (0 = never finished)
    bool valid = true; ///< host-side result validation
    harness::EventSnapshot events; ///< Table-1 events of processor 0

    // Host-side throughput (informational; varies run to run).
    std::uint64_t instsRetired = 0;
    double hostSeconds = 0.0;
    double hostMips = 0.0;

    /** Full root-stats dump (JSON), when Options::fullStats is set. */
    std::string statsJson;
};

struct RunnerOptions {
    /** Force the reference fetch+decode path on every machine
     *  (--no-decode-cache / MISP_NO_DECODE_CACHE=1). */
    bool noDecodeCache = false;
    /** Capture a full stats::StatGroup JSON dump per point. */
    bool fullStats = false;
    /** Emit the uniform HOST throughput line per run on stderr. */
    bool hostLines = true;
};

class ScenarioRunner
{
  public:
    /** Kept as a member alias so callers read
     *  `ScenarioRunner::Options`. */
    using Options = RunnerOptions;

    explicit ScenarioRunner(const Options &opts = Options()) : opts_(opts)
    {}

    /** Run one grid point. */
    PointResult runPoint(const Scenario &sc, const ScenarioPoint &pt);

    /** Run the whole grid in order; one progress line per point on
     *  @p progress when non-null. */
    std::vector<PointResult> runAll(const Scenario &sc,
                                    const std::vector<ScenarioPoint> &pts,
                                    std::ostream *progress = nullptr);

  private:
    Options opts_;
};

/** Result at (machine, workload, competitors); nullptr if absent. */
const PointResult *findResult(const std::vector<PointResult> &results,
                              const std::string &machine,
                              const std::string &workload,
                              unsigned competitors);

/** Machine-readable results: scenario header + one object per point. */
void writeJson(std::ostream &os, const Scenario &sc, bool quickMode,
               const std::vector<PointResult> &results);

/** Human results table; GitHub-flavoured markdown when @p markdown.
 *  Adds the [report]-requested speedup columns. */
void writeTable(std::ostream &os, const Scenario &sc,
                const std::vector<PointResult> &results, bool markdown);

/** Canonical `machine=... workload=... competitors=... ticks=...
 *  valid=...` lines — the equivalence-diff format. */
void writePoints(std::ostream &os,
                 const std::vector<PointResult> &results);

/**
 * Locate a scenario file: @p nameOrPath as given, then under
 * `scenarios/` relative to the working directory and its parents, then
 * relative to the executable's directory (@p argv0) and its parents.
 * Returns "" when nothing exists.
 */
std::string findScenarioFile(const std::string &nameOrPath,
                             const char *argv0);

/**
 * The figure-wrapper entry point: locate @p nameOrPath (per
 * findScenarioFile), parse + validate + expand the grid (applying
 * [quick] overrides when @p quick), and run every point. On failure,
 * prints a "@p tool: ..." diagnostic to stderr and returns false.
 */
bool runScenarioByName(const std::string &nameOrPath, const char *argv0,
                       bool quick, const RunnerOptions &opts,
                       const char *tool, Scenario *sc,
                       std::vector<PointResult> *results);

} // namespace misp::driver

#endif // MISP_DRIVER_RUNNER_HH
