/**
 * @file
 * Report layer: the `[report] mode = events` emitter (Table-1 event
 * classes normalized per 10^6 retired instructions) and the
 * `assert = <expr>` evaluator that guards paper claims from the
 * scenario file itself.
 *
 * Assert grammar (tokens are whitespace-separated, so machine names
 * like `1x4+4` never collide with operators; parentheses are
 * self-delimiting and may hug their operands):
 *
 *   assert      := side CMP side
 *   side        := product (('+' | '-') product)*
 *   product     := value (('*' | '/') value)*
 *   value       := NUMBER | REF | '(' side ')'
 *   CMP         := '<' | '<=' | '>' | '>=' | '==' | '!='
 *   REF         := <machine>.<metric>
 *   metric      := ticks | mcycles | speedup | insts | valid
 *                | completed | events.<counter>
 *                | events_per_mi.<counter>
 *
 * `<machine>` names a [machine] section; `speedup` is relative to the
 * [report] baseline_machine. `<counter>` uses the JSON event keys
 * (oms_syscalls, oms_page_faults, timer, interrupts, ams_syscalls,
 * ams_page_faults, serializations, serialize_cycles, priv_cycles,
 * proxy_signal_cycles, proxy_requests, suspended_cycles);
 * `events_per_mi` normalizes per 10^6 retired instructions.
 *
 * An assert is evaluated once per sweep-coordinate combination and
 * must hold at every one of them (e.g. for every workload of a
 * Figure-4 grid). Examples:
 *
 *   assert = misp.speedup >= 0.9 * smp8.speedup
 *   assert = ( s5000.ticks - s0.ticks ) / s0.ticks <= 0.02
 *
 * The second is the Figure-5-style "overhead <= X% at cost Y" shape:
 * parentheses group the relative-overhead reconstruction against two
 * machines of one coordinate group (see
 * scenarios/ablation_model_check.scn for asserts that rebuild Eq.1 and
 * Eq.2 the same way).
 */

#ifndef MISP_DRIVER_REPORT_HH
#define MISP_DRIVER_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/runner.hh"

namespace misp::driver {

/** One failed (but well-formed) assert at one coordinate combination. */
struct AssertFailure {
    std::string text; ///< the assert expression as written
    int line = 0;     ///< spec line of the assert
    std::string detail; ///< "lhs=... rhs=... at <coords>"
};

/**
 * Evaluate every [report] assert against the grid results. Returns
 * false (and sets @p err to a "path:line: message" diagnostic) on a
 * malformed expression or an unresolvable reference; well-formed
 * asserts that do not hold are appended to @p failures.
 */
bool evaluateAsserts(const Scenario &sc,
                     const std::vector<PointResult> &results,
                     std::vector<AssertFailure> *failures,
                     std::string *err);

/** The `[report] mode = events` table: one row per grid point, Table-1
 *  event classes normalized per 10^6 retired instructions.
 *  GitHub-flavoured markdown when @p markdown. */
void writeEventsTable(std::ostream &os, const Scenario &sc,
                      const std::vector<PointResult> &results,
                      bool markdown);

} // namespace misp::driver

#endif // MISP_DRIVER_REPORT_HH
