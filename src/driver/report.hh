/**
 * @file
 * Report layer: the `[report] mode = events` emitter (Table-1 event
 * classes normalized per 10^6 retired instructions) and the
 * `assert = <expr>` evaluator that guards paper claims from the
 * scenario file itself. Both are renderers/queries over the
 * harness::MetricFrame the runner builds from a sweep's results.
 *
 * Assert grammar (tokens are whitespace-separated, so machine names
 * like `1x4+4` never collide with operators; parentheses are
 * self-delimiting and may hug their operands):
 *
 *   assert      := side CMP side
 *   side        := product (('+' | '-') product)*
 *   product     := value (('*' | '/') value)*
 *   value       := NUMBER | REF | AGG '(' side ')' | '(' side ')'
 *   CMP         := '<' | '<=' | '>' | '>=' | '==' | '!='
 *   AGG         := avg | geomean | min | max | sum | count
 *   REF         := <machine> SELECTOR? '.' <metric>
 *   SELECTOR    := '[' axis '=' value (',' axis '=' value)* ']'
 *   metric      := ticks | mcycles | speedup | insts | valid
 *                | completed | failed | attempts | events.<counter>
 *                | events_per_mi.<counter>
 *
 * `<machine>` names a [machine] section; `speedup` is relative to the
 * [report] baseline_machine. `<counter>` uses the JSON event keys
 * (oms_syscalls, oms_page_faults, timer, interrupts, ams_syscalls,
 * ams_page_faults, serializations, serialize_cycles, priv_cycles,
 * proxy_signal_cycles, proxy_requests, suspended_cycles);
 * `events_per_mi` normalizes per 10^6 retired instructions.
 *
 * A plain assert is evaluated once per sweep-coordinate combination
 * (one MetricFrame group) and must hold at every one of them (e.g. for
 * every workload of a Figure-4 grid). Examples:
 *
 *   assert = misp.speedup >= 0.9 * smp8.speedup
 *   assert = ( s5000.ticks - s0.ticks ) / s0.ticks <= 0.02
 *
 * Cross-axis SELECTORs address *other* coordinate combinations from
 * the current one: `misp[machine.signal_cycles=5000].ticks` is the
 * ticks of machine `misp` at the group whose coordinates equal the
 * current group's with the `machine.signal_cycles` axis forced to
 * 5000. Each selector axis must name a swept coordinate of the group,
 * and selector values are numerically normalized against the axis's
 * actual values — `misp[machine.signal_cycles=5e3].ticks` addresses
 * the axis value spelled `5000` (an exact spelling match wins; a value
 * matching no axis value, numerically or verbatim, is a malformed
 * selector and diagnoses the axis's values).
 * The Figure-5 cost-sensitivity shape needs no per-cost machine
 * sections this way:
 *
 *   assert = misp[machine.signal_cycles=5000].ticks <=
 *            1.03 * misp[machine.signal_cycles=0].ticks
 *
 * AGG aggregates evaluate their body once per coordinate group and
 * fold the results across the whole sweep: `avg` / `min` / `max` /
 * `sum` are the usual folds, `geomean` is the geometric mean (every
 * value must be positive), and `count` counts the groups whose body
 * evaluates nonzero. An assert whose references are all inside
 * aggregates is group-independent and is checked once per sweep
 * ("suite claims" — Figure 4's suite-average speedup, Table 1's
 * suite-average event rates):
 *
 *   assert = geomean ( misp.speedup ) >= 1.5
 *   assert = count ( misp.valid ) == count ( 1 )
 *
 * Aggregates and per-group references compose: an aggregate inside a
 * per-group assert is a sweep-wide constant (e.g.
 * `misp.speedup >= 0.5 * avg ( misp.speedup )` bounds the spread).
 *
 * Failing asserts echo every resolved reference's value in
 * AssertFailure::detail — aggregate bodies echo per coordinate group,
 * so a failing suite-average claim names the offending points.
 *
 * Graceful degradation: grid points that failed for infrastructure
 * reasons (worker crash/timeout, snapshot error — `failed` = 1) make
 * their coordinate group *degraded*. Aggregates always exclude
 * degraded groups from their folds (and echo the skipped count into
 * the failure detail), so `count ( misp.completed ) == count ( 1 )`
 * still holds over the survivors. What happens to per-group
 * evaluations that touch a degraded group is the
 * `[report] on_failed_points` policy's call: `fail` (default) and
 * `skip` skip the evaluation (counted in evaluateAsserts'
 * @p skippedGroups), `require_all` turns it into an assert failure.
 * The policies differ only in `mispsim`'s exit code: failed points
 * exit 1 under `fail`/`require_all` but 4 ("completed with failed
 * points") under `skip`.
 */

#ifndef MISP_DRIVER_REPORT_HH
#define MISP_DRIVER_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/runner.hh"

namespace misp::driver {

/** One failed (but well-formed) assert at one coordinate combination
 *  (or once per sweep, for aggregate-only suite claims). */
struct AssertFailure {
    std::string text; ///< the assert expression as written
    int line = 0;     ///< spec line of the assert
    /** "lhs=... rhs=... at <coords>" plus every resolved reference's
     *  value (aggregate bodies suffixed with their coordinate group),
     *  so the failing points are named. */
    std::string detail;
};

/**
 * Evaluate every [report] assert against the sweep's metric frame.
 * Returns false (and sets @p err to a "path:line: message" diagnostic)
 * on a malformed expression, an unresolvable reference, or a malformed
 * cross-axis selector; well-formed asserts that do not hold are
 * appended to @p failures. Evaluations touching degraded coordinate
 * groups follow the `[report] on_failed_points` policy (see the
 * grammar comment); when @p skippedGroups is non-null it receives the
 * number of per-group evaluations skipped because of failed points.
 */
bool evaluateAsserts(const Scenario &sc,
                     const harness::MetricFrame &frame,
                     std::vector<AssertFailure> *failures,
                     std::string *err,
                     std::size_t *skippedGroups = nullptr);

/** The `[report] mode = events` table: one row per grid point, Table-1
 *  event classes normalized per 10^6 retired instructions.
 *  GitHub-flavoured markdown when @p markdown. */
void writeEventsTable(std::ostream &os, const Scenario &sc,
                      const harness::MetricFrame &frame, bool markdown);

} // namespace misp::driver

#endif // MISP_DRIVER_REPORT_HH
