#include "cli_help.hh"

#include <cstdio>
#include <cstring>

namespace misp::driver {

const std::vector<CliFlag> &
mispsimFlags()
{
    static const std::vector<CliFlag> flags = {
        {"-o FILE", "write results as JSON to FILE"},
        {"--metrics FILE",
         "write the full metric frame (every sweep\n"
         "point x every metric, incl. derived\n"
         "speedup and per-10^6-instruction event\n"
         "rates) as deterministic JSON to FILE"},
        {"--quick", "apply the scenario's [quick] overrides"},
        {"--jobs N",
         "run grid points on N worker threads; all\n"
         "outputs (JSON, tables, --points, --trace)\n"
         "stay byte-identical to a serial run"},
        {"--isolate",
         "crash-isolated workers: fork one child\n"
         "process per grid point (up to N at once);\n"
         "a crashing point is recorded as\n"
         "worker_crashed instead of killing the\n"
         "sweep; outputs stay byte-identical"},
        {"--deadline MS",
         "(with --isolate) per-attempt wall-clock\n"
         "deadline; a worker exceeding it is\n"
         "SIGKILLed and its point recorded as\n"
         "worker_timeout (0 = none; default: the\n"
         "scenario's [run] point_deadline_ms)"},
        {"--retries N",
         "(with --isolate) relaunch a point up to N\n"
         "extra times after a transient failure\n"
         "(crash, timeout, snapshot error); the\n"
         "record keeps the attempt count"},
        {"--backoff MS",
         "(with --isolate) base relaunch delay;\n"
         "attempt k waits MS * 2^(k-1) ms"},
        {"--inject SPEC",
         "(with --isolate) deterministic fault\n"
         "injection, e.g. \"seed=7;crash@0;hang@2\"\n"
         "(kinds: crash, hang, corrupt_pipe,\n"
         "corrupt_snapshot, fork_fail; targets:\n"
         "point indices `1,3` / `0..2` or `p0.1`\n"
         "probability; `x1` bounds a fault to the\n"
         "first attempt); merged over the\n"
         "scenario's [faults] section"},
        {"--on-failed P",
         "what failed points do to reporting:\n"
         "fail (default, exit 1), skip (degrade\n"
         "gracefully: asserts skip affected\n"
         "groups, exit 4), require_all (asserts\n"
         "touching failed points fail)"},
        {"--save-snapshot DIR",
         "warm every grid point up for the\n"
         "scenario's [snapshot] warmup_ticks, write\n"
         "DIR/point_<k>.misnap, and keep running to\n"
         "completion (results unchanged)"},
        {"--from-snapshot DIR",
         "restore each grid point from\n"
         "DIR/point_<k>.misnap instead of booting\n"
         "cold; results are byte-identical to a\n"
         "cold run of the same spec (exception:\n"
         "--full-stats decode-cache hit/miss\n"
         "counters, which restart cold — the\n"
         "decode cache is derived state)"},
        {"--engine=E",
         "force the host execution engine on every\n"
         "machine: ref (per-instruction\n"
         "fetch+decode), cache (predecoded pages),\n"
         "or superblock (chained basic-block\n"
         "dispatch; the default). All engines\n"
         "produce bit-identical results; also\n"
         "honored from MISP_ENGINE=E"},
        {"--no-decode-cache",
         "alias for --engine=ref (also honored\n"
         "from MISP_NO_DECODE_CACHE=1)"},
        {"--trace FILE",
         "record each point's deterministic event\n"
         "trace and write one Chrome trace-event\n"
         "JSON (chrome://tracing, Perfetto) to\n"
         "FILE. Categories and the event bound\n"
         "come from the scenario's [trace]\n"
         "section; the trace is simulated-plane\n"
         "data — byte-identical across --jobs,\n"
         "--isolate, every --engine, and snapshot\n"
         "save/restore topologies"},
        {"--trace-skip N",
         "(with --trace) skip events before the\n"
         "Nth processed queue event; set N to a\n"
         "restored trace's reported `base` to\n"
         "reproduce that trace from a cold run"},
        {"--run-log FILE",
         "append one JSON line per scheduling\n"
         "event (dispatched / retried / timed_out\n"
         "/ completed, with attempt, worker pid,\n"
         "wall ms, backoff) to FILE — host-plane\n"
         "telemetry, never byte-compared"},
        {"--shard K/N",
         "run only this process's 1/N of the sweep:\n"
         "coordinate combinations are dealt\n"
         "round-robin (combination j to shard\n"
         "j mod N), so groups stay whole and the\n"
         "--metrics dump (with its shard header)\n"
         "merges byte-identically; points keep\n"
         "their global grid indices, so snapshots\n"
         "and --inject compose unchanged; [report]\n"
         "asserts are deferred to --merge-frames"},
        {"--merge-frames OUT",
         "merge mode: treat the remaining\n"
         "arguments as per-shard --metrics dumps,\n"
         "validate them against the scenario\n"
         "(config hash, shard arity, gaps,\n"
         "overlaps — fail-closed, naming the\n"
         "offending file), write the reassembled\n"
         "frame to OUT byte-identical to a serial\n"
         "run's --metrics, and evaluate the\n"
         "deferred [report] asserts on it"},
        {"--progress",
         "force per-point progress lines on stderr\n"
         "even in --points mode (default: on for\n"
         "table/JSON output)"},
        {"--profile FILE",
         "write a host-profiling summary to FILE:\n"
         "per-phase (parse/warmup/run/serialize)\n"
         "totals and histograms plus per-engine\n"
         "host-MIPS — host-plane data, varies run\n"
         "to run"},
        {"--md", "print the results table as markdown"},
        {"--points",
         "print canonical point lines only (the\n"
         "bench-equivalence diff format)"},
        {"--dry-run", "expand and print the grid without running"},
        {"--full-stats",
         "include a full stats dump per point in the\n"
         "JSON output"},
        {"--verbose", "keep the simulator's event log on stderr"},
        {"--list-workloads", "print the workload registry and exit"},
        {"-h, --help", "this message"},
    };
    return flags;
}

const std::vector<CliExitCode> &
mispsimExitCodes()
{
    static const std::vector<CliExitCode> codes = {
        {0, "every point ran, every assert held"},
        {1, "a point failed, an assert failed, or a spec error"},
        {2, "usage error"},
        {4,
         "completed with failed points (--on-failed skip /\n"
         "[report] on_failed_points = skip) and everything else\n"
         "passed"},
    };
    return codes;
}

std::vector<std::string>
mispsimFlagNames()
{
    std::vector<std::string> names;
    for (const CliFlag &f : mispsimFlags()) {
        const char *p = f.spec;
        while (*p) {
            // One alias: up to the first ' ', ',', or '='.
            std::size_t n = std::strcspn(p, " ,=");
            if (n > 0)
                names.emplace_back(p, n);
            p += n;
            // A ',' separates aliases; a ' ' or '=' starts a value
            // placeholder, which ends the spec's name list.
            if (*p != ',')
                break;
            ++p;
            while (*p == ' ')
                ++p;
        }
    }
    return names;
}

std::string
mispsimUsage(const char *argv0)
{
    std::string out = "usage: ";
    out += argv0;
    out += " <scenario.scn> [options]\n"
           "       ";
    out += argv0;
    out += " <scenario.scn> --merge-frames OUT IN1.json [IN2.json...]\n"
           "\n"
           "Runs a declarative scenario: machines x workloads x sweep "
           "axes.\n"
           "Spec format: see docs/ARCHITECTURE.md (Scenario driver) and "
           "the\n"
           "checked-in examples under scenarios/.\n"
           "\n"
           "options:\n";
    for (const CliFlag &f : mispsimFlags()) {
        std::string spec = "  ";
        spec += f.spec;
        if (spec.size() < 21)
            spec.resize(21, ' ');
        else
            spec += " ";
        const std::string indent(21, ' ');
        out += spec;
        for (const char *p = f.help; *p;) {
            const char *nl = std::strchr(p, '\n');
            std::size_t n = nl ? static_cast<std::size_t>(nl - p)
                               : std::strlen(p);
            out.append(p, n);
            out += "\n";
            p += n + (nl ? 1 : 0);
            if (*p)
                out += indent;
        }
    }
    out += "\nexit codes:\n";
    for (const CliExitCode &c : mispsimExitCodes()) {
        char head[16];
        std::snprintf(head, sizeof(head), "  %d  ", c.code);
        out += head;
        const std::string indent(std::strlen(head), ' ');
        for (const char *p = c.help; *p;) {
            const char *nl = std::strchr(p, '\n');
            std::size_t n = nl ? static_cast<std::size_t>(nl - p)
                               : std::strlen(p);
            out.append(p, n);
            out += "\n";
            p += n + (nl ? 1 : 0);
            if (*p)
                out += indent;
        }
    }
    return out;
}

} // namespace misp::driver
