#include "driver/shard.hh"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "harness/experiment.hh"
#include "sim/stats.hh"

namespace misp::driver {

namespace {

/** "path: message" — every shard diagnostic names its file. */
bool fail(std::string *err, const std::string &path,
          const std::string &message)
{
    if (err)
        *err = path + ": " + message;
    return false;
}

// FNV-1a 64-bit ------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnvMix(std::uint64_t &h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= kFnvPrime;
    }
    // Field separator, so {"ab","c"} and {"a","bc"} hash apart.
    h ^= 0x1f;
    h *= kFnvPrime;
}

// Minimal JSON reader ------------------------------------------------
//
// Just enough of RFC 8259 to parse our own --metrics dumps (plus the
// doctored variants the fail-closed tests feed in). Objects keep
// field order; no external dependency.

struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    const JsonValue *find(const std::string &key) const
    {
        for (const auto &[name, value] : fields) {
            if (name == key)
                return &value;
        }
        return nullptr;
    }
};

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {}

    bool parse(JsonValue *out)
    {
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return error("trailing data after JSON value");
        return true;
    }

  private:
    bool error(const std::string &message)
    {
        if (err_)
            *err_ = message + " (offset " + std::to_string(pos_) + ")";
        return false;
    }

    void skipSpace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return error("malformed literal");
        pos_ += n;
        return true;
    }

    bool parseString(std::string *out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return error("expected string");
        ++pos_;
        out->clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return error("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
            case '"': out->push_back('"'); break;
            case '\\': out->push_back('\\'); break;
            case '/': out->push_back('/'); break;
            case 'b': out->push_back('\b'); break;
            case 'f': out->push_back('\f'); break;
            case 'n': out->push_back('\n'); break;
            case 'r': out->push_back('\r'); break;
            case 't': out->push_back('\t'); break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    return error("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return error("bad \\u escape digit");
                }
                // Our emitter only writes \u00XX (control bytes);
                // decode the general BMP form anyway.
                if (code < 0x80) {
                    out->push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out->push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    out->push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out->push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    out->push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    out->push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
            }
            default:
                return error("unknown escape");
            }
        }
        return error("unterminated string");
    }

    bool parseValue(JsonValue *out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return error("unexpected end of input");
        char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out->kind = JsonValue::Kind::Object;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipSpace();
                std::string key;
                if (!parseString(&key))
                    return false;
                skipSpace();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return error("expected ':' in object");
                ++pos_;
                JsonValue value;
                if (!parseValue(&value))
                    return false;
                out->fields.emplace_back(std::move(key),
                                         std::move(value));
                skipSpace();
                if (pos_ >= text_.size())
                    return error("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return error("expected ',' or '}' in object");
            }
        }
        if (c == '[') {
            ++pos_;
            out->kind = JsonValue::Kind::Array;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                JsonValue item;
                if (!parseValue(&item))
                    return false;
                out->items.push_back(std::move(item));
                skipSpace();
                if (pos_ >= text_.size())
                    return error("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return error("expected ',' or ']' in array");
            }
        }
        if (c == '"') {
            out->kind = JsonValue::Kind::String;
            return parseString(&out->text);
        }
        if (c == 't') {
            out->kind = JsonValue::Kind::Bool;
            out->boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out->kind = JsonValue::Kind::Bool;
            out->boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out->kind = JsonValue::Kind::Null;
            return literal("null");
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            std::size_t end = pos_;
            while (end < text_.size()) {
                char d = text_[end];
                if (d == '-' || d == '+' || d == '.' || d == 'e' ||
                    d == 'E' || (d >= '0' && d <= '9')) {
                    ++end;
                    continue;
                }
                break;
            }
            std::string num = text_.substr(pos_, end - pos_);
            char *stop = nullptr;
            out->number = std::strtod(num.c_str(), &stop);
            if (stop == num.c_str() || *stop != '\0')
                return error("malformed number");
            out->kind = JsonValue::Kind::Number;
            pos_ = end;
            return true;
        }
        return error("unexpected character");
    }

    const std::string &text_;
    std::string *err_;
    std::size_t pos_ = 0;
};

/** Non-negative integral JSON number; false on anything else. */
bool asIndex(const JsonValue &v, std::size_t *out)
{
    if (v.kind != JsonValue::Kind::Number || v.number < 0.0 ||
        v.number != static_cast<double>(
                        static_cast<std::uint64_t>(v.number)))
        return false;
    *out = static_cast<std::size_t>(v.number);
    return true;
}

} // namespace

bool
parseShardSpec(const std::string &text, ShardSpec *out,
               std::string *err)
{
    std::size_t slash = text.find('/');
    auto bad = [&](const char *why) {
        if (err)
            *err = std::string("--shard ") + text + ": " + why +
                   " (expected k/N with 0 <= k < N)";
        return false;
    };
    if (slash == std::string::npos)
        return bad("missing '/'");
    const std::string left = text.substr(0, slash);
    const std::string right = text.substr(slash + 1);
    if (left.empty() || right.empty())
        return bad("empty field");
    for (char c : left + right) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return bad("non-numeric field");
    }
    out->index = static_cast<std::size_t>(
        std::strtoull(left.c_str(), nullptr, 10));
    out->count = static_cast<std::size_t>(
        std::strtoull(right.c_str(), nullptr, 10));
    if (out->count == 0)
        return bad("shard count must be >= 1");
    if (out->index >= out->count)
        return bad("shard index out of range");
    return true;
}

std::string
gridConfigHash(const Scenario &sc,
               const std::vector<ScenarioPoint> &pts)
{
    std::uint64_t h = kFnvOffset;
    fnvMix(h, sc.name);
    fnvMix(h, std::to_string(sc.maxTicks));
    fnvMix(h, std::to_string(pts.size()));
    for (const ScenarioPoint &pt : pts) {
        fnvMix(h, pt.machine.name);
        fnvMix(h, pt.workload.name);
        fnvMix(h, std::to_string(pt.competitors));
        fnvMix(h, pt.coordString());
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::vector<std::size_t>
shardPointIndices(const ShardSpec &shard, std::size_t totalPoints,
                  std::size_t machinesPerCombo)
{
    std::vector<std::size_t> owned;
    if (machinesPerCombo == 0)
        return owned;
    for (std::size_t p = 0; p < totalPoints; ++p) {
        if ((p / machinesPerCombo) % shard.count == shard.index)
            owned.push_back(p);
    }
    return owned;
}

void
writeShardMetricsJson(std::ostream &os, const Scenario &sc,
                      bool quickMode,
                      const harness::MetricFrame &frame,
                      const ShardSpec &shard, std::size_t totalPoints,
                      const std::string &configHash,
                      const std::vector<std::size_t> &indices)
{
    os << "{\n";
    os << "  \"scenario\": " << stats::jsonQuote(sc.name) << ",\n";
    os << "  \"title\": " << stats::jsonQuote(sc.title) << ",\n";
    os << "  \"quick\": " << (quickMode ? "true" : "false") << ",\n";
    os << "  \"shard\": {\n";
    os << "    \"index\": " << shard.index << ",\n";
    os << "    \"count\": " << shard.count << ",\n";
    os << "    \"points\": " << totalPoints << ",\n";
    os << "    \"config_hash\": " << stats::jsonQuote(configHash)
       << ",\n";
    os << "    \"indices\": [";
    for (std::size_t i = 0; i < indices.size(); ++i)
        os << (i ? ", " : "") << indices[i];
    os << "]\n";
    os << "  },\n";
    os << "  \"frame\":\n";
    frame.writeJson(os);
    os << "}\n";
}

bool
readShardDump(const std::string &path, ShardDump *out,
              std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail(err, path, "cannot open shard dump");
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    JsonValue root;
    std::string jsonErr;
    if (!JsonParser(text, &jsonErr).parse(&root))
        return fail(err, path, "malformed JSON: " + jsonErr);
    if (root.kind != JsonValue::Kind::Object)
        return fail(err, path, "top level is not an object");

    out->path = path;

    const JsonValue *scenario = root.find("scenario");
    if (!scenario || scenario->kind != JsonValue::Kind::String)
        return fail(err, path, "missing \"scenario\" header");
    out->scenario = scenario->text;

    const JsonValue *quick = root.find("quick");
    if (!quick || quick->kind != JsonValue::Kind::Bool)
        return fail(err, path, "missing \"quick\" header");
    out->quick = quick->boolean;

    const JsonValue *shard = root.find("shard");
    if (!shard || shard->kind != JsonValue::Kind::Object)
        return fail(err, path,
                    "missing \"shard\" header (not a --shard dump?)");
    const JsonValue *index = shard->find("index");
    const JsonValue *count = shard->find("count");
    const JsonValue *points = shard->find("points");
    const JsonValue *hash = shard->find("config_hash");
    const JsonValue *indices = shard->find("indices");
    if (!index || !asIndex(*index, &out->shard.index))
        return fail(err, path, "bad shard.index");
    if (!count || !asIndex(*count, &out->shard.count) ||
        out->shard.count == 0)
        return fail(err, path, "bad shard.count");
    if (!points || !asIndex(*points, &out->points))
        return fail(err, path, "bad shard.points");
    if (!hash || hash->kind != JsonValue::Kind::String)
        return fail(err, path, "bad shard.config_hash");
    out->configHash = hash->text;
    if (!indices || indices->kind != JsonValue::Kind::Array)
        return fail(err, path, "bad shard.indices");
    out->indices.clear();
    for (const JsonValue &item : indices->items) {
        std::size_t value = 0;
        if (!asIndex(item, &value))
            return fail(err, path, "non-integral shard index");
        out->indices.push_back(value);
    }

    const JsonValue *frame = root.find("frame");
    if (!frame || frame->kind != JsonValue::Kind::Object)
        return fail(err, path, "missing \"frame\" object");
    const JsonValue *metrics = frame->find("metrics");
    if (!metrics || metrics->kind != JsonValue::Kind::Array)
        return fail(err, path, "missing frame.metrics");
    out->metrics.clear();
    for (const JsonValue &name : metrics->items) {
        if (name.kind != JsonValue::Kind::String)
            return fail(err, path, "non-string metric name");
        out->metrics.push_back(name.text);
    }

    const JsonValue *rows = frame->find("points");
    if (!rows || rows->kind != JsonValue::Kind::Array)
        return fail(err, path, "missing frame.points");
    out->rows.clear();
    for (std::size_t r = 0; r < rows->items.size(); ++r) {
        const JsonValue &obj = rows->items[r];
        const std::string where =
            "row " + std::to_string(r) + ": ";
        if (obj.kind != JsonValue::Kind::Object)
            return fail(err, path, where + "not an object");
        harness::MetricFrame::RawRow raw;

        const JsonValue *machine = obj.find("machine");
        const JsonValue *workload = obj.find("workload");
        const JsonValue *competitors = obj.find("competitors");
        const JsonValue *coords = obj.find("coords");
        const JsonValue *status = obj.find("status");
        const JsonValue *values = obj.find("values");
        if (!machine || machine->kind != JsonValue::Kind::String)
            return fail(err, path, where + "bad machine");
        raw.row.machine = machine->text;
        if (!workload || workload->kind != JsonValue::Kind::String)
            return fail(err, path, where + "bad workload");
        raw.row.workload = workload->text;
        std::size_t nComp = 0;
        if (!competitors || !asIndex(*competitors, &nComp))
            return fail(err, path, where + "bad competitors");
        raw.row.competitors = static_cast<unsigned>(nComp);
        if (!coords || coords->kind != JsonValue::Kind::Object)
            return fail(err, path, where + "bad coords");
        for (const auto &[key, value] : coords->fields) {
            if (value.kind != JsonValue::Kind::String)
                return fail(err, path,
                            where + "non-string coord value");
            raw.row.coords.emplace_back(key, value.text);
        }
        if (!status || status->kind != JsonValue::Kind::String ||
            !harness::runStatusFromName(status->text,
                                        &raw.row.status))
            return fail(err, path, where + "unknown status");
        if (!values || values->kind != JsonValue::Kind::Object)
            return fail(err, path, where + "bad values");
        if (values->fields.size() != out->metrics.size())
            return fail(err, path,
                        where + "values/metrics arity mismatch");
        for (std::size_t m = 0; m < out->metrics.size(); ++m) {
            const auto &[name, value] = values->fields[m];
            if (name != out->metrics[m])
                return fail(err, path,
                            where + "value \"" + name +
                                "\" out of metric order");
            if (value.kind != JsonValue::Kind::Number)
                return fail(err, path,
                            where + "non-numeric value \"" + name +
                                "\"");
            raw.values.push_back(value.number);
        }
        out->rows.push_back(std::move(raw));
    }
    return true;
}

bool
mergeShardDumps(const Scenario &sc, bool quick,
                const std::vector<ScenarioPoint> &pts,
                const std::vector<ShardDump> &dumps,
                harness::MetricFrame *out, std::string *err)
{
    if (dumps.empty()) {
        if (err)
            *err = "--merge-frames: no input dumps";
        return false;
    }
    const std::string expectHash = gridConfigHash(sc, pts);
    const std::size_t total = pts.size();
    const std::size_t machines = sc.machines.size();
    const std::size_t count = dumps[0].shard.count;

    // Which shard each dump claims; duplicates are overlaps.
    std::vector<const ShardDump *> byShard(count, nullptr);
    for (const ShardDump &dump : dumps) {
        if (dump.scenario != sc.name)
            return fail(err, dump.path,
                        "scenario \"" + dump.scenario +
                            "\" does not match \"" + sc.name + "\"");
        if (dump.quick != quick)
            return fail(err, dump.path,
                        std::string("quick mode mismatch (dump is ") +
                            (dump.quick ? "quick" : "full") + ")");
        if (dump.shard.count != count)
            return fail(err, dump.path,
                        "shard count " +
                            std::to_string(dump.shard.count) +
                            " disagrees with " +
                            std::to_string(count));
        if (dump.shard.index >= count)
            return fail(err, dump.path, "shard index out of range");
        if (dump.points != total)
            return fail(err, dump.path,
                        "grid has " + std::to_string(dump.points) +
                            " points, scenario expands to " +
                            std::to_string(total));
        if (dump.configHash != expectHash)
            return fail(err, dump.path,
                        "config hash " + dump.configHash +
                            " does not match scenario hash " +
                            expectHash);
        if (byShard[dump.shard.index])
            return fail(err, dump.path,
                        "overlaps " +
                            byShard[dump.shard.index]->path +
                            " (both claim shard " +
                            std::to_string(dump.shard.index) + "/" +
                            std::to_string(count) + ")");
        byShard[dump.shard.index] = &dump;
    }
    for (std::size_t k = 0; k < count; ++k) {
        if (!byShard[k]) {
            if (err)
                *err = "--merge-frames: shard " + std::to_string(k) +
                       "/" + std::to_string(count) +
                       " is missing from the inputs (gap)";
            return false;
        }
    }

    // Per-dump index sets must be exactly the deterministic
    // partition — anything else is a gap or overlap inside a shard.
    for (std::size_t k = 0; k < count; ++k) {
        const ShardDump &dump = *byShard[k];
        const std::vector<std::size_t> expect =
            shardPointIndices(dump.shard, total, machines);
        if (dump.indices != expect)
            return fail(err, dump.path,
                        "shard index set does not match the "
                        "deterministic partition (gap or overlap)");
        if (dump.rows.size() != dump.indices.size())
            return fail(err, dump.path,
                        std::to_string(dump.rows.size()) +
                            " rows for " +
                            std::to_string(dump.indices.size()) +
                            " declared indices");
        if (dump.metrics != dumps[0].metrics)
            return fail(err, dump.path,
                        "metric columns disagree with " +
                            dumps[0].path);
    }

    // Reassemble in global grid order, checking each row's identity
    // against the grid point it lands on.
    std::vector<harness::MetricFrame::RawRow> raws(total);
    for (std::size_t k = 0; k < count; ++k) {
        const ShardDump &dump = *byShard[k];
        for (std::size_t i = 0; i < dump.rows.size(); ++i) {
            const std::size_t g = dump.indices[i];
            const harness::MetricFrame::Row &row = dump.rows[i].row;
            if (row.machine != pts[g].machine.name ||
                row.workload != pts[g].workload.name ||
                row.competitors != pts[g].competitors)
                return fail(err, dump.path,
                            "row " + std::to_string(i) +
                                " identity does not match grid "
                                "point " +
                                std::to_string(g));
            raws[g] = dump.rows[i];
        }
    }

    std::string loadErr;
    if (!out->loadRows(dumps[0].metrics, std::move(raws), &loadErr))
        return fail(err, dumps[0].path, loadErr);
    return true;
}

} // namespace misp::driver
