/**
 * @file
 * The `.scn` scenario-spec file format: a small, dependency-free
 * section + key/value parser with line-accurate diagnostics.
 *
 * Grammar (one construct per line):
 *
 *   # comment          ; comment (both strip to end of line)
 *   [type]             section of TYPE with an empty instance name
 *   [type name]        section of TYPE named NAME (e.g. [machine 2x4])
 *   key = value        entry in the current section
 *
 * Values are free text up to the comment/end of line; list-valued keys
 * use commas, and integer spans may be written `lo..hi` (inclusive) —
 * expandValues() turns `0..2, 5` into {"0","1","2","5"}.
 *
 * This layer is purely syntactic: what sections and keys *mean* is the
 * scenario model's job (scenario.hh), which is also where unknown-key
 * diagnostics are raised with the line numbers recorded here.
 */

#ifndef MISP_DRIVER_SPEC_HH
#define MISP_DRIVER_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace misp::driver {

/** One `key = value` line. */
struct SpecEntry {
    std::string key;
    std::string value;
    int line = 0; ///< 1-based source line, for diagnostics
};

/** One `[type name]` section and its entries, in file order. */
struct SpecSection {
    std::string type;
    std::string name;
    int line = 0;
    std::vector<SpecEntry> entries;

    const SpecEntry *find(const std::string &key) const;
    bool has(const std::string &key) const { return find(key) != nullptr; }
    /** Value of @p key, or @p fallback when absent. */
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;
};

/** A parsed spec file. */
struct SpecFile {
    std::string path; ///< origin, used as the diagnostic prefix
    std::vector<SpecSection> sections;

    /** All sections of @p type, in file order. */
    std::vector<const SpecSection *>
    sectionsOfType(const std::string &type) const;

    /** First section of @p type; nullptr if none. */
    const SpecSection *first(const std::string &type) const;

    /** Serialize back to `.scn` text. parse(serialize()) reproduces the
     *  same sections/entries (comments and blank lines are not kept). */
    std::string serialize() const;

    /**
     * Parse @p text. On failure returns false and sets @p err to a
     * "path:line: message" diagnostic. Duplicate keys within one
     * section are rejected (every key names one axis or knob), with
     * two exceptions: `assert` and `inject` lines are repeatable
     * statements.
     */
    static bool parse(const std::string &text, const std::string &path,
                      SpecFile *out, std::string *err);

    /** Read and parse a file; diagnoses unreadable paths too. */
    static bool parseFile(const std::string &path, SpecFile *out,
                          std::string *err);
};

/** Format a "path:line: message" diagnostic. */
std::string specError(const std::string &path, int line,
                      const std::string &message);

/** Split a comma-separated value into trimmed, non-empty tokens. */
std::vector<std::string> splitList(const std::string &value);

/**
 * splitList plus `lo..hi` integer-span expansion. Returns false (with
 * a message in @p err when non-null) on a malformed or inverted span.
 */
bool expandValues(const std::string &value, std::vector<std::string> *out,
                  std::string *err = nullptr);

// Typed value parsers shared by the scenario model. Accept decimal,
// hex (0x...), and octal integers; booleans are true/false/on/off/1/0.
bool parseU64(const std::string &value, std::uint64_t *out);
bool parseUnsigned(const std::string &value, unsigned *out);
bool parseBool(const std::string &value, bool *out);

} // namespace misp::driver

#endif // MISP_DRIVER_SPEC_HH
