#include "driver/faults.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "driver/spec.hh"

namespace misp::driver {

namespace {

/**
 * splitmix64 finalizer. The supervised backend must pick the same
 * faulted points on every run of the same plan, on every platform, so
 * probability rules use this fixed mix instead of std::hash (whose
 * output is implementation-defined).
 */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

bool
parseKind(const std::string &name, FaultKind *out)
{
    if (name == "crash")
        *out = FaultKind::Crash;
    else if (name == "hang")
        *out = FaultKind::Hang;
    else if (name == "corrupt_pipe")
        *out = FaultKind::CorruptPipe;
    else if (name == "corrupt_snapshot")
        *out = FaultKind::CorruptSnapshot;
    else if (name == "fork_fail")
        *out = FaultKind::ForkFail;
    else
        return false;
    return true;
}

bool
parseProbability(const std::string &text, double *out, std::string *err)
{
    // "p0.5" — everything after the 'p' must parse as a float in
    // [0, 1].
    const std::string body = text.substr(1);
    char *end = nullptr;
    double p = std::strtod(body.c_str(), &end);
    if (body.empty() || end == nullptr || *end != '\0' || p < 0.0 ||
        p > 1.0) {
        *err = "bad probability '" + text + "' (want p<float in [0,1]>)";
        return false;
    }
    *out = p;
    return true;
}

bool
parseIndexList(const std::string &text, std::vector<std::size_t> *out,
               std::string *err)
{
    std::vector<std::string> values;
    std::string verr;
    if (!expandValues(text, &values, &verr) || values.empty()) {
        *err = "bad point list '" + text + "'" +
               (verr.empty() ? "" : " (" + verr + ")");
        return false;
    }
    for (const std::string &v : values) {
        std::uint64_t idx = 0;
        // Indices are decimal grid positions — reject hex/octal spellings
        // so `crash@0x3` can't silently mean point 3.
        for (char c : v) {
            if (!std::isdigit(static_cast<unsigned char>(c))) {
                *err = "bad point index '" + v + "' (want a decimal "
                       "grid-point index)";
                return false;
            }
        }
        if (!parseU64(v, &idx)) {
            *err = "bad point index '" + v + "'";
            return false;
        }
        out->push_back(static_cast<std::size_t>(idx));
    }
    return true;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Crash: return "crash";
      case FaultKind::Hang: return "hang";
      case FaultKind::CorruptPipe: return "corrupt_pipe";
      case FaultKind::CorruptSnapshot: return "corrupt_snapshot";
      case FaultKind::ForkFail: return "fork_fail";
    }
    return "?";
}

bool
FaultPlan::parseItem(const std::string &rawItem, FaultPlan *out,
                     std::string *err)
{
    const std::string item = trim(rawItem);
    if (item.empty()) {
        *err = "empty fault item";
        return false;
    }

    if (item.rfind("seed=", 0) == 0) {
        std::uint64_t seed = 0;
        if (!parseU64(trim(item.substr(5)), &seed)) {
            *err = "bad fault seed '" + item.substr(5) + "'";
            return false;
        }
        out->seed = seed;
        out->seedSet = true;
        return true;
    }

    const std::size_t at = item.find('@');
    if (at == std::string::npos) {
        *err = "bad fault item '" + item +
               "' (want kind@points, kind@p<prob>, or seed=N)";
        return false;
    }

    FaultRule rule;
    const std::string kindName = trim(item.substr(0, at));
    if (!parseKind(kindName, &rule.kind)) {
        *err = "unknown fault kind '" + kindName +
               "' (want crash, hang, corrupt_pipe, corrupt_snapshot, "
               "or fork_fail)";
        return false;
    }

    std::string target = trim(item.substr(at + 1));

    // Optional attempt bound: `...x2` or `...x*`. Split at the last
    // 'x' only when what follows is all digits or '*' — point lists
    // never contain 'x', so this can't eat part of a valid target.
    const std::size_t x = target.find_last_of('x');
    if (x != std::string::npos) {
        const std::string suffix = target.substr(x + 1);
        bool bound = !suffix.empty();
        for (char c : suffix)
            if (!std::isdigit(static_cast<unsigned char>(c)))
                bound = false;
        if (suffix == "*")
            bound = true;
        if (bound) {
            if (suffix == "*") {
                rule.times = FaultRule::kAlways;
            } else {
                unsigned n = 0;
                if (!parseUnsigned(suffix, &n) || n == 0) {
                    *err = "bad attempt bound 'x" + suffix +
                           "' (want xN with N >= 1, or x*)";
                    return false;
                }
                rule.times = n;
            }
            target = trim(target.substr(0, x));
        }
    }

    if (target.empty()) {
        *err = "fault item '" + item + "' has no target";
        return false;
    }

    if (target[0] == 'p' && target.size() > 1 &&
        !std::isalpha(static_cast<unsigned char>(target[1]))) {
        if (!parseProbability(target, &rule.probability, err))
            return false;
    } else if (!parseIndexList(target, &rule.points, err)) {
        return false;
    }

    out->rules.push_back(std::move(rule));
    return true;
}

bool
FaultPlan::parse(const std::string &spec, FaultPlan *out, std::string *err)
{
    std::size_t pos = 0;
    bool any = false;
    while (pos <= spec.size()) {
        std::size_t sep = spec.find(';', pos);
        if (sep == std::string::npos)
            sep = spec.size();
        const std::string item = trim(spec.substr(pos, sep - pos));
        pos = sep + 1;
        if (item.empty())
            continue;
        if (!parseItem(item, out, err))
            return false;
        any = true;
    }
    if (!any) {
        *err = "empty --inject spec";
        return false;
    }
    return true;
}

void
FaultPlan::merge(const FaultPlan &other)
{
    if (other.seedSet) {
        seed = other.seed;
        seedSet = true;
    }
    rules.insert(rules.end(), other.rules.begin(), other.rules.end());
}

bool
FaultPlan::faultFor(std::size_t point, unsigned attempt,
                    FaultKind *kind) const
{
    for (std::size_t i = 0; i < rules.size(); ++i) {
        const FaultRule &rule = rules[i];
        if (rule.times != FaultRule::kAlways && attempt > rule.times)
            continue;
        bool hit = false;
        if (!rule.points.empty()) {
            for (std::size_t p : rule.points)
                if (p == point)
                    hit = true;
        } else {
            // Deterministic coin flip: hash (seed, rule, point) into
            // [0, 1). The attempt number is deliberately excluded so a
            // probabilistic fault is stable across retries of a point.
            const std::uint64_t h =
                mix64(seed ^ mix64(i + 1) ^ mix64(point * 2 + 1));
            const double u =
                static_cast<double>(h >> 11) / 9007199254740992.0;
            hit = u < rule.probability;
        }
        if (hit) {
            *kind = rule.kind;
            return true;
        }
    }
    return false;
}

std::string
FaultPlan::toString() const
{
    std::string out;
    if (seedSet)
        out += "seed=" + std::to_string(seed);
    for (const FaultRule &rule : rules) {
        if (!out.empty())
            out += ";";
        out += faultKindName(rule.kind);
        out += "@";
        if (rule.points.empty()) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "p%g", rule.probability);
            out += buf;
        } else {
            for (std::size_t i = 0; i < rule.points.size(); ++i) {
                if (i)
                    out += ",";
                out += std::to_string(rule.points[i]);
            }
        }
        if (rule.times != FaultRule::kAlways)
            out += "x" + std::to_string(rule.times);
    }
    return out;
}

} // namespace misp::driver
