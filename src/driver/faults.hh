/**
 * @file
 * Deterministic fault injection for supervised sweep execution.
 *
 * A FaultPlan is a seeded schedule of worker misbehaviors, parsed from
 * `mispsim --inject SPEC` or a scenario's `[faults]` section. It is the
 * single way tests and CI make `--isolate` workers misbehave: every
 * fault fires at a chosen grid-point index (or with a seeded,
 * deterministic per-point probability), on a bounded set of retry
 * attempts, so a chaos run's statuses are byte-reproducible.
 *
 * Item grammar (items are ';'-separated in --inject SPEC; a [faults]
 * section spells one item per repeatable `inject =` line plus an
 * optional `seed =` key):
 *
 *   item    := 'seed=' N | KIND '@' TARGET ('x' (N | '*'))?
 *   KIND    := crash | hang | corrupt_pipe | corrupt_snapshot
 *            | fork_fail
 *   TARGET  := index-list | 'p' FLOAT
 *
 * An index-list uses the sweep-spec value grammar (`1,3` or `0..2`,
 * decimal) and names grid-point indices in submission order (the
 * `--dry-run` order). `pFLOAT` instead fires on each point with the
 * given probability, decided by a hash of (seed, rule, point) — the
 * same plan and seed always picks the same points. The `xN` suffix
 * bounds the fault to the first N attempts of a point (so a
 * supervised retry then succeeds); the default `x*` fires on every
 * attempt (a persistent fault — the point fails after the retry
 * budget).
 *
 * What each kind does to the worker (src/driver/runner.cc):
 *
 *   crash             abort() before running -> WorkerCrashed
 *   hang              never compute, never write -> deadline SIGKILL
 *                     -> WorkerTimeout
 *   corrupt_pipe      run, then ship a truncated+flipped payload ->
 *                     fail-closed decode -> WorkerCrashed
 *   corrupt_snapshot  run with an unreadable snapshot image ->
 *                     SnapshotError (the run layer's fail-closed path)
 *   fork_fail         the parent's fork "fails" -> WorkerCrashed,
 *                     retryable without ever spawning a child
 */

#ifndef MISP_DRIVER_FAULTS_HH
#define MISP_DRIVER_FAULTS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace misp::driver {

enum class FaultKind {
    Crash,
    Hang,
    CorruptPipe,
    CorruptSnapshot,
    ForkFail,
};

/** The spelled name of @p kind (the --inject grammar keyword). */
const char *faultKindName(FaultKind kind);

/** One scheduled misbehavior: where it fires and for how many
 *  attempts. */
struct FaultRule {
    FaultKind kind = FaultKind::Crash;
    /** Explicit grid-point indices (submission order); empty when the
     *  rule is probability-based. */
    std::vector<std::size_t> points;
    /** Per-point firing probability for `pFLOAT` targets (decided
     *  deterministically from the plan seed); unused when `points` is
     *  non-empty. */
    double probability = 0.0;
    /** The fault fires on attempts 1..times of a point; kAlways means
     *  every attempt (a persistent fault). */
    unsigned times = kAlways;

    static constexpr unsigned kAlways = ~0u;
};

/** A seeded, deterministic schedule of worker faults. */
struct FaultPlan {
    std::uint64_t seed = 0;
    bool seedSet = false;
    std::vector<FaultRule> rules;

    bool empty() const { return rules.empty(); }

    /**
     * Parse a full `--inject` spec (';'-separated items) into @p out,
     * appending to any rules already present. False + @p err on a
     * malformed item.
     */
    static bool parse(const std::string &spec, FaultPlan *out,
                      std::string *err);

    /** Parse one item (one `inject =` spec line). */
    static bool parseItem(const std::string &item, FaultPlan *out,
                          std::string *err);

    /** Append @p other's rules; @p other's seed wins when it was
     *  explicitly set (CLI --inject overrides the spec's seed). */
    void merge(const FaultPlan &other);

    /**
     * The fault scheduled for attempt @p attempt (1-based) of grid
     * point @p point, if any. Rules are consulted in plan order; the
     * first match wins. Deterministic: the same plan always returns
     * the same schedule.
     */
    bool faultFor(std::size_t point, unsigned attempt,
                  FaultKind *kind) const;

    /** Round-trippable rendering (diagnostics, tests). */
    std::string toString() const;
};

} // namespace misp::driver

#endif // MISP_DRIVER_FAULTS_HH
