#include "spec.hh"

#include <fstream>
#include <sstream>

#include "sim/parse.hh"

namespace misp::driver {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Strip `#` / `;` comments. Values never contain either character
 *  (documented in spec.hh), so no quoting rules are needed. */
std::string
stripComment(const std::string &line)
{
    std::size_t pos = line.find_first_of("#;");
    return pos == std::string::npos ? line : line.substr(0, pos);
}

} // namespace

std::string
specError(const std::string &path, int line, const std::string &message)
{
    return path + ":" + std::to_string(line) + ": " + message;
}

const SpecEntry *
SpecSection::find(const std::string &key) const
{
    for (const SpecEntry &e : entries) {
        if (e.key == key)
            return &e;
    }
    return nullptr;
}

std::string
SpecSection::get(const std::string &key, const std::string &fallback) const
{
    const SpecEntry *e = find(key);
    return e ? e->value : fallback;
}

std::vector<const SpecSection *>
SpecFile::sectionsOfType(const std::string &type) const
{
    std::vector<const SpecSection *> out;
    for (const SpecSection &s : sections) {
        if (s.type == type)
            out.push_back(&s);
    }
    return out;
}

const SpecSection *
SpecFile::first(const std::string &type) const
{
    for (const SpecSection &s : sections) {
        if (s.type == type)
            return &s;
    }
    return nullptr;
}

std::string
SpecFile::serialize() const
{
    std::ostringstream os;
    bool firstSection = true;
    for (const SpecSection &s : sections) {
        if (!firstSection)
            os << "\n";
        firstSection = false;
        os << "[" << s.type;
        if (!s.name.empty())
            os << " " << s.name;
        os << "]\n";
        for (const SpecEntry &e : s.entries)
            os << e.key << " = " << e.value << "\n";
    }
    return os.str();
}

bool
SpecFile::parse(const std::string &text, const std::string &path,
                SpecFile *out, std::string *err)
{
    out->path = path;
    out->sections.clear();

    std::istringstream is(text);
    std::string raw;
    int lineNo = 0;
    while (std::getline(is, raw)) {
        ++lineNo;
        std::string line = trim(stripComment(raw));
        if (line.empty())
            continue;

        if (line.front() == '[') {
            if (line.back() != ']') {
                if (err)
                    *err = specError(path, lineNo,
                                     "section header missing ']'");
                return false;
            }
            std::string inner = trim(line.substr(1, line.size() - 2));
            if (inner.empty()) {
                if (err)
                    *err = specError(path, lineNo, "empty section header");
                return false;
            }
            SpecSection sec;
            sec.line = lineNo;
            std::size_t sp = inner.find_first_of(" \t");
            if (sp == std::string::npos) {
                sec.type = inner;
            } else {
                sec.type = inner.substr(0, sp);
                sec.name = trim(inner.substr(sp + 1));
            }
            out->sections.push_back(std::move(sec));
            continue;
        }

        std::size_t eq = line.find('=');
        if (eq == std::string::npos) {
            if (err)
                *err = specError(path, lineNo,
                                 "expected 'key = value' or '[section]', "
                                 "got '" + line + "'");
            return false;
        }
        if (out->sections.empty()) {
            if (err)
                *err = specError(path, lineNo,
                                 "'key = value' before any [section]");
            return false;
        }
        SpecEntry entry;
        entry.key = trim(line.substr(0, eq));
        entry.value = trim(line.substr(eq + 1));
        entry.line = lineNo;
        if (entry.key.empty()) {
            if (err)
                *err = specError(path, lineNo, "empty key");
            return false;
        }
        SpecSection &sec = out->sections.back();
        // Keys name one axis or knob each, so duplicates are rejected —
        // except `assert` and `inject`, which are repeatable
        // statements, not knobs.
        if (entry.key != "assert" && entry.key != "inject" &&
            sec.find(entry.key)) {
            if (err)
                *err = specError(path, lineNo,
                                 "duplicate key '" + entry.key +
                                 "' in section [" + sec.type + "]");
            return false;
        }
        sec.entries.push_back(std::move(entry));
    }
    return true;
}

bool
SpecFile::parseFile(const std::string &path, SpecFile *out, std::string *err)
{
    std::ifstream is(path);
    if (!is) {
        if (err)
            *err = "cannot open scenario file '" + path + "'";
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return parse(buf.str(), path, out, err);
}

std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= value.size()) {
        std::size_t comma = value.find(',', start);
        std::string tok =
            trim(comma == std::string::npos
                     ? value.substr(start)
                     : value.substr(start, comma - start));
        if (!tok.empty())
            out.push_back(std::move(tok));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

bool
expandValues(const std::string &value, std::vector<std::string> *out,
             std::string *err)
{
    out->clear();
    for (const std::string &tok : splitList(value)) {
        std::size_t dots = tok.find("..");
        if (dots == std::string::npos) {
            out->push_back(tok);
            continue;
        }
        std::uint64_t lo = 0, hi = 0;
        if (!parseU64(tok.substr(0, dots), &lo) ||
            !parseU64(tok.substr(dots + 2), &hi)) {
            if (err)
                *err = "malformed span '" + tok +
                       "' (expected <int>..<int>)";
            return false;
        }
        if (lo > hi) {
            if (err)
                *err = "inverted span '" + tok + "'";
            return false;
        }
        for (std::uint64_t v = lo; v <= hi; ++v)
            out->push_back(std::to_string(v));
    }
    return true;
}

bool
parseU64(const std::string &value, std::uint64_t *out)
{
    return misp::parse::u64(value, out);
}

bool
parseUnsigned(const std::string &value, unsigned *out)
{
    return misp::parse::u32(value, out);
}

bool
parseBool(const std::string &value, bool *out)
{
    return misp::parse::boolean(value, out);
}

} // namespace misp::driver
