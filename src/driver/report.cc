#include "report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

namespace misp::driver {

namespace {

using harness::MetricFrame;

// ---------------------------------------------------------------------
// Reference resolution (queries over the MetricFrame)
// ---------------------------------------------------------------------

/** One resolved reference, echoed into AssertFailure::detail. */
struct RefEcho {
    std::string text;
    double value = 0;
};

/** Memoized aggregate evaluations, shared across the per-group
 *  evaluations of one assert: an aggregate's value is
 *  group-independent by construction (its body iterates every group
 *  itself), so re-walking its tokens once per outer group would make
 *  a per-group assert with an aggregate O(groups^2). Keyed by the
 *  token position of the aggregate body. */
struct AggResult {
    double value = 0;
    std::size_t endPos = 0; ///< token position of the closing ')'
    std::vector<RefEcho> refs;
    /** Every group was degraded: the fold had nothing to fold over
     *  and the enclosing evaluation is itself degraded. */
    bool allDegraded = false;
};
using AggCache = std::map<std::size_t, AggResult>;

/** Everything one expression evaluation resolves against: the frame,
 *  the current coordinate group, and the evaluation's diagnostics. */
struct EvalCtx {
    const Scenario &sc;
    const MetricFrame &frame;
    std::size_t group = 0;
    /** True inside an aggregate body: echoes carry the group label and
     *  references do not mark the enclosing assert group-dependent. */
    bool inAggregate = false;

    /** Sweep-axis keys whose group coordinate the evaluation actually
     *  consulted — all of them for a bare reference, the un-pinned
     *  ones for a cross-axis reference, none inside aggregates. Two
     *  groups agreeing on every consulted axis evaluate identically,
     *  which is what lets evaluateAsserts() skip duplicates. */
    std::set<std::string> *consulted = nullptr;
    std::vector<RefEcho> *refs = nullptr;
    AggCache *aggCache = nullptr;

    /** Set when a resolved reference landed on an infrastructure-failed
     *  row (or an aggregate lost every group to degradation) — the
     *  signal the [report] on_failed_points policy acts on. */
    bool *sawFailed = nullptr;
};

void
markFailed(const EvalCtx &ctx)
{
    if (ctx.sawFailed)
        *ctx.sawFailed = true;
}

/** Full-string numeric parse (the assert grammar's NUMBER rule). */
bool
parseNumber(const std::string &s, double *out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (!end || *end != '\0' || end == s.c_str())
        return false;
    *out = v;
    return true;
}

/** Value of @p metric at @p row, with the metric-name diagnostics the
 *  grammar promises. */
bool
metricValue(const EvalCtx &ctx, std::size_t row,
            const std::string &metric, const std::string &ref,
            double *out, std::string *why)
{
    if (metric == "speedup") {
        if (ctx.sc.report.baselineMachine.empty()) {
            *why = "'" + ref +
                   "': speedup needs a [report] baseline_machine";
            return false;
        }
        std::size_t g = ctx.frame.row(row).group;
        if (ctx.frame.rowInGroup(g, ctx.sc.report.baselineMachine) ==
            MetricFrame::npos) {
            *why = "no baseline result for machine '" +
                   ctx.sc.report.baselineMachine + "' at " +
                   ctx.frame.groupLabel(g);
            return false;
        }
    }
    if (ctx.frame.value(row, metric, out))
        return true;
    if (metric.rfind("events.", 0) == 0 ||
        metric.rfind("events_per_mi.", 0) == 0) {
        *why = "'" + ref + "': unknown event counter";
        return false;
    }
    *why = "'" + ref + "': unknown metric '" + metric + "'";
    return false;
}

/** Parse the `[axis=value,...]` selector body of a cross-axis
 *  reference, validating each axis against the current group's
 *  coordinates. */
bool
parseSelector(const EvalCtx &ctx, const std::string &body,
              const std::string &ref,
              std::vector<MetricFrame::Coord> *out, std::string *why)
{
    std::size_t pos = 0;
    while (pos <= body.size()) {
        std::size_t comma = body.find(',', pos);
        std::string item = body.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        std::size_t eq = item.find('=');
        if (item.empty() || eq == std::string::npos || eq == 0 ||
            eq + 1 >= item.size()) {
            *why = "'" + ref + "': selector '" + item +
                   "' is not axis=value";
            return false;
        }
        MetricFrame::Coord coord{item.substr(0, eq),
                                 item.substr(eq + 1)};
        bool known = false;
        for (const MetricFrame::Coord &c :
             ctx.frame.groupCoords(ctx.group))
            known = known || c.first == coord.first;
        if (!known) {
            *why = "'" + ref + "': selector axis '" + coord.first +
                   "' names no sweep coordinate at " +
                   ctx.frame.groupLabel(ctx.group);
            return false;
        }

        // Numeric normalization: `signal_cycles=5e3` must address the
        // axis value spelled `5000`. An exact spelling match wins;
        // otherwise adopt the spelling of the axis value the selector
        // matches numerically. A value matching nothing either way is
        // a malformed selector — diagnose with the axis's values.
        // The indexed frame precomputes each axis's distinct values in
        // first-seen row order; a linear frame falls back to the scan.
        std::vector<std::string> axisValues;
        if (const std::vector<std::string> *vals =
                ctx.frame.axisValues(coord.first)) {
            axisValues = *vals;
        } else {
            for (std::size_t r = 0; r < ctx.frame.numRows(); ++r) {
                for (const MetricFrame::Coord &c :
                     ctx.frame.row(r).coords) {
                    if (c.first != coord.first)
                        continue;
                    bool dup = false;
                    for (const std::string &v : axisValues)
                        dup = dup || v == c.second;
                    if (!dup)
                        axisValues.push_back(c.second);
                }
            }
        }
        bool exact = false;
        for (const std::string &v : axisValues)
            exact = exact || v == coord.second;
        if (!exact) {
            double want = 0;
            std::string match;
            if (parseNumber(coord.second, &want)) {
                for (const std::string &v : axisValues) {
                    double have = 0;
                    if (parseNumber(v, &have) && have == want) {
                        match = v;
                        break;
                    }
                }
            }
            if (match.empty()) {
                std::string values;
                for (const std::string &v : axisValues)
                    values += (values.empty() ? "" : ", ") + v;
                *why = "'" + ref + "': selector value '" + coord.second +
                       "' matches no value of axis '" + coord.first +
                       "' (values: " + values + ")";
                return false;
            }
            coord.second = match;
        }
        out->push_back(std::move(coord));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return true;
}

/** Resolve `<machine>.<metric>` or the cross-axis
 *  `<machine>[axis=value].<metric>` against the current group. */
bool
resolveRef(const EvalCtx &ctx, const std::string &ref, double *out,
           std::string *why)
{
    std::string metric;
    std::size_t row = MetricFrame::npos;

    std::size_t bracket = ref.find('[');
    if (bracket != std::string::npos) {
        // Cross-axis form: the '[' delimits the machine name exactly.
        const std::string machine = ref.substr(0, bracket);
        bool knownMachine = false;
        for (const MachineSpec &m : ctx.sc.machines)
            knownMachine = knownMachine || m.name == machine;
        if (!knownMachine) {
            *why = "'" + ref + "': '" + machine +
                   "' names no [machine] section";
            return false;
        }
        std::size_t close = ref.find(']', bracket);
        if (close == std::string::npos) {
            *why = "'" + ref + "': missing ']' after the selector";
            return false;
        }
        if (close + 1 >= ref.size() || ref[close + 1] != '.' ||
            close + 2 >= ref.size()) {
            *why = "'" + ref + "': expected '.<metric>' after ']'";
            return false;
        }
        std::vector<MetricFrame::Coord> overrides;
        if (!parseSelector(ctx,
                           ref.substr(bracket + 1, close - bracket - 1),
                           ref, &overrides, why))
            return false;
        if (ctx.consulted && !ctx.inAggregate) {
            // The lookup depends on the group only through the axes
            // the selector leaves unpinned.
            for (const MetricFrame::Coord &c :
                 ctx.frame.groupCoords(ctx.group)) {
                bool pinned = false;
                for (const MetricFrame::Coord &o : overrides)
                    pinned = pinned || o.first == c.first;
                if (!pinned)
                    ctx.consulted->insert(c.first);
            }
        }
        metric = ref.substr(close + 2);
        row = ctx.frame.rowWithOverrides(ctx.group, machine, overrides);
        if (row == MetricFrame::npos) {
            std::string coords;
            for (const MetricFrame::Coord &c : overrides)
                coords += (coords.empty() ? "" : ",") + c.first + "=" +
                          c.second;
            *why = "no result for machine '" + machine + "' at [" +
                   coords + "] from " + ctx.frame.groupLabel(ctx.group);
            return false;
        }
    } else {
        // Plain form: the machine name is the longest [machine] name
        // that prefixes the reference followed by '.' (names may
        // contain '.', so longest match wins).
        const MachineSpec *machine = nullptr;
        for (const MachineSpec &m : ctx.sc.machines) {
            if (ref.size() > m.name.size() + 1 &&
                ref.compare(0, m.name.size(), m.name) == 0 &&
                ref[m.name.size()] == '.' &&
                (!machine || m.name.size() > machine->name.size()))
                machine = &m;
        }
        if (!machine) {
            *why = "'" + ref + "' names no [machine] section";
            return false;
        }
        metric = ref.substr(machine->name.size() + 1);
        row = ctx.frame.rowInGroup(ctx.group, machine->name);
        if (row == MetricFrame::npos) {
            *why = "no result for machine '" + machine->name + "' at " +
                   ctx.frame.groupLabel(ctx.group);
            return false;
        }
        if (ctx.consulted && !ctx.inAggregate) {
            for (const MetricFrame::Coord &c :
                 ctx.frame.groupCoords(ctx.group))
                ctx.consulted->insert(c.first);
        }
    }

    if (!metricValue(ctx, row, metric, ref, out, why))
        return false;
    // A reference landing on an infrastructure-failed row taints the
    // evaluation; the policy layer decides what that means. The value
    // still resolves (the frame's columns exist) so parsing continues
    // and every malformed-expression diagnostic still fires.
    if (harness::runStatusIsInfraFailure(ctx.frame.row(row).status))
        markFailed(ctx);
    if (ctx.refs) {
        std::string text = ref;
        if (ctx.inAggregate)
            text += "[" + ctx.frame.groupLabel(ctx.group) + "]";
        ctx.refs->push_back({std::move(text), *out});
    }
    return true;
}

// ---------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------

struct Tokenizer {
    std::vector<std::string> tokens;
    std::size_t pos = 0;

    explicit Tokenizer(const std::string &text)
    {
        std::istringstream is(text);
        std::string tok;
        while (is >> tok) {
            // Parentheses are their own tokens regardless of spacing
            // ("avg(a + b)" and "avg ( a + b )" parse alike); machine
            // and metric names never contain them, so this cannot
            // split a REF. Square brackets stay inside their token —
            // the selector is parsed by resolveRef.
            std::string cur;
            for (char ch : tok) {
                if (ch == '(' || ch == ')') {
                    if (!cur.empty()) {
                        tokens.push_back(cur);
                        cur.clear();
                    }
                    tokens.emplace_back(1, ch);
                } else {
                    cur += ch;
                }
            }
            if (!cur.empty())
                tokens.push_back(cur);
        }
    }

    const std::string *peek() const
    {
        return pos < tokens.size() ? &tokens[pos] : nullptr;
    }
    const std::string *take()
    {
        return pos < tokens.size() ? &tokens[pos++] : nullptr;
    }
};

bool
isComparison(const std::string &tok)
{
    return tok == "<" || tok == "<=" || tok == ">" || tok == ">=" ||
           tok == "==" || tok == "!=";
}

bool
isAggregateName(const std::string &tok)
{
    return tok == "avg" || tok == "geomean" || tok == "min" ||
           tok == "max" || tok == "sum" || tok == "count";
}

bool parseSide(Tokenizer &tz, const EvalCtx &ctx, double *out,
               std::string *why);

/** `AGG '(' side ')'`: evaluate the body once per coordinate group
 *  (re-walking the same tokens with each group's context) and fold. */
bool
parseAggregate(Tokenizer &tz, const EvalCtx &ctx,
               const std::string &func, double *out, std::string *why)
{
    tz.take(); // the '(' the caller peeked
    const std::size_t start = tz.pos;

    // One aggregate value per token position per assert: replay the
    // memoized result (and its echoes) instead of re-walking the body
    // once per outer coordinate group.
    if (ctx.aggCache) {
        auto hit = ctx.aggCache->find(start);
        if (hit != ctx.aggCache->end()) {
            tz.pos = hit->second.endPos + 1; // past the ')'
            if (ctx.refs)
                ctx.refs->insert(ctx.refs->end(),
                                 hit->second.refs.begin(),
                                 hit->second.refs.end());
            if (hit->second.allDegraded)
                markFailed(ctx);
            *out = hit->second.value;
            return true;
        }
    }

    std::size_t end = start;
    std::vector<RefEcho> bodyRefs;
    std::vector<double> values;
    std::size_t degraded = 0;
    for (std::size_t g = 0; g < ctx.frame.numGroups(); ++g) {
        tz.pos = start;
        const std::size_t refMark = bodyRefs.size();
        bool bodyFailed = false;
        EvalCtx inner = ctx;
        inner.group = g;
        inner.inAggregate = true;
        inner.refs = &bodyRefs;
        inner.sawFailed = &bodyFailed;
        double v = 0;
        if (!parseSide(tz, inner, &v, why))
            return false;
        end = tz.pos;
        // Degraded groups stay out of the fold — any group containing
        // an infrastructure-failed point, whether or not this body's
        // references touch the failed row, so ref-less bodies (the
        // `count ( 1 )` idiom) and ref-ful ones fold over the same
        // surviving groups.
        if (bodyFailed || ctx.frame.groupHasFailure(g)) {
            bodyRefs.resize(refMark);
            ++degraded;
            continue;
        }
        values.push_back(v);
    }
    if (degraded > 0)
        bodyRefs.push_back({func + "(...) degraded groups skipped",
                            double(degraded)});
    bool allDegraded = false;
    if (values.empty()) {
        if (degraded == 0) {
            *why = func + "(...): no results to aggregate over";
            return false;
        }
        // Every group was degraded: nothing to fold, so the aggregate
        // itself is degraded and the enclosing evaluation follows the
        // on_failed_points policy.
        allDegraded = true;
        markFailed(ctx);
    }
    tz.pos = end;
    const std::string *close = tz.take();
    if (!close || *close != ")") {
        *why = "expected ')' closing " + func + "(...), got " +
               (close ? "'" + *close + "'"
                      : std::string("end of expression"));
        return false;
    }
    if (ctx.refs)
        ctx.refs->insert(ctx.refs->end(), bodyRefs.begin(),
                         bodyRefs.end());

    if (allDegraded) {
        *out = 0.0;
    } else if (func == "avg") {
        double sum = 0;
        for (double v : values)
            sum += v;
        *out = sum / double(values.size());
    } else if (func == "geomean") {
        double logSum = 0;
        for (double v : values) {
            if (v <= 0.0) {
                *why = "geomean(...): non-positive value " +
                       std::to_string(v) + " in the sweep";
                return false;
            }
            logSum += std::log(v);
        }
        *out = std::exp(logSum / double(values.size()));
    } else if (func == "min") {
        *out = *std::min_element(values.begin(), values.end());
    } else if (func == "max") {
        *out = *std::max_element(values.begin(), values.end());
    } else if (func == "sum") {
        double sum = 0;
        for (double v : values)
            sum += v;
        *out = sum;
    } else { // count: groups whose body evaluates nonzero
        std::size_t n = 0;
        for (double v : values)
            n += v != 0.0 ? 1 : 0;
        *out = double(n);
    }
    if (ctx.aggCache)
        (*ctx.aggCache)[start] = {*out, end, std::move(bodyRefs),
                                  allDegraded};
    return true;
}

bool
parseValue(Tokenizer &tz, const EvalCtx &ctx, double *out,
           std::string *why)
{
    const std::string *tok = tz.take();
    if (!tok) {
        *why = "expected a number, <machine>.<metric>, an aggregate, "
               "or '(', got end of expression";
        return false;
    }
    if (*tok == "(") {
        if (!parseSide(tz, ctx, out, why))
            return false;
        const std::string *close = tz.take();
        if (!close || *close != ")") {
            *why = "expected ')', got " +
                   (close ? "'" + *close + "'"
                          : std::string("end of expression"));
            return false;
        }
        return true;
    }
    if (isAggregateName(*tok) && tz.peek() && *tz.peek() == "(")
        return parseAggregate(tz, ctx, *tok, out, why);
    char *end = nullptr;
    double num = std::strtod(tok->c_str(), &end);
    if (end && *end == '\0' && end != tok->c_str()) {
        *out = num;
        return true;
    }
    return resolveRef(ctx, *tok, out, why);
}

bool
parseProduct(Tokenizer &tz, const EvalCtx &ctx, double *out,
             std::string *why)
{
    if (!parseValue(tz, ctx, out, why))
        return false;
    while (const std::string *tok = tz.peek()) {
        if (*tok != "*" && *tok != "/")
            break;
        tz.take();
        double rhs = 0;
        if (!parseValue(tz, ctx, &rhs, why))
            return false;
        if (*tok == "/" && rhs == 0.0) {
            // Fail closed: a guard must not silently pass because the
            // run it divides by never finished (ticks == 0) — unless
            // the evaluation already touched a failed point, in which
            // case zeros are expected and the on_failed_points policy
            // (not a spurious division error) decides the outcome.
            if (ctx.sawFailed && *ctx.sawFailed) {
                *out = 0.0;
                continue;
            }
            *why = "division by zero";
            return false;
        }
        *out = *tok == "*" ? *out * rhs : *out / rhs;
    }
    return true;
}

bool
parseSide(Tokenizer &tz, const EvalCtx &ctx, double *out,
          std::string *why)
{
    if (!parseProduct(tz, ctx, out, why))
        return false;
    while (const std::string *tok = tz.peek()) {
        if (*tok != "+" && *tok != "-")
            break;
        tz.take();
        double rhs = 0;
        if (!parseProduct(tz, ctx, &rhs, why))
            return false;
        *out = *tok == "+" ? *out + rhs : *out - rhs;
    }
    return true;
}

bool
compare(double lhs, const std::string &op, double rhs)
{
    if (op == "<")
        return lhs < rhs;
    if (op == "<=")
        return lhs <= rhs;
    if (op == ">")
        return lhs > rhs;
    if (op == ">=")
        return lhs >= rhs;
    if (op == "==")
        return lhs == rhs;
    return lhs != rhs; // "!="
}

/** Evaluate one assert against one coordinate group. Returns false +
 *  @p why on a malformed expression; otherwise sets @p holds, the
 *  evaluated sides, the sweep-axis keys the evaluation consulted,
 *  and the resolved-reference echoes. */
bool
evaluateOne(const std::string &text, const Scenario &sc,
            const MetricFrame &frame, std::size_t group, bool *holds,
            double *lhs, double *rhs, std::set<std::string> *consulted,
            std::vector<RefEcho> *refs, AggCache *aggCache,
            bool *sawFailed, std::string *why)
{
    Tokenizer tz(text);
    EvalCtx ctx{sc,   frame, group,    /*inAggregate=*/false,
                consulted, refs,  aggCache, sawFailed};
    if (!parseSide(tz, ctx, lhs, why))
        return false;
    const std::string *op = tz.take();
    if (!op || !isComparison(*op)) {
        *why = "expected a comparison (<, <=, >, >=, ==, !=), got " +
               (op ? "'" + *op + "'" : std::string("end of expression"));
        return false;
    }
    const std::string cmp = *op;
    if (!parseSide(tz, ctx, rhs, why))
        return false;
    if (const std::string *extra = tz.peek()) {
        *why = "unexpected trailing token '" + *extra + "'";
        return false;
    }
    *holds = compare(*lhs, cmp, *rhs);
    return true;
}

std::string
failureDetail(double lhs, double rhs, const std::string &where,
              const std::vector<RefEcho> &refs)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "lhs=%g rhs=%g at ", lhs, rhs);
    std::string out = buf + where;
    for (const RefEcho &r : refs) {
        std::snprintf(buf, sizeof(buf), "=%g", r.value);
        out += "; " + r.text + buf;
    }
    return out;
}

/** The part of group @p coords an evaluation depended on: the
 *  "key=value" join over the consulted axes, in coordinate order. */
std::string
projectionLabel(const std::vector<MetricFrame::Coord> &coords,
                const std::set<std::string> &consulted)
{
    std::string out;
    for (const MetricFrame::Coord &c : coords) {
        if (!consulted.count(c.first))
            continue;
        if (!out.empty())
            out += " ";
        out += c.first + "=" + c.second;
    }
    return out;
}

} // namespace

bool
evaluateAsserts(const Scenario &sc, const MetricFrame &frame,
                std::vector<AssertFailure> *failures, std::string *err,
                std::size_t *skippedGroups)
{
    if (skippedGroups)
        *skippedGroups = 0;
    if (sc.report.asserts.empty())
        return true;
    const FailedPointPolicy policy = sc.report.onFailedPoints;
    for (const ReportAssert &a : sc.report.asserts) {
        // An evaluation depends on the group only through the axes its
        // references consult (none for aggregate-only "suite claims";
        // the unpinned axes for cross-axis references). Groups that
        // agree on every consulted axis evaluate identically, so each
        // distinct projection is evaluated — and can fail — once.
        // Degraded evaluations never claim their projection: a later
        // clean group with the same projection must still evaluate.
        AggCache aggCache;
        std::set<std::string> consulted;
        std::set<std::string> seen;
        bool consultedKnown = false;
        for (std::size_t g = 0; g < frame.numGroups(); ++g) {
            if (consultedKnown &&
                seen.count(
                    projectionLabel(frame.groupCoords(g), consulted)))
                continue;
            bool holds = false;
            bool sawFailed = false;
            double lhs = 0, rhs = 0;
            std::vector<RefEcho> refs;
            std::string why;
            if (!evaluateOne(a.text, sc, frame, g, &holds, &lhs, &rhs,
                             &consulted, &refs, &aggCache, &sawFailed,
                             &why)) {
                if (err)
                    *err = specError(sc.specPath, a.line,
                                     "assert '" + a.text + "': " + why);
                return false;
            }
            consultedKnown = true;
            std::string where =
                projectionLabel(frame.groupCoords(g), consulted);

            // A group-dependent evaluation is degraded when its group
            // contains a failed point (even one its references missed:
            // the group is the evaluation unit) or its references
            // reached a failed point elsewhere. Suite claims (nothing
            // consulted) are degraded only through their aggregates.
            const bool degraded =
                sawFailed ||
                (!consulted.empty() && frame.groupHasFailure(g));
            if (degraded) {
                if (skippedGroups)
                    ++*skippedGroups;
                if (policy == FailedPointPolicy::RequireAll) {
                    failures->push_back(
                        {a.text, a.line,
                         "references failed point(s) at " +
                             (where.empty() ? "the whole sweep"
                                            : where) +
                             " (on_failed_points=require_all)"});
                }
            } else {
                seen.insert(where);
                if (!holds) {
                    failures->push_back(
                        {a.text, a.line,
                         failureDetail(lhs, rhs,
                                       where.empty()
                                           ? "the whole sweep"
                                           : where,
                                       refs)});
                }
            }
            // Nothing consulted the group: one evaluation covers the
            // sweep.
            if (consulted.empty())
                break;
        }
    }
    return true;
}

void
writeEventsTable(std::ostream &os, const Scenario &sc,
                 const MetricFrame &frame, bool markdown)
{
    if (frame.numRows() == 0) {
        os << "(no points)\n";
        return;
    }

    std::vector<std::string> coordKeys;
    for (const auto &[key, value] : frame.row(0).coords) {
        (void)value;
        if (key != "workload.name")
            coordKeys.push_back(key);
    }

    bool anyFailed = false;
    for (std::size_t i = 0; i < frame.numRows(); ++i)
        anyFailed = anyFailed || frame.at(i, "failed") != 0.0;

    std::vector<std::string> header = {"machine", "workload"};
    for (const std::string &k : coordKeys)
        header.push_back(k);
    for (const char *k :
         {"insts(M)", "oms_sys", "oms_pf", "timer", "intr", "ams_sys",
          "ams_pf", "serial"})
        header.push_back(k);
    if (anyFailed)
        header.push_back("status");

    // The Table-1 classes, normalized per 10^6 retired instructions —
    // straight reads of the frame's events_per_mi columns.
    static const char *const kPerMiColumns[] = {
        "events_per_mi.oms_syscalls", "events_per_mi.oms_page_faults",
        "events_per_mi.timer",        "events_per_mi.interrupts",
        "events_per_mi.ams_syscalls", "events_per_mi.ams_page_faults",
        "events_per_mi.serializations"};

    // One row's cells at a time — two passes (width scan, emission)
    // instead of materializing every row of the sweep.
    auto formatRow = [&](std::size_t i) {
        const MetricFrame::Row &r = frame.row(i);
        std::vector<std::string> row = {r.machine, r.workload};
        for (const std::string &k : coordKeys) {
            std::string v;
            for (const auto &[ck, cv] : r.coords) {
                if (ck == k)
                    v = cv;
            }
            row.push_back(v);
        }
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.2f",
                      frame.at(i, "insts") / 1e6);
        row.push_back(buf);
        for (const char *col : kPerMiColumns) {
            std::snprintf(buf, sizeof(buf), "%.3f", frame.at(i, col));
            row.push_back(buf);
        }
        if (anyFailed)
            row.push_back(harness::runStatusName(r.status));
        return row;
    };

    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    if (!markdown) {
        for (std::size_t i = 0; i < frame.numRows(); ++i) {
            const std::vector<std::string> row = formatRow(i);
            for (std::size_t c = 0; c < row.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto emitRow = [&](const std::vector<std::string> &row) {
        if (markdown) {
            os << "|";
            for (std::size_t c = 0; c < row.size(); ++c)
                os << " " << row[c] << " |";
            os << "\n";
        } else {
            for (std::size_t c = 0; c < row.size(); ++c) {
                os << (c ? "  " : "");
                os << row[c]
                   << std::string(widths[c] - row[c].size(), ' ');
            }
            os << "\n";
        }
    };

    if (!sc.title.empty())
        os << (markdown ? "### " : "") << sc.title << "\n\n";
    os << "Serializing events per 10^6 retired instructions\n";
    if (markdown)
        os << "\n";
    emitRow(header);
    if (markdown) {
        os << "|";
        for (std::size_t c = 0; c < header.size(); ++c)
            os << " --- |";
        os << "\n";
    } else {
        std::size_t total = 0;
        for (std::size_t c = 0; c < widths.size(); ++c)
            total += widths[c] + (c ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (std::size_t i = 0; i < frame.numRows(); ++i)
        emitRow(formatRow(i));
}

} // namespace misp::driver
