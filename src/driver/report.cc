#include "report.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace misp::driver {

namespace {

// ---------------------------------------------------------------------
// Metric resolution
// ---------------------------------------------------------------------

/** Results sharing one sweep-coordinate combination. */
struct CoordGroup {
    std::vector<std::pair<std::string, std::string>> coords;
    std::vector<const PointResult *> results;

    const PointResult *byMachine(const std::string &machine) const
    {
        for (const PointResult *r : results) {
            if (r->machine == machine)
                return r;
        }
        return nullptr;
    }

    std::string label() const
    {
        std::string out;
        for (const auto &[key, value] : coords) {
            if (!out.empty())
                out += " ";
            out += key + "=" + value;
        }
        return out.empty() ? "-" : out;
    }
};

std::vector<CoordGroup>
groupByCoords(const std::vector<PointResult> &results)
{
    std::vector<CoordGroup> groups;
    for (const PointResult &r : results) {
        CoordGroup *group = nullptr;
        for (CoordGroup &g : groups) {
            if (g.coords == r.coords)
                group = &g;
        }
        if (!group) {
            groups.push_back({r.coords, {}});
            group = &groups.back();
        }
        group->results.push_back(&r);
    }
    return groups;
}

/** Resolve a counter name against the authoritative field list shared
 *  with the JSON emitter (harness::eventFields), so an assert can
 *  reference exactly the names the JSON carries. */
bool
eventCounter(const harness::EventSnapshot &ev, const std::string &name,
             double *out)
{
    for (const harness::EventField &f : harness::eventFields()) {
        if (name == f.name) {
            *out = f.get(ev);
            return true;
        }
    }
    return false;
}

/** Resolve `<machine>.<metric>` against one coordinate group. */
bool
resolveRef(const Scenario &sc, const CoordGroup &group,
           const std::string &ref, double *out, std::string *why)
{
    // The machine name is the longest [machine] name that prefixes the
    // reference followed by '.' (names may contain '.', so longest
    // match wins).
    const MachineSpec *machine = nullptr;
    for (const MachineSpec &m : sc.machines) {
        if (ref.size() > m.name.size() + 1 &&
            ref.compare(0, m.name.size(), m.name) == 0 &&
            ref[m.name.size()] == '.' &&
            (!machine || m.name.size() > machine->name.size()))
            machine = &m;
    }
    if (!machine) {
        *why = "'" + ref + "' names no [machine] section";
        return false;
    }
    const std::string metric = ref.substr(machine->name.size() + 1);

    const PointResult *r = group.byMachine(machine->name);
    if (!r) {
        *why = "no result for machine '" + machine->name + "' at " +
               group.label();
        return false;
    }

    if (metric == "ticks") {
        *out = double(r->run.ticks);
        return true;
    }
    if (metric == "mcycles") {
        *out = r->run.megaCycles();
        return true;
    }
    if (metric == "insts") {
        *out = double(r->run.instsRetired);
        return true;
    }
    if (metric == "valid") {
        *out = r->run.valid ? 1.0 : 0.0;
        return true;
    }
    if (metric == "completed") {
        *out = r->run.status == harness::RunStatus::Completed ? 1.0 : 0.0;
        return true;
    }
    if (metric == "speedup") {
        if (sc.report.baselineMachine.empty()) {
            *why = "'" + ref +
                   "': speedup needs a [report] baseline_machine";
            return false;
        }
        const PointResult *base =
            group.byMachine(sc.report.baselineMachine);
        if (!base) {
            *why = "no baseline result for machine '" +
                   sc.report.baselineMachine + "' at " + group.label();
            return false;
        }
        *out = r->run.speedupOver(base->run);
        return true;
    }
    if (metric.rfind("events.", 0) == 0) {
        if (eventCounter(r->run.events, metric.substr(7), out))
            return true;
        *why = "'" + ref + "': unknown event counter";
        return false;
    }
    if (metric.rfind("events_per_mi.", 0) == 0) {
        double count = 0;
        if (!eventCounter(r->run.events, metric.substr(14), &count)) {
            *why = "'" + ref + "': unknown event counter";
            return false;
        }
        *out = r->run.perMegaInsts(count);
        return true;
    }
    *why = "'" + ref + "': unknown metric '" + metric + "'";
    return false;
}

// ---------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------

struct Tokenizer {
    std::vector<std::string> tokens;
    std::size_t pos = 0;

    explicit Tokenizer(const std::string &text)
    {
        std::istringstream is(text);
        std::string tok;
        while (is >> tok) {
            // Parentheses are their own tokens regardless of spacing
            // ("(a + b)" and "( a + b )" parse alike); machine names
            // never contain them, so this cannot split a REF.
            std::size_t start = 0;
            while (start < tok.size() && tok[start] == '(')
                tokens.emplace_back(1, tok[start++]);
            std::size_t end = tok.size();
            while (end > start && tok[end - 1] == ')')
                --end;
            if (end > start)
                tokens.push_back(tok.substr(start, end - start));
            for (std::size_t i = end; i < tok.size(); ++i)
                tokens.emplace_back(1, ')');
        }
    }

    const std::string *peek() const
    {
        return pos < tokens.size() ? &tokens[pos] : nullptr;
    }
    const std::string *take()
    {
        return pos < tokens.size() ? &tokens[pos++] : nullptr;
    }
};

bool
isComparison(const std::string &tok)
{
    return tok == "<" || tok == "<=" || tok == ">" || tok == ">=" ||
           tok == "==" || tok == "!=";
}

bool parseSide(Tokenizer &tz, const Scenario &sc, const CoordGroup &group,
               double *out, std::string *why);

bool
parseValue(Tokenizer &tz, const Scenario &sc, const CoordGroup &group,
           double *out, std::string *why)
{
    const std::string *tok = tz.take();
    if (!tok) {
        *why = "expected a number, <machine>.<metric>, or '(', got end "
               "of expression";
        return false;
    }
    if (*tok == "(") {
        if (!parseSide(tz, sc, group, out, why))
            return false;
        const std::string *close = tz.take();
        if (!close || *close != ")") {
            *why = "expected ')', got " +
                   (close ? "'" + *close + "'"
                          : std::string("end of expression"));
            return false;
        }
        return true;
    }
    char *end = nullptr;
    double num = std::strtod(tok->c_str(), &end);
    if (end && *end == '\0' && end != tok->c_str()) {
        *out = num;
        return true;
    }
    return resolveRef(sc, group, *tok, out, why);
}

bool
parseProduct(Tokenizer &tz, const Scenario &sc, const CoordGroup &group,
             double *out, std::string *why)
{
    if (!parseValue(tz, sc, group, out, why))
        return false;
    while (const std::string *tok = tz.peek()) {
        if (*tok != "*" && *tok != "/")
            break;
        tz.take();
        double rhs = 0;
        if (!parseValue(tz, sc, group, &rhs, why))
            return false;
        if (*tok == "/" && rhs == 0.0) {
            // Fail closed: a guard must not silently pass because the
            // run it divides by never finished (ticks == 0).
            *why = "division by zero";
            return false;
        }
        *out = *tok == "*" ? *out * rhs : *out / rhs;
    }
    return true;
}

bool
parseSide(Tokenizer &tz, const Scenario &sc, const CoordGroup &group,
          double *out, std::string *why)
{
    if (!parseProduct(tz, sc, group, out, why))
        return false;
    while (const std::string *tok = tz.peek()) {
        if (*tok != "+" && *tok != "-")
            break;
        tz.take();
        double rhs = 0;
        if (!parseProduct(tz, sc, group, &rhs, why))
            return false;
        *out = *tok == "+" ? *out + rhs : *out - rhs;
    }
    return true;
}

bool
compare(double lhs, const std::string &op, double rhs)
{
    if (op == "<")
        return lhs < rhs;
    if (op == "<=")
        return lhs <= rhs;
    if (op == ">")
        return lhs > rhs;
    if (op == ">=")
        return lhs >= rhs;
    if (op == "==")
        return lhs == rhs;
    return lhs != rhs; // "!="
}

/** Evaluate one assert against one coordinate group. Returns false +
 *  @p why on a malformed expression; otherwise sets @p holds and the
 *  evaluated sides. */
bool
evaluateOne(const std::string &text, const Scenario &sc,
            const CoordGroup &group, bool *holds, double *lhs,
            double *rhs, std::string *why)
{
    Tokenizer tz(text);
    if (!parseSide(tz, sc, group, lhs, why))
        return false;
    const std::string *op = tz.take();
    if (!op || !isComparison(*op)) {
        *why = "expected a comparison (<, <=, >, >=, ==, !=), got " +
               (op ? "'" + *op + "'" : std::string("end of expression"));
        return false;
    }
    const std::string cmp = *op;
    if (!parseSide(tz, sc, group, rhs, why))
        return false;
    if (const std::string *extra = tz.peek()) {
        *why = "unexpected trailing token '" + *extra + "'";
        return false;
    }
    *holds = compare(*lhs, cmp, *rhs);
    return true;
}

} // namespace

bool
evaluateAsserts(const Scenario &sc,
                const std::vector<PointResult> &results,
                std::vector<AssertFailure> *failures, std::string *err)
{
    if (sc.report.asserts.empty())
        return true;
    const std::vector<CoordGroup> groups = groupByCoords(results);
    for (const ReportAssert &a : sc.report.asserts) {
        for (const CoordGroup &group : groups) {
            bool holds = false;
            double lhs = 0, rhs = 0;
            std::string why;
            if (!evaluateOne(a.text, sc, group, &holds, &lhs, &rhs,
                             &why)) {
                if (err)
                    *err = specError(sc.specPath, a.line,
                                     "assert '" + a.text + "': " + why);
                return false;
            }
            if (holds)
                continue;
            char buf[96];
            std::snprintf(buf, sizeof(buf), "lhs=%g rhs=%g at ", lhs,
                          rhs);
            failures->push_back({a.text, a.line, buf + group.label()});
        }
    }
    return true;
}

void
writeEventsTable(std::ostream &os, const Scenario &sc,
                 const std::vector<PointResult> &results, bool markdown)
{
    if (results.empty()) {
        os << "(no points)\n";
        return;
    }

    std::vector<std::string> coordKeys;
    for (const auto &[key, value] : results.front().coords) {
        (void)value;
        if (key != "workload.name")
            coordKeys.push_back(key);
    }

    std::vector<std::string> header = {"machine", "workload"};
    for (const std::string &k : coordKeys)
        header.push_back(k);
    for (const char *k :
         {"insts(M)", "oms_sys", "oms_pf", "timer", "intr", "ams_sys",
          "ams_pf", "serial"})
        header.push_back(k);

    std::vector<std::vector<std::string>> rows;
    for (const PointResult &r : results) {
        std::vector<std::string> row = {r.machine, r.workload};
        for (const std::string &k : coordKeys) {
            std::string v;
            for (const auto &[ck, cv] : r.coords) {
                if (ck == k)
                    v = cv;
            }
            row.push_back(v);
        }
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.2f",
                      double(r.run.instsRetired) / 1e6);
        row.push_back(buf);
        const harness::EventSnapshot &ev = r.run.events;
        for (double count :
             {double(ev.omsSyscalls), double(ev.omsPageFaults),
              double(ev.timer), double(ev.interrupts),
              double(ev.amsSyscalls), double(ev.amsPageFaults),
              double(ev.serializations)}) {
            std::snprintf(buf, sizeof(buf), "%.3f",
                          r.run.perMegaInsts(count));
            row.push_back(buf);
        }
        rows.push_back(std::move(row));
    }

    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c) {
        widths[c] = header[c].size();
        for (const auto &row : rows)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emitRow = [&](const std::vector<std::string> &row) {
        if (markdown) {
            os << "|";
            for (std::size_t c = 0; c < row.size(); ++c)
                os << " " << row[c] << " |";
            os << "\n";
        } else {
            for (std::size_t c = 0; c < row.size(); ++c) {
                os << (c ? "  " : "");
                os << row[c]
                   << std::string(widths[c] - row[c].size(), ' ');
            }
            os << "\n";
        }
    };

    if (!sc.title.empty())
        os << (markdown ? "### " : "") << sc.title << "\n\n";
    os << "Serializing events per 10^6 retired instructions\n";
    if (markdown)
        os << "\n";
    emitRow(header);
    if (markdown) {
        os << "|";
        for (std::size_t c = 0; c < header.size(); ++c)
            os << " --- |";
        os << "\n";
    } else {
        std::size_t total = 0;
        for (std::size_t c = 0; c < widths.size(); ++c)
            total += widths[c] + (c ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows)
        emitRow(row);
}

} // namespace misp::driver
