/**
 * @file
 * The `mispsim` CLI surface as data: one registry of flags and one of
 * exit codes, from which the --help text is *rendered*. Keeping the
 * help a projection of the registries (instead of a hand-maintained
 * string) means a flag added to the parser but not the registry — or
 * vice versa — is caught by tests/test_trace.cc's help audit, and the
 * exit-code table exists in exactly one place.
 */

#ifndef MISP_DRIVER_CLI_HELP_HH
#define MISP_DRIVER_CLI_HELP_HH

#include <string>
#include <vector>

namespace misp::driver {

/** One CLI flag: its usage spec ("-o FILE", "--jobs N", "-h, --help")
 *  and a '\n'-separated description (continuation lines are indented
 *  by the renderer). */
struct CliFlag {
    const char *spec;
    const char *help;
};

/** One documented exit code. */
struct CliExitCode {
    int code;
    const char *help;
};

/** Every flag `mispsim` accepts, in help order. */
const std::vector<CliFlag> &mispsimFlags();

/** Every exit code `mispsim` can return, in ascending order. */
const std::vector<CliExitCode> &mispsimExitCodes();

/** The flag *names* the registry declares — "-o", "--jobs", aliases
 *  split out ("-h" and "--help" are two entries), "=" value suffixes
 *  stripped ("--engine=E" contributes "--engine"). The help-audit
 *  test walks this list against the rendered usage text and the
 *  parser. */
std::vector<std::string> mispsimFlagNames();

/** Render the full `mispsim --help` text from the registries. */
std::string mispsimUsage(const char *argv0);

} // namespace misp::driver

#endif // MISP_DRIVER_CLI_HELP_HH
