#include "scenario.hh"

namespace misp::driver {

// ---------------------------------------------------------------------
// MachineSpec
// ---------------------------------------------------------------------

arch::SystemConfig
MachineSpec::toSystemConfig() const
{
    arch::SystemConfig sys = arch::SystemConfig::mp(amsPerProcessor);
    sys.misp.engine = engine;
    sys.misp.signalCycles = signalCycles;
    sys.misp.contextXferCycles = contextXferCycles;
    sys.misp.sliceLimit = sliceLimit;
    sys.misp.serialization = serialization;
    sys.physFrames = physFrames;
    sys.kernel.timerPeriod = timerPeriod;
    sys.kernel.deviceIrqMeanPeriod = deviceIrqMeanPeriod;
    sys.kernel.quantumTicks = quantumTicks;
    sys.kernel.seed = kernelSeed;
    return sys;
}

bool
MachineSpec::apply(const std::string &key, const std::string &value,
                   std::string *err)
{
    auto bad = [&](const char *what) {
        if (err)
            *err = key + ": expected " + what + ", got '" + value + "'";
        return false;
    };

    if (key == "processors") {
        std::vector<unsigned> counts;
        for (const std::string &tok : splitList(value)) {
            unsigned v = 0;
            if (!parseUnsigned(tok, &v))
                return bad("a comma list of AMS counts");
            counts.push_back(v);
        }
        if (counts.empty())
            return bad("a comma list of AMS counts");
        amsPerProcessor = std::move(counts);
        return true;
    }
    if (key == "ams") {
        unsigned v = 0;
        if (!parseUnsigned(value, &v))
            return bad("an AMS count");
        amsPerProcessor = {v};
        return true;
    }
    if (key == "backend") {
        if (value == "shred")
            backend = rt::Backend::Shred;
        else if (value == "os")
            backend = rt::Backend::OsThread;
        else
            return bad("'shred' or 'os'");
        return true;
    }
    if (key == "engine") {
        return cpu::parseEngineName(value, &engine) ||
               bad("'ref', 'cache', or 'superblock'");
    }
    if (key == "decode_cache") {
        // Legacy alias: the pre-superblock on/off ablation switch.
        bool on = true;
        if (!parseBool(value, &on))
            return bad("a boolean");
        engine = on ? cpu::Engine::Cache : cpu::Engine::Reference;
        return true;
    }
    if (key == "signal_cycles")
        return parseU64(value, &signalCycles) || bad("a cycle count");
    if (key == "context_xfer_cycles")
        return parseU64(value, &contextXferCycles) || bad("a cycle count");
    if (key == "slice_limit")
        return parseUnsigned(value, &sliceLimit) || bad("an integer");
    if (key == "serialization") {
        if (value == "suspend_all")
            serialization = arch::SerializationPolicy::SuspendAll;
        else if (value == "speculative_monitor")
            serialization = arch::SerializationPolicy::SpeculativeMonitor;
        else
            return bad("'suspend_all' or 'speculative_monitor'");
        return true;
    }
    if (key == "phys_frames")
        return parseU64(value, &physFrames) || bad("a frame count");
    if (key == "timer_period")
        return parseU64(value, &timerPeriod) || bad("a tick count");
    if (key == "device_irq_mean_period")
        return parseU64(value, &deviceIrqMeanPeriod) ||
               bad("a tick count (0 disables device IRQs)");
    if (key == "quantum_ticks")
        return parseUnsigned(value, &quantumTicks) || bad("an integer");
    if (key == "kernel_seed")
        return parseU64(value, &kernelSeed) || bad("an integer seed");
    if (key == "pin_min_ams")
        return parseUnsigned(value, &pinMinAms) || bad("an AMS count");
    if (key == "ideal_placement")
        return parseBool(value, &idealPlacement) || bad("a boolean");

    if (err)
        *err = "unknown machine knob '" + key + "'";
    return false;
}

std::string
MachineSpec::topologyString() const
{
    std::string out;
    for (unsigned a : amsPerProcessor) {
        if (!out.empty())
            out += ",";
        out += std::to_string(a);
    }
    return out;
}

// ---------------------------------------------------------------------
// WorkloadSpec
// ---------------------------------------------------------------------

bool
WorkloadSpec::apply(const std::string &key, const std::string &value,
                    std::string *err)
{
    if (key == "name") {
        name = value;
        return true;
    }
    return wl::setWorkloadParam(params, key, value, err);
}

std::string
ScenarioPoint::coordString() const
{
    std::string out;
    for (const auto &[key, value] : coords) {
        if (!out.empty())
            out += " ";
        out += key + "=" + value;
    }
    return out;
}

// ---------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------

namespace {

bool
validAxisKey(const std::string &key)
{
    return key == "competitors" || key.rfind("workload.", 0) == 0 ||
           key.rfind("machine.", 0) == 0;
}

bool
parseAxes(const SpecFile &spec, const SpecSection &sec,
          std::vector<SweepAxis> *out, std::string *err)
{
    for (const SpecEntry &e : sec.entries) {
        if (!validAxisKey(e.key)) {
            if (err)
                *err = specError(spec.path, e.line,
                                 "unknown sweep axis '" + e.key +
                                 "' (expected 'competitors', "
                                 "'workload.<param>' or "
                                 "'machine.<knob>')");
            return false;
        }
        // List-valued knobs cannot be an axis: the comma-split below
        // would silently turn one topology into several scalar points.
        if (e.key == "machine.processors") {
            if (err)
                *err = specError(spec.path, e.line,
                                 "machine.processors cannot be swept "
                                 "(its value is a comma list); define "
                                 "one [machine] section per topology "
                                 "instead");
            return false;
        }
        SweepAxis axis;
        axis.key = e.key;
        axis.line = e.line;
        std::string msg;
        if (!expandValues(e.value, &axis.values, &msg)) {
            if (err)
                *err = specError(spec.path, e.line, msg);
            return false;
        }
        if (axis.values.empty()) {
            if (err)
                *err = specError(spec.path, e.line,
                                 "axis '" + e.key + "' has no values");
            return false;
        }
        out->push_back(std::move(axis));
    }
    return true;
}

} // namespace

bool
Scenario::fromSpec(const SpecFile &spec, Scenario *out, std::string *err)
{
    *out = Scenario{};
    out->specPath = spec.path;

    bool sawWorkload = false;
    for (const SpecSection &sec : spec.sections) {
        if (sec.type == "scenario") {
            for (const SpecEntry &e : sec.entries) {
                if (e.key == "name")
                    out->name = e.value;
                else if (e.key == "title")
                    out->title = e.value;
                else {
                    if (err)
                        *err = specError(spec.path, e.line,
                                         "unknown [scenario] key '" +
                                         e.key + "'");
                    return false;
                }
            }
        } else if (sec.type == "machine") {
            MachineSpec m;
            m.name = sec.name.empty() ? "machine" : sec.name;
            for (const MachineSpec &prev : out->machines) {
                if (prev.name == m.name) {
                    if (err)
                        *err = specError(spec.path, sec.line,
                                         "duplicate machine name '" +
                                         m.name + "'");
                    return false;
                }
            }
            for (const SpecEntry &e : sec.entries) {
                std::string msg;
                if (!m.apply(e.key, e.value, &msg)) {
                    if (err)
                        *err = specError(spec.path, e.line, msg);
                    return false;
                }
            }
            out->machines.push_back(std::move(m));
        } else if (sec.type == "workload") {
            WorkloadSpec w;
            for (const SpecEntry &e : sec.entries) {
                std::string msg;
                if (!w.apply(e.key, e.value, &msg)) {
                    if (err)
                        *err = specError(spec.path, e.line, msg);
                    return false;
                }
            }
            if (!wl::findWorkload(w.name)) {
                if (err)
                    *err = specError(spec.path, sec.line,
                                     w.name.empty()
                                         ? std::string("[workload] section "
                                                       "needs a 'name' key")
                                         : "unknown workload '" + w.name +
                                               "'");
                return false;
            }
            if (!sawWorkload) {
                out->workload = std::move(w);
                sawWorkload = true;
            } else {
                out->background.push_back(std::move(w));
            }
        } else if (sec.type == "run") {
            for (const SpecEntry &e : sec.entries) {
                if (e.key == "max_ticks") {
                    if (!parseU64(e.value, &out->maxTicks)) {
                        if (err)
                            *err = specError(spec.path, e.line,
                                             "max_ticks: expected a tick "
                                             "count");
                        return false;
                    }
                } else if (e.key == "competitors") {
                    if (!parseUnsigned(e.value, &out->competitors)) {
                        if (err)
                            *err = specError(spec.path, e.line,
                                             "competitors: expected an "
                                             "integer");
                        return false;
                    }
                } else if (e.key == "competitor") {
                    if (!wl::findWorkload(e.value)) {
                        if (err)
                            *err = specError(spec.path, e.line,
                                             "unknown competitor workload "
                                             "'" + e.value + "'");
                        return false;
                    }
                    out->competitor = e.value;
                } else if (e.key == "point_deadline_ms") {
                    if (!parseU64(e.value, &out->pointDeadlineMs)) {
                        if (err)
                            *err = specError(spec.path, e.line,
                                             "point_deadline_ms: expected "
                                             "a millisecond count");
                        return false;
                    }
                } else if (e.key == "retries") {
                    if (!parseUnsigned(e.value, &out->retries)) {
                        if (err)
                            *err = specError(spec.path, e.line,
                                             "retries: expected an "
                                             "integer");
                        return false;
                    }
                } else if (e.key == "retry_backoff_ms") {
                    if (!parseUnsigned(e.value, &out->retryBackoffMs)) {
                        if (err)
                            *err = specError(spec.path, e.line,
                                             "retry_backoff_ms: expected "
                                             "a millisecond count");
                        return false;
                    }
                } else {
                    if (err)
                        *err = specError(spec.path, e.line,
                                         "unknown [run] key '" + e.key +
                                         "'");
                    return false;
                }
            }
        } else if (sec.type == "snapshot") {
            for (const SpecEntry &e : sec.entries) {
                if (e.key == "warmup_ticks") {
                    if (!parseU64(e.value, &out->snapshotWarmupTicks)) {
                        if (err)
                            *err = specError(spec.path, e.line,
                                             "warmup_ticks: expected a "
                                             "tick count");
                        return false;
                    }
                } else {
                    if (err)
                        *err = specError(spec.path, e.line,
                                         "unknown [snapshot] key '" +
                                         e.key + "'");
                    return false;
                }
            }
        } else if (sec.type == "trace") {
            for (const SpecEntry &e : sec.entries) {
                if (e.key == "categories") {
                    std::string msg;
                    if (!obs::parseTraceCats(e.value, &out->trace.catMask,
                                             &msg)) {
                        if (err)
                            *err = specError(spec.path, e.line, msg);
                        return false;
                    }
                } else if (e.key == "max_events") {
                    if (!parseU64(e.value, &out->trace.maxEvents)) {
                        if (err)
                            *err = specError(spec.path, e.line,
                                             "max_events: expected an "
                                             "event count");
                        return false;
                    }
                } else {
                    if (err)
                        *err = specError(spec.path, e.line,
                                         "unknown [trace] key '" + e.key +
                                         "'");
                    return false;
                }
            }
        } else if (sec.type == "faults") {
            for (const SpecEntry &e : sec.entries) {
                std::string msg;
                if (e.key == "seed") {
                    if (!parseU64(e.value, &out->faults.seed)) {
                        if (err)
                            *err = specError(spec.path, e.line,
                                             "seed: expected an integer");
                        return false;
                    }
                    out->faults.seedSet = true;
                } else if (e.key == "inject") {
                    if (!FaultPlan::parseItem(e.value, &out->faults,
                                              &msg)) {
                        if (err)
                            *err = specError(spec.path, e.line, msg);
                        return false;
                    }
                } else {
                    if (err)
                        *err = specError(spec.path, e.line,
                                         "unknown [faults] key '" +
                                         e.key + "'");
                    return false;
                }
            }
        } else if (sec.type == "sweep") {
            if (!parseAxes(spec, sec, &out->sweep, err))
                return false;
        } else if (sec.type == "quick") {
            if (!parseAxes(spec, sec, &out->quick, err))
                return false;
        } else if (sec.type == "report") {
            for (const SpecEntry &e : sec.entries) {
                if (e.key == "baseline_machine")
                    out->report.baselineMachine = e.value;
                else if (e.key == "baseline_axis")
                    out->report.baselineAxis = e.value;
                else if (e.key == "mode") {
                    if (e.value == "table")
                        out->report.mode = ReportMode::Table;
                    else if (e.value == "events")
                        out->report.mode = ReportMode::Events;
                    else {
                        if (err)
                            *err = specError(spec.path, e.line,
                                             "mode: expected 'table' or "
                                             "'events', got '" + e.value +
                                             "'");
                        return false;
                    }
                } else if (e.key == "on_failed_points") {
                    if (e.value == "fail")
                        out->report.onFailedPoints =
                            FailedPointPolicy::Fail;
                    else if (e.value == "skip")
                        out->report.onFailedPoints =
                            FailedPointPolicy::Skip;
                    else if (e.value == "require_all")
                        out->report.onFailedPoints =
                            FailedPointPolicy::RequireAll;
                    else {
                        if (err)
                            *err = specError(spec.path, e.line,
                                             "on_failed_points: expected "
                                             "'fail', 'skip' or "
                                             "'require_all', got '" +
                                             e.value + "'");
                        return false;
                    }
                } else if (e.key == "assert") {
                    out->report.asserts.push_back({e.value, e.line});
                } else {
                    if (err)
                        *err = specError(spec.path, e.line,
                                         "unknown [report] key '" + e.key +
                                         "'");
                    return false;
                }
            }
        } else {
            if (err)
                *err = specError(spec.path, sec.line,
                                 "unknown section [" + sec.type + "]");
            return false;
        }
    }

    if (out->machines.empty()) {
        if (err)
            *err = spec.path + ": no [machine] section";
        return false;
    }
    if (!sawWorkload) {
        if (err)
            *err = spec.path + ": no [workload] section";
        return false;
    }
    if (!out->report.baselineMachine.empty()) {
        bool found = false;
        for (const MachineSpec &m : out->machines)
            found = found || m.name == out->report.baselineMachine;
        if (!found) {
            if (err)
                *err = spec.path + ": [report] baseline_machine '" +
                       out->report.baselineMachine +
                       "' names no [machine] section";
            return false;
        }
    }
    if (!out->report.baselineAxis.empty()) {
        bool found = false;
        for (const SweepAxis &a : out->sweep)
            found = found || a.key == out->report.baselineAxis;
        if (!found) {
            if (err)
                *err = spec.path + ": [report] baseline_axis '" +
                       out->report.baselineAxis + "' names no sweep axis";
            return false;
        }
    }
    return true;
}

bool
Scenario::expandPoints(bool quickMode, std::vector<ScenarioPoint> *out,
                       std::string *err) const
{
    out->clear();

    // Resolve the effective axes: [quick] replaces same-key [sweep]
    // axes and appends new ones.
    std::vector<SweepAxis> axes = sweep;
    if (quickMode) {
        for (const SweepAxis &q : quick) {
            bool replaced = false;
            for (SweepAxis &a : axes) {
                if (a.key == q.key) {
                    a = q;
                    replaced = true;
                    break;
                }
            }
            if (!replaced)
                axes.push_back(q);
        }
    }

    // Expand workload-name selectors ("all", "suite:rms") into names.
    for (SweepAxis &a : axes) {
        if (a.key != "workload.name")
            continue;
        std::vector<std::string> names;
        for (const std::string &sel : a.values) {
            std::string msg;
            std::vector<const wl::WorkloadInfo *> picked =
                wl::selectWorkloads(sel, &msg);
            if (picked.empty()) {
                if (err)
                    *err = specError(specPath, a.line, msg);
                return false;
            }
            for (const wl::WorkloadInfo *info : picked)
                names.push_back(info->name);
        }
        a.values = std::move(names);
    }

    std::size_t total = 1;
    for (const SweepAxis &a : axes)
        total *= a.values.size();

    for (std::size_t idx = 0; idx < total; ++idx) {
        // Odometer decode: first axis varies slowest.
        std::vector<std::pair<std::string, std::string>> combo;
        std::vector<int> axisLines;
        std::size_t rem = idx;
        std::size_t stride = total;
        for (const SweepAxis &a : axes) {
            stride /= a.values.size();
            combo.emplace_back(a.key, a.values[rem / stride]);
            axisLines.push_back(a.line);
            rem %= stride;
        }

        for (const MachineSpec &machine : machines) {
            ScenarioPoint pt;
            pt.machine = machine;
            pt.workload = workload;
            pt.background = background;
            pt.competitors = competitors;
            pt.competitor = competitor;
            pt.coords = combo;

            for (std::size_t i = 0; i < combo.size(); ++i) {
                const auto &[key, value] = combo[i];
                std::string msg;
                bool ok;
                if (key == "competitors") {
                    ok = parseUnsigned(value, &pt.competitors);
                    if (!ok)
                        msg = "competitors: expected an integer, got '" +
                              value + "'";
                } else if (key.rfind("workload.", 0) == 0) {
                    ok = pt.workload.apply(key.substr(9), value, &msg);
                } else { // machine.<knob>
                    ok = pt.machine.apply(key.substr(8), value, &msg);
                }
                if (!ok) {
                    if (err)
                        *err = specError(specPath, axisLines[i], msg);
                    return false;
                }
            }

            if (!wl::findWorkload(pt.workload.name)) {
                if (err)
                    *err = specPath + ": swept workload '" +
                           pt.workload.name + "' is not registered";
                return false;
            }
            out->push_back(std::move(pt));
        }
    }
    return true;
}

} // namespace misp::driver
