/**
 * @file
 * The scenario model: what a parsed `.scn` spec *means*.
 *
 * A scenario is a grid of simulation runs:
 *
 *   points = [machine sections] x cartesian([sweep] axes)
 *
 * Sections:
 *   [scenario]            name, title
 *   [machine <name>]      one grid axis value per section; knobs below
 *   [workload]            the measured target (first section) and its
 *                         parameters; later [workload] sections are
 *                         co-loaded background processes (mixed runs)
 *   [run]                 max_ticks, competitors, competitor, and the
 *                         --isolate supervision knobs
 *                         point_deadline_ms / retries /
 *                         retry_backoff_ms (defaults when the CLI
 *                         doesn't override them)
 *   [sweep]               axes: key = value-list (commas, `lo..hi`)
 *   [quick]               axis/knob overrides applied in --quick mode
 *   [report]              baseline_machine, baseline_axis,
 *                         mode = table|events (events renders Table-1
 *                         counts per 10^6 retired instructions), and
 *                         repeatable `assert = <expr>` paper-claim
 *                         guards (grammar: driver/report.hh)
 *   [snapshot]            warmup_ticks: per-point warmup depth for
 *                         `mispsim --save-snapshot` (snapshot/)
 *   [faults]              deterministic fault injection for --isolate
 *                         sweeps: `seed = N` plus repeatable
 *                         `inject = <item>` lines (item grammar:
 *                         driver/faults.hh)
 *   [trace]               deterministic-trace defaults for
 *                         `mispsim --trace`: `categories` (a list of
 *                         signal/shred/sched/mem/rtcall/engine/
 *                         snapshot, or all|none|default) and
 *                         `max_events` (ring bound; overflow counts
 *                         into the drop counter)
 *
 * Machine knobs: `processors` (comma list of per-processor AMS counts)
 * or `ams` (uniprocessor shorthand), `backend` (shred|os),
 * `engine` (ref|cache|superblock; the boolean `decode_cache` is the
 * legacy alias, on->cache / off->ref), `signal_cycles`,
 * `context_xfer_cycles`,
 * `slice_limit`, `serialization` (suspend_all|speculative_monitor),
 * `phys_frames`, the OS-model cadence knobs `timer_period`,
 * `device_irq_mean_period` (0 disables device IRQs — a deterministic
 * event mix), `quantum_ticks`, `kernel_seed`, and the Figure-7
 * placement policy: `pin_min_ams` (pin the target to processors with
 * at least that many AMSs; 0 = no pinning) and `ideal_placement`
 * (keep competitors off those processors).
 *
 * Sweep axis keys: `workload.<param>` (name/workers/scale/prefault/
 * seed, or a per-workload knob `workload.param.<key>`; `workload.name`
 * accepts the selectors of wl::selectWorkloads, e.g. `all` or
 * `suite:rms`), `machine.<knob>` (overrides the knob on every
 * machine), and `competitors`.
 *
 * [workload] sections take the same keys without the prefix, including
 * `param.<key> = <value>` per-workload knobs (routed through
 * wl::setWorkloadParam into WorkloadParams::extra — e.g. the
 * RayTracer's `param.rows` scene size).
 */

#ifndef MISP_DRIVER_SCENARIO_HH
#define MISP_DRIVER_SCENARIO_HH

#include <string>
#include <utility>
#include <vector>

#include "driver/faults.hh"
#include "driver/spec.hh"
#include "misp/misp_system.hh"
#include "obs/trace.hh"
#include "shredlib/stub_library.hh"
#include "workloads/workload.hh"

namespace misp::driver {

/** One grid-axis machine: topology + per-processor knobs + placement. */
struct MachineSpec {
    std::string name = "machine";
    std::vector<unsigned> amsPerProcessor{7};
    rt::Backend backend = rt::Backend::Shred;
    /** Host execution engine (`engine = ref|cache|superblock`; the
     *  legacy boolean `decode_cache` knob maps on->cache, off->ref). */
    cpu::Engine engine = cpu::Engine::Superblock;
    Cycles signalCycles = 5000;
    Cycles contextXferCycles = 150;
    unsigned sliceLimit = 32;
    arch::SerializationPolicy serialization =
        arch::SerializationPolicy::SuspendAll;
    std::uint64_t physFrames = 1ull << 18;

    // OS-model knobs (defaults match os::KernelConfig). Exposed so the
    // event-mix ablations can pin the interrupt cadence from the spec
    // (e.g. `device_irq_mean_period = 0` for a deterministic mix).
    Tick timerPeriod = os::KernelConfig{}.timerPeriod;
    Tick deviceIrqMeanPeriod = os::KernelConfig{}.deviceIrqMeanPeriod;
    unsigned quantumTicks = os::KernelConfig{}.quantumTicks;
    std::uint64_t kernelSeed = os::KernelConfig{}.seed;

    /** Pin the target to processors with >= this many AMSs (0 = load
     *  with no affinity, the kernel schedules freely). */
    unsigned pinMinAms = 0;
    /** Pin competitors to the processors the target is *not* pinned to
     *  (Figure 7's "ideal" placement). No-op when no such CPU exists. */
    bool idealPlacement = false;

    /** Build the arch config this spec describes. */
    arch::SystemConfig toSystemConfig() const;

    /** Apply one `key = value` knob. False + @p err on unknown key or
     *  bad value. */
    bool apply(const std::string &key, const std::string &value,
               std::string *err);

    /** "3,0,0,0,0" style rendering of amsPerProcessor. */
    std::string topologyString() const;
};

/** A workload instance: registry name + build parameters. */
struct WorkloadSpec {
    std::string name;
    wl::WorkloadParams params;

    bool apply(const std::string &key, const std::string &value,
               std::string *err);
};

/** One sweep axis: a dotted key and its expanded value list. */
struct SweepAxis {
    std::string key;
    std::vector<std::string> values;
    int line = 0; ///< spec line, for expansion-time diagnostics
};

/** How the results table is rendered. */
enum class ReportMode {
    Table,  ///< runtime table with [report]-requested speedup columns
    Events, ///< Table-1 events, normalized per 10^6 retired instructions
};

/** One `assert = <expr>` guard from a [report] section, evaluated
 *  against RunRecord-derived metrics after the grid runs. */
struct ReportAssert {
    std::string text;
    int line = 0; ///< spec line, for failure diagnostics
};

/** What reporting does with grid points that failed for infrastructure
 *  reasons (worker crash/timeout, snapshot error) — the
 *  `[report] on_failed_points` policy. */
enum class FailedPointPolicy {
    /** Failed points make the run fail (exit 1), but asserts still
     *  evaluate over the surviving points (default). */
    Fail,
    /** Degrade gracefully: asserts skip groups containing failed
     *  points, and `mispsim` exits 4 ("completed with failed points")
     *  instead of 1 when everything else passes. */
    Skip,
    /** Any assert whose evaluation touches a failed point is itself a
     *  failure — for claims that are only meaningful over the full
     *  grid. */
    RequireAll,
};

/** Derived-column requests for tables and wrapper figures. */
struct ReportSpec {
    /** Speedup column: ticks on this machine / ticks, per coordinate. */
    std::string baselineMachine;
    /** Speedup column relative to the point with this axis at its
     *  first value, same machine / other coordinates ("competitors"
     *  gives Figure 7's vs-unloaded curve). */
    std::string baselineAxis;
    /** `mode = table|events` (default table). */
    ReportMode mode = ReportMode::Table;
    /** `on_failed_points = fail|skip|require_all` (default fail). */
    FailedPointPolicy onFailedPoints = FailedPointPolicy::Fail;
    /** Paper-claim guards; see driver/report.hh for the grammar. */
    std::vector<ReportAssert> asserts;
};

/** A fully-resolved grid point, ready to run. */
struct ScenarioPoint {
    MachineSpec machine;   ///< machine axis value + machine.* overrides
    WorkloadSpec workload; ///< target, with workload.* overrides
    std::vector<WorkloadSpec> background; ///< extra [workload] sections
    unsigned competitors = 0;
    std::string competitor = "spinner";
    /** Swept (key, value) coordinates, in axis order — machine name is
     *  carried by `machine.name`, not repeated here. */
    std::vector<std::pair<std::string, std::string>> coords;

    std::string coordString() const; ///< "competitors=2 workload.name=gauss"
};

/** A validated scenario. */
struct Scenario {
    std::string name = "scenario";
    std::string title;
    std::string specPath; ///< diagnostic prefix for expansion errors
    std::vector<MachineSpec> machines;
    WorkloadSpec workload;
    std::vector<WorkloadSpec> background;
    unsigned competitors = 0;
    std::string competitor = "spinner";
    Tick maxTicks = 2'000'000'000'000ull;
    std::vector<SweepAxis> sweep;
    std::vector<SweepAxis> quick;
    ReportSpec report;

    /** `[snapshot] warmup_ticks`: how deep each grid point warms up
     *  before `--save-snapshot` archives it (0 = save at the first
     *  snapshot point). Inert unless the CLI/runner asks for snapshot
     *  traffic. */
    Tick snapshotWarmupTicks = 0;

    // --isolate supervision defaults ([run] section; the CLI's
    // --deadline / --retries / --backoff flags override them).

    /** Wall-clock deadline per worker attempt in ms; 0 = no deadline. */
    std::uint64_t pointDeadlineMs = 0;
    /** Extra launches after a transient failure (crash / timeout /
     *  snapshot error) before a point is given up. */
    unsigned retries = 0;
    /** Base relaunch delay in ms; attempt k waits
     *  retryBackoffMs * 2^(k-1) (deterministic exponential backoff). */
    unsigned retryBackoffMs = 100;

    /** `[faults]` schedule; empty unless the spec declares one. Merged
     *  with (and overridden by) the CLI's --inject plan. */
    FaultPlan faults;

    /** `[trace]` defaults (category filter + buffer bound). `enabled`
     *  stays false here — recording is requested by the CLI
     *  (`--trace FILE`), never by the spec alone. */
    obs::TraceConfig trace;

    /**
     * Validate and type a parsed spec. All diagnostics carry
     * "path:line:" prefixes. Requires at least one [machine] and one
     * [workload] section with a registered workload name.
     */
    static bool fromSpec(const SpecFile &spec, Scenario *out,
                         std::string *err);

    /**
     * Expand the run grid: cartesian product of the sweep axes (with
     * [quick] overrides when @p quickMode), crossed with the machine
     * list. Sweep order: first axis varies slowest; machines vary
     * fastest. Axis values are validated here (e.g. workload names).
     */
    bool expandPoints(bool quickMode, std::vector<ScenarioPoint> *out,
                      std::string *err) const;
};

} // namespace misp::driver

#endif // MISP_DRIVER_SCENARIO_HH
