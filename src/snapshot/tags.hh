/**
 * @file
 * Event-tag registry: the one place snapshot tag kinds are assigned.
 *
 * One-shot lambda events whose closures can be rebuilt from a few
 * words of data carry an EventTag (sim/event_queue.hh) naming their
 * kind plus the rebuild arguments. At save time the snapshot layer
 * records (kind, args, when, seq, priority) for every pending tagged
 * event; at restore time the factory in snapshot.cc re-creates the
 * closure and re-schedules it with its original insertion sequence
 * number, so same-tick/same-priority ordering is preserved exactly.
 *
 * Events that cannot be expressed this way (Ring-0 episode phases,
 * serialization suspend/resume actions, proxy completions — all of
 * which capture arbitrary closures) make the machine momentarily
 * unsnapshottable; advanceToSnapshotPoint() steps the queue until none
 * remain, which is guaranteed to terminate because every such event
 * chain drains within one Ring-0 episode.
 */

#ifndef MISP_SNAPSHOT_TAGS_HH
#define MISP_SNAPSHOT_TAGS_HH

#include <cstdint>

namespace misp::snap::tag {

/** SignalFabric user-signal delivery.
 *  args: {cpuId, sid, payload.eip, payload.esp, payload.arg}. */
constexpr std::uint32_t kFabricSignal = 1;

/** SignalFabric proxy-request notification to an OMS.
 *  args: {cpuId, sid, payload.eip, payload.esp, payload.arg}. */
constexpr std::uint32_t kFabricProxyReq = 2;

/** Kernel sleep-syscall wakeup. args: {tid}. */
constexpr std::uint32_t kKernelSleepWake = 3;

} // namespace misp::snap::tag

#endif // MISP_SNAPSHOT_TAGS_HH
