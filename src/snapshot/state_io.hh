/**
 * @file
 * Shared value-type codecs for machine-state snapshots: the small
 * structs (sequencer contexts, faults, signal payloads) that several
 * layers archive — the sequencer itself, the proxy queue, the kernel's
 * thread save areas, the runtimes' shred descriptors. One codec per
 * type keeps their layouts from drifting apart across sections.
 */

#ifndef MISP_SNAPSHOT_STATE_IO_HH
#define MISP_SNAPSHOT_STATE_IO_HH

#include "cpu/sequencer.hh"
#include "mem/paging.hh"
#include "sim/event_queue.hh"
#include "snapshot/serialize.hh"

namespace misp::snap {

/** Archive one pending member event's (scheduled, when, seq). */
inline void
putEventSchedule(Serializer &s, const Event *ev)
{
    s.b(ev->scheduled());
    if (ev->scheduled()) {
        s.u64(ev->when());
        s.u64(ev->seq());
    }
}

/** Validate an archived (when, seq) against the restored clock — a
 *  hostile image must become a SnapError here, not a queue panic. */
inline void
checkEventSchedule(const EventQueue &eq, Tick when, std::uint64_t seq)
{
    if (when < eq.curTick() || seq >= eq.nextSeq())
        throw SnapError("image: pending event is inconsistent with the "
                        "restored clock");
}

/** Re-enqueue one pending member event archived by putEventSchedule. */
inline void
getEventSchedule(Deserializer &d, EventQueue &eq, Event *ev)
{
    if (d.b()) {
        Tick when = d.u64();
        std::uint64_t seq = d.u64();
        checkEventSchedule(eq, when, seq);
        eq.restoreSchedule(ev, when, seq);
    }
}

inline void
putContext(Serializer &s, const cpu::SequencerContext &ctx)
{
    for (Word r : ctx.regs)
        s.u64(r);
    s.u64(ctx.eip);
    s.b(ctx.flags.zf);
    s.b(ctx.flags.sf);
    s.b(ctx.flags.cf);
    s.b(ctx.flags.of);
    for (VAddr t : ctx.triggers)
        s.u64(t);
    s.u64(ctx.savedEip);
    s.b(ctx.inHandler);
    for (Word r : ctx.bankedRegs)
        s.u64(r);
}

inline cpu::SequencerContext
getContext(Deserializer &d)
{
    cpu::SequencerContext ctx;
    for (Word &r : ctx.regs)
        r = d.u64();
    ctx.eip = d.u64();
    ctx.flags.zf = d.b();
    ctx.flags.sf = d.b();
    ctx.flags.cf = d.b();
    ctx.flags.of = d.b();
    for (VAddr &t : ctx.triggers)
        t = d.u64();
    ctx.savedEip = d.u64();
    ctx.inHandler = d.b();
    for (Word &r : ctx.bankedRegs)
        r = d.u64();
    return ctx;
}

inline void
putFault(Serializer &s, const mem::Fault &fault)
{
    s.u8(static_cast<std::uint8_t>(fault.kind));
    s.u64(fault.addr);
    s.b(fault.write);
    s.u64(fault.code);
}

inline mem::Fault
getFault(Deserializer &d)
{
    mem::Fault fault;
    fault.kind = static_cast<mem::FaultKind>(d.u8());
    fault.addr = d.u64();
    fault.write = d.b();
    fault.code = d.u64();
    return fault;
}

inline void
putPayload(Serializer &s, const cpu::SignalPayload &p)
{
    s.u64(p.eip);
    s.u64(p.esp);
    s.u64(p.arg);
}

inline cpu::SignalPayload
getPayload(Deserializer &d)
{
    cpu::SignalPayload p;
    p.eip = d.u64();
    p.esp = d.u64();
    p.arg = d.u64();
    return p;
}

} // namespace misp::snap

#endif // MISP_SNAPSHOT_STATE_IO_HH
