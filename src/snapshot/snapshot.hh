/**
 * @file
 * Machine-state snapshots: serialize a complete simulated machine to a
 * versioned binary image and reconstitute it bit-identically.
 *
 * The contract is exact continuation determinism: for a deterministic
 * run, (warmup to tick T -> save -> restore -> run to completion)
 * produces the same simulated results — ticks, Table-1 events, retired
 * instructions, validation — as the uninterrupted run. That is what
 * lets a sweep pay a workload's boot + warmup once and fork every grid
 * point from the image, and what makes the crash-isolated multi-process
 * `--jobs` backend byte-compatible with in-process runs.
 *
 * What the image holds (one CRC-guarded section each):
 *   CONFIG  machine topology + knobs + runtime backend
 *   META    clock (tick, event sequence counter), target pid, the
 *           submitting RunRequest's hash, label
 *   PMEM    physical frames + allocator state
 *   KERNEL  processes (address spaces, page tables), threads,
 *           scheduler queues, futex/join queues, device-IRQ RNG
 *   PROCS   per-processor state: sequencers (contexts, TLBs, pending
 *           signals, run-slice events), proxy queues, interrupt events
 *   RT      runtime state (shred gangs / futex phase machines)
 *   EVENTS  pending tagged one-shot events (signal deliveries, sleep
 *           wakeups), each with its original queue insertion sequence
 *   STATS   the full statistics tree, by dotted path
 *
 * What it deliberately omits: decode caches, decoded-block references,
 * and last-translation caches — pure derivatives of guest memory that
 * rebuild lazily with identical modeled cycles (only the host-side
 * decode-cache hit/miss instrumentation counters restart cold).
 *
 * Snapshot points. Ring-0 episode phases and serialization
 * suspend/resume actions capture arbitrary closures and cannot be
 * archived; snapshotReady() detects them and advanceToSnapshotPoint()
 * steps the event queue (typically a few hundred events) until the
 * machine is between episodes. Every other pending event is either a
 * component-owned member event or carries a rebuild tag.
 */

#ifndef MISP_SNAPSHOT_SNAPSHOT_HH
#define MISP_SNAPSHOT_SNAPSHOT_HH

#include <memory>
#include <string>

#include "harness/run_record.hh"
#include "snapshot/serialize.hh"

namespace misp::snap {

/** Image bookkeeping read back by restore. */
struct SnapshotMeta {
    Tick savedTick = 0;
    std::uint64_t targetPid = 0;
    /** configHash() of the RunRequest that produced the image; restore
     *  fails closed when the submitting request disagrees. */
    std::uint64_t cfgHash = 0;
    std::string label;
};

/**
 * True when the machine can be archived right now: no processor is
 * inside a Ring-0 episode and every pending event is claimable (a
 * component member event or a tagged lambda). @p why, when non-null,
 * receives the first blocker's description.
 */
bool snapshotReady(harness::Experiment &exp, std::string *why = nullptr);

/**
 * Step the event queue until snapshotReady() holds. @return false if
 * the queue drained or @p maxEvents were processed first (a machine
 * that never quiesces is a bug — episodes are finite).
 */
bool advanceToSnapshotPoint(harness::Experiment &exp,
                            std::uint64_t maxEvents = 2'000'000);

/**
 * Serialize @p exp (which must be snapshotReady()) into @p imageOut.
 * @p cfgHash and @p label are archived for restore-time validation.
 * Returns false + @p err on a non-quiescent machine.
 */
bool saveExperiment(harness::Experiment &exp, os::Process *target,
                    std::uint64_t cfgHash, const std::string &label,
                    std::string *imageOut, std::string *err);

/** A machine reconstituted from an image. */
struct RestoredExperiment {
    std::unique_ptr<harness::Experiment> exp;
    /** The measured target process (resolved from the archived pid). */
    os::Process *target = nullptr;
    SnapshotMeta meta;
};

/**
 * Rebuild a machine from @p image. Fails closed (false + @p err, no
 * partially-built machine) on a bad magic, version, CRC, or internal
 * inconsistency. Callers continue with
 * Experiment::resumeToCompletion().
 */
bool restoreExperiment(const std::string &image, RestoredExperiment *out,
                       std::string *err);

/** Read just the META section of @p image (CRC-verified) — the cheap
 *  pre-flight that lets a config-hash mismatch be rejected at header
 *  cost instead of after a full machine rebuild. */
bool readSnapshotMeta(const std::string &image, SnapshotMeta *out,
                      std::string *err);

/**
 * Hash of everything about a RunRequest that shapes the simulation
 * from tick 0 — machine config, backend, target + background workloads
 * and their parameters, competitors, placement. Tick budgets, labels,
 * and host-side reporting knobs are excluded: restoring with a longer
 * budget is legitimate use. The hash gates --from-snapshot against
 * images produced by a different experiment.
 */
std::uint64_t configHash(const harness::RunRequest &req);

/** Whole-file helpers used by the run layer and the CLI. */
bool writeFileBytes(const std::string &path, const std::string &data,
                    std::string *err);
bool readFileBytes(const std::string &path, std::string *data,
                   std::string *err);

/**
 * RunRecord wire codec for the crash-isolated `--jobs` backend: a
 * worker child serializes its point's record over a pipe; the parent
 * reconstitutes it indistinguishably from an in-process run (the JSON
 * emitters see identical values, so artifacts stay byte-identical).
 */
std::string encodeRunRecord(const harness::RunRecord &rec);
bool decodeRunRecord(const std::string &data, harness::RunRecord *out,
                     std::string *err);

} // namespace misp::snap

#endif // MISP_SNAPSHOT_SNAPSHOT_HH
