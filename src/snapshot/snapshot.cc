#include "snapshot.hh"

#include <algorithm>
#include <fstream>
#include <unordered_set>
#include <sstream>

#include "harness/experiment.hh"
#include "misp/misp_system.hh"
#include "os/kernel.hh"
#include "shredlib/os_runtime.hh"
#include "shredlib/shred_runtime.hh"
#include "snapshot/state_io.hh"
#include "snapshot/tags.hh"

namespace misp::snap {

namespace {

// Section ids (stable; new sections append).
constexpr std::uint32_t kSecConfig = 1;
constexpr std::uint32_t kSecMeta = 2;
constexpr std::uint32_t kSecPmem = 3;
constexpr std::uint32_t kSecKernel = 4;
constexpr std::uint32_t kSecProcs = 5;
constexpr std::uint32_t kSecRt = 6;
constexpr std::uint32_t kSecEvents = 7;
constexpr std::uint32_t kSecStats = 8;

void
putSystemConfig(Serializer &s, const arch::SystemConfig &cfg,
                rt::Backend backend)
{
    s.u64(cfg.amsPerProcessor.size());
    for (unsigned n : cfg.amsPerProcessor)
        s.u32(n);
    s.u32(cfg.misp.numAms);
    s.u64(cfg.misp.signalCycles);
    s.u64(cfg.misp.contextXferCycles);
    s.u8(static_cast<std::uint8_t>(cfg.misp.serialization));
    s.u32(cfg.misp.sliceLimit);
    // Deliberately NOT serialized: cfg.misp.engine. The host execution
    // engine is not architectural state — images are engine-neutral, so
    // a snapshot warmed under one engine restores under any other (the
    // restoring run's choice is re-applied after restore) and the
    // config hash cannot key compatibility on it.
    s.u64(cfg.kernel.syscallBase);
    s.u64(cfg.kernel.writePerByte);
    s.u64(cfg.kernel.pageFaultService);
    s.u64(cfg.kernel.timerService);
    s.u64(cfg.kernel.deviceIrqService);
    s.u64(cfg.kernel.ctxSwitch);
    s.u64(cfg.kernel.timerPeriod);
    s.u32(cfg.kernel.quantumTicks);
    s.u64(cfg.kernel.deviceIrqMeanPeriod);
    s.u64(cfg.kernel.seed);
    s.u64(cfg.physFrames);
    s.u8(backend == rt::Backend::Shred ? 0 : 1);
}

arch::SystemConfig
getSystemConfig(Deserializer &d, rt::Backend *backend)
{
    arch::SystemConfig cfg;
    cfg.amsPerProcessor.resize(d.u64());
    for (unsigned &n : cfg.amsPerProcessor)
        n = d.u32();
    cfg.misp.numAms = d.u32();
    cfg.misp.signalCycles = d.u64();
    cfg.misp.contextXferCycles = d.u64();
    cfg.misp.serialization =
        static_cast<arch::SerializationPolicy>(d.u8());
    cfg.misp.sliceLimit = d.u32();
    cfg.kernel.syscallBase = d.u64();
    cfg.kernel.writePerByte = d.u64();
    cfg.kernel.pageFaultService = d.u64();
    cfg.kernel.timerService = d.u64();
    cfg.kernel.deviceIrqService = d.u64();
    cfg.kernel.ctxSwitch = d.u64();
    cfg.kernel.timerPeriod = d.u64();
    cfg.kernel.quantumTicks = d.u32();
    cfg.kernel.deviceIrqMeanPeriod = d.u64();
    cfg.kernel.seed = d.u64();
    cfg.physFrames = d.u64();
    *backend = d.u8() == 0 ? rt::Backend::Shred : rt::Backend::OsThread;
    return cfg;
}

/** Every member event a component will archive (and re-schedule)
 *  itself: run-slice events, periodic timer / device-IRQ events. */
std::unordered_set<const Event *>
claimedEvents(arch::MispSystem &sys)
{
    std::unordered_set<const Event *> claimed;
    for (unsigned p = 0; p < sys.numProcessors(); ++p) {
        arch::MispProcessor &proc = sys.processor(p);
        claimed.insert(proc.snapTimerEvent());
        claimed.insert(proc.snapDeviceEvent());
        for (SequencerId sid = 0;; ++sid) {
            cpu::Sequencer *seq = proc.sequencer(sid);
            if (!seq)
                break;
            claimed.insert(seq->snapRunEvent());
        }
    }
    return claimed;
}

// ---------------------------------------------------------------------
// Statistics tree
// ---------------------------------------------------------------------

void
saveStatGroup(Serializer &s, const stats::StatGroup &group)
{
    const auto &stats = group.statsHere();
    s.u64(stats.size());
    for (const stats::StatBase *stat : stats) {
        s.str(stat->name());
        std::vector<double> values = stat->snapValues();
        s.u64(values.size());
        for (double v : values)
            s.f64(v);
    }
    const auto &children = group.children();
    s.u64(children.size());
    for (const stats::StatGroup *child : children) {
        s.str(child->groupName());
        saveStatGroup(s, *child);
    }
}

void
restoreStatGroup(Deserializer &d, stats::StatGroup &group)
{
    const auto &stats = group.statsHere();
    if (d.u64() != stats.size())
        throw SnapError("stats: tree shape mismatch at group '" +
                        group.path() + "'");
    for (stats::StatBase *stat : stats) {
        if (d.str() != stat->name())
            throw SnapError("stats: name mismatch at group '" +
                            group.path() + "'");
        std::vector<double> values(d.u64());
        for (double &v : values)
            v = d.f64();
        stat->snapRestoreValues(values);
    }
    const auto &children = group.children();
    if (d.u64() != children.size())
        throw SnapError("stats: child count mismatch at group '" +
                        group.path() + "'");
    for (stats::StatGroup *child : children) {
        if (d.str() != child->groupName())
            throw SnapError("stats: child name mismatch at group '" +
                            group.path() + "'");
        restoreStatGroup(d, *child);
    }
}

// ---------------------------------------------------------------------
// Pending tagged events
// ---------------------------------------------------------------------

struct TaggedEvent {
    EventTag tag;
    Tick when = 0;
    std::uint64_t seq = 0;
    int priority = 0;
};

void
saveTaggedEvents(Serializer &s, arch::MispSystem &sys)
{
    std::unordered_set<const Event *> claimed = claimedEvents(sys);
    std::vector<TaggedEvent> pending;
    sys.eventQueue().forEachScheduled(
        [&](const EventQueue::ScheduledInfo &info) {
            if (claimed.count(info.ev))
                return;
            if (!info.tag)
                throw SnapError("unsnapshottable event '" +
                                info.ev->name() +
                                "' pending (machine not quiescent)");
            pending.push_back(TaggedEvent{*info.tag, info.when, info.seq,
                                          info.priority});
        });
    // Emission order must be deterministic; insertion sequence is the
    // natural (and unique) key.
    std::sort(pending.begin(), pending.end(),
              [](const TaggedEvent &a, const TaggedEvent &b) {
                  return a.seq < b.seq;
              });
    s.u64(pending.size());
    for (const TaggedEvent &ev : pending) {
        s.u32(ev.tag.kind);
        for (std::uint64_t a : ev.tag.arg)
            s.u64(a);
        s.u64(ev.when);
        s.u64(ev.seq);
        s.i64(ev.priority);
    }
}

void
restoreTaggedEvents(Deserializer &d, arch::MispSystem &sys)
{
    std::uint64_t count = d.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        TaggedEvent ev;
        ev.tag.kind = d.u32();
        for (std::uint64_t &a : ev.tag.arg)
            a = d.u64();
        ev.when = d.u64();
        ev.seq = d.u64();
        ev.priority = static_cast<int>(d.i64());
        checkEventSchedule(sys.eventQueue(), ev.when, ev.seq);

        switch (ev.tag.kind) {
          case tag::kFabricSignal:
          case tag::kFabricProxyReq: {
            int cpuId = static_cast<int>(ev.tag.arg[0]);
            SequencerId sid = static_cast<SequencerId>(ev.tag.arg[1]);
            arch::MispProcessor *proc = sys.processorForCpu(cpuId);
            cpu::Sequencer *target = proc ? proc->sequencer(sid) : nullptr;
            if (!target)
                throw SnapError("image: signal delivery names an absent "
                                "sequencer");
            cpu::SignalPayload payload;
            payload.eip = ev.tag.arg[2];
            payload.esp = ev.tag.arg[3];
            payload.arg = ev.tag.arg[4];
            bool isProxy = ev.tag.kind == tag::kFabricProxyReq;
            sys.eventQueue().restoreLambda(
                ev.when, ev.seq,
                isProxy ? "fabric.proxyReq" : "fabric.signal",
                [target, payload, isProxy] {
                    if (isProxy)
                        target->deliverProxyRequest(payload);
                    else
                        target->deliverSignal(payload);
                },
                ev.priority, ev.tag);
            break;
          }
          case tag::kKernelSleepWake:
            sys.kernel().snapRestoreSleepWake(
                static_cast<Tid>(ev.tag.arg[0]), ev.when, ev.seq);
            break;
          default:
            throw SnapError("image: unknown event tag kind " +
                            std::to_string(ev.tag.kind));
        }
    }
}

} // namespace

// ---------------------------------------------------------------------
// Quiescence
// ---------------------------------------------------------------------

bool
snapshotReady(harness::Experiment &exp, std::string *why)
{
    arch::MispSystem &sys = exp.system();
    for (unsigned p = 0; p < sys.numProcessors(); ++p) {
        if (sys.processor(p).inRing0()) {
            if (why)
                *why = sys.processor(p).name() + " is inside a Ring-0 "
                       "episode";
            return false;
        }
    }
    std::unordered_set<const Event *> claimed = claimedEvents(sys);
    bool ready = true;
    sys.eventQueue().forEachScheduled(
        [&](const EventQueue::ScheduledInfo &info) {
            if (claimed.count(info.ev) || info.tag)
                return;
            if (ready && why)
                *why = "pending event '" + info.ev->name() +
                       "' carries a closure";
            ready = false;
        });
    return ready;
}

bool
advanceToSnapshotPoint(harness::Experiment &exp, std::uint64_t maxEvents)
{
    EventQueue &eq = exp.system().eventQueue();
    for (std::uint64_t i = 0; i < maxEvents; ++i) {
        if (snapshotReady(exp))
            return true;
        if (!eq.step())
            return false;
    }
    return snapshotReady(exp);
}

// ---------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------

bool
saveExperiment(harness::Experiment &exp, os::Process *target,
               std::uint64_t cfgHash, const std::string &label,
               std::string *imageOut, std::string *err)
{
    std::string why;
    if (!snapshotReady(exp, &why)) {
        if (err)
            *err = "machine is not at a snapshot point: " + why;
        return false;
    }
    try {
        arch::MispSystem &sys = exp.system();
        Serializer s;

        s.beginSection(kSecConfig);
        putSystemConfig(s, sys.config(), exp.backend());
        s.endSection();

        s.beginSection(kSecMeta);
        s.u64(sys.eventQueue().curTick());
        s.u64(sys.eventQueue().nextSeq());
        s.u64(sys.eventQueue().numProcessed());
        s.u64(target ? target->pid() : 0);
        s.u64(cfgHash);
        s.str(label);
        s.endSection();

        s.beginSection(kSecPmem);
        sys.physMem().snapSave(s);
        s.endSection();

        s.beginSection(kSecKernel);
        sys.kernel().snapSave(s);
        s.endSection();

        s.beginSection(kSecProcs);
        s.u64(sys.numProcessors());
        for (unsigned p = 0; p < sys.numProcessors(); ++p)
            sys.processor(p).snapSave(s);
        s.endSection();

        s.beginSection(kSecRt);
        if (exp.backend() == rt::Backend::Shred)
            exp.shredRuntime()->snapSave(s);
        else
            exp.osRuntime()->snapSave(s);
        s.endSection();

        s.beginSection(kSecEvents);
        saveTaggedEvents(s, sys);
        s.endSection();

        s.beginSection(kSecStats);
        saveStatGroup(s, sys.rootStats());
        s.endSection();

        *imageOut = s.done();
        return true;
    } catch (const std::exception &e) {
        // SnapError, plus hostile-size allocation failures
        // (length_error / bad_alloc): all fail closed.
        if (err)
            *err = e.what();
        return false;
    }
}

// ---------------------------------------------------------------------
// Restore
// ---------------------------------------------------------------------

namespace {

SnapshotMeta
readMeta(Deserializer &d, std::uint64_t *nextSeq,
         std::uint64_t *numProcessed)
{
    d.openSection(kSecMeta);
    SnapshotMeta meta;
    meta.savedTick = d.u64();
    std::uint64_t seq = d.u64();
    std::uint64_t processed = d.u64();
    meta.targetPid = d.u64();
    meta.cfgHash = d.u64();
    meta.label = d.str();
    if (nextSeq)
        *nextSeq = seq;
    if (numProcessed)
        *numProcessed = processed;
    return meta;
}

} // namespace

bool
readSnapshotMeta(const std::string &image, SnapshotMeta *out,
                 std::string *err)
{
    try {
        Deserializer d(image);
        *out = readMeta(d, nullptr, nullptr);
        return true;
    } catch (const std::exception &e) {
        // SnapError, plus hostile-size allocation failures
        // (length_error / bad_alloc): all fail closed.
        if (err)
            *err = e.what();
        return false;
    }
}

bool
restoreExperiment(const std::string &image, RestoredExperiment *out,
                  std::string *err)
{
    try {
        Deserializer d(image);

        d.openSection(kSecConfig);
        rt::Backend backend = rt::Backend::Shred;
        arch::SystemConfig cfg = getSystemConfig(d, &backend);

        auto exp = std::make_unique<harness::Experiment>(cfg, backend);
        arch::MispSystem &sys = exp->system();

        std::uint64_t nextSeq = 0;
        std::uint64_t numProcessed = 0;
        SnapshotMeta meta = readMeta(d, &nextSeq, &numProcessed);
        // Clock first: member-event restores below validate their
        // (when, seq) against it.
        sys.eventQueue().setClock(meta.savedTick, nextSeq, numProcessed);

        d.openSection(kSecPmem);
        sys.physMem().snapRestore(d);

        d.openSection(kSecKernel);
        sys.kernel().snapRestore(d);

        d.openSection(kSecProcs);
        if (d.u64() != sys.numProcessors())
            throw SnapError("image: processor count mismatch");
        for (unsigned p = 0; p < sys.numProcessors(); ++p)
            sys.processor(p).snapRestore(d);

        // Re-point every MMU at the rebuilt address space of the thread
        // its processor is running (nullptr for idle processors: their
        // stale translation state is never consulted, and the next
        // loadThread() performs the architectural CR3 write anyway).
        for (unsigned p = 0; p < sys.numProcessors(); ++p) {
            arch::MispProcessor &proc = sys.processor(p);
            os::OsThread *cur = sys.kernel().current(proc.cpuId());
            mem::AddressSpace *as =
                cur ? &cur->process()->addressSpace() : nullptr;
            for (SequencerId sid = 0;; ++sid) {
                cpu::Sequencer *seq = proc.sequencer(sid);
                if (!seq)
                    break;
                seq->mmu().snapAttach(as);
            }
        }

        d.openSection(kSecRt);
        if (backend == rt::Backend::Shred)
            exp->shredRuntime()->snapRestore(d, sys);
        else
            exp->osRuntime()->snapRestore(d, sys);

        d.openSection(kSecEvents);
        restoreTaggedEvents(d, sys);

        d.openSection(kSecStats);
        restoreStatGroup(d, sys.rootStats());

        out->target = meta.targetPid
                          ? sys.kernel().processByPid(
                                static_cast<Pid>(meta.targetPid))
                          : nullptr;
        out->meta = meta;
        out->exp = std::move(exp);
        return true;
    } catch (const std::exception &e) {
        // SnapError, plus hostile-size allocation failures
        // (length_error / bad_alloc): all fail closed.
        out->exp.reset();
        if (err)
            *err = e.what();
        return false;
    }
}

// ---------------------------------------------------------------------
// Request hashing and file helpers
// ---------------------------------------------------------------------

namespace {

std::uint64_t
fnv1a(const std::string &data)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (unsigned char c : data) {
        h ^= c;
        h *= 0x100000001B3ull;
    }
    return h;
}

void
putWorkload(Serializer &s, const harness::RunWorkload &w)
{
    s.str(w.name);
    s.u32(w.params.workers);
    s.u64(w.params.scale);
    s.b(w.params.prefault);
    s.u64(w.params.seed);
    s.u64(w.params.extra.size());
    for (const auto &[key, value] : w.params.extra) {
        s.str(key);
        s.str(value);
    }
}

} // namespace

std::uint64_t
configHash(const harness::RunRequest &req)
{
    Serializer s;
    s.beginSection(0);
    putSystemConfig(s, req.config, req.backend);
    putWorkload(s, req.target);
    s.u64(req.background.size());
    for (const harness::RunWorkload &bg : req.background)
        putWorkload(s, bg);
    s.u32(req.competitors);
    s.str(req.competitor);
    s.u32(req.pinMinAms);
    s.b(req.idealPlacement);
    s.endSection();
    return fnv1a(s.done());
}

std::string
encodeRunRecord(const harness::RunRecord &rec)
{
    Serializer s;
    s.beginSection(0);
    s.u8(static_cast<std::uint8_t>(rec.status));
    s.u64(rec.ticks);
    s.b(rec.valid);
    const auto &fields = harness::eventFields();
    s.u64(fields.size());
    for (const harness::EventField &f : fields)
        s.f64(f.get(rec.events));
    s.u64(rec.instsRetired);
    s.f64(rec.hostSeconds);
    s.f64(rec.hostMips);
    s.str(rec.statsJson);
    s.str(rec.note);
    s.u32(rec.attempts);
    // Observability extensions (appended; decode in the same order).
    s.f64(rec.phases.parse);
    s.f64(rec.phases.warmup);
    s.f64(rec.phases.run);
    s.f64(rec.phases.serialize);
    s.u64(rec.trace.base);
    s.u64(rec.trace.dropped);
    s.u32(rec.trace.catMask);
    s.u64(rec.trace.maxEvents);
    s.u64(rec.trace.events.size());
    for (const obs::TraceEvent &ev : rec.trace.events) {
        s.u64(ev.tick);
        s.u64(ev.seq);
        s.u32(ev.kind);
        s.u32(ev.sid);
        s.u32(ev.aux);
        s.u64(ev.arg0);
        s.u64(ev.arg1);
    }
    s.endSection();
    return s.done();
}

bool
decodeRunRecord(const std::string &data, harness::RunRecord *out,
                std::string *err)
{
    try {
        Deserializer d(data);
        d.openSection(0);
        const std::uint8_t status = d.u8();
        if (status > static_cast<std::uint8_t>(
                         harness::RunStatus::WorkerTimeout))
            throw SnapError("run record: bad status byte");
        out->status = static_cast<harness::RunStatus>(status);
        out->ticks = d.u64();
        out->valid = d.b();
        const auto &fields = harness::eventFields();
        if (d.u64() != fields.size())
            throw SnapError("run record: event field count mismatch");
        for (const harness::EventField &f : fields)
            f.set(out->events, d.f64());
        out->instsRetired = d.u64();
        out->hostSeconds = d.f64();
        out->hostMips = d.f64();
        out->statsJson = d.str();
        out->note = d.str();
        out->attempts = d.u32();
        out->phases.parse = d.f64();
        out->phases.warmup = d.f64();
        out->phases.run = d.f64();
        out->phases.serialize = d.f64();
        out->trace.base = d.u64();
        out->trace.dropped = d.u64();
        out->trace.catMask = d.u32();
        out->trace.maxEvents = d.u64();
        const std::uint64_t nTrace = d.u64();
        constexpr std::uint64_t kWireEventBytes = 8 * 4 + 4 * 3;
        if (nTrace > d.remaining() / kWireEventBytes)
            throw SnapError("run record: trace event count exceeds "
                            "payload");
        out->trace.events.clear();
        out->trace.events.reserve(nTrace);
        for (std::uint64_t i = 0; i < nTrace; ++i) {
            obs::TraceEvent ev;
            ev.tick = d.u64();
            ev.seq = d.u64();
            const std::uint32_t kind = d.u32();
            if (kind >= static_cast<std::uint32_t>(
                            obs::TraceKind::NumKinds))
                throw SnapError("run record: bad trace event kind");
            ev.kind = static_cast<std::uint16_t>(kind);
            const std::uint32_t sid = d.u32();
            if (sid > 0xffffu)
                throw SnapError("run record: bad trace event sid");
            ev.sid = static_cast<std::uint16_t>(sid);
            ev.aux = d.u32();
            ev.arg0 = d.u64();
            ev.arg1 = d.u64();
            out->trace.events.push_back(ev);
        }
        // A well-formed record consumes its section exactly; trailing
        // bytes mean the payload was spliced or corrupted in a way the
        // CRC happened to survive — fail closed rather than accept it.
        if (d.remaining() != 0)
            throw SnapError("run record: trailing bytes after record");
        return true;
    } catch (const std::exception &e) {
        // SnapError, plus hostile-size allocation failures
        // (length_error / bad_alloc): all fail closed.
        if (err)
            *err = e.what();
        return false;
    }
}

bool
writeFileBytes(const std::string &path, const std::string &data,
               std::string *err)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        if (err)
            *err = "cannot write '" + path + "'";
        return false;
    }
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
    os.flush();
    if (!os) {
        if (err)
            *err = "short write to '" + path + "'";
        return false;
    }
    return true;
}

bool
readFileBytes(const std::string &path, std::string *data, std::string *err)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (err)
            *err = "cannot read '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    *data = ss.str();
    return true;
}

} // namespace misp::snap
