/**
 * @file
 * Binary serialization primitives for the snapshot subsystem.
 *
 * A snapshot image is a magic-tagged, versioned container of typed
 * sections. Each section is length-prefixed and carries a CRC32 of its
 * payload, so truncation and corruption are detected before any state
 * is reconstructed (fail-closed: a bad image never yields a half-built
 * machine). The value encoding is deliberately dumb — little-endian
 * fixed-width integers, doubles as bit patterns, length-prefixed
 * strings — because images are consumed by the same build that wrote
 * them within one sweep; cross-version compatibility is handled by the
 * header version check, not by schema evolution.
 *
 * Components participate through the Saveable interface: snapSave()
 * writes the component's mutable state, snapRestore() reconstitutes it
 * onto a freshly constructed object of the same configuration. Derived
 * state (decode caches, last-translation caches) is deliberately NOT
 * part of any image — it rebuilds lazily and identically after restore.
 */

#ifndef MISP_SNAPSHOT_SERIALIZE_HH
#define MISP_SNAPSHOT_SERIALIZE_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace misp::snap {

/** Raised (and caught inside the snapshot layer) on a malformed or
 *  corrupted image; callers of the snapshot entry points see a bool +
 *  diagnostic, never an exception. */
class SnapError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** CRC32 (IEEE 802.3 polynomial) of @p data. */
std::uint32_t crc32(const void *data, std::size_t len);

/** Image writer: values accumulate into the current section; done()
 *  produces header + section table + payloads. */
class Serializer
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }
    /** Doubles travel as bit patterns: restore is bit-exact. */
    void f64(double v);
    void str(const std::string &s);
    void bytes(const void *data, std::uint64_t len);

    /** Open a section; nesting is not allowed. */
    void beginSection(std::uint32_t id);
    void endSection();

    /** Finish the image: header, section index, payloads. */
    std::string done();

  private:
    struct Section {
        std::uint32_t id = 0;
        std::uint64_t offset = 0; ///< into buf_
        std::uint64_t size = 0;
    };

    std::string buf_;
    std::vector<Section> sections_;
    bool open_ = false;
};

/** Image reader: verifies magic/version up front and each section's
 *  CRC when it is opened. Every accessor throws SnapError on
 *  truncation, so a corrupt image can never be silently read past. */
class Deserializer
{
  public:
    /** Parse the container structure of @p image (header + section
     *  index). Throws SnapError on a bad magic, version, or layout. */
    explicit Deserializer(std::string image);

    /** Position the read cursor at section @p id (verifying its CRC).
     *  Throws SnapError when the section is absent or corrupt. */
    void openSection(std::uint32_t id);

    bool hasSection(std::uint32_t id) const;

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool b() { return u8() != 0; }
    double f64();
    std::string str();
    void bytes(void *dst, std::uint64_t len);

    /** Bytes left in the currently open section. */
    std::uint64_t remaining() const { return end_ - pos_; }

    /** Image format version (header field). */
    std::uint32_t version() const { return version_; }

  private:
    struct Section {
        std::uint32_t id = 0;
        std::uint32_t crc = 0;
        std::uint64_t offset = 0;
        std::uint64_t size = 0;
    };

    void need(std::uint64_t n) const;

    std::string image_;
    std::vector<Section> sections_;
    std::uint64_t pos_ = 0;
    std::uint64_t end_ = 0;
    std::uint32_t version_ = 0;
};

/** Interface a snapshottable component implements. Components are
 *  restored onto objects freshly constructed from the same
 *  configuration, so only mutable simulation state travels. */
class Saveable
{
  public:
    virtual ~Saveable() = default;

    virtual void snapSave(Serializer &s) const = 0;
    virtual void snapRestore(Deserializer &d) = 0;
};

/** Image format identity. Bump kVersion whenever any component's
 *  snapSave layout changes. */
constexpr std::uint64_t kMagic = 0x4d49'5350'534e'4150ull; // "MISPSNAP"
constexpr std::uint32_t kVersion = 2;

} // namespace misp::snap

#endif // MISP_SNAPSHOT_SERIALIZE_HH
