#include "serialize.hh"

#include <array>
#include <cstring>

namespace misp::snap {

namespace {

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------

void
Serializer::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
Serializer::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
Serializer::f64(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
Serializer::str(const std::string &s)
{
    u64(s.size());
    buf_.append(s);
}

void
Serializer::bytes(const void *data, std::uint64_t len)
{
    buf_.append(static_cast<const char *>(data),
                static_cast<std::size_t>(len));
}

void
Serializer::beginSection(std::uint32_t id)
{
    if (open_)
        throw SnapError("serializer: nested section");
    open_ = true;
    sections_.push_back(Section{id, buf_.size(), 0});
}

void
Serializer::endSection()
{
    if (!open_)
        throw SnapError("serializer: endSection without beginSection");
    open_ = false;
    sections_.back().size = buf_.size() - sections_.back().offset;
}

std::string
Serializer::done()
{
    if (open_)
        throw SnapError("serializer: unterminated section");
    // Header: magic, version, section count; then the index (id, crc,
    // size per section, in payload order); then the payloads.
    std::string out;
    Serializer hdr;
    hdr.u64(kMagic);
    hdr.u32(kVersion);
    hdr.u32(static_cast<std::uint32_t>(sections_.size()));
    for (const Section &sec : sections_) {
        hdr.u32(sec.id);
        hdr.u32(crc32(buf_.data() + sec.offset,
                      static_cast<std::size_t>(sec.size)));
        hdr.u64(sec.size);
    }
    out = std::move(hdr.buf_);
    out += buf_;
    return out;
}

// ---------------------------------------------------------------------
// Deserializer
// ---------------------------------------------------------------------

Deserializer::Deserializer(std::string image) : image_(std::move(image))
{
    pos_ = 0;
    end_ = image_.size();
    if (u64() != kMagic)
        throw SnapError("not a MISP snapshot image (bad magic)");
    version_ = u32();
    if (version_ != kVersion)
        throw SnapError("unsupported snapshot image version " +
                        std::to_string(version_) + " (expected " +
                        std::to_string(kVersion) + ")");
    std::uint32_t count = u32();
    std::uint64_t payload = pos_ + std::uint64_t{count} * 16;
    std::uint64_t cursor = payload;
    for (std::uint32_t i = 0; i < count; ++i) {
        Section sec;
        sec.id = u32();
        sec.crc = u32();
        sec.size = u64();
        sec.offset = cursor;
        // Overflow-safe: a hostile size near 2^64 must not wrap the
        // cursor back into bounds.
        if (cursor > image_.size() ||
            sec.size > image_.size() - cursor)
            throw SnapError("snapshot image truncated (section " +
                            std::to_string(sec.id) + ")");
        cursor += sec.size;
        sections_.push_back(sec);
    }
    // The section index must account for the whole image: trailing
    // bytes mean a spliced or padded payload — fail closed.
    if (cursor != image_.size())
        throw SnapError("snapshot image has trailing bytes after the "
                        "last section");
    pos_ = end_ = 0; // no section open yet
}

bool
Deserializer::hasSection(std::uint32_t id) const
{
    for (const Section &sec : sections_) {
        if (sec.id == id)
            return true;
    }
    return false;
}

void
Deserializer::openSection(std::uint32_t id)
{
    for (const Section &sec : sections_) {
        if (sec.id != id)
            continue;
        std::uint32_t crc = crc32(image_.data() + sec.offset,
                                  static_cast<std::size_t>(sec.size));
        if (crc != sec.crc)
            throw SnapError("snapshot section " + std::to_string(id) +
                            " failed its CRC check (corrupt image)");
        pos_ = sec.offset;
        end_ = sec.offset + sec.size;
        return;
    }
    throw SnapError("snapshot image has no section " + std::to_string(id));
}

void
Deserializer::need(std::uint64_t n) const
{
    // Overflow-safe form: `pos_ + n` can wrap for hostile lengths.
    if (n > end_ - pos_)
        throw SnapError("snapshot read past end of section");
}

std::uint8_t
Deserializer::u8()
{
    need(1);
    return static_cast<std::uint8_t>(image_[pos_++]);
}

std::uint32_t
Deserializer::u32()
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t{u8()} << (8 * i);
    return v;
}

std::uint64_t
Deserializer::u64()
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t{u8()} << (8 * i);
    return v;
}

double
Deserializer::f64()
{
    std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
Deserializer::str()
{
    std::uint64_t len = u64();
    need(len);
    std::string out = image_.substr(static_cast<std::size_t>(pos_),
                                    static_cast<std::size_t>(len));
    pos_ += len;
    return out;
}

void
Deserializer::bytes(void *dst, std::uint64_t len)
{
    need(len);
    std::memcpy(dst, image_.data() + pos_, static_cast<std::size_t>(len));
    pos_ += len;
}

} // namespace misp::snap
