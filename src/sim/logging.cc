#include "logging.hh"

#include <atomic>
#include <cstdio>

namespace misp {

namespace {
std::atomic<bool> gQuiet{false};
} // namespace

void
setQuietLogging(bool quiet)
{
    gQuiet.store(quiet, std::memory_order_relaxed);
}

bool
quietLogging()
{
    return gQuiet.load(std::memory_order_relaxed);
}

namespace detail {

void
logMessage(const char *level, const std::string &msg)
{
    // panic/fatal always print; warn/info respect the quiet flag.
    bool important =
        level[0] == 'p' || level[0] == 'f';
    if (!important && quietLogging())
        return;
    std::fprintf(stderr, "%s: %s\n", level, msg.c_str());
}

} // namespace detail
} // namespace misp
