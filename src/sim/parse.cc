#include "parse.hh"

#include <cstdlib>

namespace misp::parse {

bool
u64(const std::string &value, std::uint64_t *out)
{
    if (value.empty() || value.front() == '-')
        return false;
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
u32(const std::string &value, unsigned *out)
{
    std::uint64_t v = 0;
    if (!u64(value, &v) || v > 0xffffffffull)
        return false;
    *out = static_cast<unsigned>(v);
    return true;
}

bool
boolean(const std::string &value, bool *out)
{
    if (value == "true" || value == "on" || value == "1") {
        *out = true;
        return true;
    }
    if (value == "false" || value == "off" || value == "0") {
        *out = false;
        return true;
    }
    return false;
}

} // namespace misp::parse
