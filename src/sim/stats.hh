/**
 * @file
 * A compact statistics package modeled on gem5's.
 *
 * The MISP paper's prototype firmware provided "coarse- and fine-grain
 * event logging" (Section 4.1); in this reproduction those logs are
 * expressed through this package. Stats self-register with a StatGroup,
 * which can dump name/value tables as text or CSV. Table 1 and every
 * figure harness read their inputs from these stats.
 */

#ifndef MISP_SIM_STATS_HH
#define MISP_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "logging.hh"

namespace misp::stats {

class StatGroup;

/** JSON-escape @p s (quotes, backslashes, all control characters) —
 *  the one escaper shared by every JSON emitter in the tree. */
std::string jsonEscape(const std::string &s);

/** @p s escaped and double-quoted, ready to emit as a JSON string.
 *  The one quoting wrapper (formerly duplicated across the driver and
 *  metric-frame emitters). */
std::string jsonQuote(const std::string &s);

/** Stream @p s escaped and double-quoted to @p os. The streaming
 *  emitters' path: nothing larger than one value is materialized. */
void writeJsonQuoted(std::ostream &os, const std::string &s);

/** Deterministic JSON number: integers as integers, the rest with 9
 *  significant digits. Shared by the metric-frame emitter and the
 *  shard-merge reader, so a parsed dump re-emits byte-identically
 *  (%.9g strings round-trip through double exactly). */
void writeJsonNumber(std::ostream &os, double v);

/** Base for all statistics; handles registration and naming. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Render the value rows for dumping: (suffix, value) pairs.
     *  Scalar stats emit one row with an empty suffix. */
    virtual std::vector<std::pair<std::string, double>> rows() const = 0;

    /** Reset to the zero state. */
    virtual void reset() = 0;

    /** Full internal state as raw doubles, for machine-state snapshots
     *  (unlike rows(), includes non-derivable internals such as a
     *  Distribution's M2 accumulator). Derived stats return {}. */
    virtual std::vector<double> snapValues() const = 0;

    /** Restore state captured by snapValues() onto a same-shape stat. */
    virtual void snapRestoreValues(const std::vector<double> &v) = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A single accumulating counter. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { value_ += 1.0; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }

    std::vector<std::pair<std::string, double>>
    rows() const override
    {
        return {{"", value_}};
    }

    void reset() override { value_ = 0.0; }

    std::vector<double> snapValues() const override { return {value_}; }

    void
    snapRestoreValues(const std::vector<double> &v) override
    {
        MISP_ASSERT(v.size() == 1);
        value_ = v[0];
    }

  private:
    double value_ = 0.0;
};

/** A Scalar counting host-side instrumentation (execution-engine
 *  internals such as decode-cache hits): dumped like any counter but
 *  excluded from machine-state snapshots, so images stay
 *  engine-neutral — a snapshot warmed under one engine is
 *  byte-identical to one warmed under another, and a restored run's
 *  host counters restart at zero under whatever engine it picked. */
class HostScalar : public Scalar
{
  public:
    using Scalar::Scalar;
    using Scalar::operator=;

    std::vector<double> snapValues() const override { return {}; }

    void
    snapRestoreValues(const std::vector<double> &v) override
    {
        // Host counters restart at zero on restore; tolerate (and
        // discard) a value from an image written before this stat
        // became host-only.
        (void)v;
        reset();
    }
};

/** A fixed-size vector of counters, e.g. per-sequencer event counts. */
class Vector : public StatBase
{
  public:
    Vector(StatGroup *parent, std::string name, std::string desc,
           std::size_t size)
        : StatBase(parent, std::move(name), std::move(desc)), values_(size)
    {}

    double &operator[](std::size_t i)
    {
        MISP_ASSERT(i < values_.size());
        return values_[i];
    }

    double
    at(std::size_t i) const
    {
        MISP_ASSERT(i < values_.size());
        return values_[i];
    }

    std::size_t size() const { return values_.size(); }

    double
    total() const
    {
        double sum = 0.0;
        for (double v : values_)
            sum += v;
        return sum;
    }

    std::vector<std::pair<std::string, double>>
    rows() const override
    {
        std::vector<std::pair<std::string, double>> out;
        out.reserve(values_.size());
        for (std::size_t i = 0; i < values_.size(); ++i) {
            // Built up in steps (not one `"[" + to_string + "]"`
            // expression): GCC 12's -Wrestrict false-positives on the
            // temporary chain once surrounding code inlines.
            std::string suffix = "[";
            suffix += std::to_string(i);
            suffix += "]";
            out.emplace_back(std::move(suffix), values_[i]);
        }
        return out;
    }

    void reset() override { std::fill(values_.begin(), values_.end(), 0.0); }

    std::vector<double> snapValues() const override { return values_; }

    void
    snapRestoreValues(const std::vector<double> &v) override
    {
        MISP_ASSERT(v.size() == values_.size());
        values_ = v;
    }

  private:
    std::vector<double> values_;
};

/** Running distribution: min/max/mean/stddev plus sample count. */
class Distribution : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v, std::uint64_t count = 1)
    {
        for (std::uint64_t i = 0; i < count; ++i) {
            ++n_;
            double delta = v - mean_;
            mean_ += delta / static_cast<double>(n_);
            m2_ += delta * (v - mean_);
        }
        min_ = n_ == count ? v : std::min(min_, v);
        max_ = n_ == count ? v : std::max(max_, v);
        sum_ += v * static_cast<double>(count);
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double sum() const { return sum_; }
    double minValue() const { return n_ ? min_ : 0.0; }
    double maxValue() const { return n_ ? max_ : 0.0; }
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    std::vector<std::pair<std::string, double>>
    rows() const override
    {
        return {{".count", static_cast<double>(n_)},
                {".mean", mean()},
                {".min", minValue()},
                {".max", maxValue()},
                {".sum", sum_}};
    }

    void
    reset() override
    {
        n_ = 0;
        mean_ = m2_ = sum_ = 0.0;
        min_ = max_ = 0.0;
    }

    std::vector<double>
    snapValues() const override
    {
        return {static_cast<double>(n_), mean_, m2_, sum_, min_, max_};
    }

    void
    snapRestoreValues(const std::vector<double> &v) override
    {
        MISP_ASSERT(v.size() == 6);
        n_ = static_cast<std::uint64_t>(v[0]);
        mean_ = v[1];
        m2_ = v[2];
        sum_ = v[3];
        min_ = v[4];
        max_ = v[5];
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** A derived value computed at dump time from other stats. */
class Formula : public StatBase
{
  public:
    Formula(StatGroup *parent, std::string name, std::string desc,
            std::function<double()> fn)
        : StatBase(parent, std::move(name), std::move(desc)),
          fn_(std::move(fn))
    {}

    double value() const { return fn_ ? fn_() : 0.0; }

    std::vector<std::pair<std::string, double>>
    rows() const override
    {
        return {{"", value()}};
    }

    void reset() override {}

    // Derived at read time: nothing to archive.
    std::vector<double> snapValues() const override { return {}; }
    void snapRestoreValues(const std::vector<double> &) override {}

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of stats. Groups nest: a MispProcessor owns a group,
 * each Sequencer owns a child group, etc. Full stat names are
 * dot-joined paths ("misp0.ams1.pageFaults").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &groupName() const { return name_; }

    /** Slash-free absolute path of this group. */
    std::string path() const;

    /** Find a stat by relative dotted path; nullptr if absent. */
    const StatBase *find(const std::string &relPath) const;

    /** Convenience: value of a Scalar/Formula stat by path (0 if absent). */
    double lookupValue(const std::string &relPath) const;

    /** Dump "path value # desc" lines, recursively. */
    void dump(std::ostream &os) const;

    /** Dump "path,value" CSV rows, recursively. */
    void dumpCsv(std::ostream &os) const;

    /**
     * Dump as a JSON object, recursively: one member per stat (scalar
     * stats become numbers, multi-row stats an object of suffix ->
     * value) and one nested object per child group. @p indent is the
     * current indentation depth. Values use full double precision so
     * machine consumers (the mispsim driver, CI trend tooling) can
     * round-trip them.
     */
    void dumpJson(std::ostream &os, int indent = 0) const;

    /** Reset all stats in this group and children. */
    void resetAll();

    const std::vector<StatBase *> &statsHere() const { return stats_; }
    const std::vector<StatGroup *> &children() const { return children_; }

  private:
    friend class StatBase;

    void addStat(StatBase *stat) { stats_.push_back(stat); }

    std::string name_;
    StatGroup *parent_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace misp::stats

#endif // MISP_SIM_STATS_HH
