#include "stats.hh"

#include <ostream>

namespace misp::stats {

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    MISP_ASSERT(parent != nullptr);
    parent->addStat(this);
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->children_.push_back(this);
}

StatGroup::~StatGroup()
{
    if (parent_) {
        auto &sibs = parent_->children_;
        sibs.erase(std::remove(sibs.begin(), sibs.end(), this), sibs.end());
    }
}

std::string
StatGroup::path() const
{
    if (!parent_)
        return name_;
    std::string p = parent_->path();
    if (p.empty())
        return name_;
    return p + "." + name_;
}

const StatBase *
StatGroup::find(const std::string &relPath) const
{
    auto dot = relPath.find('.');
    if (dot == std::string::npos) {
        for (const StatBase *s : stats_) {
            if (s->name() == relPath)
                return s;
        }
        return nullptr;
    }
    std::string head = relPath.substr(0, dot);
    std::string tail = relPath.substr(dot + 1);
    for (const StatGroup *g : children_) {
        if (g->groupName() == head)
            return g->find(tail);
    }
    return nullptr;
}

double
StatGroup::lookupValue(const std::string &relPath) const
{
    const StatBase *s = find(relPath);
    if (!s)
        return 0.0;
    auto rows = s->rows();
    return rows.empty() ? 0.0 : rows.front().second;
}

void
StatGroup::dump(std::ostream &os) const
{
    std::string prefix = path();
    if (!prefix.empty())
        prefix += ".";
    for (const StatBase *s : stats_) {
        for (const auto &[suffix, value] : s->rows()) {
            os << prefix << s->name() << suffix << " " << value;
            if (!s->desc().empty())
                os << " # " << s->desc();
            os << "\n";
        }
    }
    for (const StatGroup *g : children_)
        g->dump(os);
}

void
StatGroup::dumpCsv(std::ostream &os) const
{
    std::string prefix = path();
    if (!prefix.empty())
        prefix += ".";
    for (const StatBase *s : stats_) {
        for (const auto &[suffix, value] : s->rows())
            os << prefix << s->name() << suffix << "," << value << "\n";
    }
    for (const StatGroup *g : children_)
        g->dumpCsv(os);
}

void
StatGroup::resetAll()
{
    for (StatBase *s : stats_)
        s->reset();
    for (StatGroup *g : children_)
        g->resetAll();
}

} // namespace misp::stats
