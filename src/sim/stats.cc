#include "stats.hh"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace misp::stats {

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    MISP_ASSERT(parent != nullptr);
    parent->addStat(this);
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->children_.push_back(this);
}

StatGroup::~StatGroup()
{
    if (parent_) {
        auto &sibs = parent_->children_;
        sibs.erase(std::remove(sibs.begin(), sibs.end(), this), sibs.end());
    }
}

std::string
StatGroup::path() const
{
    if (!parent_)
        return name_;
    std::string p = parent_->path();
    if (p.empty())
        return name_;
    return p + "." + name_;
}

const StatBase *
StatGroup::find(const std::string &relPath) const
{
    auto dot = relPath.find('.');
    if (dot == std::string::npos) {
        for (const StatBase *s : stats_) {
            if (s->name() == relPath)
                return s;
        }
        return nullptr;
    }
    std::string head = relPath.substr(0, dot);
    std::string tail = relPath.substr(dot + 1);
    for (const StatGroup *g : children_) {
        if (g->groupName() == head)
            return g->find(tail);
    }
    return nullptr;
}

double
StatGroup::lookupValue(const std::string &relPath) const
{
    const StatBase *s = find(relPath);
    if (!s)
        return 0.0;
    auto rows = s->rows();
    return rows.empty() ? 0.0 : rows.front().second;
}

void
StatGroup::dump(std::ostream &os) const
{
    std::string prefix = path();
    if (!prefix.empty())
        prefix += ".";
    for (const StatBase *s : stats_) {
        for (const auto &[suffix, value] : s->rows()) {
            os << prefix << s->name() << suffix << " " << value;
            if (!s->desc().empty())
                os << " # " << s->desc();
            os << "\n";
        }
    }
    for (const StatGroup *g : children_)
        g->dump(os);
}

void
StatGroup::dumpCsv(std::ostream &os) const
{
    std::string prefix = path();
    if (!prefix.empty())
        prefix += ".";
    for (const StatBase *s : stats_) {
        for (const auto &[suffix, value] : s->rows())
            os << prefix << s->name() << suffix << "," << value << "\n";
    }
    for (const StatGroup *g : children_)
        g->dumpCsv(os);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                // Bytes >= 0x20 pass through untouched, so UTF-8
                // multi-byte sequences survive verbatim.
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonQuote(const std::string &s)
{
    // Built up in steps: GCC 12's -Wrestrict false-positives on the
    // `"\"" + escape + "\""` temporary chain once inlined.
    std::string out = "\"";
    out += jsonEscape(s);
    out += "\"";
    return out;
}

void
writeJsonQuoted(std::ostream &os, const std::string &s)
{
    os << '"' << jsonEscape(s) << '"';
}

void
writeJsonNumber(std::ostream &os, double v)
{
    char buf[48];
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.9g", v);
    }
    os << buf;
}

namespace {

void
jsonKey(std::ostream &os, const std::string &indent, const std::string &key)
{
    os << indent << "\"" << jsonEscape(key) << "\": ";
}

void
jsonNumber(std::ostream &os, double v)
{
    // NaN/inf are not valid JSON; a Formula over an empty run can
    // produce them.
    if (v != v || v > 1.7e308 || v < -1.7e308) {
        os << "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

} // namespace

void
StatGroup::dumpJson(std::ostream &os, int indent) const
{
    const std::string in(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string in1(static_cast<std::size_t>(indent + 1) * 2, ' ');
    os << "{";
    bool first = true;
    for (const StatBase *s : stats_) {
        auto rows = s->rows();
        os << (first ? "\n" : ",\n");
        first = false;
        jsonKey(os, in1, s->name());
        if (rows.size() == 1 && rows.front().first.empty()) {
            jsonNumber(os, rows.front().second);
            continue;
        }
        os << "{";
        bool firstRow = true;
        for (const auto &[suffix, value] : rows) {
            os << (firstRow ? "\n" : ",\n");
            firstRow = false;
            jsonKey(os, in1 + "  ", suffix);
            jsonNumber(os, value);
        }
        os << "\n" << in1 << "}";
    }
    for (const StatGroup *g : children_) {
        os << (first ? "\n" : ",\n");
        first = false;
        jsonKey(os, in1, g->groupName());
        g->dumpJson(os, indent + 1);
    }
    os << "\n" << in << "}";
}

void
StatGroup::resetAll()
{
    for (StatBase *s : stats_)
        s->reset();
    for (StatGroup *g : children_)
        g->resetAll();
}

} // namespace misp::stats
