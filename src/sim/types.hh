/**
 * @file
 * Fundamental simulator-wide type definitions.
 *
 * The MISP simulator is a tick-based discrete-event simulator in the style
 * of gem5. One Tick corresponds to one processor clock cycle of the modeled
 * machine (the paper's prototype ran at 3.0 GHz; absolute frequency is
 * irrelevant to the reproduced results, which are all cycle-relative).
 */

#ifndef MISP_SIM_TYPES_HH
#define MISP_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace misp {

/** Simulated time, in cycles of the modeled machine. */
using Tick = std::uint64_t;

/** A duration expressed in cycles. */
using Cycles = std::uint64_t;

/** Sentinel for "no scheduled time". */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/** Guest virtual and physical addresses (MISA is a 32-bit architecture,
 *  but we keep 64-bit address types so hosts can model large spaces). */
using VAddr = std::uint64_t;
using PAddr = std::uint64_t;

/** Guest machine word. MISA registers are 64-bit. */
using Word = std::uint64_t;
using SWord = std::int64_t;

/** Logical sequencer identifier within a MISP processor (the SID operand
 *  of the SIGNAL instruction). SID 0 is by convention the OMS. */
using SequencerId = std::uint32_t;

constexpr SequencerId kInvalidSeqId = ~SequencerId{0};

/** OS-level identifiers. */
using Pid = std::uint32_t;
using Tid = std::uint32_t;

/** Shred identifier, assigned by the ShredLib runtime. */
using ShredId = std::uint32_t;

constexpr ShredId kInvalidShredId = ~ShredId{0};

} // namespace misp

#endif // MISP_SIM_TYPES_HH
