#include "event_queue.hh"

#include <algorithm>

namespace misp {

Event::~Event()
{
    // Destroying a still-scheduled event is a simulator bug: the queue
    // would be left holding a dangling pointer. We cannot throw from a
    // destructor, so print and abort via terminate semantics instead.
    if (scheduled_ && !squashed_) {
        std::fprintf(stderr,
                     "panic: event '%s' destroyed while scheduled\n",
                     name_.c_str());
        std::abort();
    }
}

void
EventQueue::push(const Entry &entry)
{
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), EntryCompare{});
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    MISP_ASSERT(ev != nullptr);
    if (ev->scheduled_)
        panic("event '%s' already scheduled", ev->name().c_str());
    if (when < curTick_)
        panic("event '%s' scheduled in the past (%llu < %llu)",
              ev->name().c_str(), (unsigned long long)when,
              (unsigned long long)curTick_);

    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->scheduled_ = true;
    ev->squashed_ = false;
    push(Entry{when, ev->priority(), ev->seq_, ev});
    ++live_;
}

void
EventQueue::restoreSchedule(Event *ev, Tick when, std::uint64_t seq)
{
    MISP_ASSERT(ev != nullptr);
    MISP_ASSERT(!ev->scheduled_);
    MISP_ASSERT(when >= curTick_);
    MISP_ASSERT(seq < nextSeq_);

    ev->when_ = when;
    ev->seq_ = seq;
    ev->scheduled_ = true;
    ev->squashed_ = false;
    push(Entry{when, ev->priority(), seq, ev});
    ++live_;
}

void
EventQueue::setClock(Tick curTick, std::uint64_t nextSeq,
                     std::uint64_t numProcessed)
{
    MISP_ASSERT(heap_.empty());
    curTick_ = curTick;
    nextSeq_ = nextSeq;
    numProcessed_ = numProcessed;
}

void
EventQueue::deschedule(Event *ev)
{
    MISP_ASSERT(ev != nullptr);
    if (!ev->scheduled_)
        panic("deschedule of unscheduled event '%s'", ev->name().c_str());
    // Lazy deletion: mark squashed; the heap entry is discarded when it
    // reaches the top.
    ev->squashed_ = true;
    ev->scheduled_ = false;
    --live_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::forEachScheduled(
    const std::function<void(const ScheduledInfo &)> &fn) const
{
    for (const Entry &entry : heap_) {
        // Stale entries (squashed, or descheduled-and-rescheduled with
        // a newer seq) are skipped exactly as popReady() would.
        if (entry.ev->squashed_ || !entry.ev->scheduled_ ||
            entry.ev->seq_ != entry.seq) {
            continue;
        }
        ScheduledInfo info;
        info.ev = entry.ev;
        info.when = entry.when;
        info.seq = entry.seq;
        info.priority = entry.priority;
        if (const auto *lambda =
                dynamic_cast<const LambdaEvent *>(entry.ev)) {
            if (lambda->tag().kind != 0)
                info.tag = &lambda->tag();
        }
        fn(info);
    }
}

Event *
EventQueue::popReady()
{
    while (!heap_.empty()) {
        Entry top = heap_.front();
        std::pop_heap(heap_.begin(), heap_.end(), EntryCompare{});
        heap_.pop_back();
        // A squashed event, or one that was descheduled and rescheduled
        // (stale seq), is skipped.
        if (top.ev->squashed_ || !top.ev->scheduled_ ||
            top.ev->seq_ != top.seq) {
            continue;
        }
        top.ev->scheduled_ = false;
        --live_;
        curTick_ = top.when;
        return top.ev;
    }
    return nullptr;
}

bool
EventQueue::step()
{
    Event *ev = popReady();
    if (!ev)
        return false;
    ++numProcessed_;
    ev->process();
    return true;
}

Tick
EventQueue::run(Tick maxTick, std::uint64_t maxEvents)
{
    std::uint64_t processed = 0;
    stopRequested_ = false;
    while (!heap_.empty() && !stopRequested_) {
        // Peek: stop before processing events beyond the horizon.
        Entry top = heap_.front();
        if (top.ev->squashed_ || !top.ev->scheduled_ ||
            top.ev->seq_ != top.seq) {
            std::pop_heap(heap_.begin(), heap_.end(), EntryCompare{});
            heap_.pop_back();
            continue;
        }
        if (top.when > maxTick)
            break;
        if (processed >= maxEvents) {
            warn("event budget exhausted at tick %llu",
                 (unsigned long long)curTick_);
            break;
        }
        step();
        ++processed;
    }
    return curTick_;
}

EventQueue::~EventQueue()
{
    // heap_ entries may point at events whose owners destroyed them
    // already — legal once squashed — so the entries must never be
    // dereferenced here. The only events guaranteed alive are the
    // lambda events this queue owns: unhook their scheduled state (a
    // pending one at shutdown is fine) so Event::~Event doesn't see a
    // live schedule, then free them.
    heap_.clear();
    for (LambdaEvent *ev : owned_) {
        ev->scheduled_ = false;
        delete ev;
    }
}

} // namespace misp
