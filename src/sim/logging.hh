/**
 * @file
 * Error and status reporting, following the gem5 fatal/panic convention.
 *
 *  - panic():  an internal simulator bug; should never happen regardless of
 *              user input. Aborts.
 *  - fatal():  the simulation cannot continue due to a user error (bad
 *              configuration, invalid arguments). Exits with an error code.
 *  - warn():   functionality may not be modeled exactly; execution continues.
 *  - inform(): neutral status messages.
 */

#ifndef MISP_SIM_LOGGING_HH
#define MISP_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace misp {

/** Thrown by panic()/fatal() so that unit tests can observe failures
 *  without terminating the test binary. */
class SimError : public std::runtime_error
{
  public:
    enum class Kind { Panic, Fatal };

    SimError(Kind kind, std::string msg)
        : std::runtime_error(std::move(msg)), kind_(kind)
    {}

    Kind kind() const { return kind_; }

  private:
    Kind kind_;
};

namespace detail {

void logMessage(const char *level, const std::string &msg);

template <typename... Args>
std::string
formatString(const char *fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string(fmt);
    } else {
        int len = std::snprintf(nullptr, 0, fmt, args...);
        if (len < 0)
            return std::string(fmt);
        std::string out(static_cast<size_t>(len), '\0');
        std::snprintf(out.data(), out.size() + 1, fmt, args...);
        return out;
    }
}

} // namespace detail

/** Report an internal simulator bug and raise SimError(Panic). */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args &&...args)
{
    std::string msg = detail::formatString(fmt, std::forward<Args>(args)...);
    detail::logMessage("panic", msg);
    throw SimError(SimError::Kind::Panic, msg);
}

/** Report an unrecoverable user/configuration error and raise
 *  SimError(Fatal). */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args &&...args)
{
    std::string msg = detail::formatString(fmt, std::forward<Args>(args)...);
    detail::logMessage("fatal", msg);
    throw SimError(SimError::Kind::Fatal, msg);
}

/** Warn about imprecise or suspicious behaviour; continues execution. */
template <typename... Args>
void
warn(const char *fmt, Args &&...args)
{
    detail::logMessage(
        "warn", detail::formatString(fmt, std::forward<Args>(args)...));
}

/** Neutral status message. */
template <typename... Args>
void
inform(const char *fmt, Args &&...args)
{
    detail::logMessage(
        "info", detail::formatString(fmt, std::forward<Args>(args)...));
}

/** panic() if @p cond does not hold. Used for simulator invariants that
 *  must survive release builds. */
#define MISP_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::misp::panic("assertion failed: %s (%s:%d)", #cond, __FILE__,   \
                          __LINE__);                                         \
        }                                                                    \
    } while (0)

/** Globally silence warn()/inform() output (benchmarks use this). */
void setQuietLogging(bool quiet);
bool quietLogging();

} // namespace misp

#endif // MISP_SIM_LOGGING_HH
