/**
 * @file
 * The discrete-event simulation core.
 *
 * All simulated activity — sequencer execution slices, signal deliveries,
 * timer interrupts, OS bookkeeping — is expressed as events on a single
 * global-order EventQueue. Events scheduled for the same tick are executed
 * in (priority, insertion-order) order, which keeps simulations fully
 * deterministic for a given configuration.
 */

#ifndef MISP_SIM_EVENT_QUEUE_HH
#define MISP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace misp {

class EventQueue;

/**
 * An occurrence scheduled at a future tick.
 *
 * Events are intrusive: objects that want callbacks either derive from
 * Event and override process(), or use LambdaEvent. An Event may be
 * scheduled on at most one queue position at a time; rescheduling requires
 * deschedule() first (or use squash()).
 */
class Event
{
  public:
    /** Lower value runs earlier among events at the same tick. */
    enum Priority : int {
        kPrioInterrupt = 0,   ///< interrupt / signal delivery
        kPrioDefault = 50,    ///< normal device/CPU activity
        kPrioCpu = 60,        ///< sequencer execution slices
        kPrioStats = 90,      ///< end-of-quantum accounting
    };

    explicit Event(std::string name, int priority = kPrioDefault)
        : name_(std::move(name)), priority_(priority)
    {}

    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when simulated time reaches the scheduled tick. */
    virtual void process() = 0;

    const std::string &name() const { return name_; }
    int priority() const { return priority_; }

    /** True if currently scheduled on a queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick this event is scheduled for (valid only when scheduled()). */
    Tick when() const { return when_; }

    /** Cancel a pending occurrence without removing it from the queue
     *  structure; the queue skips squashed events when they surface. */
    void squash() { squashed_ = true; }

  private:
    friend class EventQueue;

    std::string name_;
    int priority_;
    Tick when_ = 0;
    std::uint64_t seq_ = 0; ///< insertion order tiebreaker
    bool scheduled_ = false;
    bool squashed_ = false;
};

/** Convenience event wrapping a callable. */
class LambdaEvent : public Event
{
  public:
    LambdaEvent(std::string name, std::function<void()> fn,
                int priority = kPrioDefault)
        : Event(std::move(name), priority), fn_(std::move(fn))
    {}

    void process() override { fn_(); }

  private:
    std::function<void()> fn_;
};

/**
 * A deterministic priority queue of events ordered by
 * (tick, priority, insertion order).
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Schedule @p ev at absolute tick @p when (must be >= curTick()). */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event from the queue. */
    void deschedule(Event *ev);

    /** Reschedule to a new absolute tick (event may or may not be
     *  currently scheduled). */
    void reschedule(Event *ev, Tick when);

    /** Schedule a one-shot heap-allocated callable; the queue owns and
     *  frees it after it runs (or at shutdown). */
    void
    scheduleLambda(Tick when, std::string name, std::function<void()> fn,
                   int priority = Event::kPrioDefault)
    {
        auto *ev = new LambdaEvent(std::move(name), std::move(fn), priority);
        owned_.push_back(ev);
        schedule(ev, when);
    }

    /** True when no runnable events remain. */
    bool empty() const { return live_ != 0 ? false : true; }

    /** Number of scheduled (non-squashed) events. */
    std::size_t size() const { return live_; }

    /**
     * Run the simulation.
     *
     * @param maxTick stop (without processing) events beyond this tick.
     * @param maxEvents safety valve against runaway simulations.
     * @return the tick of the last processed event.
     */
    Tick run(Tick maxTick = kMaxTick,
             std::uint64_t maxEvents = ~std::uint64_t{0});

    /** Process exactly one event, if any. @return false if queue empty. */
    bool step();

    /** Ask run() to return after the current event (used by experiment
     *  harnesses when the measured workload completes while background
     *  processes would keep the queue busy forever). */
    void requestStop() { stopRequested_ = true; }

    /** Total events processed over the queue's lifetime. */
    std::uint64_t numProcessed() const { return numProcessed_; }

    ~EventQueue();

  private:
    struct Entry {
        Tick when;
        int priority;
        std::uint64_t seq;
        Event *ev;
    };

    struct EntryCompare {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    Event *popReady();

    std::priority_queue<Entry, std::vector<Entry>, EntryCompare> heap_;
    std::vector<LambdaEvent *> owned_;
    Tick curTick_ = 0;
    bool stopRequested_ = false;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t numProcessed_ = 0;
    std::size_t live_ = 0;
};

} // namespace misp

#endif // MISP_SIM_EVENT_QUEUE_HH
