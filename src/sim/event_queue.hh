/**
 * @file
 * The discrete-event simulation core.
 *
 * All simulated activity — sequencer execution slices, signal deliveries,
 * timer interrupts, OS bookkeeping — is expressed as events on a single
 * global-order EventQueue. Events scheduled for the same tick are executed
 * in (priority, insertion-order) order, which keeps simulations fully
 * deterministic for a given configuration.
 */

#ifndef MISP_SIM_EVENT_QUEUE_HH
#define MISP_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace misp {

class EventQueue;

/**
 * Snapshot identity of a one-shot lambda event. A tagged lambda's
 * closure can be rebuilt from `kind` plus a few words of data (the tag
 * registry lives in snapshot/tags.hh), which is what lets a pending
 * occurrence survive machine-state serialization. kind == 0 marks an
 * untagged lambda: such an event pending at save time makes the
 * machine momentarily unsnapshottable.
 */
struct EventTag {
    std::uint32_t kind = 0;
    std::array<std::uint64_t, 5> arg{};
};

/**
 * An occurrence scheduled at a future tick.
 *
 * Events are intrusive: objects that want callbacks either derive from
 * Event and override process(), or use LambdaEvent. An Event may be
 * scheduled on at most one queue position at a time; rescheduling requires
 * deschedule() first (or use squash()).
 */
class Event
{
  public:
    /** Lower value runs earlier among events at the same tick. */
    enum Priority : int {
        kPrioInterrupt = 0,   ///< interrupt / signal delivery
        kPrioDefault = 50,    ///< normal device/CPU activity
        kPrioCpu = 60,        ///< sequencer execution slices
        kPrioStats = 90,      ///< end-of-quantum accounting
    };

    explicit Event(std::string name, int priority = kPrioDefault)
        : name_(std::move(name)), priority_(priority)
    {}

    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when simulated time reaches the scheduled tick. */
    virtual void process() = 0;

    const std::string &name() const { return name_; }
    int priority() const { return priority_; }

    /** True if currently scheduled on a queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick this event is scheduled for (valid only when scheduled()). */
    Tick when() const { return when_; }

    /** Queue insertion sequence number (same-tick, same-priority
     *  ordering tiebreaker; valid only when scheduled()). */
    std::uint64_t seq() const { return seq_; }

    /** Cancel a pending occurrence without removing it from the queue
     *  structure; the queue skips squashed events when they surface. */
    void squash() { squashed_ = true; }

  private:
    friend class EventQueue;

    std::string name_;
    int priority_;
    Tick when_ = 0;
    std::uint64_t seq_ = 0; ///< insertion order tiebreaker
    bool scheduled_ = false;
    bool squashed_ = false;
};

/** Convenience event wrapping a callable. */
class LambdaEvent : public Event
{
  public:
    LambdaEvent(std::string name, std::function<void()> fn,
                int priority = kPrioDefault, EventTag tag = EventTag{})
        : Event(std::move(name), priority), fn_(std::move(fn)), tag_(tag)
    {}

    void process() override { fn_(); }

    const EventTag &tag() const { return tag_; }

  private:
    std::function<void()> fn_;
    EventTag tag_;
};

/**
 * A deterministic priority queue of events ordered by
 * (tick, priority, insertion order).
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Schedule @p ev at absolute tick @p when (must be >= curTick()). */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event from the queue. */
    void deschedule(Event *ev);

    /** Reschedule to a new absolute tick (event may or may not be
     *  currently scheduled). */
    void reschedule(Event *ev, Tick when);

    /** Schedule a one-shot heap-allocated callable; the queue owns and
     *  frees it after it runs (or at shutdown). A non-default @p tag
     *  makes the pending occurrence snapshottable (see EventTag). */
    void
    scheduleLambda(Tick when, std::string name, std::function<void()> fn,
                   int priority = Event::kPrioDefault,
                   EventTag tag = EventTag{})
    {
        auto *ev = new LambdaEvent(std::move(name), std::move(fn),
                                   priority, tag);
        owned_.push_back(ev);
        schedule(ev, when);
    }

    /** True when no runnable events remain. */
    bool empty() const { return live_ != 0 ? false : true; }

    /** Number of scheduled (non-squashed) events. */
    std::size_t size() const { return live_; }

    /**
     * Run the simulation.
     *
     * @param maxTick stop (without processing) events beyond this tick.
     * @param maxEvents safety valve against runaway simulations.
     * @return the tick of the last processed event.
     */
    Tick run(Tick maxTick = kMaxTick,
             std::uint64_t maxEvents = ~std::uint64_t{0});

    /** Process exactly one event, if any. @return false if queue empty. */
    bool step();

    /** Ask run() to return after the current event (used by experiment
     *  harnesses when the measured workload completes while background
     *  processes would keep the queue busy forever). */
    void requestStop() { stopRequested_ = true; }

    /** Total events processed over the queue's lifetime. */
    std::uint64_t numProcessed() const { return numProcessed_; }

    // ---- snapshot support ----------------------------------------------
    /** What a scheduled occurrence looks like to the snapshot layer. */
    struct ScheduledInfo {
        const Event *ev = nullptr;
        Tick when = 0;
        std::uint64_t seq = 0;
        int priority = 0;
        /** Non-null when the event is a tagged LambdaEvent. */
        const EventTag *tag = nullptr;
    };

    /** Invoke @p fn for every live (scheduled, non-squashed) entry.
     *  Order is the heap's internal layout — callers that care sort by
     *  seq. Stale entries (descheduled, rescheduled, squashed) are
     *  skipped: they carry no simulation state. */
    void forEachScheduled(
        const std::function<void(const ScheduledInfo &)> &fn) const;

    /**
     * Restore-path scheduling: enqueue @p ev at @p when with its
     * original insertion sequence number, preserving same-tick
     * same-priority ordering exactly. Only valid after setClock():
     * @p seq must be below the restored nextSeq and @p when must not
     * precede the restored current tick.
     */
    void restoreSchedule(Event *ev, Tick when, std::uint64_t seq);

    /** restoreSchedule for a one-shot lambda (rebuilt from its tag). */
    void
    restoreLambda(Tick when, std::uint64_t seq, std::string name,
                  std::function<void()> fn, int priority, EventTag tag)
    {
        auto *ev = new LambdaEvent(std::move(name), std::move(fn),
                                   priority, tag);
        owned_.push_back(ev);
        restoreSchedule(ev, when, seq);
    }

    /** Restore the clock state (restore path only; the queue must be
     *  empty and unused). */
    void setClock(Tick curTick, std::uint64_t nextSeq,
                  std::uint64_t numProcessed);

    std::uint64_t nextSeq() const { return nextSeq_; }

    ~EventQueue();

  private:
    struct Entry {
        Tick when;
        int priority;
        std::uint64_t seq;
        Event *ev;
    };

    struct EntryCompare {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    void push(const Entry &entry);
    Event *popReady();

    /** Binary max-heap under EntryCompare (std::push_heap/pop_heap);
     *  kept as a plain vector so the snapshot layer can enumerate live
     *  entries without draining the queue. */
    std::vector<Entry> heap_;
    std::vector<LambdaEvent *> owned_;
    Tick curTick_ = 0;
    bool stopRequested_ = false;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t numProcessed_ = 0;
    std::size_t live_ = 0;
};

} // namespace misp

#endif // MISP_SIM_EVENT_QUEUE_HH
