/**
 * @file
 * Shared typed-value parsers for user-facing text inputs (scenario
 * specs, workload parameters). One implementation so the layers that
 * accept the same value syntax can never diverge.
 *
 * Integers accept decimal, hex (0x...) and octal; a leading '-' is
 * rejected (strtoull would silently wrap it to a huge positive).
 * Booleans accept true/false, on/off, 1/0.
 */

#ifndef MISP_SIM_PARSE_HH
#define MISP_SIM_PARSE_HH

#include <cstdint>
#include <string>

namespace misp::parse {

bool u64(const std::string &value, std::uint64_t *out);
bool u32(const std::string &value, unsigned *out);
bool boolean(const std::string &value, bool *out);

} // namespace misp::parse

#endif // MISP_SIM_PARSE_HH
