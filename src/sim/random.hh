/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic model behaviour (workload input generation, scheduler
 * tie-breaking, synthetic event injection) draws from Rng so that a given
 * seed reproduces a simulation bit-for-bit. The generator is SplitMix64
 * seeded xoshiro256**, which is fast and has no observable bias at the
 * scales we use.
 */

#ifndef MISP_SIM_RANDOM_HH
#define MISP_SIM_RANDOM_HH

#include <array>
#include <cstdint>

#include "logging.hh"

namespace misp {

/** Deterministic, seedable PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed via SplitMix64. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // SplitMix64 step.
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        MISP_ASSERT(bound != 0);
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (~bound + 1) % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        MISP_ASSERT(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return real() < p; }

    /** Raw generator state, for machine-state snapshots. Restoring the
     *  four words reproduces the draw sequence exactly. */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    void
    setState(const std::array<std::uint64_t, 4> &s)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = s[i];
    }

  private:
    std::uint64_t state_[4];
};

} // namespace misp

#endif // MISP_SIM_RANDOM_HH
