/**
 * @file
 * Plane 2 of the observability subsystem: host-profile aggregation.
 *
 * HOST-SIDE ONLY (see host_run_log.hh for the quarantine rules). The
 * harness stamps every point with wall-clock phase timings —
 * parse/warmup/run/serialize — and `mispsim --profile FILE` folds them
 * into a summary: per-phase totals and histograms, plus per-engine
 * host-MIPS. Phase values ride inside RunRecord next to hostSeconds,
 * and like hostSeconds they are excluded from all determinism
 * artifacts (frames, snapshots, traces).
 */

#ifndef MISP_OBS_HOST_PROFILE_HH
#define MISP_OBS_HOST_PROFILE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace misp::obs {

/** Wall-clock seconds per harness phase of one point. */
struct HostPhases {
    double parse = 0;     ///< workload build + guest app load
    double warmup = 0;    ///< warmup leg + image write, or image restore
    double run = 0;       ///< the measured run/resume leg
    double serialize = 0; ///< harvest, stats dump, record encode
};

/** One point's contribution to a --profile summary. */
struct PointProfile {
    std::string label;
    std::string engine;
    HostPhases phases;
    double hostSeconds = 0;
    double hostMips = 0;
    std::uint64_t instsRetired = 0;
};

/**
 * Write the profile summary JSON: overall wall/instruction totals,
 * per-phase {total_s, mean_s, max_s, histogram} (fixed log-scale
 * buckets), and per-engine {points, insts, host_s, mips}.
 */
void writeProfileJson(std::ostream &os,
                      const std::vector<PointProfile> &points);

} // namespace misp::obs

#endif // MISP_OBS_HOST_PROFILE_HH
