/**
 * @file
 * Plane 1 of the observability subsystem: the deterministic trace
 * recorder.
 *
 * Everything in this header lives in *simulated* time. A TraceEvent
 * carries only values derived from the event queue's deterministic
 * clock (curTick, numProcessed) and from architectural model state, so
 * a trace is byte-identical across `--jobs N`, `--isolate`, all three
 * execution engines, and snapshot-restored runs — the same determinism
 * contract the frame and snapshot layers already carry. That makes a
 * trace a regression oracle, not just a viewer artifact: CI diffs the
 * emitted JSON across engines and process topologies.
 *
 * Two rules keep the contract honest:
 *
 *  - Host-dependent happenings (page decodes, superblock builds —
 *    anything the engine choice perturbs) carry the `engine` category,
 *    and snapshot-machinery markers carry `snapshot`; both are OFF in
 *    the default category mask, so a default trace never observes the
 *    engine or the save leg.
 *
 *  - Every recorder carries a `base` cursor in processed-event units.
 *    An event is recorded only once numProcessed() exceeds the base, so
 *    machine construction and warmup noise stay out of the buffer. A
 *    snapshot-restored run naturally starts at base = numProcessed of
 *    the restore point; a cold run replays the identical trace with
 *    `--trace-skip N` for the same N (emitted in the trace metadata).
 *
 * Recording goes through a thread-local recorder pointer (one worker
 * thread runs one point at a time), so deep model code can emit events
 * without plumbing a pointer through every constructor, and the
 * disabled cost is one thread-local load and branch.
 */

#ifndef MISP_OBS_TRACE_HH
#define MISP_OBS_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace misp::obs {

/** Trace category bits ([trace] `categories` in the spec grammar). */
enum TraceCat : std::uint32_t {
    kCatSignal = 1u << 0,   ///< signal fabric send/deliver/drop
    kCatShred = 1u << 1,    ///< sequencer lifecycle transitions
    kCatSched = 1u << 2,    ///< kernel scheduling + Ring-0 episodes
    kCatMem = 1u << 3,      ///< TLB fills/shootdowns/flushes
    kCatRtcall = 1u << 4,   ///< runtime service calls
    kCatEngine = 1u << 5,   ///< host engine internals (NOT engine-stable)
    kCatSnapshot = 1u << 6, ///< snapshot machinery markers
};

/** Default mask: every engine-independent category. `engine` events
 *  differ across --engine choices and `snapshot` markers differ
 *  between a plain run and a save leg, so both stay opt-in. */
constexpr std::uint32_t kDefaultCats =
    kCatSignal | kCatShred | kCatSched | kCatMem | kCatRtcall;

constexpr std::uint32_t kAllCats = (1u << 7) - 1;

/** Typed trace record kinds. Values are part of the on-wire RunRecord
 *  encoding: append only. */
enum class TraceKind : std::uint16_t {
    SignalSend,    ///< fabric accepted a SIGNAL   (arg0=target sid)
    SignalDeliver, ///< delivery tick at the target
    SignalDrop,    ///< queued payloads discarded  (arg0=count)
    ProxySend,     ///< proxy request toward the OMS
    ProxyDeliver,  ///< proxy request delivery at the OMS

    ShredStart,     ///< sequencer picked up a continuation (arg0=eip)
    ShredSuspend,   ///< serialization suspension requested/applied
    ShredResume,    ///< resumed from suspend/proxy/kernel
    ShredPark,      ///< parked (idle; awaiting work)
    ShredHalt,      ///< terminal halt
    ShredProxyWait, ///< AMS entered proxy wait (arg0=fault kind)

    KernelSchedule,  ///< scheduleDecision picked a reschedule
                     ///< (arg0=prev tid+1 or 0, arg1=next tid+1 or 0)
    KernelCtxSwitch, ///< context-switch cost charged
    KernelQuantum,   ///< timer tick advanced the running quantum
    Ring0Enter,      ///< OMS Ring-0 episode begins (arg0=Ring0Cause)
    Ring0Exit,       ///< episode ends (arg0=Ring0Cause, arg1=priv cycles)

    TlbFill,      ///< walk completed, PTE inserted (arg0=vpn)
    TlbShootdown, ///< single-page invalidate       (arg0=vpn)
    TlbFlush,     ///< full flush (serialization purge)

    RtcallEnter, ///< RTCALL dispatched (arg0=service)
    RtcallExit,  ///< RTCALL returned   (arg0=service, arg1=cycles)

    DecodePage,       ///< [engine] page predecoded      (arg0=vpn)
    SuperblockBuild,  ///< [engine] superblocks built    (arg0=vpn)
    DecodeInvalidate, ///< [engine] decoded page dropped (arg0=vpn)

    SnapshotSave,    ///< [snapshot] image written at this point
    SnapshotRestore, ///< [snapshot] run resumed from an image

    NumKinds,
};

/** Stable lowercase dotted name, e.g. "signal.send" — the Chrome
 *  trace-event `name` field and the schema hook for tests. */
const char *traceKindName(TraceKind kind);

/** The category a kind belongs to. */
TraceCat traceKindCat(TraceKind kind);

/** Category name <-> bit helpers for the spec/CLI grammar. */
const char *traceCatName(TraceCat cat);

/** Parse a category spec: "all", "none", or a comma/space separated
 *  list of category names. @return false (with *err set) on an unknown
 *  name. */
bool parseTraceCats(const std::string &spec, std::uint32_t *mask,
                    std::string *err);

/** One recorded event. POD; everything is simulated-deterministic. */
struct TraceEvent {
    Tick tick = 0;          ///< EventQueue::curTick() at record time
    std::uint64_t seq = 0;  ///< EventQueue::numProcessed() at record time
    std::uint16_t kind = 0; ///< TraceKind
    std::uint16_t sid = 0;  ///< sequencer id (0 when not applicable)
    std::uint32_t aux = 0;  ///< kind-specific small operand (cpu, cause)
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
};

/** Recorder configuration ([trace] section + --trace flags). */
struct TraceConfig {
    bool enabled = false;
    std::uint32_t catMask = kDefaultCats;
    /** Buffer bound; events beyond it are counted, not stored. */
    std::uint64_t maxEvents = 1u << 16;
};

/** The harvested buffer a finished point hands back — carried inside
 *  RunRecord so the --jobs/--isolate merge paths are the same code
 *  path as the serial one. */
struct TraceBuffer {
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0; ///< events past maxEvents (post-filter)
    std::uint64_t base = 0;    ///< processed-event cursor (see file doc)
    std::uint32_t catMask = kDefaultCats;
    std::uint64_t maxEvents = 0;
};

/** Per-point recorder. Bound to the point's EventQueue for its
 *  deterministic clock; never consults host time. */
class TraceRecorder
{
  public:
    TraceRecorder(const EventQueue &eq, const TraceConfig &config,
                  std::uint64_t base)
        : eq_(eq), catMask_(config.catMask)
    {
        buf_.base = base;
        buf_.catMask = config.catMask;
        buf_.maxEvents = config.maxEvents;
    }

    void
    record(TraceKind kind, std::uint16_t sid = 0, std::uint32_t aux = 0,
           std::uint64_t arg0 = 0, std::uint64_t arg1 = 0)
    {
        if (!(catMask_ & traceKindCat(kind)))
            return;
        // Events recorded during machine construction, warmup, or a
        // snapshot restore replay the base cursor and stay out.
        if (eq_.numProcessed() <= buf_.base)
            return;
        push(kind, sid, aux, arg0, arg1);
    }

    /** record() minus the base gate — for markers that must survive on
     *  the restore path, where numProcessed == base by construction. */
    void
    recordMarker(TraceKind kind, std::uint16_t sid = 0,
                 std::uint32_t aux = 0, std::uint64_t arg0 = 0,
                 std::uint64_t arg1 = 0)
    {
        if (!(catMask_ & traceKindCat(kind)))
            return;
        push(kind, sid, aux, arg0, arg1);
    }

    const TraceBuffer &buffer() const { return buf_; }
    TraceBuffer take() { return std::move(buf_); }

  private:
    void
    push(TraceKind kind, std::uint16_t sid, std::uint32_t aux,
         std::uint64_t arg0, std::uint64_t arg1)
    {
        if (buf_.events.size() >= buf_.maxEvents) {
            ++buf_.dropped;
            return;
        }
        TraceEvent ev;
        ev.tick = eq_.curTick();
        ev.seq = eq_.numProcessed();
        ev.kind = static_cast<std::uint16_t>(kind);
        ev.sid = sid;
        ev.aux = aux;
        ev.arg0 = arg0;
        ev.arg1 = arg1;
        buf_.events.push_back(ev);
    }

    const EventQueue &eq_;
    std::uint32_t catMask_;
    TraceBuffer buf_;
};

/** The active recorder of the current worker thread (one point runs
 *  per thread at a time). Null whenever tracing is off — the hook cost
 *  is then one thread-local load and branch. */
extern thread_local TraceRecorder *tlsTrace;

/** Model-side hook entry point. */
inline void
trace(TraceKind kind, std::uint16_t sid = 0, std::uint32_t aux = 0,
      std::uint64_t arg0 = 0, std::uint64_t arg1 = 0)
{
    if (TraceRecorder *rec = tlsTrace)
        rec->record(kind, sid, aux, arg0, arg1);
}

/** Hook entry point for snapshot-machinery markers (see recordMarker). */
inline void
traceMarker(TraceKind kind, std::uint16_t sid = 0, std::uint32_t aux = 0,
            std::uint64_t arg0 = 0, std::uint64_t arg1 = 0)
{
    if (TraceRecorder *rec = tlsTrace)
        rec->recordMarker(kind, sid, aux, arg0, arg1);
}

/** RAII attach/detach of the thread-local recorder around one point. */
class ScopedTrace
{
  public:
    explicit ScopedTrace(TraceRecorder *rec) { tlsTrace = rec; }
    ~ScopedTrace() { tlsTrace = nullptr; }
    ScopedTrace(const ScopedTrace &) = delete;
    ScopedTrace &operator=(const ScopedTrace &) = delete;
};

/** One point's contribution to a merged trace file. */
struct TracePoint {
    std::string label; ///< process_name metadata (machine/workload/coords)
    const TraceBuffer *buf = nullptr;
};

/**
 * Emit a Chrome trace-event / Perfetto-compatible JSON file: one
 * process per point (pid = point index), one thread per sequencer
 * (tid = sid), instant events with ts = simulated tick. Deterministic
 * byte-for-byte: integer-only fields, fixed key order, points in index
 * order, events in record order.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TracePoint> &points);

} // namespace misp::obs

#endif // MISP_OBS_TRACE_HH
