#include "obs/trace.hh"

#include <ostream>
#include <sstream>

namespace misp::obs {

thread_local TraceRecorder *tlsTrace = nullptr;

namespace {

struct KindInfo {
    const char *name;
    TraceCat cat;
};

/** Indexed by TraceKind; order must match the enum exactly. */
const KindInfo kKinds[] = {
    {"signal.send", kCatSignal},
    {"signal.deliver", kCatSignal},
    {"signal.drop", kCatSignal},
    {"proxy.send", kCatSignal},
    {"proxy.deliver", kCatSignal},

    {"shred.start", kCatShred},
    {"shred.suspend", kCatShred},
    {"shred.resume", kCatShred},
    {"shred.park", kCatShred},
    {"shred.halt", kCatShred},
    {"shred.proxywait", kCatShred},

    {"kernel.schedule", kCatSched},
    {"kernel.ctxswitch", kCatSched},
    {"kernel.quantum", kCatSched},
    {"ring0.enter", kCatSched},
    {"ring0.exit", kCatSched},

    {"tlb.fill", kCatMem},
    {"tlb.shootdown", kCatMem},
    {"tlb.flush", kCatMem},

    {"rtcall.enter", kCatRtcall},
    {"rtcall.exit", kCatRtcall},

    {"decode.page", kCatEngine},
    {"decode.sbbuild", kCatEngine},
    {"decode.invalidate", kCatEngine},

    {"snapshot.save", kCatSnapshot},
    {"snapshot.restore", kCatSnapshot},
};

static_assert(sizeof(kKinds) / sizeof(kKinds[0]) ==
                  static_cast<std::size_t>(TraceKind::NumKinds),
              "kKinds table out of sync with TraceKind");

struct CatInfo {
    const char *name;
    TraceCat cat;
};

const CatInfo kCats[] = {
    {"signal", kCatSignal}, {"shred", kCatShred},
    {"sched", kCatSched},   {"mem", kCatMem},
    {"rtcall", kCatRtcall}, {"engine", kCatEngine},
    {"snapshot", kCatSnapshot},
};

} // namespace

const char *
traceKindName(TraceKind kind)
{
    auto idx = static_cast<std::size_t>(kind);
    MISP_ASSERT(idx < static_cast<std::size_t>(TraceKind::NumKinds));
    return kKinds[idx].name;
}

TraceCat
traceKindCat(TraceKind kind)
{
    auto idx = static_cast<std::size_t>(kind);
    MISP_ASSERT(idx < static_cast<std::size_t>(TraceKind::NumKinds));
    return kKinds[idx].cat;
}

const char *
traceCatName(TraceCat cat)
{
    for (const CatInfo &c : kCats) {
        if (c.cat == cat)
            return c.name;
    }
    return "?";
}

bool
parseTraceCats(const std::string &spec, std::uint32_t *mask,
               std::string *err)
{
    if (spec == "all") {
        *mask = kAllCats;
        return true;
    }
    if (spec == "none") {
        *mask = 0;
        return true;
    }
    if (spec == "default") {
        *mask = kDefaultCats;
        return true;
    }
    std::uint32_t out = 0;
    std::string tok;
    std::istringstream in(spec);
    // Accept comma or whitespace separators.
    while (std::getline(in, tok, ',')) {
        std::istringstream inner(tok);
        std::string name;
        while (inner >> name) {
            bool found = false;
            for (const CatInfo &c : kCats) {
                if (name == c.name) {
                    out |= c.cat;
                    found = true;
                    break;
                }
            }
            if (!found) {
                if (err) {
                    *err = "unknown trace category '" + name +
                           "' (signal shred sched mem rtcall engine "
                           "snapshot | all | none | default)";
                }
                return false;
            }
        }
    }
    *mask = out;
    return true;
}

void
writeChromeTrace(std::ostream &os, const std::vector<TracePoint> &points)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        else
            os << "\n";
        first = false;
    };
    for (std::size_t pid = 0; pid < points.size(); ++pid) {
        const TracePoint &pt = points[pid];
        sep();
        // Escaping: point labels are driver-built from spec identifiers
        // (no quotes/backslashes), but stay safe anyway.
        std::string label;
        for (char c : pt.label) {
            if (c == '"' || c == '\\')
                label += '\\';
            label += c;
        }
        os << "{\"ph\":\"M\",\"pid\":" << pid
           << ",\"name\":\"process_name\",\"args\":{\"name\":\"" << label
           << "\",\"base\":" << pt.buf->base
           << ",\"dropped\":" << pt.buf->dropped
           << ",\"cat_mask\":" << pt.buf->catMask
           << ",\"max_events\":" << pt.buf->maxEvents << "}}";
        for (const TraceEvent &ev : pt.buf->events) {
            auto kind = static_cast<TraceKind>(ev.kind);
            sep();
            os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid
               << ",\"tid\":" << ev.sid << ",\"ts\":" << ev.tick
               << ",\"cat\":\"" << traceCatName(traceKindCat(kind))
               << "\",\"name\":\"" << traceKindName(kind)
               << "\",\"args\":{\"seq\":" << ev.seq
               << ",\"aux\":" << ev.aux << ",\"arg0\":" << ev.arg0
               << ",\"arg1\":" << ev.arg1 << "}}";
        }
    }
    os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

} // namespace misp::obs
