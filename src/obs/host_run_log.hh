/**
 * @file
 * Plane 2 of the observability subsystem: the supervisor run log.
 *
 * HOST-SIDE ONLY. Everything here reads the host wall clock and worker
 * pids — quarantined exactly like stats::HostScalar: a run log is
 * telemetry about the execution infrastructure (dispatch, retries,
 * timeouts, wall time), never an input to the simulated machine, and
 * no simulated-plane code may include this header (misplint enforces
 * the layering).
 *
 * Output is JSON Lines on a caller-owned stream: one object per
 * lifecycle event, so a long sweep's log can be tailed live and parsed
 * incrementally. Thread-safe — runAll's pool threads and the
 * supervisor loop both emit.
 */

#ifndef MISP_OBS_HOST_RUN_LOG_HH
#define MISP_OBS_HOST_RUN_LOG_HH

#include <chrono>
#include <iosfwd>
#include <mutex>
#include <string>

namespace misp::obs {

/** One run-log line. Fields with their sentinel defaults are omitted
 *  from the emitted object. */
struct RunLogEntry {
    /** dispatched | completed | failed | retried | timed_out | crashed */
    std::string event;
    std::string point;       ///< point label (machine/workload/coords)
    int attempt = 0;         ///< 1-based attempt number (0 = omit)
    long pid = -1;           ///< worker pid (--isolate only)
    double wallMs = -1;      ///< point wall time, milliseconds
    long backoffMs = -1;     ///< backoff before the next attempt
    std::string status;      ///< runStatusName() for terminal events
};

class RunLog
{
  public:
    /** @param os destination stream; borrowed, must outlive the log. */
    explicit RunLog(std::ostream *os);

    /** Emit one JSONL line (with a monotonic `ts_ms` since the log was
     *  opened) and flush, so tail -f works mid-sweep. */
    void log(const RunLogEntry &entry);

  private:
    std::ostream *os_;
    std::mutex mutex_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace misp::obs

#endif // MISP_OBS_HOST_RUN_LOG_HH
