#include "obs/host_profile.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>

namespace misp::obs {

namespace {

/** Log-scale histogram bucket upper bounds, seconds. */
const double kBuckets[] = {0.001, 0.01, 0.1, 1.0, 10.0, 100.0};
constexpr std::size_t kNumBuckets =
    sizeof(kBuckets) / sizeof(kBuckets[0]) + 1; // + overflow

std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

struct PhaseAgg {
    double total = 0;
    double max = 0;
    std::uint64_t hist[kNumBuckets] = {};

    void
    add(double v)
    {
        total += v;
        max = std::max(max, v);
        std::size_t b = 0;
        while (b < kNumBuckets - 1 && v > kBuckets[b])
            ++b;
        ++hist[b];
    }
};

void
writePhase(std::ostream &os, const char *name, const PhaseAgg &agg,
           std::size_t n)
{
    os << "    \"" << name << "\": {\"total_s\": " << num(agg.total)
       << ", \"mean_s\": " << num(n ? agg.total / double(n) : 0)
       << ", \"max_s\": " << num(agg.max) << ", \"histogram\": [";
    for (std::size_t b = 0; b < kNumBuckets; ++b)
        os << (b ? ", " : "") << agg.hist[b];
    os << "]}";
}

} // namespace

void
writeProfileJson(std::ostream &os, const std::vector<PointProfile> &points)
{
    PhaseAgg parse, warmup, run, serialize;
    double hostTotal = 0;
    std::uint64_t instsTotal = 0;
    // Keyed by engine name; std::map gives deterministic key order.
    struct EngineAgg {
        std::uint64_t points = 0;
        std::uint64_t insts = 0;
        double hostS = 0;
    };
    std::map<std::string, EngineAgg> engines;

    for (const PointProfile &p : points) {
        parse.add(p.phases.parse);
        warmup.add(p.phases.warmup);
        run.add(p.phases.run);
        serialize.add(p.phases.serialize);
        hostTotal += p.hostSeconds;
        instsTotal += p.instsRetired;
        EngineAgg &e = engines[p.engine];
        ++e.points;
        e.insts += p.instsRetired;
        e.hostS += p.hostSeconds;
    }

    os << "{\n";
    os << "  \"points\": " << points.size() << ",\n";
    os << "  \"host_seconds\": " << num(hostTotal) << ",\n";
    os << "  \"insts_retired\": " << instsTotal << ",\n";
    os << "  \"histogram_bucket_upper_s\": [";
    for (std::size_t b = 0; b < kNumBuckets - 1; ++b)
        os << (b ? ", " : "") << num(kBuckets[b]);
    os << "],\n";
    os << "  \"phases\": {\n";
    writePhase(os, "parse", parse, points.size());
    os << ",\n";
    writePhase(os, "warmup", warmup, points.size());
    os << ",\n";
    writePhase(os, "run", run, points.size());
    os << ",\n";
    writePhase(os, "serialize", serialize, points.size());
    os << "\n  },\n";
    os << "  \"engines\": {\n";
    bool first = true;
    for (const auto &[name, e] : engines) {
        if (!first)
            os << ",\n";
        first = false;
        double mips =
            e.hostS > 0 ? double(e.insts) / e.hostS / 1e6 : 0;
        os << "    \"" << name << "\": {\"points\": " << e.points
           << ", \"insts\": " << e.insts
           << ", \"host_s\": " << num(e.hostS)
           << ", \"mips\": " << num(mips) << "}";
    }
    os << "\n  }\n";
    os << "}\n";
}

} // namespace misp::obs
