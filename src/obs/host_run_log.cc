#include "obs/host_run_log.hh"

#include <cstdio>
#include <ostream>

namespace misp::obs {

RunLog::RunLog(std::ostream *os)
    : os_(os), start_(std::chrono::steady_clock::now())
{
}

void
RunLog::log(const RunLogEntry &entry)
{
    if (!os_)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    double tsMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    char num[64];
    std::snprintf(num, sizeof(num), "%.1f", tsMs);

    auto escape = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    };

    std::ostream &os = *os_;
    os << "{\"ts_ms\":" << num << ",\"event\":\"" << escape(entry.event)
       << "\",\"point\":\"" << escape(entry.point) << "\"";
    if (entry.attempt > 0)
        os << ",\"attempt\":" << entry.attempt;
    if (entry.pid >= 0)
        os << ",\"pid\":" << entry.pid;
    if (entry.wallMs >= 0) {
        std::snprintf(num, sizeof(num), "%.1f", entry.wallMs);
        os << ",\"wall_ms\":" << num;
    }
    if (entry.backoffMs >= 0)
        os << ",\"backoff_ms\":" << entry.backoffMs;
    if (!entry.status.empty())
        os << ",\"status\":\"" << escape(entry.status) << "\"";
    os << "}\n";
    os.flush();
}

} // namespace misp::obs
