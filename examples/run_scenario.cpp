/**
 * @file
 * Driving the scenario subsystem from C++ instead of a `.scn` file.
 *
 * The `mispsim` CLI is a thin shell around this exact sequence: parse
 * a spec, type it into a Scenario, expand the sweep grid, run it, and
 * render the results. Embedding the spec as a string is handy for
 * programmatic experiments and for tests.
 *
 *   $ ./build/run_scenario
 */

#include <iostream>

#include "driver/runner.hh"
#include "sim/logging.hh"

using namespace misp;
using namespace misp::driver;

int
main()
{
    setQuietLogging(true);

    // A two-axis grid: AMS count x workload, 1 OMS each time.
    const std::string spec = R"(
        [scenario]
        name = ams_scaling
        title = dense_mvm and gauss vs AMS count

        [machine misp]
        ams = 1                     ; overridden by the sweep
        backend = shred

        [workload]
        name = dense_mvm
        workers = 7

        [sweep]
        machine.ams = 1, 3, 7
        workload.name = dense_mvm, gauss
    )";

    SpecFile file;
    Scenario sc;
    std::vector<ScenarioPoint> grid;
    std::string err;
    if (!SpecFile::parse(spec, "<embedded>", &file, &err) ||
        !Scenario::fromSpec(file, &sc, &err) ||
        !sc.expandPoints(/*quickMode=*/false, &grid, &err)) {
        std::cerr << "run_scenario: " << err << "\n";
        return 1;
    }

    ScenarioRunner::Options opts;
    opts.hostLines = false;
    std::vector<PointResult> results =
        ScenarioRunner(opts).runAll(sc, grid, &std::cerr);

    writeTable(std::cout, sc, buildMetricFrame(sc, results),
               /*markdown=*/false);

    // Results are plain structs: each point carries the coordinates
    // plus the harness::RunRecord its run measured.
    for (const PointResult &r : results) {
        if (r.workload != "dense_mvm")
            continue;
        for (const auto &[key, value] : r.coords) {
            if (key == "machine.ams" && value == "7") {
                std::cout << "\ndense_mvm on 1 OMS + 7 AMS: "
                          << r.run.megaCycles() << " Mcycles, "
                          << r.run.events.serializations
                          << " serializations\n";
            }
        }
    }
    return 0;
}
