/**
 * @file
 * RayTracer scenario: the paper's flagship scalable workload (§5.2),
 * run on configurable machines through the public workload API.
 *
 *   $ ./build/examples/raytrace_scene [workers]
 *
 * Renders the scene on a MISP uniprocessor with 1..7 AMSs plus the SMP
 * baseline and prints the scaling curve — a miniature Figure 4 for one
 * application, demonstrating dynamic (work-queue) shred scheduling.
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "workloads/workload.hh"

using namespace misp;

namespace {

Tick
render(const arch::SystemConfig &cfg, rt::Backend backend,
       unsigned workers)
{
    wl::WorkloadParams params;
    params.workers = workers;
    wl::Workload w = wl::buildRaytracer(params);
    harness::Experiment exp(cfg, backend);
    harness::LoadedProcess proc = exp.load(w.app);
    Tick t = exp.runToCompletion(proc.process).ticks;
    if (!w.validate(proc.process->addressSpace())) {
        std::fprintf(stderr, "raytrace_scene: image mismatch!\n");
        std::exit(1);
    }
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    unsigned workers = argc > 1 ? std::atoi(argv[1]) : 7;

    std::printf("RayTracer, %u shreds, dynamic row scheduling via atomic "
                "FETCHADD work claiming\n\n",
                workers);

    Tick serial = render(arch::SystemConfig::mp({0}),
                         rt::Backend::OsThread, workers);
    std::printf("%-24s %12.1fM cycles  (baseline)\n", "1 core, OS threads",
                serial / 1e6);

    for (unsigned ams : {1u, 3u, 7u}) {
        unsigned use = std::min(workers, ams + 1);
        (void)use;
        Tick t = render(arch::SystemConfig::uniprocessor(ams),
                        rt::Backend::Shred, workers);
        std::printf("MISP 1 OMS + %u AMS %6s %12.1fM cycles  "
                    "(speedup %.2fx)\n",
                    ams, "", t / 1e6, double(serial) / double(t));
    }

    Tick smp = render(arch::SystemConfig::mp({0, 0, 0, 0, 0, 0, 0, 0}),
                      rt::Backend::OsThread, workers);
    std::printf("%-24s %12.1fM cycles  (speedup %.2fx)\n",
                "8-core SMP, OS threads", smp / 1e6,
                double(serial) / double(smp));
    std::printf("\nThe same application image ran on every machine; only "
                "the runtime changed.\n");
    return 0;
}
