/**
 * @file
 * The Open Dynamics Engine port story (§5.5, Table 2).
 *
 * "Simply converting all threads to shreds resulted in an inefficient
 * use of the AMSs, as the main program thread sleeps inside of the OS
 * while waiting on the user to provide input. By using a native OS
 * thread to handle user I/O and a separate native OS thread consisting
 * of multiple shreds to perform the compute-intensive parallelized
 * computation, the AMSs were more efficiently utilized."
 *
 * This example reproduces both structures on one MISP processor:
 *   (a) naive port: main does blocking sleeps between compute phases
 *       on the shredded thread itself — while it sleeps in the kernel,
 *       its shreds are suspended with it;
 *   (b) restructured: a separate OS thread does the blocking I/O while
 *       the shredded thread computes without interruption.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "isa/assembler.hh"
#include "shredlib/stub_library.hh"

using namespace misp;

namespace {

/** Compute phases: create 3 shreds, each burning compute, then join. */
const char *kComputeAsm = R"(
        docompute:
            movi r4, 0
        mkshreds:
            movi r0, crunch
            mov r1, r4
            call 0x600200       ; shred_create
            addi r4, r4, 1
            cmpi r4, 3
            jcc.lt mkshreds
            call 0x600280       ; join_all
            ret
        crunch:
            movi r5, 0
        crunchloop:
            compute 1900
            addi r5, r5, 1
            cmpi r5, 6000
            jcc.lt crunchloop
            ret
)";

Tick
runNaive()
{
    // Main thread: rt_init; loop { sleep (blocking I/O wait); compute }.
    std::string src = std::string(R"(
        main:
            call 0x600000       ; rt_init
            movi r8, 0
        phases:
            movi r0, 2000000    ; "wait for user input": 2M-cycle sleep
            syscall 5           ;   -> the whole OS thread blocks
            call docompute
            addi r8, r8, 1
            cmpi r8, 4
            jcc.lt phases
            movi r0, 0
            call 0x600A00       ; exit_process
    )") + kComputeAsm;

    harness::GuestApp app;
    app.name = "ode_naive";
    app.program = isa::assemble(src, mem::kCodeBase);
    harness::Experiment exp(arch::SystemConfig::uniprocessor(3),
                            rt::Backend::Shred);
    auto proc = exp.load(app);
    return exp.runToCompletion(proc.process).ticks;
}

Tick
runRestructured()
{
    // I/O on its own OS thread (sleep loop); compute thread is shredded
    // and never blocks in the kernel. The compute thread signals
    // completion through shared memory; the I/O thread exits the
    // process when it sees the flag.
    std::string src = std::string(R"(
        main:
            ; spawn the compute OS thread, then become the I/O thread
            movi r0, compute_thread
            movi r1, 0x8000FF8     ; its stack (one page is plenty: the
            movi r2, 0             ; runtime gives shreds real stacks)
            syscall 6              ; SYS_ThreadCreate
        ioloop:
            movi r0, 2000000
            syscall 5              ; blocking wait on "input"
            movi r4, 0x8000000
            ld8 r5, [r4]
            cmpi r5, 1
            jcc.ne ioloop
            movi r0, 0
            call 0x600A00          ; exit_process

        compute_thread:
            call 0x600000          ; rt_init (this thread owns the gang)
            movi r8, 0
        phases:
            call docompute
            addi r8, r8, 1
            cmpi r8, 4
            jcc.lt phases
            movi r4, 0x8000000
            movi r5, 1
            st8 [r4], r5           ; tell the I/O thread we are done
        idle:
            compute 1000
            jmp idle               ; wait to be reaped by exit_process
    )") + kComputeAsm;

    harness::GuestApp app;
    app.name = "ode_restructured";
    app.program = isa::assemble(src, mem::kCodeBase);
    harness::DataRegion flag;
    flag.addr = 0x0800'0000;
    flag.size = mem::kPageSize;
    app.data.push_back(flag);

    harness::Experiment exp(arch::SystemConfig::uniprocessor(3),
                            rt::Backend::Shred);
    auto proc = exp.load(app);
    return exp.runToCompletion(proc.process).ticks;
}

} // namespace

int
main()
{
    setQuietLogging(true);
    std::printf("ODE-style port (Table 2): blocking I/O vs shredded "
                "compute on MISP 1x4\n\n");
    Tick naive = runNaive();
    std::printf("naive port    (I/O sleeps on the shredded thread): "
                "%10.1fM cycles\n",
                naive / 1e6);
    Tick good = runRestructured();
    std::printf("restructured  (I/O on its own OS thread):          "
                "%10.1fM cycles\n",
                good / 1e6);
    std::printf("\nspeedup from the paper's one structural change: "
                "%.2fx\n",
                double(naive) / double(good));
    std::printf("(the naive port serializes compute behind every "
                "blocking wait; the\nrestructured version overlaps I/O "
                "waiting with shredded computation)\n");
    return good < naive ? 0 : 1;
}
