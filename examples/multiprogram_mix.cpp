/**
 * @file
 * Multiprogramming scenario (§5.4 / Figure 7): a multi-shredded
 * application sharing a MISP MP system with single-threaded processes.
 *
 *   $ ./build/examples/multiprogram_mix
 *
 * Shows why the AMS:OMS ratio matters: on 1x8, a competing process
 * starves the AMSs (they are only usable while the shredded thread
 * holds the one OMS); on 1x4+4 with ideal placement, the competing
 * work lands on AMS-less processors and the shredded app keeps its
 * throughput.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "workloads/workload.hh"

using namespace misp;

namespace {

struct Outcome {
    Tick ticks;
    double amsUtil;
};

Outcome
runMix(const std::vector<unsigned> &amsPerProc, bool idealPlacement,
       unsigned competitors)
{
    wl::WorkloadParams params;
    params.workers = 7;
    wl::Workload w = wl::buildKmeans(params);

    harness::Experiment exp(arch::SystemConfig::mp(amsPerProc),
                            rt::Backend::Shred);
    std::vector<int> shredCpus, plainCpus;
    for (unsigned i = 0; i < exp.system().numProcessors(); ++i) {
        if (exp.system().processor(i).numAms() > 0)
            shredCpus.push_back(exp.system().processor(i).cpuId());
        else
            plainCpus.push_back(exp.system().processor(i).cpuId());
    }
    auto proc = exp.load(w.app, shredCpus);
    wl::WorkloadParams sp;
    for (unsigned c = 0; c < competitors; ++c) {
        exp.load(wl::buildSpinner(sp).app,
                 idealPlacement && !plainCpus.empty() ? plainCpus
                                                      : std::vector<int>{});
    }

    Outcome out;
    out.ticks = exp.runToCompletion(proc.process, 2'000'000'000'000ull).ticks;
    arch::MispProcessor &mp = exp.system().processor(0);
    double busy = 0;
    for (unsigned i = 0; i < mp.numAms(); ++i)
        busy += double(mp.amsAt(i).busyCycles());
    out.amsUtil = out.ticks
                      ? busy / (double(out.ticks) * mp.numAms())
                      : 0.0;
    if (w.validate && !w.validate(proc.process->addressSpace()))
        std::fprintf(stderr, "multiprogram_mix: bad result!\n");
    return out;
}

} // namespace

int
main()
{
    setQuietLogging(true);
    std::printf("kmeans (7 shreds) + competing single-threaded "
                "processes\n\n");
    std::printf("%-34s %12s %10s\n", "configuration", "cycles(M)",
                "AMS util");

    Outcome solo = runMix({7}, false, 0);
    std::printf("%-34s %12.1f %9.0f%%\n", "1x8, unloaded", solo.ticks / 1e6,
                solo.amsUtil * 100);

    Outcome shared = runMix({7}, false, 1);
    std::printf("%-34s %12.1f %9.0f%%   <- OMS shared, AMSs idle half "
                "the time\n",
                "1x8, +1 competitor", shared.ticks / 1e6,
                shared.amsUtil * 100);

    Outcome ideal = runMix({3, 0, 0, 0, 0}, true, 4);
    std::printf("%-34s %12.1f %9.0f%%   <- competitors on AMS-less "
                "CPUs\n",
                "1x4+4 ideal placement, +4", ideal.ticks / 1e6,
                ideal.amsUtil * 100);
    return 0;
}
