/**
 * @file
 * Quickstart: the MISP architecture from bare metal.
 *
 * Builds an 8-sequencer MISP uniprocessor (1 OMS + 7 AMS), assembles a
 * small guest program that uses the raw architectural mechanisms —
 * SIGNAL to start shreds on AMSs, shared memory to communicate, and a
 * proxy-serviced page fault — and runs it to completion, printing the
 * firmware-style event log.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>
#include <cstring>

#include "harness/experiment.hh"
#include "isa/assembler.hh"

using namespace misp;

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    // Escape hatch: pick the host execution engine (reference
    // per-instruction fetch+decode, predecoded-block cache, or chained
    // superblocks). Output is bit-identical across all three — diff the
    // runs to check an engine.
    cpu::Engine engine = cpu::Engine::Superblock;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-decode-cache") == 0)
            engine = cpu::Engine::Reference;
        else if (std::strncmp(argv[i], "--engine=", 9) == 0)
            cpu::parseEngineName(argv[i] + 9, &engine);
    }

    // A guest program: main starts one shred per AMS via SIGNAL; each
    // shred sums a slice of an array into a per-shred slot; main spins
    // until every slot is filled, then adds them up.
    //
    // Data page layout (0x08000000): [0..7] result slots, [64] = done
    // counter, array at 0x08001000 (pages demand-fault, AMS faults are
    // serviced by proxy execution).
    const char *src = R"(
        main:
            call 0x600000           ; rt_init: registers the proxy handler
            ; fill the array with 1..N so the expected sum is known
            movi r4, 0x8001000      ; array base
            movi r5, 1
        fill:
            st8 [r4], r5
            addi r4, r4, 8
            addi r5, r5, 1
            cmpi r5, 1024
            jcc.le fill

            ; start a shred on every AMS: SIGNAL(sid, eip, esp)
            numseq r6               ; sequencers in this MISP processor
            movi r1, 1              ; sid cursor (0 is the OMS)
        spawn:
            cmp r1, r6
            jcc.uge spawned
            movi r2, worker         ; shred continuation EIP
            movi r3, 0              ; worker is stackless
            signal r1, r2, r3       ; the user-level dual of an IPI
            addi r1, r1, 1
            jmp spawn
        spawned:

            ; wait until all (numseq-1) shreds bumped the done counter
            subi r6, r6, 1
        waitall:
            movi r4, 0x8000200
            ld8 r5, [r4]
            cmp r5, r6
            jcc.ne waitall

            ; sum the per-shred partial results
            movi r4, 0x8000000
            movi r7, 0              ; total
            movi r1, 0
        reduce:
            ld8 r5, [r4]
            add r7, r7, r5
            addi r4, r4, 8
            addi r1, r1, 1
            cmp r1, r6
            jcc.ne reduce

            ; write the answer where the host can read it, then exit
            movi r4, 0x8000208
            st8 [r4], r7
            movi r0, 0
            call 0x600A00           ; exit_process stub

        worker:
            seqid r8                ; my SID (1..7)
            subi r9, r8, 1          ; my slice index

            ; slice bounds: 1024 elements over (numseq-1) shreds
            numseq r6
            subi r6, r6, 1
            movi r4, 1024
            div r5, r4, r6          ; elements per shred
            mul r10, r9, r5         ; lo
            add r11, r10, r5        ; hi
            cmp r8, r6              ; last shred takes the remainder
            jcc.ne bounded
            movi r11, 1024
        bounded:

            movi r12, 0             ; partial sum
            movi r4, 0x8001000
            shli r13, r10, 3
            add r4, r4, r13
        sumloop:
            cmp r10, r11
            jcc.ge sumdone
            ld8 r13, [r4]           ; may page-fault -> proxy execution
            add r12, r12, r13
            compute 200             ; model some per-element FP work
            addi r4, r4, 8
            addi r10, r10, 1
            jmp sumloop
        sumdone:
            ; result[slice] = partial
            movi r4, 0x8000000
            shli r13, r9, 3
            add r4, r4, r13
            st8 [r4], r12
            ; done counter += 1 (atomic: other shreds do the same)
            movi r4, 0x8000200
            movi r5, 1
            fetchadd r13, [r4], r5
            halt                    ; AMS goes idle, awaiting more work
    )";

    harness::GuestApp app;
    app.name = "quickstart";
    app.program = isa::assemble(src, mem::kCodeBase);
    harness::DataRegion data;
    data.addr = 0x0800'0000;
    data.size = 16 * mem::kPageSize;
    app.data.push_back(data);

    arch::SystemConfig sys = arch::SystemConfig::uniprocessor(7);
    sys.misp.engine = engine;
    harness::Experiment exp(sys, rt::Backend::Shred);
    harness::LoadedProcess proc = exp.load(app);
    Tick ticks = exp.runToCompletion(proc.process).ticks;

    Word total = proc.process->addressSpace().peekWord(0x0800'0208, 8);
    std::printf("quickstart: sum(1..1024) computed by 7 shreds = %llu "
                "(expected %u)\n",
                (unsigned long long)total, 1024 * 1025 / 2);
    std::printf("completed in %llu simulated cycles\n",
                (unsigned long long)ticks);

    arch::MispProcessor &mp = exp.system().processor(0);
    std::printf("\nfirmware event log (Table-1 classes):\n");
    for (unsigned c = 0;
         c < static_cast<unsigned>(arch::Ring0Cause::NumCauses); ++c) {
        std::printf("  %-16s %llu\n",
                    arch::ring0CauseName(
                        static_cast<arch::Ring0Cause>(c)),
                    (unsigned long long)mp.eventCount(
                        static_cast<arch::Ring0Cause>(c)));
    }
    std::printf("serializations: %llu, inter-sequencer signals "
                "delivered: %llu\n",
                (unsigned long long)mp.serializations(),
                (unsigned long long)mp.fabric().deliveries());
    return total == 1024 * 1025 / 2 ? 0 : 1;
}
