/**
 * @file
 * misplint — the repo-specific invariant checker.
 *
 * Every headline claim this reproduction makes (bit-identical engines,
 * byte-identical --jobs/--isolate/restored sweeps, engine-neutral
 * snapshot images) rests on two contracts that used to live only in
 * prose: *simulated code is deterministic* and *everything archived
 * round-trips through snapSave/snapRestore*. misplint turns both into
 * mechanical gates over the source text (a lightweight tokenizer — no
 * libclang, no compiler dependency), run as a tier-1 ctest and in CI.
 *
 * Rule families (ids are what findings and baselines carry):
 *
 *  snapshot completeness
 *    snap-save-missing     member of a Saveable class not referenced in
 *                          its snapSave body and not annotated
 *    snap-restore-missing  same for snapRestore
 *    snap-bad-annotation   unknown `// snap: <kind>` value
 *    snap-tag-codec        tag in snapshot/tags.hh without a restore
 *                          codec in snapshot.cc, without a producer
 *                          site, or with a duplicate value
 *
 *  determinism hygiene (simulated dirs only — see kSimulatedDirs)
 *    det-rand              rand()/srand()/std::random_device — all
 *                          stochastic behaviour must come from sim::Rng
 *    det-time              wall-clock access (time()/clock()/
 *                          gettimeofday/std::chrono) in simulated code,
 *                          or std::chrono anywhere in src/ outside the
 *                          host-side allowlist
 *    det-ptr-key           std::map/std::set keyed by a pointer type —
 *                          iteration order is the allocator's, not the
 *                          model's
 *    det-unordered-iter    iteration over a std::unordered_map/set —
 *                          hash-order leaks into emitted/serialized
 *                          bytes unless the site sorts first (annotate
 *                          deliberate sort-then-iterate sites)
 *
 *  layering
 *    layer-include         src/{sim,mem,cpu} including a src/driver or
 *                          src/harness header (the model must not know
 *                          about the host-side run layer)
 *
 * Annotation grammar (in comments, same line as the declaration or on
 * an otherwise code-free line directly above):
 *
 *    // snap: derived     rebuilt lazily after restore (decode caches,
 *                         last-translation windows) — deliberately not
 *                         in any image
 *    // snap: host-only   host-side measurement/bookkeeping, excluded
 *                         from images by design
 *    // snap: config      construction-time configuration; restore
 *                         targets are freshly built from the same
 *                         config, so it never travels
 *    // snap: stats       travels via the stats tree
 *                         (StatGroup::snapValues), not this class's
 *                         snapSave — members of stats:: type get this
 *                         implicitly
 *    // snap: quiesced    guaranteed to hold its reset/idle value at
 *                         every snapshot point (the quiescence
 *                         protocol — advanceToSnapshotPoint — drains
 *                         the state that would make it nonzero)
 *    // snap: attach      re-established on the restore path by an
 *                         explicit companion call (Mmu::snapAttach),
 *                         not by snapRestore itself
 *
 *    // misplint: allow(rule-id) <reason>
 *                         suppress one hygiene rule at one site; the
 *                         reason is mandatory prose for the reviewer
 *
 * Members that are references (construction wiring — they cannot be
 * reseated) and members of stats:: types (archived via the stats tree)
 * are exempt without annotation.
 */

#ifndef MISP_TOOLS_MISPLINT_HH
#define MISP_TOOLS_MISPLINT_HH

#include <string>
#include <vector>

namespace misplint {

/** One violation. `symbol` is the stable element the finding is about
 *  (member, class, tag, include path) — it keys baseline entries, so
 *  baselines survive line-number drift. */
struct Finding {
    std::string file; ///< path relative to Options::root
    int line = 0;
    std::string rule;
    std::string symbol;
    std::string message;
};

struct Options {
    std::string root = ".";
    /** Scan roots, relative to root. Directories are walked
     *  recursively for .hh/.cc/.h/.cpp; files are taken as-is. */
    std::vector<std::string> paths = {"src", "tests"};
};

struct Report {
    std::vector<Finding> findings; ///< sorted by (file, line, rule)
    int filesScanned = 0;
    int saveableClasses = 0; ///< classes with snapSave+snapRestore
    int membersChecked = 0;
    int suppressed = 0; ///< findings silenced by inline annotations
    /** Names of the classes the completeness rule covered — lets the
     *  self-scan test assert nothing silently fell out of coverage. */
    std::vector<std::string> saveableNames;
};

/** Run every rule over Options::paths. */
Report run(const Options &opts);

/** "file:line: rule-id message" — the one output format. */
std::string format(const Finding &f);

/** "file:rule-id:symbol" — the baseline entry for a finding. */
std::string baselineKey(const Finding &f);

} // namespace misplint

#endif // MISP_TOOLS_MISPLINT_HH
