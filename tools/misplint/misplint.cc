#include "misplint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace fs = std::filesystem;

namespace misplint {

namespace {

// ---------------------------------------------------------------------
// Policy: which parts of the tree each rule family governs.
// ---------------------------------------------------------------------

/** Simulated code: everything whose behaviour is part of the model and
 *  therefore must be bit-reproducible from (config, seed). src/obs/ is
 *  simulated too — the trace recorder observes model events — except
 *  its quarantined host plane (see hostPlane below). */
constexpr const char *kSimulatedDirs[] = {
    "src/cpu/",  "src/mem/",      "src/misp/",     "src/os/",
    "src/isa/",  "src/sim/",      "src/shredlib/", "src/snapshot/",
    "src/workloads/", "src/obs/",
};

/** Layers that must not see the host-side run layer. */
constexpr const char *kModelOnlyDirs[] = {"src/sim/", "src/mem/",
                                          "src/cpu/"};

/** The only files in src/ allowed to touch std::chrono: host-side wall
 *  clocks (bench timing, supervisor deadlines). Everything else in
 *  src/ emits deterministic artifacts and has no business with time.
 *  (src/obs/host_* is a prefix allowlist; see hostPlane.) */
constexpr const char *kChronoAllowlist[] = {"src/harness/run_record.cc",
                                            "src/driver/runner.cc"};

bool
startsWithAny(const std::string &rel, const char *const *dirs,
              std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (rel.rfind(dirs[i], 0) == 0)
            return true;
    return false;
}

/** The quarantined host plane inside src/obs/: files prefixed `host_`
 *  hold wall-clock telemetry (run logs, phase profiles). They are
 *  exempt from the simulated-code rules — and, symmetrically, no
 *  simulated file may include them (obs-host-plane). */
bool
hostPlane(const std::string &rel)
{
    return rel.rfind("src/obs/host_", 0) == 0;
}

bool
isSimulated(const std::string &rel)
{
    return !hostPlane(rel) &&
           startsWithAny(rel, kSimulatedDirs, std::size(kSimulatedDirs));
}

bool
isModelOnly(const std::string &rel)
{
    return startsWithAny(rel, kModelOnlyDirs, std::size(kModelOnlyDirs));
}

bool
chronoAllowed(const std::string &rel)
{
    for (const char *f : kChronoAllowlist)
        if (rel == f)
            return true;
    if (hostPlane(rel))
        return true;
    // Only src/ is restricted; bench/tools/tests time things freely.
    return rel.rfind("src/", 0) != 0;
}

// ---------------------------------------------------------------------
// Source text: load, split comments from code (annotations live in the
// comments; every rule token-matches against the code).
// ---------------------------------------------------------------------

struct FileText {
    std::string rel;
    std::vector<std::string> code;    ///< comments/string bodies blanked
    std::vector<std::string> comment; ///< comment text per line
};

bool identChar(char c);

/** Strip comments and string/char literal bodies, preserving line
 *  structure. Comment text is kept per line so annotation lookups can
 *  see it. Raw strings are not handled (none in this tree). */
FileText
splitSource(std::string rel, const std::string &text)
{
    FileText out;
    out.rel = std::move(rel);
    std::string code, comment;
    enum { Code, Line, Block, Str, Chr } st = Code;
    bool keepStr = false; // include paths stay visible to the rules
    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        char n = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '\n') {
            out.code.push_back(code);
            out.comment.push_back(comment);
            code.clear();
            comment.clear();
            if (st == Line)
                st = Code;
            continue;
        }
        switch (st) {
          case Code:
            if (c == '/' && n == '/') {
                st = Line;
                ++i;
            } else if (c == '/' && n == '*') {
                st = Block;
                ++i;
            } else if (c == '"') {
                st = Str;
                // The layer-include rule needs the quoted path; other
                // string bodies are blanked so their contents can't
                // fake a code token.
                keepStr = code.find("#include") != std::string::npos;
                code += c;
            } else if (c == '\'' && i > 0 && identChar(text[i - 1])) {
                // Digit separator (0x0040'0000), not a char literal.
                code += c;
            } else if (c == '\'') {
                st = Chr;
                code += c;
            } else {
                code += c;
            }
            break;
          case Line:
            comment += c;
            break;
          case Block:
            if (c == '*' && n == '/') {
                st = Code;
                ++i;
            } else {
                comment += c;
            }
            break;
          case Str:
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                st = Code;
                code += c;
            } else if (keepStr) {
                code += c;
            }
            break;
          case Chr:
            if (c == '\\') {
                ++i;
            } else if (c == '\'') {
                st = Code;
                code += c;
            }
            break;
        }
    }
    if (!code.empty() || !comment.empty()) {
        out.code.push_back(code);
        out.comment.push_back(comment);
    }
    return out;
}

struct Tok {
    std::string text;
    int line = 0; ///< 1-based
};

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Tok>
tokenize(const FileText &f)
{
    std::vector<Tok> toks;
    for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
        const std::string &s = f.code[ln];
        std::size_t i = 0;
        while (i < s.size()) {
            char c = s[i];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++i;
                continue;
            }
            int line = static_cast<int>(ln) + 1;
            if (identChar(c)) {
                std::size_t j = i;
                while (j < s.size() && identChar(s[j]))
                    ++j;
                toks.push_back({s.substr(i, j - i), line});
                i = j;
            } else if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
                toks.push_back({"::", line});
                i += 2;
            } else if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
                toks.push_back({"->", line});
                i += 2;
            } else {
                toks.push_back({std::string(1, c), line});
                ++i;
            }
        }
    }
    return toks;
}

// ---------------------------------------------------------------------
// Annotations.
// ---------------------------------------------------------------------

/** True when line @p ln (0-based) carries no code tokens — i.e. it is
 *  blank or comment-only, so an annotation on it belongs to the *next*
 *  code line, not a previous declaration's trailing comment. */
bool
codeFree(const FileText &f, int ln)
{
    if (ln < 0 || ln >= static_cast<int>(f.code.size()))
        return false;
    for (char c : f.code[ln])
        if (!std::isspace(static_cast<unsigned char>(c)))
            return false;
    return true;
}

/** Extract the value of `marker: <word>` from @p text, or "". */
std::string
annotationValue(const std::string &text, const std::string &marker)
{
    auto pos = text.find(marker + ":");
    if (pos == std::string::npos)
        return "";
    pos += marker.size() + 1;
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
        ++pos;
    std::size_t end = pos;
    while (end < text.size() &&
           (identChar(text[end]) || text[end] == '-' ||
            text[end] == '(' || text[end] == ')'))
        ++end;
    return text.substr(pos, end - pos);
}

/** Look for `marker: <value>` in the comment on the declaration line
 *  or anywhere in the contiguous code-free (comment/blank) block
 *  directly above it — so multi-line doc comments can carry the
 *  annotation on any of their lines. */
std::string
annotationFor(const FileText &f, int line, const std::string &marker)
{
    int ln = line - 1; // 0-based declaration line
    if (ln >= 0 && ln < static_cast<int>(f.comment.size())) {
        std::string v = annotationValue(f.comment[ln], marker);
        if (!v.empty())
            return v;
    }
    for (int up = ln - 1; up >= 0 && codeFree(f, up); --up) {
        std::string v = annotationValue(f.comment[up], marker);
        if (!v.empty())
            return v;
    }
    return "";
}

/** `// snap: <kind>` on or above the declaration. */
std::string
snapAnnotation(const FileText &f, int line)
{
    return annotationFor(f, line, "snap");
}

/** `// misplint: allow(rule-id)` on or above the flagged line. */
bool
allowed(const FileText &f, int line, const std::string &rule)
{
    return annotationFor(f, line, "misplint") == "allow(" + rule + ")";
}

// ---------------------------------------------------------------------
// Class model: Saveable classes, their members, their method bodies.
// ---------------------------------------------------------------------

struct Member {
    std::string name;
    std::string type; ///< joined declarator tokens before the name
    std::string file;
    int line = 0;
    std::string annotation; ///< snap: value, "" if none
};

struct ClassInfo {
    std::string name;
    std::string file;
    int line = 0;
    bool hasSave = false, hasRestore = false;
    bool pureSave = false, pureRestore = false;
    std::vector<Member> members;
    /** Identifier tokens of inline-defined snapSave/snapRestore. */
    std::set<std::string> saveBody, restoreBody;
    bool inlineSave = false, inlineRestore = false;
};

struct UnorderedDecl {
    std::string file;
    int line = 0;
};

/** Everything the cross-file passes need, gathered per file. */
struct Corpus {
    std::vector<FileText> files;
    std::vector<ClassInfo> classes;
    /** variable/member name -> where a std::unordered_* with that name
     *  was declared (any file; names are distinctive enough). */
    std::map<std::string, UnorderedDecl> unorderedNames;
    /** class name -> identifier tokens of out-of-class method bodies. */
    std::map<std::string, std::set<std::string>> saveBodies;
    std::map<std::string, std::set<std::string>> restoreBodies;
};

bool
isKeyword(const std::string &t)
{
    static const std::set<std::string> kw = {
        "const",    "constexpr", "static",   "mutable",  "volatile",
        "virtual",  "inline",    "explicit", "unsigned", "signed",
        "long",     "short",     "int",      "char",     "bool",
        "double",   "float",     "void",     "auto",     "struct",
        "class",    "enum",      "union",    "typename", "template",
        "operator", "override",  "final",    "noexcept", "using",
        "typedef",  "friend",    "public",   "private",  "protected",
    };
    return kw.count(t) != 0;
}

/** Split a member-declaration statement into per-declarator segments
 *  (comma at angle/paren/bracket depth 0) and extract names. */
void
extractMembers(const std::vector<Tok> &stmt, const FileText &f,
               ClassInfo *cls)
{
    // Truncate at the first '=' at depth 0 (default member init).
    std::vector<Tok> decl;
    int angle = 0, paren = 0, bracket = 0;
    for (const Tok &t : stmt) {
        if (t.text == "<")
            ++angle;
        else if (t.text == ">")
            angle = std::max(0, angle - 1);
        else if (t.text == "(")
            ++paren;
        else if (t.text == ")")
            --paren;
        else if (t.text == "[")
            ++bracket;
        else if (t.text == "]")
            --bracket;
        if (t.text == "=" && angle == 0 && paren == 0 && bracket == 0)
            break;
        decl.push_back(t);
    }
    if (decl.empty())
        return;
    const std::string &lead = decl.front().text;
    if (lead == "static" || lead == "using" || lead == "typedef" ||
        lead == "friend" || lead == "constexpr" || lead == "template" ||
        lead == "enum" || lead == "class" || lead == "struct" ||
        lead == "union" || lead == "operator")
        return;
    // Function declaration/definition: a '(' outside template args.
    angle = 0;
    for (const Tok &t : decl) {
        if (t.text == "<")
            ++angle;
        else if (t.text == ">")
            angle = std::max(0, angle - 1);
        else if (t.text == "(" && angle == 0)
            return;
    }
    // Split declarators on depth-0 commas: "int a, b;".
    std::vector<std::vector<Tok>> parts(1);
    angle = 0;
    for (const Tok &t : decl) {
        if (t.text == "<")
            ++angle;
        else if (t.text == ">")
            angle = std::max(0, angle - 1);
        if (t.text == "," && angle == 0) {
            parts.emplace_back();
            continue;
        }
        parts.back().push_back(t);
    }
    for (const auto &part : parts) {
        // Drop trailing array dims: "buf [ 16 ]".
        std::size_t end = part.size();
        while (end >= 3 && part[end - 1].text == "]") {
            std::size_t open = end - 1;
            int d = 0;
            while (open > 0) {
                if (part[open].text == "]")
                    ++d;
                if (part[open].text == "[" && --d == 0)
                    break;
                --open;
            }
            end = open;
        }
        // Name: last identifier; type: everything before it.
        int nameIdx = -1;
        for (int i = static_cast<int>(end) - 1; i >= 0; --i) {
            const std::string &t = part[i].text;
            if (identChar(t[0]) && !isKeyword(t) &&
                !std::isdigit(static_cast<unsigned char>(t[0]))) {
                nameIdx = i;
                break;
            }
        }
        if (nameIdx <= 0)
            continue; // no type tokens before the name -> not a member
        Member m;
        m.name = part[nameIdx].text;
        for (int i = 0; i < nameIdx; ++i)
            m.type += part[i].text + " ";
        m.file = f.rel;
        m.line = part[nameIdx].line;
        m.annotation = snapAnnotation(f, part[nameIdx].line);
        cls->members.push_back(std::move(m));
    }
}

std::size_t skipBalanced(const std::vector<Tok> &toks, std::size_t i,
                         const char *open, const char *close,
                         std::set<std::string> *idents = nullptr);

/** Parse one class body starting at the '{' token; returns the index
 *  one past the closing '}'. Nested class definitions recurse. */
std::size_t
parseClassBody(const std::vector<Tok> &toks, std::size_t i,
               const std::string &name, const FileText &f,
               Corpus *corpus)
{
    ClassInfo cls;
    cls.name = name;
    cls.file = f.rel;
    cls.line = toks[i].line;
    ++i; // past '{'
    std::vector<Tok> stmt;
    auto classify = [&](bool pureCandidate) {
        bool save = false, restore = false;
        for (std::size_t k = 0; k + 1 < stmt.size(); ++k) {
            if (stmt[k + 1].text != "(")
                continue;
            if (stmt[k].text == "snapSave")
                save = true;
            if (stmt[k].text == "snapRestore")
                restore = true;
        }
        bool pure = pureCandidate && stmt.size() >= 2 &&
                    stmt[stmt.size() - 2].text == "=" &&
                    stmt.back().text == "0";
        if (save) {
            cls.hasSave = true;
            cls.pureSave = pure;
        }
        if (restore) {
            cls.hasRestore = true;
            cls.pureRestore = pure;
        }
        return save || restore;
    };
    while (i < toks.size()) {
        const std::string &t = toks[i].text;
        if (t == "}") {
            ++i;
            break;
        }
        if (t == ":" && stmt.size() == 1 &&
            (stmt[0].text == "public" || stmt[0].text == "private" ||
             stmt[0].text == "protected")) {
            stmt.clear();
            ++i;
            continue;
        }
        if (t == ";") {
            if (!classify(true))
                extractMembers(stmt, f, &cls);
            stmt.clear();
            ++i;
            continue;
        }
        if (t == "{") {
            // Inside an unclosed paren this brace is a default
            // argument (RtCosts{} etc.), not a body: consume it and
            // keep accumulating the statement.
            int parens = 0;
            for (const Tok &s : stmt) {
                if (s.text == "(")
                    ++parens;
                else if (s.text == ")")
                    --parens;
            }
            if (parens > 0) {
                i = skipBalanced(toks, i, "{", "}");
                continue;
            }
            // Nested type definition?
            bool nested = false;
            for (const Tok &s : stmt)
                if (s.text == "class" || s.text == "struct" ||
                    s.text == "enum" || s.text == "union") {
                    nested = true;
                    break;
                }
            if (nested) {
                std::string nestedName;
                for (std::size_t k = 0; k + 1 < stmt.size(); ++k)
                    if (stmt[k].text == "class" ||
                        stmt[k].text == "struct" ||
                        stmt[k].text == "union")
                        nestedName = stmt[k + 1].text;
                int nestedLine = toks[i].line;
                if (!nestedName.empty() &&
                    stmt.front().text != "enum")
                    i = parseClassBody(toks, i, nestedName, f, corpus);
                else
                    i = skipBalanced(toks, i, "{", "}");
                // "struct Foo {...} foo_;" declares a member after the
                // '}': restart the statement as "Foo foo_" so the tail
                // declarator is picked up (a bare "Foo ;" extracts
                // nothing).
                stmt.clear();
                stmt.push_back({nestedName.empty() ? "anon" : nestedName,
                                nestedLine});
                continue;
            }
            bool fn = false;
            int angle = 0;
            for (const Tok &s : stmt) {
                if (s.text == "<")
                    ++angle;
                else if (s.text == ">")
                    angle = std::max(0, angle - 1);
                else if (s.text == "(" && angle == 0)
                    fn = true;
            }
            if (fn) {
                // Inline member function; capture snapSave/snapRestore
                // bodies for the completeness check.
                std::set<std::string> body;
                i = skipBalanced(toks, i, "{", "}", &body);
                if (classify(false)) {
                    bool save = false;
                    for (std::size_t k = 0; k + 1 < stmt.size(); ++k)
                        if (stmt[k].text == "snapSave" &&
                            stmt[k + 1].text == "(")
                            save = true;
                    if (save) {
                        cls.saveBody = body;
                        cls.inlineSave = true;
                    } else {
                        cls.restoreBody = body;
                        cls.inlineRestore = true;
                    }
                }
                stmt.clear();
                continue;
            }
            // Brace initializer of a member: consume, keep statement.
            i = skipBalanced(toks, i, "{", "}");
            continue;
        }
        stmt.push_back(toks[i]);
        ++i;
    }
    corpus->classes.push_back(std::move(cls));
    return i;
}

/** Skip a balanced region starting at the opener token at @p i;
 *  returns one past the closer. Optionally collects identifiers. */
std::size_t
skipBalanced(const std::vector<Tok> &toks, std::size_t i,
             const char *open, const char *close,
             std::set<std::string> *idents)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        const std::string &t = toks[i].text;
        if (t == open)
            ++depth;
        else if (t == close) {
            if (--depth == 0)
                return i + 1;
        } else if (idents && identChar(t[0])) {
            idents->insert(t);
        }
    }
    return i;
}

/** Walk a token stream: collect class definitions, out-of-class
 *  snapSave/snapRestore bodies, and unordered-container declarations.
 */
void
walkFile(const FileText &f, const std::vector<Tok> &toks,
         Corpus *corpus)
{
    for (std::size_t i = 0; i < toks.size();) {
        const std::string &t = toks[i].text;
        // Out-of-class method body: Name :: snapSave ( ... ) ... { }
        if ((t == "snapSave" || t == "snapRestore") && i >= 2 &&
            toks[i - 1].text == "::" && i + 1 < toks.size() &&
            toks[i + 1].text == "(") {
            const std::string cls = toks[i - 2].text;
            std::size_t j = skipBalanced(toks, i + 1, "(", ")");
            while (j < toks.size() && toks[j].text != "{" &&
                   toks[j].text != ";")
                ++j;
            if (j < toks.size() && toks[j].text == "{") {
                std::set<std::string> body;
                j = skipBalanced(toks, j, "{", "}", &body);
                auto &dst = t == "snapSave" ? corpus->saveBodies
                                            : corpus->restoreBodies;
                dst[cls].insert(body.begin(), body.end());
                i = j;
                continue;
            }
        }
        // Class/struct definition at any level.
        if ((t == "class" || t == "struct") &&
            (i == 0 || toks[i - 1].text != "enum")) {
            std::size_t j = i + 1;
            std::string name;
            int angle = 0;
            for (; j < toks.size(); ++j) {
                const std::string &u = toks[j].text;
                if (u == "<")
                    ++angle;
                else if (u == ">")
                    angle = std::max(0, angle - 1);
                else if (angle == 0 &&
                         (u == ";" || u == "{" || u == "(" ||
                          u == ":" || u == ","))
                    break;
                else if (identChar(u[0]) && u != "final" &&
                         u != "alignas")
                    name = u;
            }
            if (j < toks.size() && toks[j].text == ":") {
                // Base clause: scan forward to the body brace.
                angle = 0;
                for (++j; j < toks.size(); ++j) {
                    const std::string &u = toks[j].text;
                    if (u == "<")
                        ++angle;
                    else if (u == ">")
                        angle = std::max(0, angle - 1);
                    else if (angle == 0 && (u == "{" || u == ";"))
                        break;
                }
            }
            if (j < toks.size() && toks[j].text == "{" &&
                !name.empty()) {
                i = parseClassBody(toks, j, name, f, corpus);
                continue;
            }
            i = j + 1;
            continue;
        }
        ++i;
    }
}

/** Linear pass (independent of class structure): remember the name of
 *  every variable or member declared as a std::unordered_* container,
 *  so iteration sites can be flagged wherever they appear. */
void
collectUnordered(const FileText &f, const std::vector<Tok> &toks,
                 Corpus *corpus)
{
    for (std::size_t i = 0; i < toks.size();) {
        const std::string &t = toks[i].text;
        if (t != "unordered_map" && t != "unordered_set") {
            ++i;
            continue;
        }
        std::size_t j = i + 1;
        if (j < toks.size() && toks[j].text == "<") {
            j = skipBalanced(toks, j, "<", ">");
            if (j < toks.size() && identChar(toks[j].text[0]) &&
                !isKeyword(toks[j].text))
                corpus->unorderedNames.emplace(
                    toks[j].text, UnorderedDecl{f.rel, toks[j].line});
        }
        i = j;
    }
}

// ---------------------------------------------------------------------
// Hygiene rules (token-level, per file).
// ---------------------------------------------------------------------

void
addFinding(std::vector<Finding> *out, const FileText &f, int line,
           std::string rule, std::string symbol, std::string message,
           int *suppressed)
{
    if (allowed(f, line, rule)) {
        ++*suppressed;
        return;
    }
    out->push_back({f.rel, line, std::move(rule), std::move(symbol),
                    std::move(message)});
}

void
hygieneScan(const FileText &f, const std::vector<Tok> &toks,
            const Corpus &corpus, std::vector<Finding> *out,
            int *suppressed)
{
    const bool sim = isSimulated(f.rel);
    // Host-clock tokens are banned everywhere in src/ except the
    // quarantined host plane — the simulated dirs are the core of the
    // determinism contract, but src/driver/ and src/harness/ emit
    // deterministic artifacts too and must not sprout timing outside
    // the allowlisted wall-clock sites.
    const bool detTime =
        f.rel.rfind("src/", 0) == 0 && !chronoAllowed(f.rel);

    // layer-include + chrono include gating live on include lines.
    for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
        const std::string &s = f.code[ln];
        auto inc = s.find("#include");
        if (inc == std::string::npos)
            continue;
        int line = static_cast<int>(ln) + 1;
        if (isModelOnly(f.rel)) {
            for (const char *layer : {"\"driver/", "\"harness/"}) {
                auto p = s.find(layer, inc);
                if (p == std::string::npos)
                    continue;
                auto q = s.find('"', p + 1);
                std::string hdr = s.substr(p + 1, q - p - 1);
                addFinding(out, f, line, "layer-include", hdr,
                           "model layer must not include the host-side "
                           "run layer (" + hdr + ")",
                           suppressed);
            }
        }
        // Simulated code must not reach into the obs host plane: the
        // deterministic trace API (obs/trace.hh) is the only
        // observability surface the model may see.
        if (sim) {
            auto p = s.find("\"obs/host_", inc);
            if (p != std::string::npos) {
                auto q = s.find('"', p + 1);
                std::string hdr = s.substr(p + 1, q - p - 1);
                addFinding(out, f, line, "obs-host-plane", hdr,
                           "simulated code must not include the obs "
                           "host plane (" + hdr + "); record through "
                           "obs/trace.hh instead",
                           suppressed);
            }
        }
        if (s.find("<chrono>", inc) != std::string::npos &&
            !chronoAllowed(f.rel))
            addFinding(out, f, line, "det-time", "chrono",
                       "std::chrono is host-side only (allowlist: "
                       "harness/run_record.cc, driver/runner.cc, "
                       "src/obs/host_*)",
                       suppressed);
    }

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const std::string &t = toks[i].text;
        const std::string prev = i > 0 ? toks[i - 1].text : "";
        const std::string next =
            i + 1 < toks.size() ? toks[i + 1].text : "";
        const bool memberCall = prev == "." || prev == "->";
        // A qualified call counts only when the qualifier is std.
        const bool stdQualified =
            prev == "::" && i >= 2 && toks[i - 2].text == "std";
        const bool qualified = prev == "::" && !stdQualified;
        int line = toks[i].line;

        if (detTime) {
            if ((t == "time" || t == "clock") && next == "(" &&
                !memberCall && !qualified)
                addFinding(out, f, line, "det-time", t,
                           t + "() reads the host clock; deterministic "
                           "code must be a function of (config, seed)",
                           suppressed);
            if ((t == "gettimeofday" || t == "clock_gettime" ||
                 t == "localtime" || t == "gmtime" ||
                 t == "getrusage" || t == "rdtsc" || t == "__rdtsc" ||
                 t == "__rdtscp") &&
                !memberCall && !qualified)
                addFinding(out, f, line, "det-time", t,
                           t + " reads the host clock; deterministic "
                           "code must be a function of (config, seed)",
                           suppressed);
            if (t == "chrono" && prev != "." && prev != "->")
                addFinding(out, f, line, "det-time", "chrono",
                           "std::chrono is host-side only (allowlist: "
                           "harness/run_record.cc, driver/runner.cc, "
                           "src/obs/host_*)",
                           suppressed);
        }

        if (sim) {
            if ((t == "rand" || t == "srand") && next == "(" &&
                !memberCall && !qualified)
                addFinding(out, f, line, "det-rand", t,
                           t + "() is banned in simulated code; draw "
                           "from a seeded sim::Rng",
                           suppressed);
            if (t == "random_device" && !memberCall)
                addFinding(out, f, line, "det-rand", t,
                           "std::random_device is nondeterministic by "
                           "design; seed a sim::Rng instead",
                           suppressed);
            // det-ptr-key: std :: map|set < T * ...
            if ((t == "map" || t == "set") && stdQualified &&
                next == "<") {
                int angle = 0;
                bool ptr = false;
                for (std::size_t j = i + 1; j < toks.size(); ++j) {
                    const std::string &u = toks[j].text;
                    if (u == "<") {
                        ++angle;
                    } else if (u == ">") {
                        if (--angle == 0)
                            break;
                    } else if (angle == 1 && u == ",") {
                        break;
                    } else if (angle == 1 && u == "*") {
                        ptr = true;
                    }
                }
                if (ptr)
                    addFinding(out, f, line, "det-ptr-key",
                               "std::" + t,
                               "pointer-keyed std::" + t +
                                   " iterates in allocator order, not "
                                   "model order; key by a stable id",
                               suppressed);
            }

            // det-unordered-iter: range-for over, or .begin() on, a
            // name declared as an unordered container anywhere.
            if (corpus.unorderedNames.count(t)) {
                bool rangeFor = prev == ":" && next == ")";
                bool beginCall =
                    next == "." && i + 3 < toks.size() &&
                    (toks[i + 2].text == "begin" ||
                     toks[i + 2].text == "cbegin") &&
                    toks[i + 3].text == "(";
                if (rangeFor || beginCall) {
                    const auto &decl = corpus.unorderedNames.at(t);
                    addFinding(
                        out, f, line, "det-unordered-iter", t,
                        "iteration over unordered container '" + t +
                            "' (declared " + decl.file + ":" +
                            std::to_string(decl.line) +
                            ") leaks hash order; sort into a stable "
                            "order first and annotate the site",
                        suppressed);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot completeness.
// ---------------------------------------------------------------------

const std::set<std::string> kSnapKinds = {"derived",  "host-only",
                                          "config",   "stats",
                                          "quiesced", "attach"};

void
completenessCheck(const Corpus &corpus,
                  const std::map<std::string, const FileText *> &texts,
                  std::vector<Finding> *out, Report *report)
{
    for (const ClassInfo &cls : corpus.classes) {
        if (!cls.hasSave || !cls.hasRestore)
            continue;
        if (cls.pureSave || cls.pureRestore)
            continue; // the Saveable interface itself
        ++report->saveableClasses;
        report->saveableNames.push_back(cls.name);

        const FileText &f = *texts.at(cls.file);
        std::set<std::string> save = cls.saveBody;
        std::set<std::string> restore = cls.restoreBody;
        if (!cls.inlineSave) {
            auto it = corpus.saveBodies.find(cls.name);
            if (it != corpus.saveBodies.end())
                save.insert(it->second.begin(), it->second.end());
        }
        if (!cls.inlineRestore) {
            auto it = corpus.restoreBodies.find(cls.name);
            if (it != corpus.restoreBodies.end())
                restore.insert(it->second.begin(), it->second.end());
        }

        for (const Member &m : cls.members) {
            ++report->membersChecked;
            if (!m.annotation.empty()) {
                if (!kSnapKinds.count(m.annotation))
                    out->push_back(
                        {m.file, m.line, "snap-bad-annotation", m.name,
                         "unknown snapshot annotation 'snap: " +
                             m.annotation +
                             "' (expected derived|host-only|config|"
                             "stats|quiesced|attach)"});
                ++report->suppressed;
                continue;
            }
            // References are construction wiring; stats:: members
            // travel via the stats tree (snapValues).
            if (m.type.find("&") != std::string::npos)
                continue;
            if (m.type.find("stats ::") != std::string::npos)
                continue;
            (void)f;
            if (!save.count(m.name))
                out->push_back(
                    {m.file, m.line, "snap-save-missing", m.name,
                     cls.name + "::" + m.name +
                         " is not referenced in " + cls.name +
                         "::snapSave and carries no 'snap:' "
                         "annotation"});
            if (!restore.count(m.name))
                out->push_back(
                    {m.file, m.line, "snap-restore-missing", m.name,
                     cls.name + "::" + m.name +
                         " is not referenced in " + cls.name +
                         "::snapRestore and carries no 'snap:' "
                         "annotation"});
        }
    }
}

// ---------------------------------------------------------------------
// Tag/codec pairing: every tag in snapshot/tags.hh needs a restore
// codec (a `case tag::kX` in snapshot.cc) and a producer site.
// ---------------------------------------------------------------------

void
tagCheck(const Corpus &corpus, std::vector<Finding> *out)
{
    const FileText *tags = nullptr;
    for (const FileText &f : corpus.files)
        if (f.rel == "src/snapshot/tags.hh")
            tags = &f;
    if (!tags)
        return;

    struct TagDef {
        std::string name;
        std::string value;
        int line = 0;
    };
    std::vector<TagDef> defs;
    std::vector<Tok> toks = tokenize(*tags);
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].text.rfind("k", 0) == 0 && toks[i].text.size() > 1 &&
            std::isupper(
                static_cast<unsigned char>(toks[i].text[1])) &&
            toks[i + 1].text == "=")
            defs.push_back(
                {toks[i].text, toks[i + 2].text, toks[i].line});
    }

    std::map<std::string, std::string> byValue;
    for (const TagDef &d : defs) {
        auto [it, inserted] = byValue.emplace(d.value, d.name);
        if (!inserted)
            out->push_back({tags->rel, d.line, "snap-tag-codec", d.name,
                            "tag " + d.name + " reuses value " +
                                d.value + " of " + it->second});
    }

    for (const TagDef &d : defs) {
        bool codec = false, producer = false;
        for (const FileText &f : corpus.files) {
            if (f.rel == tags->rel)
                continue;
            bool found = false;
            for (const std::string &line : f.code)
                if (line.find(d.name) != std::string::npos) {
                    found = true;
                    break;
                }
            if (!found)
                continue;
            if (f.rel == "src/snapshot/snapshot.cc")
                codec = true;
            else
                producer = true;
        }
        if (!codec)
            out->push_back(
                {tags->rel, d.line, "snap-tag-codec", d.name,
                 "tag " + d.name +
                     " has no restore codec (no reference in "
                     "src/snapshot/snapshot.cc)"});
        if (!producer)
            out->push_back(
                {tags->rel, d.line, "snap-tag-codec", d.name,
                 "tag " + d.name +
                     " is never produced (no reference outside the "
                     "snapshot layer)"});
    }
}

// ---------------------------------------------------------------------
// File discovery.
// ---------------------------------------------------------------------

bool
sourceLike(const fs::path &p)
{
    auto e = p.extension().string();
    return e == ".hh" || e == ".cc" || e == ".h" || e == ".cpp";
}

std::vector<std::string>
discover(const Options &opts)
{
    std::vector<std::string> rels;
    for (const std::string &p : opts.paths) {
        fs::path abs = fs::path(opts.root) / p;
        std::error_code ec;
        if (fs::is_regular_file(abs, ec)) {
            rels.push_back(p);
            continue;
        }
        if (!fs::is_directory(abs, ec))
            continue;
        for (auto it = fs::recursive_directory_iterator(abs, ec);
             it != fs::recursive_directory_iterator(); ++it) {
            if (!it->is_regular_file() || !sourceLike(it->path()))
                continue;
            std::string rel =
                fs::relative(it->path(), opts.root, ec).generic_string();
            // The fixture corpus carries deliberate violations.
            if (rel.find("misplint_fixtures") != std::string::npos)
                continue;
            rels.push_back(rel);
        }
    }
    std::sort(rels.begin(), rels.end());
    rels.erase(std::unique(rels.begin(), rels.end()), rels.end());
    return rels;
}

} // namespace

// ---------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------

Report
run(const Options &opts)
{
    Report report;
    Corpus corpus;

    for (const std::string &rel : discover(opts)) {
        std::ifstream in(fs::path(opts.root) / rel,
                         std::ios::binary);
        if (!in)
            continue;
        std::ostringstream ss;
        ss << in.rdbuf();
        corpus.files.push_back(splitSource(rel, ss.str()));
        ++report.filesScanned;
    }

    std::vector<std::vector<Tok>> tokens;
    tokens.reserve(corpus.files.size());
    for (const FileText &f : corpus.files) {
        tokens.push_back(tokenize(f));
        walkFile(f, tokens.back(), &corpus);
        collectUnordered(f, tokens.back(), &corpus);
    }

    for (std::size_t i = 0; i < corpus.files.size(); ++i)
        hygieneScan(corpus.files[i], tokens[i], corpus,
                    &report.findings, &report.suppressed);

    std::map<std::string, const FileText *> texts;
    for (const FileText &f : corpus.files)
        texts[f.rel] = &f;
    completenessCheck(corpus, texts, &report.findings, &report);
    tagCheck(corpus, &report.findings);

    std::sort(report.findings.begin(), report.findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule, a.symbol) <
                         std::tie(b.file, b.line, b.rule, b.symbol);
              });
    // Two rules can hit the same construct (an `#include <chrono>`
    // line trips both the include gate and the token scan); one
    // finding per (file, line, rule, symbol) is enough.
    report.findings.erase(
        std::unique(report.findings.begin(), report.findings.end(),
                    [](const Finding &a, const Finding &b) {
                        return std::tie(a.file, a.line, a.rule,
                                        a.symbol) ==
                               std::tie(b.file, b.line, b.rule,
                                        b.symbol);
                    }),
        report.findings.end());
    return report;
}

std::string
format(const Finding &f)
{
    return f.file + ":" + std::to_string(f.line) + ": " + f.rule +
           " " + f.message;
}

std::string
baselineKey(const Finding &f)
{
    return f.file + ":" + f.rule + ":" + f.symbol;
}

} // namespace misplint
