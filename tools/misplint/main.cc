/**
 * @file
 * misplint CLI.
 *
 *   misplint --root DIR [--baseline FILE] [--write-baseline FILE]
 *            [paths...]
 *
 * Exit codes: 0 clean (modulo baseline), 1 findings or a stale
 * baseline, 2 usage error.
 *
 * The baseline grandfathers known findings by stable key
 * (file:rule:symbol — no line numbers, so it survives edits above the
 * site). The gate is shrink-only by construction: a *new* finding is
 * not in the baseline and fails; a *fixed* finding makes its baseline
 * entry stale, which also fails until the entry is deleted. The
 * baseline can therefore never grow and never rot.
 */

#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "misplint.hh"

namespace {

int
usage()
{
    std::cerr
        << "usage: misplint [--root DIR] [--baseline FILE]\n"
           "                [--write-baseline FILE] [paths...]\n"
           "  paths default to src/ and tests/ under --root\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    misplint::Options opts;
    std::string baselinePath, writeBaselinePath;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&](std::string *dst) {
            if (i + 1 >= argc)
                return false;
            *dst = argv[++i];
            return true;
        };
        if (a == "--root") {
            if (!value(&opts.root))
                return usage();
        } else if (a == "--baseline") {
            if (!value(&baselinePath))
                return usage();
        } else if (a == "--write-baseline") {
            if (!value(&writeBaselinePath))
                return usage();
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            std::cerr << "misplint: unknown option " << a << "\n";
            return usage();
        } else {
            paths.push_back(a);
        }
    }
    if (!paths.empty())
        opts.paths = paths;

    misplint::Report report = misplint::run(opts);

    if (!writeBaselinePath.empty()) {
        std::ofstream out(writeBaselinePath);
        if (!out) {
            std::cerr << "misplint: cannot write " << writeBaselinePath
                      << "\n";
            return 2;
        }
        out << "# misplint baseline — grandfathered findings, one\n"
               "# file:rule:symbol key per line. Shrink-only: new\n"
               "# findings fail the gate, fixed findings make their\n"
               "# entry stale, and stale entries fail until removed.\n";
        for (const auto &f : report.findings)
            out << misplint::baselineKey(f) << "\n";
    }

    std::set<std::string> baseline;
    if (!baselinePath.empty()) {
        std::ifstream in(baselinePath);
        if (!in) {
            std::cerr << "misplint: cannot read baseline "
                      << baselinePath << "\n";
            return 2;
        }
        std::string line;
        while (std::getline(in, line)) {
            while (!line.empty() &&
                   (line.back() == '\r' || line.back() == ' '))
                line.pop_back();
            if (line.empty() || line[0] == '#')
                continue;
            baseline.insert(line);
        }
    }

    int live = 0;
    std::set<std::string> matched;
    for (const auto &f : report.findings) {
        std::string key = misplint::baselineKey(f);
        if (baseline.count(key)) {
            matched.insert(key);
            continue;
        }
        std::cout << misplint::format(f) << "\n";
        ++live;
    }

    int stale = 0;
    for (const auto &key : baseline)
        if (!matched.count(key)) {
            std::cout << "baseline: stale entry '" << key
                      << "' — the finding is gone; delete the line\n";
            ++stale;
        }

    std::cerr << "misplint: " << report.filesScanned << " files, "
              << report.saveableClasses << " saveable classes, "
              << report.membersChecked << " members checked, "
              << report.suppressed << " annotated, " << live
              << " finding(s)";
    if (!baseline.empty() || stale)
        std::cerr << ", " << matched.size() << " baselined, " << stale
                  << " stale";
    std::cerr << "\n";

    return live || stale ? 1 : 0;
}
