/**
 * @file
 * `mispsim` — the scenario driver CLI.
 *
 * Runs a declarative `.scn` scenario (machine topology x workload x
 * sweep axes) through the shared ScenarioRunner and emits a human
 * table plus optional machine-readable JSON. Every paper figure and
 * any new experiment is a spec file, not a C++ program:
 *
 *   $ ./build/mispsim scenarios/fig4.scn -o fig4.json
 *   $ ./build/mispsim scenarios/fig7.scn --quick --md
 *   $ ./build/mispsim scenarios/smoke.scn --dry-run
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "driver/report.hh"
#include "driver/runner.hh"
#include "sim/logging.hh"

using namespace misp;
using namespace misp::driver;

namespace {

int
usage(const char *argv0, int code)
{
    std::fprintf(
        code ? stderr : stdout,
        "usage: %s <scenario.scn> [options]\n"
        "\n"
        "Runs a declarative scenario: machines x workloads x sweep axes.\n"
        "Spec format: see docs/ARCHITECTURE.md (Scenario driver) and the\n"
        "checked-in examples under scenarios/.\n"
        "\n"
        "options:\n"
        "  -o FILE            write results as JSON to FILE\n"
        "  --metrics FILE     write the full metric frame (every sweep\n"
        "                     point x every metric, incl. derived\n"
        "                     speedup and per-10^6-instruction event\n"
        "                     rates) as deterministic JSON to FILE\n"
        "  --quick            apply the scenario's [quick] overrides\n"
        "  --jobs N           run grid points on N worker threads; all\n"
        "                     outputs (JSON, tables, --points) stay\n"
        "                     byte-identical to a serial run\n"
        "  --isolate          crash-isolated workers: fork one child\n"
        "                     process per grid point (up to N at once);\n"
        "                     a crashing point is recorded as\n"
        "                     worker_crashed instead of killing the\n"
        "                     sweep; outputs stay byte-identical\n"
        "  --save-snapshot DIR  warm every grid point up for the\n"
        "                     scenario's [snapshot] warmup_ticks, write\n"
        "                     DIR/point_<k>.misnap, and keep running to\n"
        "                     completion (results unchanged)\n"
        "  --from-snapshot DIR  restore each grid point from\n"
        "                     DIR/point_<k>.misnap instead of booting\n"
        "                     cold; results are byte-identical to a\n"
        "                     cold run of the same spec (exception:\n"
        "                     --full-stats decode-cache hit/miss\n"
        "                     counters, which restart cold — the\n"
        "                     decode cache is derived state)\n"
        "  --no-decode-cache  reference fetch+decode path (also honored\n"
        "                     from MISP_NO_DECODE_CACHE=1)\n"
        "  --md               print the results table as markdown\n"
        "  --points           print canonical point lines only (the\n"
        "                     bench-equivalence diff format)\n"
        "  --dry-run          expand and print the grid without running\n"
        "  --full-stats       include a full stats dump per point in the\n"
        "                     JSON output\n"
        "  --verbose          keep the simulator's event log on stderr\n"
        "  --list-workloads   print the workload registry and exit\n"
        "  -h, --help         this message\n",
        argv0);
    return code;
}

void
listWorkloads()
{
    std::printf("%-18s %s\n", "name", "suite");
    for (const wl::WorkloadInfo &info : wl::allWorkloads())
        std::printf("%-18s %s\n", info.name.c_str(), info.suite.c_str());
    for (const wl::WorkloadInfo &info : wl::utilWorkloads())
        std::printf("%-18s %s\n", info.name.c_str(), info.suite.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scnArg;
    std::string jsonPath;
    std::string metricsPath;
    bool quick = false;
    bool markdown = false;
    bool pointsOnly = false;
    bool dryRun = false;
    bool fullStats = false;
    bool verbose = false;
    bool noDecodeCache = false;
    bool isolate = false;
    unsigned jobs = 1;
    std::string saveSnapshotDir;
    std::string fromSnapshotDir;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "-h") == 0 || std::strcmp(arg, "--help") == 0)
            return usage(argv[0], 0);
        if (std::strcmp(arg, "--list-workloads") == 0) {
            listWorkloads();
            return 0;
        }
        if (std::strcmp(arg, "-o") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr, "mispsim: -o needs a file argument\n");
                return 2;
            }
            jsonPath = argv[i];
        } else if (std::strcmp(arg, "--metrics") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --metrics needs a file argument\n");
                return 2;
            }
            metricsPath = argv[i];
        } else if (std::strcmp(arg, "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(arg, "--jobs") == 0) {
            if (++i >= argc || !parseUnsigned(argv[i], &jobs) ||
                jobs == 0) {
                std::fprintf(stderr,
                             "mispsim: --jobs needs a positive integer\n");
                return 2;
            }
        } else if (std::strcmp(arg, "--isolate") == 0) {
            isolate = true;
        } else if (std::strcmp(arg, "--save-snapshot") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --save-snapshot needs a directory\n");
                return 2;
            }
            saveSnapshotDir = argv[i];
        } else if (std::strcmp(arg, "--from-snapshot") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --from-snapshot needs a directory\n");
                return 2;
            }
            fromSnapshotDir = argv[i];
        } else if (std::strcmp(arg, "--no-decode-cache") == 0) {
            noDecodeCache = true;
        } else if (std::strcmp(arg, "--md") == 0) {
            markdown = true;
        } else if (std::strcmp(arg, "--points") == 0) {
            pointsOnly = true;
        } else if (std::strcmp(arg, "--dry-run") == 0) {
            dryRun = true;
        } else if (std::strcmp(arg, "--full-stats") == 0) {
            fullStats = true;
        } else if (std::strcmp(arg, "--verbose") == 0) {
            verbose = true;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "mispsim: unknown option '%s'\n", arg);
            return usage(argv[0], 2);
        } else if (scnArg.empty()) {
            scnArg = arg;
        } else {
            std::fprintf(stderr, "mispsim: more than one scenario file\n");
            return usage(argv[0], 2);
        }
    }
    if (scnArg.empty())
        return usage(argv[0], 2);

    const char *env = std::getenv("MISP_NO_DECODE_CACHE");
    if (env && env[0] == '1')
        noDecodeCache = true;

    setQuietLogging(!verbose);

    std::string path = findScenarioFile(scnArg, argv[0]);
    if (path.empty()) {
        std::fprintf(stderr, "mispsim: scenario '%s' not found\n",
                     scnArg.c_str());
        return 1;
    }

    SpecFile spec;
    std::string err;
    if (!SpecFile::parseFile(path, &spec, &err)) {
        std::fprintf(stderr, "mispsim: %s\n", err.c_str());
        return 1;
    }
    Scenario sc;
    if (!Scenario::fromSpec(spec, &sc, &err)) {
        std::fprintf(stderr, "mispsim: %s\n", err.c_str());
        return 1;
    }
    std::vector<ScenarioPoint> points;
    if (!sc.expandPoints(quick, &points, &err)) {
        std::fprintf(stderr, "mispsim: %s\n", err.c_str());
        return 1;
    }

    if (dryRun) {
        std::printf("scenario %s: %zu point(s)\n", sc.name.c_str(),
                    points.size());
        for (const ScenarioPoint &pt : points) {
            std::printf("  %-10s %-18s competitors=%u",
                        pt.machine.name.c_str(),
                        pt.workload.name.c_str(), pt.competitors);
            std::string coords = pt.coordString();
            if (!coords.empty())
                std::printf("  [%s]", coords.c_str());
            std::printf("\n");
        }
        return 0;
    }

    if (!saveSnapshotDir.empty() && !fromSnapshotDir.empty()) {
        std::fprintf(stderr, "mispsim: --save-snapshot and "
                             "--from-snapshot are mutually exclusive\n");
        return 2;
    }
    if (!saveSnapshotDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(saveSnapshotDir, ec);
        if (ec) {
            std::fprintf(stderr, "mispsim: cannot create '%s': %s\n",
                         saveSnapshotDir.c_str(),
                         ec.message().c_str());
            return 1;
        }
    }

    ScenarioRunner::Options opts;
    opts.noDecodeCache = noDecodeCache;
    opts.fullStats = fullStats;
    opts.jobs = jobs;
    opts.isolate = isolate;
    opts.snapshotSaveDir = saveSnapshotDir;
    opts.snapshotLoadDir = fromSnapshotDir;
    ScenarioRunner runner(opts);
    std::vector<PointResult> results =
        runner.runAll(sc, points, pointsOnly ? nullptr : &std::cerr);

    // One columnar frame per sweep: every renderer and the assert
    // evaluator below read the results through it.
    const harness::MetricFrame frame = buildMetricFrame(sc, results);

    if (pointsOnly) {
        writePoints(std::cout, frame);
    } else if (sc.report.mode == ReportMode::Events) {
        writeEventsTable(std::cout, sc, frame, markdown);
    } else {
        writeTable(std::cout, sc, frame, markdown);
    }

    if (!jsonPath.empty()) {
        std::ofstream os(jsonPath);
        if (!os) {
            std::fprintf(stderr, "mispsim: cannot write '%s'\n",
                         jsonPath.c_str());
            return 1;
        }
        writeJson(os, sc, quick, frame);
        std::fprintf(stderr, "mispsim: wrote %s\n", jsonPath.c_str());
    }

    if (!metricsPath.empty()) {
        std::ofstream os(metricsPath);
        if (!os) {
            std::fprintf(stderr, "mispsim: cannot write '%s'\n",
                         metricsPath.c_str());
            return 1;
        }
        writeMetricsJson(os, sc, quick, frame);
        std::fprintf(stderr, "mispsim: wrote %s\n", metricsPath.c_str());
    }

    int rc = 0;
    for (const PointResult &r : results) {
        if (r.run.ok())
            continue;
        std::string what;
        switch (r.run.status) {
          case harness::RunStatus::MaxTicksReached:
            what = "never finished (hit max_ticks)";
            break;
          case harness::RunStatus::SnapshotError:
            what = "snapshot error: " + r.run.note;
            break;
          case harness::RunStatus::WorkerCrashed:
            what = "worker crashed: " + r.run.note;
            break;
          case harness::RunStatus::Completed:
            what = "failed result validation";
            break;
        }
        std::fprintf(stderr,
                     "mispsim: point machine=%s workload=%s "
                     "competitors=%u %s\n",
                     r.machine.c_str(), r.workload.c_str(),
                     r.competitors, what.c_str());
        rc = 1;
    }

    // [report] asserts guard paper claims from the spec itself; any
    // failing (or malformed) assert makes the run exit non-zero.
    std::vector<AssertFailure> failures;
    if (!evaluateAsserts(sc, frame, &failures, &err)) {
        std::fprintf(stderr, "mispsim: %s\n", err.c_str());
        return 1;
    }
    for (const AssertFailure &f : failures) {
        std::fprintf(stderr, "mispsim: %s:%d: assert FAILED: %s (%s)\n",
                     sc.specPath.c_str(), f.line, f.text.c_str(),
                     f.detail.c_str());
        rc = 1;
    }
    if (!sc.report.asserts.empty() && failures.empty())
        std::fprintf(stderr, "mispsim: %zu assert(s) passed\n",
                     sc.report.asserts.size());
    return rc;
}
