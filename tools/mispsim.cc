/**
 * @file
 * `mispsim` — the scenario driver CLI.
 *
 * Runs a declarative `.scn` scenario (machine topology x workload x
 * sweep axes) through the shared ScenarioRunner and emits a human
 * table plus optional machine-readable JSON. Every paper figure and
 * any new experiment is a spec file, not a C++ program:
 *
 *   $ ./build/mispsim scenarios/fig4.scn -o fig4.json
 *   $ ./build/mispsim scenarios/fig7.scn --quick --md
 *   $ ./build/mispsim scenarios/smoke.scn --dry-run
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "cpu/engine.hh"
#include "driver/cli_help.hh"
#include "driver/report.hh"
#include "driver/runner.hh"
#include "driver/shard.hh"
#include "obs/host_profile.hh"
#include "obs/host_run_log.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

using namespace misp;
using namespace misp::driver;

namespace {

int
usage(const char *argv0, int code)
{
    // Rendered from the flag/exit-code registries in driver/cli_help.cc
    // so the help text can never drift from the audited CLI surface.
    std::fputs(mispsimUsage(argv0).c_str(), code ? stderr : stdout);
    return code;
}

void
listWorkloads()
{
    std::printf("%-18s %s\n", "name", "suite");
    for (const wl::WorkloadInfo &info : wl::allWorkloads())
        std::printf("%-18s %s\n", info.name.c_str(), info.suite.c_str());
    for (const wl::WorkloadInfo &info : wl::utilWorkloads())
        std::printf("%-18s %s\n", info.name.c_str(), info.suite.c_str());
}

/**
 * `--merge-frames OUT IN...`: reassemble per-shard `--metrics` dumps
 * into one frame, write it to @p outPath in the serial format, run the
 * scenario's deferred [report] asserts on it, and mirror the serial
 * run's exit-code policy (including 4 for degraded-but-passing sweeps
 * under on_failed_points = skip).
 */
int
mergeFramesMain(const Scenario &scIn,
                const std::vector<std::string> &inputs,
                const std::string &outPath, bool pointsOnly,
                bool markdown, const std::string &jsonPath)
{
    Scenario sc = scIn;
    std::string err;
    if (inputs.empty()) {
        std::fprintf(stderr,
                     "mispsim: --merge-frames needs at least one shard "
                     "dump\n");
        return 2;
    }
    std::vector<ShardDump> dumps;
    for (const std::string &in : inputs) {
        ShardDump dump;
        if (!readShardDump(in, &dump, &err)) {
            std::fprintf(stderr, "mispsim: %s\n", err.c_str());
            return 1;
        }
        dumps.push_back(std::move(dump));
    }
    // The grid is re-expanded under the mode the shards ran in;
    // mergeShardDumps fails closed if the dumps disagree on it.
    const bool quick = dumps[0].quick;
    std::vector<ScenarioPoint> grid;
    if (!sc.expandPoints(quick, &grid, &err)) {
        std::fprintf(stderr, "mispsim: %s\n", err.c_str());
        return 1;
    }
    harness::MetricFrame frame;
    if (!mergeShardDumps(sc, quick, grid, dumps, &frame, &err)) {
        std::fprintf(stderr, "mispsim: %s\n", err.c_str());
        return 1;
    }

    if (pointsOnly) {
        writePoints(std::cout, frame);
    } else if (sc.report.mode == ReportMode::Events) {
        writeEventsTable(std::cout, sc, frame, markdown);
    } else {
        writeTable(std::cout, sc, frame, markdown);
    }

    {
        std::ofstream os(outPath);
        if (!os) {
            std::fprintf(stderr, "mispsim: cannot write '%s'\n",
                         outPath.c_str());
            return 1;
        }
        writeMetricsJson(os, sc, quick, frame);
        std::fprintf(stderr, "mispsim: wrote %s\n", outPath.c_str());
    }
    if (!jsonPath.empty()) {
        std::ofstream os(jsonPath);
        if (!os) {
            std::fprintf(stderr, "mispsim: cannot write '%s'\n",
                         jsonPath.c_str());
            return 1;
        }
        writeJson(os, sc, quick, frame);
        std::fprintf(stderr, "mispsim: wrote %s\n", jsonPath.c_str());
    }

    // Same per-point failure accounting as a serial run, read back
    // from the merged frame's status/valid/attempts columns (the
    // dumps don't carry the free-form failure notes).
    int rc = 0;
    std::size_t failedPoints = 0;
    const bool degradeGracefully =
        sc.report.onFailedPoints == FailedPointPolicy::Skip;
    for (std::size_t r = 0; r < frame.numRows(); ++r) {
        const harness::MetricFrame::Row &row = frame.row(r);
        const bool valid = frame.at(r, "valid") != 0.0;
        if (row.status == harness::RunStatus::Completed && valid)
            continue;
        std::string what;
        switch (row.status) {
          case harness::RunStatus::MaxTicksReached:
            what = "never finished (hit max_ticks)";
            break;
          case harness::RunStatus::SnapshotError:
            what = "snapshot error";
            break;
          case harness::RunStatus::WorkerCrashed:
            what = "worker crashed";
            break;
          case harness::RunStatus::WorkerTimeout:
            what = "worker timed out";
            break;
          case harness::RunStatus::Completed:
            what = "failed result validation";
            break;
        }
        const double attempts = frame.at(r, "attempts");
        if (attempts > 1)
            what += " [attempts=" +
                    std::to_string(
                        static_cast<long long>(attempts)) +
                    "]";
        std::fprintf(stderr,
                     "mispsim: point machine=%s workload=%s "
                     "competitors=%u %s\n",
                     row.machine.c_str(), row.workload.c_str(),
                     row.competitors, what.c_str());
        if (harness::runStatusIsInfraFailure(row.status) &&
            degradeGracefully)
            ++failedPoints;
        else
            rc = 1;
    }

    // The asserts each shard deferred run here, on the full frame.
    std::vector<AssertFailure> failures;
    std::size_t skippedGroups = 0;
    if (!evaluateAsserts(sc, frame, &failures, &err, &skippedGroups)) {
        std::fprintf(stderr, "mispsim: %s\n", err.c_str());
        return 1;
    }
    for (const AssertFailure &f : failures) {
        std::fprintf(stderr, "mispsim: %s:%d: assert FAILED: %s (%s)\n",
                     sc.specPath.c_str(), f.line, f.text.c_str(),
                     f.detail.c_str());
        rc = 1;
    }
    if (skippedGroups > 0)
        std::fprintf(stderr,
                     "mispsim: %zu assert evaluation(s) skipped over "
                     "failed points\n",
                     skippedGroups);
    if (!sc.report.asserts.empty() && failures.empty())
        std::fprintf(stderr, "mispsim: %zu assert(s) passed\n",
                     sc.report.asserts.size());
    if (rc == 0 && failedPoints > 0) {
        std::fprintf(stderr,
                     "mispsim: completed with %zu failed point(s) "
                     "(on_failed_points=skip)\n",
                     failedPoints);
        rc = 4;
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scnArg;
    std::string jsonPath;
    std::string metricsPath;
    bool quick = false;
    bool markdown = false;
    bool pointsOnly = false;
    bool dryRun = false;
    bool fullStats = false;
    bool verbose = false;
    bool forceEngine = false;
    misp::cpu::Engine engine = misp::cpu::Engine::Superblock;
    bool isolate = false;
    unsigned jobs = 1;
    std::string saveSnapshotDir;
    std::string fromSnapshotDir;
    std::string injectSpec;
    std::int64_t deadlineMs = -1;
    int retries = -1;
    int backoffMs = -1;
    std::string onFailed;
    std::string tracePath;
    std::uint64_t traceSkip = 0;
    std::string runLogPath;
    std::string profilePath;
    bool progressFlag = false;
    std::string shardArg;
    std::string mergeOut;
    std::vector<std::string> mergeInputs;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "-h") == 0 || std::strcmp(arg, "--help") == 0)
            return usage(argv[0], 0);
        if (std::strcmp(arg, "--list-workloads") == 0) {
            listWorkloads();
            return 0;
        }
        if (std::strcmp(arg, "-o") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr, "mispsim: -o needs a file argument\n");
                return 2;
            }
            jsonPath = argv[i];
        } else if (std::strcmp(arg, "--metrics") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --metrics needs a file argument\n");
                return 2;
            }
            metricsPath = argv[i];
        } else if (std::strcmp(arg, "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(arg, "--jobs") == 0) {
            if (++i >= argc || !parseUnsigned(argv[i], &jobs) ||
                jobs == 0) {
                std::fprintf(stderr,
                             "mispsim: --jobs needs a positive integer\n");
                return 2;
            }
        } else if (std::strcmp(arg, "--isolate") == 0) {
            isolate = true;
        } else if (std::strcmp(arg, "--deadline") == 0) {
            unsigned ms = 0;
            if (++i >= argc || !parseUnsigned(argv[i], &ms)) {
                std::fprintf(stderr,
                             "mispsim: --deadline needs a millisecond "
                             "count\n");
                return 2;
            }
            deadlineMs = static_cast<std::int64_t>(ms);
        } else if (std::strcmp(arg, "--retries") == 0) {
            unsigned n = 0;
            if (++i >= argc || !parseUnsigned(argv[i], &n)) {
                std::fprintf(stderr,
                             "mispsim: --retries needs an integer\n");
                return 2;
            }
            retries = static_cast<int>(n);
        } else if (std::strcmp(arg, "--backoff") == 0) {
            unsigned ms = 0;
            if (++i >= argc || !parseUnsigned(argv[i], &ms)) {
                std::fprintf(stderr,
                             "mispsim: --backoff needs a millisecond "
                             "count\n");
                return 2;
            }
            backoffMs = static_cast<int>(ms);
        } else if (std::strcmp(arg, "--inject") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --inject needs a fault spec\n");
                return 2;
            }
            injectSpec = argv[i];
        } else if (std::strcmp(arg, "--on-failed") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --on-failed needs fail, skip, or "
                             "require_all\n");
                return 2;
            }
            onFailed = argv[i];
        } else if (std::strcmp(arg, "--save-snapshot") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --save-snapshot needs a directory\n");
                return 2;
            }
            saveSnapshotDir = argv[i];
        } else if (std::strcmp(arg, "--from-snapshot") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --from-snapshot needs a directory\n");
                return 2;
            }
            fromSnapshotDir = argv[i];
        } else if (std::strncmp(arg, "--engine=", 9) == 0) {
            if (!misp::cpu::parseEngineName(arg + 9, &engine)) {
                std::fprintf(stderr,
                             "mispsim: --engine wants ref, cache, or "
                             "superblock, got '%s'\n",
                             arg + 9);
                return 2;
            }
            forceEngine = true;
        } else if (std::strcmp(arg, "--no-decode-cache") == 0) {
            engine = misp::cpu::Engine::Reference;
            forceEngine = true;
        } else if (std::strcmp(arg, "--trace") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --trace needs a file argument\n");
                return 2;
            }
            tracePath = argv[i];
        } else if (std::strcmp(arg, "--trace-skip") == 0) {
            if (++i >= argc || !parseU64(argv[i], &traceSkip)) {
                std::fprintf(stderr,
                             "mispsim: --trace-skip needs a processed-"
                             "event count\n");
                return 2;
            }
        } else if (std::strcmp(arg, "--run-log") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --run-log needs a file argument\n");
                return 2;
            }
            runLogPath = argv[i];
        } else if (std::strcmp(arg, "--profile") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --profile needs a file argument\n");
                return 2;
            }
            profilePath = argv[i];
        } else if (std::strcmp(arg, "--shard") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --shard needs a k/N spec\n");
                return 2;
            }
            shardArg = argv[i];
        } else if (std::strcmp(arg, "--merge-frames") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --merge-frames needs an output "
                             "file argument\n");
                return 2;
            }
            mergeOut = argv[i];
        } else if (std::strcmp(arg, "--progress") == 0) {
            progressFlag = true;
        } else if (std::strcmp(arg, "--md") == 0) {
            markdown = true;
        } else if (std::strcmp(arg, "--points") == 0) {
            pointsOnly = true;
        } else if (std::strcmp(arg, "--dry-run") == 0) {
            dryRun = true;
        } else if (std::strcmp(arg, "--full-stats") == 0) {
            fullStats = true;
        } else if (std::strcmp(arg, "--verbose") == 0) {
            verbose = true;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "mispsim: unknown option '%s'\n", arg);
            return usage(argv[0], 2);
        } else if (scnArg.empty()) {
            scnArg = arg;
        } else if (!mergeOut.empty()) {
            // Merge mode: the scenario comes first, then the per-shard
            // --metrics dumps to reassemble.
            mergeInputs.push_back(arg);
        } else {
            std::fprintf(stderr, "mispsim: more than one scenario file\n");
            return usage(argv[0], 2);
        }
    }
    if (scnArg.empty())
        return usage(argv[0], 2);
    if (!mergeOut.empty() && !shardArg.empty()) {
        std::fprintf(stderr,
                     "mispsim: --shard and --merge-frames are mutually "
                     "exclusive\n");
        return 2;
    }
    ShardSpec shard;
    const bool sharded = !shardArg.empty();
    std::string shardErr;
    if (sharded && !parseShardSpec(shardArg, &shard, &shardErr)) {
        std::fprintf(stderr, "mispsim: %s\n", shardErr.c_str());
        return 2;
    }

    // Env overrides apply only when no CLI --engine flag was given.
    if (!forceEngine) {
        const char *envEngine = std::getenv("MISP_ENGINE");
        if (envEngine && envEngine[0] != '\0') {
            if (!misp::cpu::parseEngineName(envEngine, &engine)) {
                std::fprintf(stderr,
                             "mispsim: MISP_ENGINE wants ref, cache, or "
                             "superblock, got '%s'\n",
                             envEngine);
                return 2;
            }
            forceEngine = true;
        }
    }
    if (!forceEngine) {
        const char *env = std::getenv("MISP_NO_DECODE_CACHE");
        if (env && env[0] == '1') {
            engine = misp::cpu::Engine::Reference;
            forceEngine = true;
        }
    }

    setQuietLogging(!verbose);

    std::string path = findScenarioFile(scnArg, argv[0]);
    if (path.empty()) {
        std::fprintf(stderr, "mispsim: scenario '%s' not found\n",
                     scnArg.c_str());
        return 1;
    }

    SpecFile spec;
    std::string err;
    if (!SpecFile::parseFile(path, &spec, &err)) {
        std::fprintf(stderr, "mispsim: %s\n", err.c_str());
        return 1;
    }
    Scenario sc;
    if (!Scenario::fromSpec(spec, &sc, &err)) {
        std::fprintf(stderr, "mispsim: %s\n", err.c_str());
        return 1;
    }

    // The supervision flags act on forked workers; without --isolate
    // there is no worker to supervise, so reject the combination
    // instead of silently ignoring it.
    if (!isolate &&
        (!injectSpec.empty() || deadlineMs >= 0 || retries >= 0 ||
         backoffMs >= 0)) {
        std::fprintf(stderr,
                     "mispsim: --inject/--deadline/--retries/--backoff "
                     "require --isolate\n");
        return 2;
    }
    FaultPlan injected;
    if (!injectSpec.empty() &&
        !FaultPlan::parse(injectSpec, &injected, &err)) {
        std::fprintf(stderr, "mispsim: --inject: %s\n", err.c_str());
        return 2;
    }
    if (!onFailed.empty()) {
        if (onFailed == "fail")
            sc.report.onFailedPoints = FailedPointPolicy::Fail;
        else if (onFailed == "skip")
            sc.report.onFailedPoints = FailedPointPolicy::Skip;
        else if (onFailed == "require_all")
            sc.report.onFailedPoints = FailedPointPolicy::RequireAll;
        else {
            std::fprintf(stderr,
                         "mispsim: --on-failed: expected fail, skip, or "
                         "require_all, got '%s'\n",
                         onFailed.c_str());
            return 2;
        }
    }

    if (!mergeOut.empty())
        return mergeFramesMain(sc, mergeInputs, mergeOut, pointsOnly,
                               markdown, jsonPath);

    std::vector<ScenarioPoint> points;
    if (!sc.expandPoints(quick, &points, &err)) {
        std::fprintf(stderr, "mispsim: %s\n", err.c_str());
        return 1;
    }

    // --shard k/N: keep only this shard's coordinate combinations.
    // Combinations (not raw points) are dealt round-robin so each
    // coordinate group stays whole and its derived columns (speedup)
    // match the serial run's; the owned points keep their global grid
    // indices so snapshots and fault plans compose unchanged.
    const std::size_t shardTotal = points.size();
    std::vector<std::size_t> shardIndices;
    std::string shardHash;
    if (sharded) {
        shardHash = gridConfigHash(sc, points);
        shardIndices =
            shardPointIndices(shard, points.size(), sc.machines.size());
        std::vector<ScenarioPoint> owned;
        owned.reserve(shardIndices.size());
        for (std::size_t g : shardIndices)
            owned.push_back(points[g]);
        points.swap(owned);
    }

    if (dryRun) {
        std::printf("scenario %s: %zu point(s)\n", sc.name.c_str(),
                    points.size());
        for (const ScenarioPoint &pt : points) {
            std::printf("  %-10s %-18s competitors=%u",
                        pt.machine.name.c_str(),
                        pt.workload.name.c_str(), pt.competitors);
            std::string coords = pt.coordString();
            if (!coords.empty())
                std::printf("  [%s]", coords.c_str());
            std::printf("\n");
        }
        return 0;
    }

    if (!saveSnapshotDir.empty() && !fromSnapshotDir.empty()) {
        std::fprintf(stderr, "mispsim: --save-snapshot and "
                             "--from-snapshot are mutually exclusive\n");
        return 2;
    }
    if (!saveSnapshotDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(saveSnapshotDir, ec);
        if (ec) {
            std::fprintf(stderr, "mispsim: cannot create '%s': %s\n",
                         saveSnapshotDir.c_str(),
                         ec.message().c_str());
            return 1;
        }
    }

    if (tracePath.empty() && traceSkip != 0) {
        std::fprintf(stderr, "mispsim: --trace-skip requires --trace\n");
        return 2;
    }

    std::ofstream runLogFile;
    if (!runLogPath.empty()) {
        runLogFile.open(runLogPath);
        if (!runLogFile) {
            std::fprintf(stderr, "mispsim: cannot write '%s'\n",
                         runLogPath.c_str());
            return 1;
        }
    }
    obs::RunLog runLog(runLogFile.is_open() ? &runLogFile : nullptr);

    ScenarioRunner::Options opts;
    opts.forceEngine = forceEngine;
    opts.engine = engine;
    opts.fullStats = fullStats;
    opts.jobs = jobs;
    opts.isolate = isolate;
    opts.deadlineMs = deadlineMs;
    opts.retries = retries;
    opts.backoffMs = backoffMs;
    opts.faults = injected;
    opts.snapshotSaveDir = saveSnapshotDir;
    opts.snapshotLoadDir = fromSnapshotDir;
    opts.traceEnabled = !tracePath.empty();
    opts.traceSkip = traceSkip;
    if (runLogFile.is_open())
        opts.runLog = &runLog;
    opts.pointIndices = shardIndices;
    ScenarioRunner runner(opts);
    const bool showProgress = progressFlag || !pointsOnly;
    std::vector<PointResult> results =
        runner.runAll(sc, points, showProgress ? &std::cerr : nullptr);

    // Per-point labels for the observability artifacts: coordinates
    // only, identical across engines and execution backends.
    auto pointLabel = [&](std::size_t i) {
        std::string label =
            results[i].machine + ":" + results[i].workload;
        std::string coords = points[i].coordString();
        if (!coords.empty())
            label += " " + coords;
        return label;
    };

    if (!tracePath.empty()) {
        std::vector<obs::TracePoint> tps;
        tps.reserve(results.size());
        for (std::size_t i = 0; i < results.size(); ++i)
            tps.push_back({pointLabel(i), &results[i].run.trace});
        std::ofstream os(tracePath);
        if (!os) {
            std::fprintf(stderr, "mispsim: cannot write '%s'\n",
                         tracePath.c_str());
            return 1;
        }
        obs::writeChromeTrace(os, tps);
        std::fprintf(stderr, "mispsim: wrote %s\n", tracePath.c_str());
    }

    if (!profilePath.empty()) {
        std::vector<obs::PointProfile> profiles;
        profiles.reserve(results.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            obs::PointProfile p;
            p.label = pointLabel(i);
            p.engine = cpu::engineName(
                forceEngine ? engine : points[i].machine.engine);
            p.phases = results[i].run.phases;
            p.hostSeconds = results[i].run.hostSeconds;
            p.hostMips = results[i].run.hostMips;
            p.instsRetired = results[i].run.instsRetired;
            profiles.push_back(std::move(p));
        }
        std::ofstream os(profilePath);
        if (!os) {
            std::fprintf(stderr, "mispsim: cannot write '%s'\n",
                         profilePath.c_str());
            return 1;
        }
        obs::writeProfileJson(os, profiles);
        std::fprintf(stderr, "mispsim: wrote %s\n", profilePath.c_str());
    }

    // One columnar frame per sweep: every renderer and the assert
    // evaluator below read the results through it.
    const harness::MetricFrame frame = buildMetricFrame(sc, results);

    if (pointsOnly) {
        writePoints(std::cout, frame);
    } else if (sc.report.mode == ReportMode::Events) {
        writeEventsTable(std::cout, sc, frame, markdown);
    } else {
        writeTable(std::cout, sc, frame, markdown);
    }

    if (!jsonPath.empty()) {
        std::ofstream os(jsonPath);
        if (!os) {
            std::fprintf(stderr, "mispsim: cannot write '%s'\n",
                         jsonPath.c_str());
            return 1;
        }
        writeJson(os, sc, quick, frame);
        std::fprintf(stderr, "mispsim: wrote %s\n", jsonPath.c_str());
    }

    if (!metricsPath.empty()) {
        std::ofstream os(metricsPath);
        if (!os) {
            std::fprintf(stderr, "mispsim: cannot write '%s'\n",
                         metricsPath.c_str());
            return 1;
        }
        if (sharded)
            writeShardMetricsJson(os, sc, quick, frame, shard,
                                  shardTotal, shardHash, shardIndices);
        else
            writeMetricsJson(os, sc, quick, frame);
        std::fprintf(stderr, "mispsim: wrote %s\n", metricsPath.c_str());
    }

    int rc = 0;
    std::size_t failedPoints = 0;
    const bool degradeGracefully =
        sc.report.onFailedPoints == FailedPointPolicy::Skip;
    for (const PointResult &r : results) {
        if (r.run.ok())
            continue;
        std::string what;
        switch (r.run.status) {
          case harness::RunStatus::MaxTicksReached:
            what = "never finished (hit max_ticks)";
            break;
          case harness::RunStatus::SnapshotError:
            what = "snapshot error: " + r.run.note;
            break;
          case harness::RunStatus::WorkerCrashed:
            what = "worker crashed: " + r.run.note;
            break;
          case harness::RunStatus::WorkerTimeout:
            what = "worker timed out: " + r.run.note;
            break;
          case harness::RunStatus::Completed:
            what = "failed result validation";
            break;
        }
        if (r.run.attempts > 1)
            what += " [attempts=" + std::to_string(r.run.attempts) + "]";
        std::fprintf(stderr,
                     "mispsim: point machine=%s workload=%s "
                     "competitors=%u %s\n",
                     r.machine.c_str(), r.workload.c_str(),
                     r.competitors, what.c_str());
        // Infrastructure failures degrade instead of failing when the
        // policy says skip; simulation outcomes (max_ticks, invalid
        // results) are real findings and always fail the run.
        if (harness::runStatusIsInfraFailure(r.run.status) &&
            degradeGracefully)
            ++failedPoints;
        else
            rc = 1;
    }

    // [report] asserts guard paper claims from the spec itself; any
    // failing (or malformed) assert makes the run exit non-zero. A
    // shard sees only its slice of the grid — cross-combination
    // references would dangle — so asserts are deferred to the
    // --merge-frames pass over the reassembled frame.
    if (sharded) {
        if (!sc.report.asserts.empty())
            std::fprintf(stderr,
                         "mispsim: %zu [report] assert(s) deferred to "
                         "--merge-frames (--shard %zu/%zu)\n",
                         sc.report.asserts.size(), shard.index,
                         shard.count);
    } else {
        std::vector<AssertFailure> failures;
        std::size_t skippedGroups = 0;
        if (!evaluateAsserts(sc, frame, &failures, &err,
                             &skippedGroups)) {
            std::fprintf(stderr, "mispsim: %s\n", err.c_str());
            return 1;
        }
        for (const AssertFailure &f : failures) {
            std::fprintf(stderr,
                         "mispsim: %s:%d: assert FAILED: %s (%s)\n",
                         sc.specPath.c_str(), f.line, f.text.c_str(),
                         f.detail.c_str());
            rc = 1;
        }
        if (skippedGroups > 0)
            std::fprintf(stderr,
                         "mispsim: %zu assert evaluation(s) skipped "
                         "over failed points\n",
                         skippedGroups);
        if (!sc.report.asserts.empty() && failures.empty())
            std::fprintf(stderr, "mispsim: %zu assert(s) passed\n",
                         sc.report.asserts.size());
    }
    // Distinct code for "completed with failed points": everything
    // that ran passed, but the sweep is degraded (on_failed_points =
    // skip swallowed infrastructure failures).
    if (rc == 0 && failedPoints > 0) {
        std::fprintf(stderr,
                     "mispsim: completed with %zu failed point(s) "
                     "(on_failed_points=skip)\n",
                     failedPoints);
        rc = 4;
    }
    return rc;
}
